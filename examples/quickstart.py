#!/usr/bin/env python3
"""Quickstart: the paper's Fig. 5 SYRK flow, end to end.

The example walks the same path as ``scalehls-clang | scalehls-opt |
scalehls-translate``: parse HLS C, raise to the affine level, run the loop and
directive transforms, estimate the QoR, and finally emit synthesizable HLS
C++ with the directives inserted as pragmas.
"""

from repro.dialects.affine_ops import outermost_loops, perfect_loop_band
from repro.dse.space import KernelDesignPoint
from repro.emit import emit_hlscpp
from repro.estimation import QoREstimator, XC7Z020
from repro.ir import print_op, verify
from repro.pipeline import compile_c, kernel_baseline, optimize_kernel

SYRK_C = """
void syrk(float alpha, float beta, float C[16][16], float A[16][8]) {
  for (int i = 0; i < 16; i++) {
    for (int j = 0; j <= i; j++) {
      C[i][j] *= beta;
      for (int k = 0; k < 8; k++) {
        C[i][j] += alpha * A[i][k] * A[j][k];
      }
    }
  }
}
"""


def main() -> None:
    # (i) -> (ii): parse the C kernel and raise it into the affine dialect.
    module = compile_c(SYRK_C, "syrk")
    verify(module)
    print("=== Loop-level IR (paper Fig. 5(ii)) ===")
    print(print_op(module))

    # Baseline QoR: what Vivado HLS would see with no directives at all.
    baseline = kernel_baseline(module)
    print(f"\nBaseline latency estimate: {baseline.latency:,} cycles "
          f"(DSPs: {baseline.dsp})")

    # (ii) -> (iv): loop transforms + directive transforms with the same
    # parameters the paper uses in its walk-through (tile the i-loop by 2,
    # pipeline the innermost loop with II=1).
    point = KernelDesignPoint(
        loop_perfectization=True,
        remove_variable_bound=True,
        perm_map=(1, 2, 0),      # k-loop outermost, as in the paper
        tile_sizes=(1, 2, 1),
        target_ii=1,
    )
    design = optimize_kernel(module, point, XC7Z020)
    verify(design.module)
    print("\n=== Directive-level IR (paper Fig. 5(iv)) ===")
    print(print_op(design.func_op))

    print(f"\nOptimized latency estimate: {design.qor.latency:,} cycles "
          f"(II = {design.achieved_ii}, DSPs = {design.qor.dsp})")
    print(f"Speedup over the baseline: {baseline.latency / design.qor.latency:.1f}x")
    print(f"Array partition factors: {design.partition_factors}")

    # (iv) -> (v): emit synthesizable HLS C++ with pragmas.
    print("\n=== Synthesizable HLS C++ (paper Fig. 5(v)) ===")
    print(emit_hlscpp(design.module))


if __name__ == "__main__":
    main()

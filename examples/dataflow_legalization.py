#!/usr/bin/env python3
"""Dataflow legalization walk-through (paper Fig. 4).

Builds the five-procedure dataflow graph with a bypass path from the paper's
Fig. 4(a) and shows how the ``-legalize-dataflow`` pass handles it:

* conservative legalization merges the bypassed stages (Fig. 4(b)),
* aggressive legalization inserts copy nodes for a finer pipeline (Fig. 4(c)),
* a minimum granularity of 2 merges adjacent stages back together (Fig. 4(d)).
"""

from repro.dialects import graph
from repro.dialects.hlscpp import get_dataflow_stage
from repro.frontend.pytorch_like import GraphBuilder
from repro.transforms import legalize_dataflow, split_function


def build_bypass_graph():
    """Proc0 feeds both Proc1 (the main path) and Proc3 (the bypass path)."""
    builder = GraphBuilder("figure4", (1, 8, 16, 16))
    proc0 = builder.relu(builder.input, name="proc0")
    proc1 = builder.conv2d(proc0, 8, 3, padding=1, name="proc1")
    proc2 = builder.relu(proc1, name="proc2")
    proc3 = builder.add(proc2, proc0, name="proc3")
    proc4 = builder.relu(proc3, name="proc4")
    return builder.finish(proc4), builder.func_op


def show_stages(func_op, title):
    print(f"\n{title}")
    for node in graph.graph_nodes(func_op):
        name = node.get_attr("layer_name") or node.name
        print(f"  stage {get_dataflow_stage(node)}: {name} ({node.name})")


def main() -> None:
    module, func_op = build_bypass_graph()
    stages = legalize_dataflow(func_op, insert_copy=False)
    show_stages(func_op, f"Conservative legalization -> {stages} stages (Fig. 4(b))")

    module, func_op = build_bypass_graph()
    stages = legalize_dataflow(func_op, insert_copy=True)
    show_stages(func_op, f"Aggressive legalization with copies -> {stages} stages (Fig. 4(c))")

    sub_functions = split_function(module, func_op, min_granularity=2)
    print(f"\nSplitting with min-granularity 2 -> {len(sub_functions)} dataflow "
          f"sub-functions (Fig. 4(d)):")
    for sub in sub_functions:
        ops = [op.name for op in sub.walk() if op.name.startswith("graph.")]
        print(f"  {sub.get_attr('sym_name')}: {ops}")


if __name__ == "__main__":
    main()

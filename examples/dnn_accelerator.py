#!/usr/bin/env python3
"""Compile a DNN model into a dataflow accelerator (paper Section VII-B).

Builds a CIFAR-10 model with the PyTorch-like graph builder, applies the
graph-level (dataflow legalization + function splitting), loop-level
(unrolling + loop-order optimization) and directive-level (pipelining + array
partitioning) optimizations, and reports speedup, resource utilization and
DSP efficiency on one SLR of a VU9P — the setting of the paper's Table V.

Usage::

    python examples/dnn_accelerator.py [resnet18|vgg16|mobilenet]
"""

import sys

from repro.estimation import VU9P_SLR
from repro.pipeline import compile_dnn, dnn_baseline


def main() -> None:
    model = sys.argv[1] if len(sys.argv) > 1 else "mobilenet"

    print(f"Compiling {model} for one SLR of a VU9P ...")
    baseline = dnn_baseline(model)
    print(f"Baseline (no multi-level optimization): "
          f"{baseline.qor.interval:,} cycles per inference")

    # Sweep a few optimization levels and keep the fastest design that fits.
    best = None
    for graph_level, loop_level in ((3, 3), (4, 4), (5, 4), (5, 5)):
        result = compile_dnn(model, graph_level=graph_level, loop_level=loop_level,
                             directive_level=True)
        fits = VU9P_SLR.fits(result.qor.resources, memory_margin=1.2)
        speedup = baseline.qor.interval / result.qor.interval
        print(f"  G{graph_level} L{loop_level} D: speedup {speedup:8.1f}x  "
              f"DSP {result.qor.dsp:5d}  memory {result.qor.memory_bits / 1e6:6.1f} Mb  "
              f"LUT {result.qor.lut:7d}  {'fits' if fits else 'over budget'}")
        if fits and (best is None or result.qor.interval < best[1].qor.interval):
            best = ((graph_level, loop_level), result)

    if best is None:
        print("\nNo configuration fits the SLR budget; relax the levels and retry.")
        return

    (graph_level, loop_level), result = best
    utilization = VU9P_SLR.utilization(result.qor.resources)
    print(f"\nSelected configuration: G{graph_level} L{loop_level} D")
    print(f"  Throughput interval : {result.qor.interval:,} cycles "
          f"({baseline.qor.interval / result.qor.interval:.1f}x speedup)")
    print(f"  Dataflow stages     : {result.num_dataflow_stages}")
    print(f"  DSPs                : {result.qor.dsp} ({utilization['dsp'] * 100:.1f}% of one SLR)")
    print(f"  On-chip memory      : {result.qor.memory_bits / 1e6:.1f} Mb "
          f"({utilization['memory'] * 100:.1f}%)")
    print(f"  LUTs                : {result.qor.lut} ({utilization['lut'] * 100:.1f}%)")
    print(f"  DSP efficiency      : {result.dsp_efficiency:.3f} OP/cycle/DSP")
    print(f"  Compilation runtime : {result.runtime_seconds:.1f} s")


if __name__ == "__main__":
    main()

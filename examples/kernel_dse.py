#!/usr/bin/env python3
"""Automated design space exploration of a PolyBench kernel (paper Section VII-A).

Runs the 5-step DSE engine on the GEMM kernel for the XC7Z020 edge FPGA,
prints the discovered Pareto frontier of the latency/DSP trade-off space, and
emits the finalized design as HLS C++.

Usage::

    python examples/kernel_dse.py [kernel] [problem_size]

where ``kernel`` is one of bicg, gemm, gesummv, syr2k, syrk, trmm.
"""

import sys

from repro.dse import DesignSpaceExplorer
from repro.dse.apply import estimate_baseline
from repro.emit import emit_hlscpp
from repro.estimation import XC7Z020
from repro.kernels import KERNEL_NAMES
from repro.pipeline import compile_kernel


def main() -> None:
    kernel = sys.argv[1] if len(sys.argv) > 1 else "gemm"
    problem_size = int(sys.argv[2]) if len(sys.argv) > 2 else 256
    if kernel not in KERNEL_NAMES:
        raise SystemExit(f"unknown kernel {kernel!r}; choose from {KERNEL_NAMES}")

    print(f"Compiling {kernel} (problem size {problem_size}) ...")
    module = compile_kernel(kernel, problem_size)
    baseline = estimate_baseline(module, XC7Z020)
    print(f"Baseline latency: {baseline.latency:,} cycles, {baseline.dsp} DSPs")

    explorer = DesignSpaceExplorer(XC7Z020, num_samples=16, max_iterations=24, seed=2022)
    result = explorer.explore(module)

    print(f"\nEvaluated {result.num_evaluations} design points; Pareto frontier:")
    print(f"{'latency (cycles)':>18}  {'DSPs':>6}  {'II':>4}  parameters")
    for pareto_point in result.frontier:
        design = result.evaluations[pareto_point.encoded]
        print(f"{design.qor.latency:>18,}  {design.qor.dsp:>6}  "
              f"{design.achieved_ii or '-':>4}  {design.point.describe()}")

    best = result.best
    print(f"\nFinalized design (fits {XC7Z020.name}): "
          f"{best.qor.latency:,} cycles, {best.qor.dsp} DSPs "
          f"-> {baseline.latency / best.qor.latency:.1f}x speedup")
    print(f"Selected parameters: {best.point.describe()}")

    print("\n=== Emitted HLS C++ (truncated) ===")
    code = emit_hlscpp(best.module)
    print("\n".join(code.splitlines()[:40]))
    print("...")


if __name__ == "__main__":
    main()

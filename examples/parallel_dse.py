#!/usr/bin/env python3
"""Walkthrough of the parallel DSE runtime.

Demonstrates the three pillars of ``repro.dse.runtime`` on a PolyBench
kernel:

1. **Multi-worker exploration** — the same seed produces the identical
   Pareto frontier with 1 or N workers (determinism contract).
2. **QoR estimate cache** — a second sweep against the warm cache skips
   every re-estimation.
3. **Resumable checkpoints** — an interrupted run continues from its last
   snapshot and lands on the same frontier as an uninterrupted one.

It closes with the :class:`MultiKernelScheduler` exploring two kernels
concurrently on one shared worker pool.

Usage::

    python examples/parallel_dse.py [kernel] [problem_size] [jobs]
"""

import os
import sys
import tempfile

from repro.dse.runtime import EstimateCache, MultiKernelScheduler, ParallelExplorer
from repro.dse.apply import estimate_baseline
from repro.estimation import XC7Z020
from repro.kernels import KERNEL_NAMES
from repro.pipeline import compile_kernel


def frontier_summary(result):
    return [(point.encoded, point.latency, point.area) for point in result.frontier]


def main() -> None:
    kernel = sys.argv[1] if len(sys.argv) > 1 else "gemm"
    problem_size = int(sys.argv[2]) if len(sys.argv) > 2 else 32
    jobs = int(sys.argv[3]) if len(sys.argv) > 3 else 2
    if kernel not in KERNEL_NAMES:
        raise SystemExit(f"unknown kernel {kernel!r}; choose from {KERNEL_NAMES}")

    print(f"Compiling {kernel} (problem size {problem_size}) ...")
    module = compile_kernel(kernel, problem_size)
    baseline = estimate_baseline(module, XC7Z020)

    # 1. Determinism: 1 worker vs. `jobs` workers, same seed, same frontier.
    config = dict(num_samples=8, max_iterations=16, seed=2022, batch_size=4)
    serial = ParallelExplorer(XC7Z020, jobs=1, **config).explore(module)
    parallel = ParallelExplorer(XC7Z020, jobs=jobs, **config).explore(module)
    print(f"\n[1] serial: {serial.num_evaluations} evaluations "
          f"in {serial.wall_seconds:.2f}s; "
          f"parallel ({jobs} workers): {parallel.wall_seconds:.2f}s")
    assert frontier_summary(serial) == frontier_summary(parallel)
    print(f"    identical frontier of {len(serial.frontier)} points ✓")

    with tempfile.TemporaryDirectory() as workdir:
        # 2. Estimate cache: the repeat run never re-estimates.
        cache = EstimateCache(os.path.join(workdir, "qor_cache.jsonl"))
        explorer = ParallelExplorer(XC7Z020, jobs=jobs, cache=cache, **config)
        cold = explorer.explore(module)
        warm = explorer.explore(module)
        print(f"\n[2] cold run: {cold.cache_misses} misses; warm rerun: "
              f"{warm.cache_hits} hits, {warm.cache_misses} misses "
              f"({warm.wall_seconds:.3f}s)")

        # 3. Checkpoints: kill after 10 evaluations, resume, same frontier.
        checkpoint = os.path.join(workdir, "explore.ckpt.json")
        ParallelExplorer(XC7Z020, jobs=jobs, checkpoint_path=checkpoint,
                         checkpoint_every=4, max_evaluations=10,
                         **config).explore(module)
        resumed = ParallelExplorer(XC7Z020, jobs=jobs, checkpoint_path=checkpoint,
                                   **config).explore(module, resume=True)
        assert frontier_summary(resumed) == frontier_summary(serial)
        print(f"\n[3] interrupted at 10 evaluations, resumed to "
              f"{resumed.num_evaluations}; frontier matches uninterrupted run ✓")

    # Finalized design of the parallel run.
    best = parallel.best_record
    print(f"\nFinalized: latency={best.qor.latency:,} cycles dsp={best.qor.dsp} "
          f"-> {baseline.latency / best.qor.latency:.1f}x speedup over baseline")

    # 4. Whole-module concurrency: both kernels on one shared pool.
    from repro.testing import GEMM_SOURCE, SYRK_SOURCE, compile_source

    pair = compile_source(GEMM_SOURCE + SYRK_SOURCE, "pair")
    scheduler = MultiKernelScheduler(XC7Z020, jobs=jobs, num_samples=6,
                                     max_iterations=8, batch_size=4)
    results = scheduler.explore_module(pair)
    print("\n[4] multi-kernel scheduler:")
    for name in sorted(results):
        record = results[name].best_record
        print(f"    {name}: best latency={record.qor.latency:,} "
              f"dsp={record.qor.dsp} ({results[name].num_evaluations} evals)")


if __name__ == "__main__":
    main()

"""PolyBench-C computation kernels as parameterized C sources.

The six kernels evaluated in the paper (BICG, GEMM, GESUMMV, SYR2K, SYRK and
TRMM, Section VII-A) are generated as synthesizable C text for a given
problem size and fed through the HLS C front-end, exactly as the original
PolyBench sources are fed to ScaleHLS.
"""

from __future__ import annotations


def gemm(n: int) -> str:
    """General matrix multiply: ``C = beta*C + alpha*A*B``."""
    return f"""
void gemm(float alpha, float beta, float C[{n}][{n}], float A[{n}][{n}], float B[{n}][{n}]) {{
  for (int i = 0; i < {n}; i++) {{
    for (int j = 0; j < {n}; j++) {{
      C[i][j] *= beta;
      for (int k = 0; k < {n}; k++) {{
        C[i][j] += alpha * A[i][k] * B[k][j];
      }}
    }}
  }}
}}
"""


def bicg(n: int) -> str:
    """BiCG sub-kernel: ``s = A^T * r`` and ``q = A * p``."""
    return f"""
void bicg(float A[{n}][{n}], float s[{n}], float q[{n}], float p[{n}], float r[{n}]) {{
  for (int i = 0; i < {n}; i++) {{
    for (int j = 0; j < {n}; j++) {{
      s[j] += r[i] * A[i][j];
      q[i] += A[i][j] * p[j];
    }}
  }}
}}
"""


def gesummv(n: int) -> str:
    """Scalar, vector and matrix multiplication: ``y = alpha*A*x + beta*B*x``."""
    return f"""
void gesummv(float alpha, float beta, float A[{n}][{n}], float B[{n}][{n}],
             float tmp[{n}], float x[{n}], float y[{n}]) {{
  for (int i = 0; i < {n}; i++) {{
    for (int j = 0; j < {n}; j++) {{
      tmp[i] += A[i][j] * x[j];
      y[i] += B[i][j] * x[j];
    }}
    y[i] = alpha * tmp[i] + beta * y[i];
  }}
}}
"""


def syrk(n: int) -> str:
    """Symmetric rank-k update: ``C = beta*C + alpha*A*A^T`` (lower triangle)."""
    k = max(2, n // 2)
    return f"""
void syrk(float alpha, float beta, float C[{n}][{n}], float A[{n}][{k}]) {{
  for (int i = 0; i < {n}; i++) {{
    for (int j = 0; j <= i; j++) {{
      C[i][j] *= beta;
      for (int k = 0; k < {k}; k++) {{
        C[i][j] += alpha * A[i][k] * A[j][k];
      }}
    }}
  }}
}}
"""


def syr2k(n: int) -> str:
    """Symmetric rank-2k update (lower triangle)."""
    k = max(2, n // 2)
    return f"""
void syr2k(float alpha, float beta, float C[{n}][{n}], float A[{n}][{k}], float B[{n}][{k}]) {{
  for (int i = 0; i < {n}; i++) {{
    for (int j = 0; j <= i; j++) {{
      C[i][j] *= beta;
      for (int k = 0; k < {k}; k++) {{
        C[i][j] += alpha * A[j][k] * B[i][k] + alpha * B[j][k] * A[i][k];
      }}
    }}
  }}
}}
"""


def trmm(n: int) -> str:
    """Triangular matrix multiply: ``B = alpha*A^T*B`` with unit-diagonal A."""
    return f"""
void trmm(float alpha, float A[{n}][{n}], float B[{n}][{n}]) {{
  for (int i = 0; i < {n}; i++) {{
    for (int j = 0; j < {n}; j++) {{
      for (int k = i + 1; k < {n}; k++) {{
        B[i][j] += A[k][i] * B[k][j];
      }}
      B[i][j] = alpha * B[i][j];
    }}
  }}
}}
"""


_GENERATORS = {
    "bicg": bicg,
    "gemm": gemm,
    "gesummv": gesummv,
    "syr2k": syr2k,
    "syrk": syrk,
    "trmm": trmm,
}

#: Kernel names in the order the paper's Table III lists them.
KERNEL_NAMES = ("bicg", "gemm", "gesummv", "syr2k", "syrk", "trmm")


def kernel_source(name: str, problem_size: int) -> str:
    """C source of ``name`` at the given problem size."""
    try:
        generator = _GENERATORS[name]
    except KeyError as error:
        raise ValueError(f"unknown kernel {name!r}; expected one of {sorted(_GENERATORS)}") \
            from error
    if problem_size < 2:
        raise ValueError("problem size must be at least 2")
    return generator(problem_size)

"""Benchmark kernels: PolyBench-style C sources used by the paper's evaluation."""

from repro.kernels.polybench import KERNEL_NAMES, kernel_source

__all__ = ["KERNEL_NAMES", "kernel_source"]

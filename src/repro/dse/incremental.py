"""Incremental evaluation: prefix-shared pipelines with IR snapshot caching.

Every kernel evaluation runs the same leading passes — canonicalization plus
the two boolean structural knobs (loop perfectization, variable-bound
removal) — before anything point-specific happens (permutation, tiling,
pipelining, the cleanup tail, array partitioning).  Those knobs admit only
four combinations, so a worker that evaluates hundreds of points re-runs a
byte-identical prefix almost every time.

:class:`PrefixSnapshotCache` memoizes the *post-prefix* module per
``(kernel IR digest, function name, prefix key)`` and serves each evaluation
a fresh **clone** of the snapshot, which is much cheaper than re-running the
prefix.  Each worker process (and the serial backend) owns its own cache —
snapshots are plain IR objects and never cross process boundaries.

Correctness:

* The snapshot is built by exactly the passes the non-incremental path runs
  (the same registry pass objects, in the same order), and every checkout
  clones it, so downstream transforms can never leak state between
  evaluations.  ``--no-incremental`` disables checkouts for A/B comparison;
  frontier artifacts are byte-identical either way, at any ``--jobs``.
* The cache key embeds :func:`repro.dse.space.ir_digest` of the source
  kernel: structurally different IR can never share a snapshot, even within
  one process.

Observability: each checkout emits one constant-shape ``dse.prefix`` span
(cache-warmth only appears in span *args*, never in the trace skeleton) and
the ``dse.prefix.{hits,misses,clones}`` counters.  Snapshot *builds* run
with the session suspended — they happen only on a miss, so their spans
would make the trace depend on execution details — and their pass timings
are re-injected afterwards under a distinct ``prefix.<key>/`` scope, keeping
``--print-pass-timing`` free of shared-vs-per-point double counting.
"""

from __future__ import annotations

import collections
from typing import Optional

from repro import obs
from repro.dse.space import KernelDesignPoint, ir_digest
from repro.ir.module import ModuleOp
from repro.ir.operation import Operation
from repro.ir.pass_manager import (
    PassManager,
    collect_pass_timings,
    pass_timing_scope,
)
from repro.ir.pass_registry import build_pipeline_cached


class PrefixSnapshotCache:
    """Per-worker memo of post-prefix kernel IR, keyed by prefix identity.

    ``max_entries`` bounds the snapshot count with LRU eviction; the default
    is small because a single kernel has at most four prefixes and a worker
    typically interleaves only a handful of kernels.
    """

    def __init__(self, max_entries: int = 16):
        if max_entries < 1:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.clones = 0
        self.evictions = 0
        #: key -> snapshot module; least recently used first.
        self._snapshots: "collections.OrderedDict[tuple, ModuleOp]" = \
            collections.OrderedDict()

    def __len__(self) -> int:
        return len(self._snapshots)

    def checkout(self, module: ModuleOp, point: KernelDesignPoint,
                 func_name: Optional[str] = None,
                 digest: Optional[str] = None) -> tuple[ModuleOp, Operation]:
        """A fresh post-prefix clone of ``module`` for evaluating ``point``.

        ``digest`` is the caller's :func:`~repro.dse.space.ir_digest` of the
        kernel function when it already has one (the DSE runtime ships it in
        the kernel context); without a hint the digest is recomputed per
        checkout, so in-place mutation of ``module`` safely invalidates.

        Returns ``(cloned module, kernel function inside the clone)`` —
        exactly what running canonicalize + the design-point prefix on a
        clone of ``module`` would produce.
        """
        if not digest:
            digest = ir_digest(_lookup(module, func_name))
        prefix = point.prefix_key()
        key = (digest, func_name, prefix)
        snapshot = self._snapshots.get(key)
        cached = snapshot is not None
        span = obs.NULL_SPAN if obs.active() is None else obs.span(
            "dse.prefix", key=prefix, cached=cached)
        with span:
            if cached:
                self.hits += 1
                obs.counter("dse.prefix.hits")
                self._snapshots.move_to_end(key)
            else:
                self.misses += 1
                obs.counter("dse.prefix.misses")
                snapshot = self._build(module, point, func_name, prefix)
                self._snapshots[key] = snapshot
                while len(self._snapshots) > self.max_entries:
                    self._snapshots.popitem(last=False)
                    self.evictions += 1
            cloned = snapshot.clone()
            self.clones += 1
            obs.counter("dse.prefix.clones")
        return cloned, _lookup(cloned, func_name)

    # -- internals --------------------------------------------------------------------------

    @staticmethod
    def _build(module: ModuleOp, point: KernelDesignPoint,
               func_name: Optional[str], prefix: str) -> ModuleOp:
        """Run the shared prefix once: clone, canonicalize, perfectize/rvb.

        Built with the session suspended (a miss is an execution detail, not
        part of the trajectory); the measured pass seconds are re-injected
        under the ``prefix.<key>/`` timing scope afterwards so timing tables
        attribute shared work separately from per-evaluation work.
        """
        from repro.dse.apply import design_point_prefix_pass

        snapshot = module.clone()
        func_op = _lookup(snapshot, func_name)
        with obs.suspended(), collect_pass_timings() as collector, \
                pass_timing_scope(f"prefix.{prefix}"):
            build_pipeline_cached("canonicalize").run(func_op)
            PassManager([design_point_prefix_pass(point)]).run(func_op)
        for name, seconds in collector.timings.items():
            obs.add_pass_seconds(name, seconds)
        return snapshot


def _lookup(module: ModuleOp, func_name: Optional[str]) -> Operation:
    func_op = module.lookup(func_name) if func_name else module.functions()[0]
    if func_op is None:
        raise ValueError(f"function {func_name!r} not found in the module")
    return func_op

"""Applying a design point: the bridge between the DSE engine and the
transform library.

Given a kernel module (scf/affine level) and a :class:`KernelDesignPoint`,
:func:`apply_design_point` clones the module, builds the corresponding
registry pipeline (:func:`kernel_pipeline_spec`), runs it on the kernel
function and finally invokes the QoR estimator — mirroring how the ScaleHLS
DSE drives its transform and analysis library through pass pipelines.  The
cleanup tail of that pipeline is itself a design choice: every point names
one of the registered :data:`CLEANUP_PIPELINES`, so the DSE explores *how
to clean up* alongside *how to transform*.

The pipeline spec is also the *hashable transform description* of the flow:
:func:`kernel_pipeline_signature` is embedded in the parallel runtime's
QoR-cache fingerprints and checkpoint configs, so changing the transform
pipeline can never silently reuse stale estimates.
"""

from __future__ import annotations

import dataclasses
import functools
from typing import Optional

from repro.dialects.affine_ops import outermost_loops
from repro.dse.space import KernelDesignPoint
from repro.estimation.estimator import QoREstimator, QoRResult
from repro.estimation.platform import Platform, XC7Z020
from repro.ir.module import ModuleOp
from repro.ir.operation import Operation
from repro.ir.pass_manager import PassManager
from repro.ir.pass_registry import build_pipeline_cached, pipeline_signature


@dataclasses.dataclass
class AppliedDesign:
    """The optimized module together with its estimated QoR."""

    module: ModuleOp
    func_op: Operation
    point: KernelDesignPoint
    qor: QoRResult
    achieved_ii: Optional[int] = None
    partition_factors: dict = dataclasses.field(default_factory=dict)


#: The redundancy-elimination tail of the reference kernel evaluation.
CLEANUP_PIPELINE = ("canonicalize,simplify-affine-if,affine-store-forward,"
                    "simplify-memref-access,cse,canonicalize")

#: Named cleanup/loop pipelines the DSE may choose between.  The *name* is a
#: categorical design-space dimension (see
#: :class:`~repro.dse.space.KernelDesignSpace`); the canonical printed spec
#: of every entry is hashed into cache/checkpoint fingerprints, so renaming
#: or editing a pipeline here can never silently reuse stale estimates.
CLEANUP_PIPELINES: dict[str, str] = {
    "default": CLEANUP_PIPELINE,
    # A single canonicalize+cse round: cheaper per evaluation, but leaves
    # redundant memory traffic the estimator will charge for.
    "light": "canonicalize,cse",
    # Two store-forwarding rounds: pays extra transform time to expose
    # forwarding opportunities the first cse round uncovers.
    "thorough": ("canonicalize,simplify-affine-if,affine-store-forward,"
                 "simplify-memref-access,cse,affine-store-forward,"
                 "simplify-memref-access,cse,canonicalize"),
}

#: The pipeline used when a design point does not choose one explicitly.
DEFAULT_CLEANUP = "default"


def cleanup_pipeline_names() -> tuple[str, ...]:
    """Registered cleanup-pipeline names, in stable (sorted) order."""
    return tuple(sorted(CLEANUP_PIPELINES))


def register_cleanup_pipeline(name: str, spec: str) -> None:
    """Register (or replace) a named cleanup pipeline at runtime.

    The CLI surface of :data:`CLEANUP_PIPELINES` (``--register-pipeline
    name=spec``).  ``spec`` is validated against the pass registry before
    anything changes — an unknown pass or malformed spec raises
    :class:`~repro.ir.pass_manager.PassError` with the registry's actionable
    message.  Registration invalidates the cached pipeline signatures, so
    cache/checkpoint fingerprints always reflect the live registry.
    """
    from repro.ir.pass_manager import PassError

    if not name or any(ch in name for ch in "=,(){} "):
        raise PassError(f"invalid cleanup pipeline name {name!r}: names must "
                        "be non-empty and contain no '=', ',', braces, "
                        "parentheses or spaces")
    pipeline_signature(spec)  # validates every pass + option in the spec
    CLEANUP_PIPELINES[name] = spec
    cleanup_pipeline_signature.cache_clear()
    kernel_pipeline_signature.cache_clear()


def install_cleanup_pipelines(pipelines: dict[str, str]) -> None:
    """Adopt a coordinator's cleanup-pipeline registry wholesale.

    Worker-process side of ``--register-pipeline``: the evaluation backends
    ship the coordinator's :data:`CLEANUP_PIPELINES` in the worker
    initializer payload, and this installs it — otherwise a worker's
    :func:`kernel_pipeline_signature` would disagree with the coordinator's
    and every evaluation would fail the version-skew guard.
    """
    CLEANUP_PIPELINES.clear()
    CLEANUP_PIPELINES.update(pipelines)
    cleanup_pipeline_signature.cache_clear()
    kernel_pipeline_signature.cache_clear()


def cleanup_pipeline_spec(name: str) -> str:
    """The raw textual spec of a named cleanup pipeline."""
    try:
        return CLEANUP_PIPELINES[name]
    except KeyError:
        from repro.ir.pass_manager import PassError

        known = ", ".join(cleanup_pipeline_names())
        raise PassError(f"unknown cleanup pipeline '{name}' "
                        f"(registered pipelines: {known})") from None


@functools.lru_cache(maxsize=None)
def cleanup_pipeline_signature(name: str) -> str:
    """Canonical printed spec of a named cleanup pipeline.

    This string — not the name — is what design-space fingerprints embed, so
    a renamed or edited pipeline invalidates cached estimates.
    """
    return pipeline_signature(cleanup_pipeline_spec(name))


def design_point_pass(point: KernelDesignPoint) -> "ApplyDesignPointPass":
    """The configured ``apply-design-point`` pass for ``point``.

    This (plus the pass's own option declarations) is the single source of
    truth for how a design point is spelled textually — all-ones tile
    vectors normalize to "untiled" exactly as the pass treats them.
    """
    from repro.transforms import ApplyDesignPointPass

    tiles = tuple(point.tile_sizes) \
        if any(size > 1 for size in point.tile_sizes) else ()
    return ApplyDesignPointPass(
        perfectize=point.loop_perfectization,
        rvb=point.remove_variable_bound,
        perm=tuple(point.perm_map),
        tiles=tiles,
        ii=point.target_ii)


def design_point_prefix_pass(point: KernelDesignPoint) -> "DesignPointPrefixPass":
    """The configured ``design-point-prefix`` pass (the snapshot-cached part)."""
    from repro.transforms import DesignPointPrefixPass

    return DesignPointPrefixPass(perfectize=point.loop_perfectization,
                                 rvb=point.remove_variable_bound)


def design_point_suffix_pass(point: KernelDesignPoint) -> "DesignPointSuffixPass":
    """The configured ``design-point-suffix`` pass (the per-point part)."""
    from repro.transforms import DesignPointSuffixPass

    tiles = tuple(point.tile_sizes) \
        if any(size > 1 for size in point.tile_sizes) else ()
    return DesignPointSuffixPass(perm=tuple(point.perm_map), tiles=tiles,
                                 ii=point.target_ii)


def design_point_options(point: KernelDesignPoint) -> str:
    """The ``apply-design-point`` option string encoding ``point``."""
    options = design_point_pass(point).option_string()
    return f"{{{options}}}" if options else ""


def _pass_spec(pass_) -> str:
    """``name{options}`` textual form of a configured pass instance."""
    return pass_.display_name


def _kernel_tail_spec(point: Optional[KernelDesignPoint]) -> str:
    """Everything after the initial canonicalization of one evaluation.

    Spelled as the prefix/suffix pass pair — the split the incremental
    evaluator caches around — so the printed spec, the signature and the
    actual evaluation path all describe the same pipeline.
    """
    if point is not None:
        middle = (f"{_pass_spec(design_point_prefix_pass(point))},"
                  f"{_pass_spec(design_point_suffix_pass(point))}")
    else:
        middle = "design-point-prefix,design-point-suffix"
    cleanup = cleanup_pipeline_spec(point.pipeline if point else DEFAULT_CLEANUP)
    return f"{middle},{cleanup},array-partition"


def kernel_pipeline_spec(point: Optional[KernelDesignPoint] = None) -> str:
    """The textual pipeline one kernel DSE evaluation runs.

    With ``point`` None the spec is the point-independent *template* (the
    ``apply-design-point`` pass with no options); with a concrete point it
    is the exact, replayable pipeline of that evaluation.  To replay it
    from C source through the driver, prepend the frontend raise::

        driver compile --kernel gemm --pipeline \\
            "func.func(raise-scf-to-affine,<this spec>)"

    (``--pipeline`` replaces the whole post-parse flow, so the raise pass
    must be included explicitly.)

    Caveat: for a function with no affine loop nest the evaluation stops
    after the leading canonicalize (see :func:`optimize_kernel_module`) —
    the remaining passes would at most re-partition arrays the DSE never
    touched, so the replay equivalence holds only for kernels with loops.
    """
    return f"canonicalize,{_kernel_tail_spec(point)}"


@functools.lru_cache(maxsize=1)
def kernel_pipeline_signature() -> str:
    """The runtime's transform fingerprint: the canonical printed template
    spec plus the canonical spec of every named cleanup pipeline.

    Since the cleanup pipeline is a per-point design choice, the fingerprint
    must cover the whole registry: a coordinator and a worker (or a cached
    estimate and a new sweep) agree exactly when the template *and* every
    pipeline a point could select print identically.  The template spells
    the prefix/suffix split of the evaluation explicitly, so the signature
    also covers how incremental evaluation partitions the pipeline.  It does
    *not* depend on whether incremental evaluation is enabled — both modes
    produce identical records, so they must share fingerprints.
    """
    named = ";".join(f"{name}={cleanup_pipeline_signature(name)}"
                     for name in cleanup_pipeline_names())
    return f"{pipeline_signature(kernel_pipeline_spec(None))}|{named}"


def optimize_kernel_module(module: ModuleOp, point: KernelDesignPoint,
                           func_name: Optional[str] = None,
                           snapshots: "Optional[PrefixSnapshotCache]" = None,
                           digest: Optional[str] = None
                           ) -> tuple[ModuleOp, Operation]:
    """Clone ``module`` and run the design-point pipeline of ``point``.

    Returns the transformed clone and its kernel function.  Transform steps
    that are not applicable to the design point (e.g. permutation of a
    non-perfect band) are skipped rather than failing — the estimator will
    simply see the weaker design, which is how unprofitable points lose in
    the exploration.

    With ``snapshots`` (a :class:`repro.dse.incremental.PrefixSnapshotCache`)
    the shared evaluation prefix — canonicalize + the design point's boolean
    structural knobs — is served from a cached snapshot clone instead of
    being re-run; the output is byte-identical either way.  ``digest``
    optionally passes a precomputed :func:`~repro.dse.space.ir_digest` of
    the kernel to the snapshot cache.
    """
    if snapshots is not None:
        cloned, func_op = snapshots.checkout(module, point,
                                             func_name=func_name, digest=digest)
        if _outer_loop(func_op) is None:
            return cloned, func_op
    else:
        cloned = module.clone()
        func_op = cloned.lookup(func_name) if func_name else cloned.functions()[0]
        if func_op is None:
            raise ValueError(f"function {func_name!r} not found in the module")

        build_pipeline_cached("canonicalize").run(func_op)
        if _outer_loop(func_op) is None:
            # Nothing to transform or partition: mirror the bare
            # canonicalization the estimator sees for loop-less functions.
            return cloned, func_op
        PassManager([design_point_prefix_pass(point)]).run(func_op)

    # Same sequence as _kernel_tail_spec(point), but the point-specific pass
    # is constructed directly: parsing a distinct spec per design point
    # would thrash the pipeline cache on large sweeps.  The cleanup tail is
    # the point's chosen named pipeline — only a handful exist, so the
    # cached builder still parses each exactly once.
    PassManager([design_point_suffix_pass(point)]).run(func_op)
    cleanup = cleanup_pipeline_spec(point.pipeline)
    build_pipeline_cached(f"{cleanup},array-partition").run(func_op)
    return cloned, func_op


def apply_design_point(module: ModuleOp, point: KernelDesignPoint,
                       platform: Platform = XC7Z020,
                       func_name: Optional[str] = None,
                       snapshots: "Optional[PrefixSnapshotCache]" = None,
                       digest: Optional[str] = None) -> AppliedDesign:
    """Apply ``point`` to a clone of ``module`` and estimate the result.

    ``snapshots``/``digest`` enable incremental evaluation — see
    :func:`optimize_kernel_module`.
    """
    optimized, func_op = optimize_kernel_module(module, point, func_name,
                                                snapshots=snapshots,
                                                digest=digest)
    estimator = QoREstimator(platform)
    qor = estimator.estimate_function(func_op, module=optimized)
    achieved_ii = (qor.achieved_ii if qor.achieved_ii is not None
                   else _achieved_ii(func_op))
    partition_factors = _collect_partitions(func_op)
    return AppliedDesign(module=optimized, func_op=func_op, point=point, qor=qor,
                         achieved_ii=achieved_ii, partition_factors=partition_factors)


def estimate_baseline(module: ModuleOp, platform: Platform = XC7Z020,
                      func_name: Optional[str] = None) -> QoRResult:
    """Estimate the unoptimized kernel (no directives, no code rewriting)."""
    cloned = module.clone()
    func_op = cloned.lookup(func_name) if func_name else cloned.functions()[0]
    build_pipeline_cached("canonicalize").run(func_op)
    estimator = QoREstimator(platform)
    return estimator.estimate_function(func_op, module=cloned)


# -- helpers -----------------------------------------------------------------------------------


def _outer_loop(func_op: Operation):
    loops = outermost_loops(func_op)
    return loops[0] if loops else None


def _achieved_ii(func_op: Operation) -> Optional[int]:
    from repro.dialects.hlscpp import get_loop_directive

    for op in func_op.walk():
        directive = get_loop_directive(op)
        if directive is not None and directive.pipeline:
            return directive.achieved_ii or directive.target_ii
    return None


def _collect_partitions(func_op: Operation) -> dict[str, tuple[int, ...]]:
    from repro.ir.types import MemRefType

    factors: dict[str, tuple[int, ...]] = {}
    for index, argument in enumerate(func_op.region(0).front.arguments):
        if isinstance(argument.type, MemRefType):
            factors[f"arg{index}"] = tuple(f for _, f in argument.type.partition)
    return factors

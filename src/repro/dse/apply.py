"""Applying a design point: the bridge between the DSE engine and the
transform library.

Given a kernel module (scf/affine level) and a :class:`KernelDesignPoint`,
:func:`apply_design_point` clones the module, runs the corresponding transform
passes with the point's parameters, runs the redundancy-elimination passes,
partitions the arrays and finally invokes the QoR estimator — mirroring how
the ScaleHLS DSE drives its transform and analysis library.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.dialects.affine_ops import outermost_loops, perfect_loop_band
from repro.dse.space import KernelDesignPoint
from repro.estimation.estimator import QoREstimator, QoRResult
from repro.estimation.platform import Platform, XC7Z020
from repro.ir.module import ModuleOp
from repro.ir.operation import Operation
from repro.ir.pass_manager import PassError
from repro.transforms import (
    canonicalize,
    eliminate_common_subexpressions,
    forward_stores,
    partition_arrays,
    perfectize_band,
    permute_loop_band,
    pipeline_loop,
    remove_variable_bounds,
    simplify_affine_ifs,
    simplify_memref_accesses,
    tile_loop_band,
)


@dataclasses.dataclass
class AppliedDesign:
    """The optimized module together with its estimated QoR."""

    module: ModuleOp
    func_op: Operation
    point: KernelDesignPoint
    qor: QoRResult
    achieved_ii: Optional[int] = None
    partition_factors: dict = dataclasses.field(default_factory=dict)


def optimize_kernel_module(module: ModuleOp, point: KernelDesignPoint,
                           func_name: Optional[str] = None) -> tuple[ModuleOp, Operation]:
    """Clone ``module`` and apply the transforms selected by ``point``.

    Returns the transformed clone and its kernel function.  Transform steps
    that are not applicable to the design point (e.g. permutation of a
    non-perfect band) are skipped rather than failing — the estimator will
    simply see the weaker design, which is how unprofitable points lose in
    the exploration.
    """
    cloned = module.clone()
    func_op = cloned.lookup(func_name) if func_name else cloned.functions()[0]
    if func_op is None:
        raise ValueError(f"function {func_name!r} not found in the module")

    canonicalize(func_op)

    outer = _outer_loop(func_op)
    if outer is None:
        return cloned, func_op

    if point.loop_perfectization:
        perfectize_band(outer)
    if point.remove_variable_bound:
        remove_variable_bounds(func_op)

    band = perfect_loop_band(_outer_loop(func_op))
    if len(point.perm_map) == len(band):
        try:
            band = permute_loop_band(band, point.perm_map)
        except PassError:
            pass

    tile_loops = band
    if any(size > 1 for size in point.tile_sizes[: len(band)]):
        sizes = list(point.tile_sizes[: len(band)])
        sizes += [1] * (len(band) - len(sizes))
        try:
            tile_loops, _ = tile_loop_band(band, sizes)
        except PassError:
            tile_loops = band

    try:
        pipeline_loop(tile_loops[-1], point.target_ii)
    except PassError:
        pass

    _cleanup(func_op)
    partition_arrays(func_op)
    return cloned, func_op


def apply_design_point(module: ModuleOp, point: KernelDesignPoint,
                       platform: Platform = XC7Z020,
                       func_name: Optional[str] = None) -> AppliedDesign:
    """Apply ``point`` to a clone of ``module`` and estimate the result."""
    optimized, func_op = optimize_kernel_module(module, point, func_name)
    estimator = QoREstimator(platform)
    qor = estimator.estimate_function(func_op, module=optimized)
    achieved_ii = _achieved_ii(func_op)
    partition_factors = _collect_partitions(func_op)
    return AppliedDesign(module=optimized, func_op=func_op, point=point, qor=qor,
                         achieved_ii=achieved_ii, partition_factors=partition_factors)


def estimate_baseline(module: ModuleOp, platform: Platform = XC7Z020,
                      func_name: Optional[str] = None) -> QoRResult:
    """Estimate the unoptimized kernel (no directives, no code rewriting)."""
    cloned = module.clone()
    func_op = cloned.lookup(func_name) if func_name else cloned.functions()[0]
    canonicalize(func_op)
    estimator = QoREstimator(platform)
    return estimator.estimate_function(func_op, module=cloned)


# -- helpers -----------------------------------------------------------------------------------


def _outer_loop(func_op: Operation):
    loops = outermost_loops(func_op)
    return loops[0] if loops else None


def _cleanup(func_op: Operation) -> None:
    canonicalize(func_op)
    simplify_affine_ifs(func_op)
    forward_stores(func_op)
    simplify_memref_accesses(func_op)
    eliminate_common_subexpressions(func_op)
    canonicalize(func_op)


def _achieved_ii(func_op: Operation) -> Optional[int]:
    from repro.dialects.hlscpp import get_loop_directive

    for op in func_op.walk():
        directive = get_loop_directive(op)
        if directive is not None and directive.pipeline:
            return directive.achieved_ii or directive.target_ii
    return None


def _collect_partitions(func_op: Operation) -> dict[str, tuple[int, ...]]:
    from repro.ir.types import MemRefType

    factors: dict[str, tuple[int, ...]] = {}
    for index, argument in enumerate(func_op.region(0).front.arguments):
        if isinstance(argument.type, MemRefType):
            factors[f"arg{index}"] = tuple(f for _, f in argument.type.partition)
    return factors

"""Evaluation backends: where design points actually get estimated.

The coordinator (``ParallelExplorer`` / ``MultiKernelScheduler``) decides
*which* points to evaluate; a backend decides *where*:

* :class:`SerialBackend` evaluates inline in the coordinator process.
* :class:`ProcessPoolBackend` fans evaluations out over a
  ``concurrent.futures.ProcessPoolExecutor``.  Each worker process receives
  the pickled kernel contexts once (in its initializer) and then exchanges
  only ``(kernel key, encoded point)`` tuples and slim
  :class:`~repro.dse.runtime.records.EvaluationRecord` results.

Both backends compute identical records for identical inputs — evaluation
is a pure function of ``(module, design point, platform)`` — which is the
bedrock of the runtime's determinism guarantee.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import multiprocessing
import pickle
import time
from typing import Optional, Sequence

from repro import obs
from repro.dse.apply import apply_design_point
from repro.dse.incremental import PrefixSnapshotCache
from repro.dse.runtime.records import EvaluationRecord
from repro.dse.space import KernelDesignSpace
from repro.estimation.platform import Platform
from repro.ir.module import ModuleOp


@dataclasses.dataclass
class KernelContext:
    """Everything a worker needs to evaluate points of one kernel.

    ``pipeline`` is the canonical transform-pipeline signature the
    coordinator evaluated under (see
    :func:`repro.dse.apply.kernel_pipeline_signature`).  It ships to workers
    as data — a picklable spec instead of ad-hoc transform imports — and the
    worker refuses to evaluate when its own registry would run a different
    pipeline (version-skew guard between coordinator and workers).  The
    signature covers every *named* cleanup pipeline a design point may
    select, so the guard holds even though each point builds its own
    cleanup tail (see :data:`repro.dse.apply.CLEANUP_PIPELINES`).

    ``incremental`` turns prefix-snapshot caching on (the default) or off
    (``--no-incremental``); both settings produce identical records — the
    flag is pure execution detail, deliberately absent from fingerprints.
    """

    module: ModuleOp
    func_name: Optional[str]
    platform: Platform
    space: KernelDesignSpace
    pipeline: str = ""
    incremental: bool = True


def evaluate_encoded(context: KernelContext, encoded: tuple[int, ...],
                     snapshots: Optional[PrefixSnapshotCache] = None
                     ) -> EvaluationRecord:
    """Evaluate one encoded design point against its kernel context.

    ``snapshots`` is the caller's prefix-snapshot cache (see
    :mod:`repro.dse.incremental`); None evaluates from scratch.
    """
    if context.pipeline:
        from repro.dse.apply import kernel_pipeline_signature
        from repro.ir.pass_manager import PassError

        local = kernel_pipeline_signature()
        if local != context.pipeline:
            raise PassError(
                f"worker pipeline mismatch: coordinator evaluated under "
                f"'{context.pipeline}' but this worker would run '{local}'")
    point = context.space.decode(encoded)
    design = apply_design_point(context.module, point, context.platform,
                                func_name=context.func_name,
                                snapshots=snapshots,
                                digest=context.space.ir_digest or None)
    return EvaluationRecord.from_design(encoded, design)


def _snapshots_for(context: KernelContext, key: str,
                   caches: dict[str, PrefixSnapshotCache]
                   ) -> Optional[PrefixSnapshotCache]:
    """The per-kernel snapshot cache of ``caches``, or None when disabled."""
    if not context.incremental:
        return None
    cache = caches.get(key)
    if cache is None:
        cache = caches[key] = PrefixSnapshotCache()
    return cache


# -- worker process side -------------------------------------------------------------------

#: Per-process kernel contexts, installed by :func:`_init_worker`.
_WORKER_CONTEXTS: dict[str, KernelContext] = {}

#: Per-process prefix-snapshot caches, one per kernel key (reset alongside
#: the contexts: snapshots derive from the shipped modules).
_WORKER_SNAPSHOTS: dict[str, PrefixSnapshotCache] = {}


def _init_worker(payload: bytes) -> None:
    global _WORKER_CONTEXTS, _WORKER_SNAPSHOTS
    contexts, pipelines = pickle.loads(payload)
    # Adopt the coordinator's named-pipeline registry before anything
    # computes a pipeline signature: runtime-registered pipelines
    # (--register-pipeline) must exist on the worker too.
    from repro.dse.apply import install_cleanup_pipelines

    install_cleanup_pipelines(pipelines)
    _WORKER_CONTEXTS = contexts
    _WORKER_SNAPSHOTS = {}


def _evaluate_task(key: str, encoded: tuple[int, ...]) -> EvaluationRecord:
    context = _WORKER_CONTEXTS[key]
    return evaluate_encoded(context, encoded,
                            snapshots=_snapshots_for(context, key,
                                                     _WORKER_SNAPSHOTS))


def _evaluate_task_traced(key: str, encoded: tuple[int, ...]):
    """Traced variant: evaluate under a local obs session, ship telemetry.

    The coordinator picks this task when its own observability session is
    active; the choice is made coordinator-side so worker initialisation
    needs no tracing flag.  Returns ``(record, TaskTelemetry)``.
    """
    context = _WORKER_CONTEXTS[key]
    return obs.capture_task(
        evaluate_encoded, context, encoded,
        _snapshots_for(context, key, _WORKER_SNAPSHOTS),
        span_args={"kernel": key})


def _warm_up_task(hold_seconds: float) -> None:
    """Warm-up task: occupies one worker long enough that the executor must
    spawn another for the next pending warm-up task."""
    time.sleep(hold_seconds)


# -- backends -------------------------------------------------------------------------------


class SerialBackend:
    """Inline evaluation (``--jobs 1``): no processes, no pickling."""

    jobs = 1

    def __init__(self, contexts: dict[str, KernelContext]):
        self._contexts = contexts
        self._snapshots: dict[str, PrefixSnapshotCache] = {}

    def evaluate(self, key: str,
                 batch: Sequence[tuple[int, ...]]) -> list[EvaluationRecord]:
        context = self._contexts[key]
        snapshots = _snapshots_for(context, key, self._snapshots)
        if obs.active() is None:
            return [evaluate_encoded(context, encoded, snapshots)
                    for encoded in batch]
        # Traced path: capture each evaluation into a throwaway local session
        # (exactly like a worker process would) and absorb it immediately —
        # the serial timeline is already submission order.
        records = []
        for encoded in batch:
            record, telemetry = obs.capture_task(
                evaluate_encoded, context, encoded, snapshots,
                span_args={"kernel": key})
            obs.absorb_task(f"worker:{key}", telemetry)
            records.append(record)
        return records

    def close(self) -> None:
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


class ProcessPoolBackend:
    """Evaluation fanned out across a pool of worker processes."""

    def __init__(self, contexts: dict[str, KernelContext], jobs: int,
                 mp_context: Optional[str] = None):
        from repro.dse.apply import CLEANUP_PIPELINES

        self.jobs = max(1, int(jobs))
        # Ship the named-pipeline registry alongside the contexts so
        # runtime registrations (--register-pipeline) reach every worker.
        payload = pickle.dumps((contexts, dict(CLEANUP_PIPELINES)))
        context = multiprocessing.get_context(mp_context) if mp_context \
            else multiprocessing.get_context()
        self._executor = concurrent.futures.ProcessPoolExecutor(
            max_workers=self.jobs, mp_context=context,
            initializer=_init_worker, initargs=(payload,))

    def evaluate(self, key: str,
                 batch: Sequence[tuple[int, ...]]) -> list[EvaluationRecord]:
        if obs.active() is None:
            futures = [self._executor.submit(_evaluate_task, key,
                                             tuple(encoded))
                       for encoded in batch]
            # Collect in submission order: the result list is deterministic
            # even though completion order is not.
            return [future.result() for future in futures]
        futures = [self._executor.submit(_evaluate_task_traced, key,
                                         tuple(encoded))
                   for encoded in batch]
        # Absorbing in submission order keeps the merged trace deterministic
        # regardless of which worker ran what, or in what order.
        records = []
        for future in futures:
            record, telemetry = future.result()
            obs.absorb_task(f"worker:{key}", telemetry)
            records.append(record)
        return records

    def warm_up(self) -> None:
        """Spawn every worker process now.

        The executor otherwise forks lazily on ``submit()`` — and when those
        submits come from coordinator *threads*, they fork a multi-threaded
        process (a deadlock hazard: a child can inherit a lock held by
        another thread).  Call this from the main thread before starting
        coordinator threads.

        Python 3.11+ launches all workers on the first submit for fork
        contexts; on older versions each submit spawns at most one worker,
        so one task per worker is submitted, each holding its worker briefly
        to stop an idle worker from swallowing the next task.
        """
        futures = [self._executor.submit(_warm_up_task, 0.05)
                   for _ in range(self.jobs)]
        for future in futures:
            future.result()

    def close(self) -> None:
        self._executor.shutdown(wait=True)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


def create_backend(contexts: dict[str, KernelContext], jobs: int,
                   mp_context: Optional[str] = None):
    """Pick the cheapest backend able to provide ``jobs`` parallel workers."""
    if jobs <= 1:
        return SerialBackend(contexts)
    return ProcessPoolBackend(contexts, jobs, mp_context=mp_context)

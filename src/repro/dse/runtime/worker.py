"""Evaluation backends: where design points actually get estimated.

The coordinator (``ParallelExplorer`` / ``MultiKernelScheduler``) decides
*which* points to evaluate; a backend decides *where*:

* :class:`SerialBackend` evaluates inline in the coordinator process.
* :class:`ProcessPoolBackend` fans evaluations out over a
  ``concurrent.futures.ProcessPoolExecutor``.  Each worker process receives
  the pickled kernel contexts once (in its initializer) and then exchanges
  only ``(kernel key, encoded point)`` tuples and slim
  :class:`~repro.dse.runtime.records.EvaluationRecord` results.

Both backends compute identical records for identical inputs — evaluation
is a pure function of ``(module, design point, platform)`` — which is the
bedrock of the runtime's determinism guarantee.

Supervision
-----------

Both backends are *supervised* (see
:class:`~repro.dse.runtime.faults.SupervisionPolicy`): an evaluation that
raises, crashes its worker process, or exceeds the per-task wall-clock
timeout is charged one fault and retried with deterministic backoff; a
point that exhausts its retries is **quarantined** — it becomes a failed
:class:`EvaluationRecord` that counts as visited but never enters a
frontier.  Because fault *outcomes* attach to design points (never to
workers, wall-clock or completion order), a faulty run converges to the
same records as a fault-free one at any ``--jobs``.

Two supervision details are deliberately coarse:

* A worker crash under ``jobs > 1`` breaks the whole pool, so the culprit
  cannot be attributed from a multi-task wave.  The backend requeues every
  broken task *uncharged* and switches to serial probe waves (one task at a
  time), where a pool break is definitive.  A crash can therefore charge an
  innocent task only never — misattribution is structurally impossible; it
  merely costs requeue round-trips.
* A timeout kills *all* worker processes (a hung worker cannot be
  terminated individually through the executor API) and respawns the pool;
  concurrently running tasks of other kernels are requeued uncharged via
  the same broken-pool path.
"""

from __future__ import annotations

import collections
import concurrent.futures
import dataclasses
import multiprocessing
import pickle
import threading
import time
import warnings
from typing import Optional, Sequence

from repro import obs
from repro.dse.apply import apply_design_point
from repro.dse.incremental import PrefixSnapshotCache
from repro.dse.runtime.faults import (
    EvaluationFailure,
    FaultPlan,
    SupervisionPolicy,
)
from repro.dse.runtime.records import EvaluationRecord
from repro.dse.space import KernelDesignSpace
from repro.estimation.platform import Platform
from repro.ir.module import ModuleOp


@dataclasses.dataclass
class KernelContext:
    """Everything a worker needs to evaluate points of one kernel.

    ``pipeline`` is the canonical transform-pipeline signature the
    coordinator evaluated under (see
    :func:`repro.dse.apply.kernel_pipeline_signature`).  It ships to workers
    as data — a picklable spec instead of ad-hoc transform imports — and the
    worker refuses to evaluate when its own registry would run a different
    pipeline (version-skew guard between coordinator and workers).  The
    signature covers every *named* cleanup pipeline a design point may
    select, so the guard holds even though each point builds its own
    cleanup tail (see :data:`repro.dse.apply.CLEANUP_PIPELINES`).

    ``incremental`` turns prefix-snapshot caching on (the default) or off
    (``--no-incremental``); both settings produce identical records — the
    flag is pure execution detail, deliberately absent from fingerprints.

    ``faults`` is an optional injected-fault schedule
    (:class:`~repro.dse.runtime.faults.FaultPlan`) for tests and CI chaos
    runs; None (the default, and the only production setting) evaluates
    normally.
    """

    module: ModuleOp
    func_name: Optional[str]
    platform: Platform
    space: KernelDesignSpace
    pipeline: str = ""
    incremental: bool = True
    faults: Optional[FaultPlan] = None


def evaluate_encoded(context: KernelContext, encoded: tuple[int, ...],
                     snapshots: Optional[PrefixSnapshotCache] = None,
                     fault_key: str = "") -> EvaluationRecord:
    """Evaluate one encoded design point against its kernel context.

    ``snapshots`` is the caller's prefix-snapshot cache (see
    :mod:`repro.dse.incremental`); None evaluates from scratch.
    ``fault_key`` is the kernel key the backends thread through for
    fault-injection victim selection (irrelevant when ``context.faults``
    is None).
    """
    if context.pipeline:
        from repro.dse.apply import kernel_pipeline_signature
        from repro.ir.pass_manager import PassError

        local = kernel_pipeline_signature()
        if local != context.pipeline:
            raise PassError(
                f"worker pipeline mismatch: coordinator evaluated under "
                f"'{context.pipeline}' but this worker would run '{local}'")
    if context.faults is not None:
        context.faults.apply(fault_key, tuple(encoded))
    point = context.space.decode(encoded)
    # Multi-platform sweeps carry the target platform inside the point; the
    # record then pins the exact hardware model it was estimated under.
    platform_hash = ""
    platform = context.platform
    if point.platform:
        platform = context.space.platform_named(point.platform)
        platform_hash = platform.config_hash()
    design = apply_design_point(context.module, point, platform,
                                func_name=context.func_name,
                                snapshots=snapshots,
                                digest=context.space.ir_digest or None)
    return EvaluationRecord.from_design(encoded, design,
                                        platform_hash=platform_hash)


def _snapshots_for(context: KernelContext, key: str,
                   caches: dict[str, PrefixSnapshotCache]
                   ) -> Optional[PrefixSnapshotCache]:
    """The per-kernel snapshot cache of ``caches``, or None when disabled."""
    if not context.incremental:
        return None
    cache = caches.get(key)
    if cache is None:
        cache = caches[key] = PrefixSnapshotCache()
    return cache


def _describe_error(error: BaseException) -> str:
    return f"{type(error).__name__}: {error}"


# -- worker process side -------------------------------------------------------------------

#: Per-process kernel contexts, installed by :func:`_init_worker`.
_WORKER_CONTEXTS: dict[str, KernelContext] = {}

#: Per-process prefix-snapshot caches, one per kernel key (reset alongside
#: the contexts: snapshots derive from the shipped modules).
_WORKER_SNAPSHOTS: dict[str, PrefixSnapshotCache] = {}

#: Outcome tags of the guarded worker tasks.  ``fatal`` marks failures that
#: no retry can fix (e.g. a coordinator/worker pipeline mismatch): the
#: supervisor aborts the run instead of burning its retry budget.
_OK, _ERROR, _FATAL = "ok", "error", "fatal"


def _init_worker(payload: bytes) -> None:
    global _WORKER_CONTEXTS, _WORKER_SNAPSHOTS
    contexts, pipelines = pickle.loads(payload)
    # Adopt the coordinator's named-pipeline registry before anything
    # computes a pipeline signature: runtime-registered pipelines
    # (--register-pipeline) must exist on the worker too.
    from repro.dse.apply import install_cleanup_pipelines

    install_cleanup_pipelines(pipelines)
    _WORKER_CONTEXTS = contexts
    _WORKER_SNAPSHOTS = {}


def _classify(error: BaseException) -> str:
    from repro.ir.pass_manager import PassError

    return _FATAL if isinstance(error, PassError) else _ERROR


def _evaluate_task(key: str, encoded: tuple[int, ...]):
    """Guarded evaluation: returns ``(tag, payload, telemetry)``.

    Worker tasks never raise — a Python-level failure comes back as a
    tagged ``(_ERROR/_FATAL, message, None)`` tuple so the coordinator can
    attribute it to exactly this (kernel, point) even though pool futures
    lose that context.  Only process-level faults (crash, kill, hang)
    surface as broken futures.
    """
    context = _WORKER_CONTEXTS[key]
    try:
        record = evaluate_encoded(
            context, encoded,
            snapshots=_snapshots_for(context, key, _WORKER_SNAPSHOTS),
            fault_key=key)
        return (_OK, record, None)
    except Exception as error:
        return (_classify(error), _describe_error(error), None)


def _evaluate_task_traced(key: str, encoded: tuple[int, ...]):
    """Traced variant: evaluate under a local obs session, ship telemetry.

    The coordinator picks this task when its own observability session is
    active; the choice is made coordinator-side so worker initialisation
    needs no tracing flag.  Returns ``(tag, payload, telemetry)`` like
    :func:`_evaluate_task` (telemetry of a failed attempt is dropped —
    :func:`repro.obs.capture_task` restores the outer session on error).
    """
    context = _WORKER_CONTEXTS[key]
    try:
        record, telemetry = obs.capture_task(
            evaluate_encoded, context, encoded,
            _snapshots_for(context, key, _WORKER_SNAPSHOTS), key,
            span_args={"kernel": key})
        return (_OK, record, telemetry)
    except Exception as error:
        return (_classify(error), _describe_error(error), None)


def _warm_up_task(hold_seconds: float) -> None:
    """Warm-up task: occupies one worker long enough that the executor must
    spawn another for the next pending warm-up task."""
    time.sleep(hold_seconds)


# -- backends -------------------------------------------------------------------------------


def _quarantine_record(context: KernelContext, key: str,
                       encoded: tuple[int, ...], error: str,
                       policy: SupervisionPolicy) -> EvaluationRecord:
    """The terminal outcome of an exhausted retry budget.

    Either a first-class quarantined record (cached and checkpointed like a
    healthy one, excluded from every frontier) or — under
    ``--on-fault=fail`` — an :class:`EvaluationFailure` abort carrying the
    kernel and point.
    """
    if policy.on_fault == "fail":
        raise EvaluationFailure(
            f"kernel {key!r} point {tuple(encoded)} failed after "
            f"{policy.max_retries} retries: {error}")
    obs.counter("dse.faults.quarantined")
    return EvaluationRecord.quarantined(tuple(encoded),
                                        context.space.decode(encoded), error)


def _retry_pause(key: str, attempt: int, cause: str,
                 policy: SupervisionPolicy) -> None:
    """Charged-fault bookkeeping: count the retry, back off deterministically."""
    obs.counter("dse.faults.retries")
    with obs.span("dse.retry", kernel=key, attempt=attempt, cause=cause):
        time.sleep(policy.backoff_seconds(attempt))


def _check_stop(stop_event: Optional[threading.Event]) -> None:
    if stop_event is not None and stop_event.is_set():
        raise KeyboardInterrupt


class SerialBackend:
    """Inline evaluation (``--jobs 1``): no processes, no pickling.

    Supervision covers Python-level faults only (exceptions raised by the
    evaluation, e.g. injected flaky/poison faults): there is no worker
    process to crash and no way to interrupt a hung inline call, which is
    why :func:`create_backend` promotes to a process pool whenever a task
    timeout or a crash/hang fault plan is configured.
    """

    jobs = 1

    def __init__(self, contexts: dict[str, KernelContext],
                 supervision: Optional[SupervisionPolicy] = None,
                 stop_event: Optional[threading.Event] = None):
        self._contexts = contexts
        self._snapshots: dict[str, PrefixSnapshotCache] = {}
        self._supervision = supervision or SupervisionPolicy()
        self._stop_event = stop_event

    def evaluate(self, key: str,
                 batch: Sequence[tuple[int, ...]]) -> list[EvaluationRecord]:
        context = self._contexts[key]
        snapshots = _snapshots_for(context, key, self._snapshots)
        traced = obs.active() is not None
        return [self._evaluate_one(key, context, tuple(encoded), snapshots,
                                   traced)
                for encoded in batch]

    def _evaluate_one(self, key: str, context: KernelContext,
                      encoded: tuple[int, ...], snapshots, traced: bool
                      ) -> EvaluationRecord:
        from repro.ir.pass_manager import PassError

        policy = self._supervision
        attempts = 0
        while True:
            _check_stop(self._stop_event)
            try:
                if not traced:
                    return evaluate_encoded(context, encoded, snapshots, key)
                # Traced path: capture the evaluation into a throwaway local
                # session (exactly like a worker process would) and absorb it
                # immediately — the serial timeline is already submission
                # order.
                record, telemetry = obs.capture_task(
                    evaluate_encoded, context, encoded, snapshots, key,
                    span_args={"kernel": key})
                obs.absorb_task(f"worker:{key}", telemetry)
                return record
            except (KeyboardInterrupt, EvaluationFailure):
                raise
            except PassError as error:
                raise EvaluationFailure(
                    f"kernel {key!r} point {tuple(encoded)}: "
                    f"{_describe_error(error)}") from error
            except Exception as error:
                attempts += 1
                if attempts > policy.max_retries:
                    return _quarantine_record(context, key, encoded,
                                              _describe_error(error), policy)
                _retry_pause(key, attempts, _ERROR, policy)

    def request_stop(self) -> None:
        if self._stop_event is not None:
            self._stop_event.set()

    def close(self) -> None:
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


class ProcessPoolBackend:
    """Supervised evaluation fanned out across a pool of worker processes.

    The pool is disposable: a worker crash or a task timeout kills and
    respawns it (``_generation`` counts respawns so concurrent coordinator
    threads sharing the backend respawn it at most once per break), and the
    wave loop in :meth:`evaluate` retries or quarantines the affected
    points.  See the module docstring for the attribution rules.
    """

    def __init__(self, contexts: dict[str, KernelContext], jobs: int,
                 mp_context: Optional[str] = None,
                 supervision: Optional[SupervisionPolicy] = None,
                 stop_event: Optional[threading.Event] = None):
        from repro.dse.apply import CLEANUP_PIPELINES

        self.jobs = max(1, int(jobs))
        self._contexts = contexts
        self._supervision = supervision or SupervisionPolicy()
        self._stop_event = stop_event
        # Ship the named-pipeline registry alongside the contexts so
        # runtime registrations (--register-pipeline) reach every worker.
        self._payload = pickle.dumps((contexts, dict(CLEANUP_PIPELINES)))
        self._mp_context = multiprocessing.get_context(mp_context) \
            if mp_context else multiprocessing.get_context()
        self._lock = threading.Lock()
        self._generation = 0
        self._executor = self._make_executor()

    def _make_executor(self) -> concurrent.futures.ProcessPoolExecutor:
        return concurrent.futures.ProcessPoolExecutor(
            max_workers=self.jobs, mp_context=self._mp_context,
            initializer=_init_worker, initargs=(self._payload,))

    # -- the supervised wave loop -----------------------------------------------------------

    def evaluate(self, key: str,
                 batch: Sequence[tuple[int, ...]]) -> list[EvaluationRecord]:
        traced = obs.active() is not None
        policy = self._supervision
        total = len(batch)
        results: list[Optional[EvaluationRecord]] = [None] * total
        telemetry: list = [None] * total
        attempts = [0] * total
        pending = collections.deque(
            (index, tuple(encoded)) for index, encoded in enumerate(batch))
        # While > 0, dispatch one task per wave: after a pool break the
        # culprit is unknown, but in a single-task wave a second break is
        # definitively that task's fault.
        probes = 0
        while pending:
            _check_stop(self._stop_event)
            if probes > 0:
                wave = [pending.popleft()]
                probes -= 1
            else:
                width = len(pending)
                if policy.task_timeout is not None:
                    # Cap the wave at the worker count so every task starts
                    # immediately: the shared wave deadline then *is* the
                    # per-task deadline.  Without timeouts the whole batch is
                    # submitted at once (better pipelining).
                    width = min(width, self.jobs)
                wave = [pending.popleft() for _ in range(width)]
            for index, encoded, kind, payload, task_telemetry \
                    in self._run_wave(key, wave, traced):
                if kind == _OK:
                    results[index] = payload
                    telemetry[index] = task_telemetry
                elif kind == _FATAL:
                    raise EvaluationFailure(
                        f"kernel {key!r} point {encoded}: {payload}")
                elif kind == "requeue":
                    # Innocent bystander of a pool break: retry uncharged,
                    # and probe serially to pin down the culprit.
                    pending.append((index, encoded))
                    probes += 1
                else:  # charged fault: error / crash / timeout
                    attempts[index] += 1
                    if kind == "crash":
                        obs.counter("dse.faults.crashes")
                    elif kind == "timeout":
                        obs.counter("dse.faults.timeouts")
                    if attempts[index] > policy.max_retries:
                        results[index] = _quarantine_record(
                            self._contexts[key], key, encoded, payload,
                            policy)
                    else:
                        _retry_pause(key, attempts[index], kind, policy)
                        pending.append((index, encoded))
        if traced:
            # Absorb in submission (batch) order, after every wave settled:
            # the merged trace is deterministic regardless of which worker
            # ran what, in what order, or how many retries it took.
            for index in range(total):
                obs.absorb_task(f"worker:{key}", telemetry[index])
        return results

    def _run_wave(self, key: str, wave: list, traced: bool) -> list:
        """Dispatch one wave; classify every task's outcome.

        Returns ``(index, encoded, kind, payload, telemetry)`` tuples where
        ``kind`` is ``ok``/``error``/``fatal`` (from the guarded task),
        ``crash``/``timeout`` (charged process-level faults) or ``requeue``
        (unattributable pool break — uncharged).
        """
        task = _evaluate_task_traced if traced else _evaluate_task
        while True:
            _check_stop(self._stop_event)
            generation = self._generation
            try:
                futures = [(index, encoded,
                            self._executor.submit(task, key, encoded))
                           for index, encoded in wave]
                break
            except RuntimeError:
                # The executor broke or was shut down between waves (e.g.
                # another kernel's coordinator hit a crash first): swap in
                # a fresh pool and resubmit.
                self._respawn(generation)
        hung: set = set()
        if self._supervision.task_timeout is not None:
            _, not_done = concurrent.futures.wait(
                [future for _, _, future in futures],
                timeout=self._supervision.task_timeout)
            if not_done:
                # Hung workers cannot be cancelled through the executor API;
                # kill the pool (failing their futures) and respawn.
                hung = set(not_done)
                self._respawn(generation)
        outcomes = []
        broke = False
        for index, encoded, future in futures:
            if future in hung:
                outcomes.append((
                    index, encoded, "timeout",
                    f"evaluation exceeded the task timeout of "
                    f"{self._supervision.task_timeout:g}s", None))
                continue
            try:
                tag, payload, task_telemetry = future.result()
            except concurrent.futures.CancelledError:
                outcomes.append((index, encoded, "requeue", "", None))
                continue
            except (concurrent.futures.BrokenExecutor, RuntimeError) as error:
                broke = True
                if len(wave) == 1:
                    outcomes.append((
                        index, encoded, "crash",
                        f"worker process died evaluating this point "
                        f"({_describe_error(error) or 'killed'})", None))
                else:
                    outcomes.append((index, encoded, "requeue", "", None))
                continue
            outcomes.append((index, encoded, tag, payload, task_telemetry))
        if broke:
            self._respawn(generation)
        return outcomes

    # -- pool lifecycle ---------------------------------------------------------------------

    def _terminate(self, executor) -> None:
        """Kill every worker and discard the executor's queued work."""
        processes = getattr(executor, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.kill()
            except (OSError, ValueError) as error:
                # A worker that already exited (or a closed process handle)
                # is fine — the pool is being torn down either way — but the
                # failure must not vanish silently: surface it for the logs
                # and count it so chaos runs can assert it never regresses.
                obs.counter("dse.pool.kill_errors")
                warnings.warn(
                    f"failed to kill worker process "
                    f"{getattr(process, 'pid', '?')}: "
                    f"{_describe_error(error)}", RuntimeWarning)
        executor.shutdown(wait=False, cancel_futures=True)

    def _respawn(self, generation: int) -> None:
        """Replace the pool, once: later callers with a stale generation no-op."""
        with self._lock:
            if generation != self._generation:
                return
            self._generation += 1
            self._terminate(self._executor)
            self._executor = self._make_executor()
            obs.counter("dse.pool.respawns")

    def request_stop(self) -> None:
        """Interrupt path: fail in-flight work so coordinators unblock.

        Sets the stop event (checked at every wave boundary) and kills the
        pool — coordinators blocked on futures see a broken pool, requeue,
        and hit the stop check instead of resubmitting.
        """
        if self._stop_event is not None:
            self._stop_event.set()
        with self._lock:
            self._generation += 1
            self._terminate(self._executor)

    def warm_up(self) -> None:
        """Spawn every worker process now.

        The executor otherwise forks lazily on ``submit()`` — and when those
        submits come from coordinator *threads*, they fork a multi-threaded
        process (a deadlock hazard: a child can inherit a lock held by
        another thread).  Call this from the main thread before starting
        coordinator threads.

        Python 3.11+ launches all workers on the first submit for fork
        contexts; on older versions each submit spawns at most one worker,
        so one task per worker is submitted, each holding its worker briefly
        to stop an idle worker from swallowing the next task.
        """
        futures = [self._executor.submit(_warm_up_task, 0.05)
                   for _ in range(self.jobs)]
        for future in futures:
            try:
                future.result()
            except (concurrent.futures.BrokenExecutor, RuntimeError) as error:
                raise EvaluationFailure(
                    f"worker pool failed to start ({self.jobs} workers): a "
                    f"worker died during warm-up before evaluating anything "
                    f"— check the worker environment/imports "
                    f"({_describe_error(error)})") from error

    def close(self) -> None:
        self._executor.shutdown(wait=True)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


def create_backend(contexts: dict[str, KernelContext], jobs: int,
                   mp_context: Optional[str] = None,
                   supervision: Optional[SupervisionPolicy] = None,
                   stop_event: Optional[threading.Event] = None,
                   transport=None):
    """Pick the cheapest backend able to provide ``jobs`` parallel workers.

    A task timeout or a crash/hang fault plan forces a process pool even at
    ``--jobs 1``: inline evaluation cannot be killed, and an injected crash
    would take the coordinator down with it.  A ``transport``
    (:class:`~repro.dse.runtime.transport.TransportConfig`) overrides both
    local backends: evaluation then runs on socket-connected worker agents
    (spawned locally and/or connected remotely).
    """
    supervision = supervision or SupervisionPolicy()
    if transport is not None:
        from repro.dse.runtime.transport import RemotePoolBackend

        return RemotePoolBackend(contexts, transport, supervision=supervision,
                                 stop_event=stop_event)
    needs_isolation = supervision.task_timeout is not None or any(
        context.faults is not None and context.faults.requires_process_isolation
        for context in contexts.values())
    if jobs <= 1 and not needs_isolation:
        return SerialBackend(contexts, supervision=supervision,
                             stop_event=stop_event)
    return ProcessPoolBackend(contexts, jobs, mp_context=mp_context,
                              supervision=supervision, stop_event=stop_event)

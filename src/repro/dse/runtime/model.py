"""Whole-model design-space exploration: the paper's end-to-end DNN flow.

The headline claim of ScaleHLS is that HLS DSE scales from single kernels to
whole DNN models.  :class:`ModelScheduler` reproduces that flow on top of
the parallel runtime:

1. **Graph staging** — the model module goes through the graph-level stages
   of :func:`repro.pipeline.compile_dnn` (``legalize-dataflow`` +
   ``split-function``), producing one function per dataflow node, then
   ``lower-graph-to-loops``.
2. **Node splitting** — every explorable dataflow node is cloned into its
   *own* single-function module, so the worker-pool payload holds one
   small module per node instead of one whole-model copy per node.
3. **Budgeted sweep** — one :class:`~repro.dse.runtime.scheduler.KernelTask`
   per node runs on one shared process pool; the :class:`NodeBudgetPolicy`
   gives light stages proportionally smaller exploration budgets (a node's
   budget depends only on its own FLOPs, so the trajectory stays
   deterministic for any worker count).
4. **Frontier composition** — per-node Pareto frontiers compose into a
   model-level latency/resource frontier: along the dataflow chain the
   model latency is the **sum** of the chosen stage latencies, the dataflow
   initiation interval is the **max** stage latency (the slowest stage
   bounds throughput), and resources **sum** (each stage is its own
   hardware).  After each node is merged the combined set is pruned back to
   its Pareto frontier, so composition stays polynomial instead of taking
   the full cartesian product.

Determinism contract: a fixed ``(seed, budgets, batch_size)`` produces a
byte-identical :meth:`ModelDSEResult.frontier_json` for any ``--jobs`` and
across ``--resume`` from any checkpoint, because every per-node trajectory
is deterministic (PR 1's contract) and composition is a pure function of
the per-node frontiers.
"""

from __future__ import annotations

import dataclasses
import json
import math
import time
from typing import Optional, Union

from repro import obs
from repro.dse.pareto import ParetoPoint, pareto_frontier
from repro.dse.runtime.cache import EstimateCache
from repro.dse.runtime.parallel import ParallelDSEResult
from repro.dse.runtime.scheduler import KernelTask, MultiKernelScheduler
from repro.dse.space import KernelDesignSpace
from repro.estimation.platform import Platform, VU9P_SLR
from repro.estimation.resources import ResourceUsage
from repro.ir.module import ModuleOp


@dataclasses.dataclass(frozen=True)
class NodeBudgetPolicy:
    """How much exploration each dataflow node is allotted.

    ``mode="flops"`` scales the budgets by ``sqrt(node_flops / heaviest)``
    — light stages need proportionally less parallelism to keep up with the
    heaviest stage, so spending the same budget on them buys nothing (the
    same balancing argument the DNN flow uses for unroll factors).
    ``mode="uniform"`` gives every node the full budget.
    """

    num_samples: int = 8
    max_iterations: int = 12
    mode: str = "flops"
    min_samples: int = 2
    min_iterations: int = 2

    def budget_for(self, node_flops: int, heaviest_flops: int) -> tuple[int, int]:
        """(num_samples, max_iterations) for a node of ``node_flops`` work."""
        if self.mode not in ("flops", "uniform"):
            raise ValueError(f"unknown budget mode {self.mode!r}; "
                             f"expected 'flops' or 'uniform'")
        if self.mode == "uniform" or heaviest_flops <= 0:
            return self.num_samples, self.max_iterations
        share = math.sqrt(max(1, node_flops) / heaviest_flops)
        return (max(self.min_samples, int(round(self.num_samples * share))),
                max(self.min_iterations, int(round(self.max_iterations * share))))


@dataclasses.dataclass(frozen=True)
class ModelFrontierPoint:
    """One point of the composed model-level frontier."""

    #: Sum of the chosen stage latencies along the dataflow chain.
    latency: int
    #: Dataflow initiation interval: the slowest chosen stage.
    interval: int
    #: Summed resources of every stage's hardware.
    resources: ResourceUsage
    #: ``(node name, encoded design point)`` per node, in dataflow order.
    choices: tuple[tuple[str, tuple[int, ...]], ...]

    def to_json_dict(self) -> dict:
        return {
            "latency": self.latency,
            "interval": self.interval,
            "dsp": self.resources.dsp,
            "lut": self.resources.lut,
            "memory_bits": self.resources.memory_bits,
            "bram18k": self.resources.bram18k,
            "choices": {name: list(encoded) for name, encoded in self.choices},
        }


def compose_model_frontier(node_order: list[str],
                           node_results: dict[str, ParallelDSEResult],
                           frontier_cap: int = 64,
                           platform: Optional[str] = None
                           ) -> tuple[list[ModelFrontierPoint], int]:
    """Compose per-node frontiers into the model frontier.

    Nodes are merged one at a time in dataflow order; after each merge the
    combined set is pruned to its (latency, DSP) Pareto frontier, with ties
    broken by the flattened choice vector so the result is a pure function
    of the per-node frontiers.  ``frontier_cap`` bounds the working set by
    downsampling evenly across the sorted frontier — both extremes (the
    fastest design *and* the cheapest) always survive, so a tight resource
    budget can still find a fitting point after truncation.  The number of
    dropped points is returned so callers can report the truncation instead
    of silently under-covering.

    With ``platform`` (a platform name of a multi-platform sweep), each
    node contributes its per-platform frontier instead — composing the
    model frontier *as if built for that target alone*.
    """
    if not node_order:
        return [], 0  # nothing explored -> no frontier, not a zero point
    combos: list[ModelFrontierPoint] = [
        ModelFrontierPoint(latency=0, interval=0, resources=ResourceUsage(),
                           choices=())]
    truncated = 0
    for name in node_order:
        if platform is None:
            records = node_results[name].frontier_records()
        else:
            records = node_results[name].frontier_records_for(platform)
        if not records:
            continue  # a platform no surviving record targets: skip the node
        merged = [
            ModelFrontierPoint(
                latency=combo.latency + record.qor.latency,
                interval=max(combo.interval, record.qor.latency),
                resources=combo.resources + record.qor.resources,
                choices=combo.choices + ((name, tuple(record.encoded)),),
            )
            for combo in combos
            for record in records
        ]
        pruned = _pareto_prune(merged)
        if frontier_cap and len(pruned) > frontier_cap:
            truncated += len(pruned) - frontier_cap
            pruned = _downsample(pruned, frontier_cap)
        combos = pruned
    return combos, truncated


def _downsample(points: list[ModelFrontierPoint],
                cap: int) -> list[ModelFrontierPoint]:
    """Keep ``cap`` evenly spaced points of a latency-sorted frontier.

    Index 0 (lowest latency) and the last index (lowest resources) are
    always kept: dropping either end would bias later merges — and the
    final ``best_point()`` selection — towards one side of the trade-off.
    """
    if cap <= 1:
        return [points[-1]]  # the cheapest design always fits best
    last = len(points) - 1
    indices = sorted({round(i * last / (cap - 1)) for i in range(cap)})
    return [points[i] for i in indices]


def _pareto_prune(points: list[ModelFrontierPoint]) -> list[ModelFrontierPoint]:
    """The (latency, DSP) Pareto subset, sorted by ascending latency."""
    wrapped = [
        ParetoPoint(latency=float(point.latency), area=float(point.resources.dsp),
                    encoded=_flat_choices(point), payload=point)
        for point in points
    ]
    return [wrapper.payload for wrapper in pareto_frontier(wrapped)]


def _flat_choices(point: ModelFrontierPoint) -> tuple[int, ...]:
    """Deterministic tie-break key: every chosen index, in dataflow order."""
    flat: list[int] = []
    for _, encoded in point.choices:
        flat.extend(encoded)
    return tuple(flat)


@dataclasses.dataclass
class ModelDSEResult:
    """Outcome of one whole-model sweep."""

    model: str
    platform: Platform
    graph_level: int
    seed: int
    #: Explored nodes, in dataflow order.
    node_order: list[str]
    #: Nodes without an affine loop nest (nothing to explore).
    skipped: list[str]
    node_results: dict[str, ParallelDSEResult]
    frontier: list[ModelFrontierPoint]
    #: Composition points dropped by the frontier cap (0 = exact frontier).
    truncated: int
    #: Frontier-building records that the persistent cache already held
    #: *before* this run (0 when no cache is configured or the cache was
    #: cold).  Distinct from the sweep's own ``cache_hits``: it makes a warm
    #: cache visible even when checkpoints restored the whole trajectory
    #: without dispatching a single evaluation, while a cold run — whose
    #: records were only just stored — correctly reports 0.
    frontier_cache_hits: int
    wall_seconds: float
    #: Per-platform composed frontiers of a multi-platform sweep, keyed by
    #: platform name; empty for single-platform runs (whose artifact layout
    #: must stay byte-identical to before platforms existed).
    platform_frontiers: dict = dataclasses.field(default_factory=dict)

    @property
    def num_evaluations(self) -> int:
        return sum(result.num_evaluations for result in self.node_results.values())

    @property
    def evaluated_this_run(self) -> int:
        return sum(result.evaluated_this_run for result in self.node_results.values())

    @property
    def cache_hits(self) -> int:
        return sum(result.cache_hits for result in self.node_results.values())

    @property
    def cache_misses(self) -> int:
        return sum(result.cache_misses for result in self.node_results.values())

    def best_point(self) -> Optional[ModelFrontierPoint]:
        """Fastest frontier point fitting the platform (smallest otherwise)."""
        if not self.frontier:
            return None
        for point in self.frontier:
            if self.platform.fits(point.resources, memory_margin=float("inf")):
                return point
        return min(self.frontier,
                   key=lambda p: (p.resources.dsp, _flat_choices(p)))

    # -- reporting --------------------------------------------------------------------------

    def to_json_dict(self) -> dict:
        """Deterministic JSON payload (no wall-clock, no float jitter)."""
        data = {
            "model": self.model,
            "platform": self.platform.name,
            "graph_level": self.graph_level,
            "seed": self.seed,
            "node_order": list(self.node_order),
            "skipped": list(self.skipped),
            "truncated": self.truncated,
            "nodes": {
                name: {
                    "fingerprint": result.fingerprint,
                    "num_evaluations": result.num_evaluations,
                    "frontier": [
                        {"encoded": list(record.encoded),
                         "latency": record.qor.latency,
                         "dsp": record.qor.dsp,
                         "pipeline": record.point.pipeline}
                        for record in result.frontier_records()
                    ],
                    # Quarantine outcomes are part of the deterministic
                    # artifact: a faulty run must report the same exclusions
                    # at any --jobs and across --resume.
                    "quarantined": [list(record.encoded)
                                    for record in result.quarantined_records()],
                }
                for name, result in self.node_results.items()
            },
            "frontier": [point.to_json_dict() for point in self.frontier],
        }
        if self.platform_frontiers:
            data["platform_frontiers"] = {
                name: [point.to_json_dict() for point in frontier]
                for name, frontier in self.platform_frontiers.items()
            }
        return data

    def frontier_json(self) -> str:
        """Canonical (byte-stable) JSON rendering of the sweep outcome."""
        return json.dumps(self.to_json_dict(), sort_keys=True, indent=2) + "\n"


class ModelScheduler:
    """Drives the ``compile_dnn`` stages through the multi-kernel DSE."""

    def __init__(self, platform: Platform = VU9P_SLR, jobs: int = 1,
                 seed: int = 2022, batch_size: int = 4,
                 budget: Optional[NodeBudgetPolicy] = None,
                 cache: Optional[EstimateCache] = None,
                 checkpoint_dir: Optional[str] = None,
                 checkpoint_every: int = 16,
                 frontier_cap: int = 64,
                 max_evaluations_per_node: Optional[int] = None,
                 mp_context: Optional[str] = None,
                 incremental: bool = True,
                 supervision=None, faults=None,
                 platforms=None, transport=None):
        self.platform = platform
        #: Platforms of a multi-platform sweep (each node's space gains the
        #: platform dimension and the composed result carries per-platform
        #: frontiers); empty/None keeps the historical single-platform flow.
        self.platforms = tuple(platforms or ())
        self.jobs = max(1, int(jobs))
        self.seed = seed
        self.batch_size = batch_size
        self.budget = budget or NodeBudgetPolicy()
        self.cache = cache
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_every = checkpoint_every
        self.frontier_cap = frontier_cap
        #: Bounds every node's sweep to N evaluations this run (simulating
        #: an interruption or spreading a sweep over sessions); the capped
        #: prefix checkpoints exactly like an interrupted run.
        self.max_evaluations_per_node = max_evaluations_per_node
        self.mp_context = mp_context
        self.incremental = incremental
        #: Fault handling (see :class:`~repro.dse.runtime.faults
        #: .SupervisionPolicy`) and the injected-fault schedule, forwarded
        #: to the multi-kernel scheduler.
        self.supervision = supervision
        self.faults = faults
        #: Socket-transport configuration, forwarded to the multi-kernel
        #: scheduler (evaluation on connected worker agents).
        self.transport = transport

    # -- public API -------------------------------------------------------------------------

    def explore(self, model: Union[str, ModuleOp], graph_level: int = 4,
                resume: bool = False,
                max_nodes: Optional[int] = None) -> ModelDSEResult:
        """Sweep a whole model and compose its latency/resource frontier.

        ``model`` is a bundled model name or an un-staged graph-level module
        (it is cloned, never mutated).  ``max_nodes`` truncates the sweep to
        the N heaviest nodes — a smoke-test escape hatch, reported via
        ``skipped`` rather than applied silently.
        """
        from repro.frontend.models import build_model
        from repro.pipeline import function_flops, prepare_dnn_stages
        from repro.transforms import lower_graph_to_loops

        started = time.perf_counter()
        if isinstance(model, str):
            model_name, module = model, build_model(model)
        else:
            model_name = model.get_attr("sym_name") or "model"
            module = model.clone()

        obs_on = obs.active() is not None
        model_span = obs.NULL_SPAN if not obs_on else obs.span(
            "dse.model", model=model_name, graph_level=graph_level,
            jobs=self.jobs, seed=self.seed)
        with model_span:
            with obs.span("dse.stage_graph", graph_level=graph_level):
                prepare_dnn_stages(module, graph_level)
                top = module.functions()[0]
                stage_funcs = [func_op for func_op in module.functions()
                               if func_op is not top]
                if not stage_funcs:
                    # graph_level 0 leaves a single monolithic function.
                    stage_funcs = [top]
                flops = {func_op.get_attr("sym_name"): function_flops(func_op)
                         for func_op in stage_funcs}
                lower_graph_to_loops(module)

            tasks, node_order, skipped = self._node_tasks(stage_funcs, flops,
                                                          max_nodes)
            model_span.set(nodes=len(node_order))
            known_before = self.cache.known_keys() if self.cache is not None \
                else frozenset()
            scheduler = MultiKernelScheduler(
                platform=self.platform, jobs=self.jobs, seed=self.seed,
                batch_size=self.batch_size, cache=self.cache,
                checkpoint_dir=self.checkpoint_dir,
                checkpoint_every=self.checkpoint_every,
                mp_context=self.mp_context,
                incremental=self.incremental,
                supervision=self.supervision, faults=self.faults,
                platforms=self.platforms or None,
                transport=self.transport)
            node_results = scheduler.explore_kernels(tasks, resume=resume)

            with obs.span("dse.compose", nodes=len(node_order)):
                frontier, truncated = compose_model_frontier(
                    node_order, node_results, frontier_cap=self.frontier_cap)
                platform_frontiers = {}
                for target in self.platforms:
                    per_platform, per_truncated = compose_model_frontier(
                        node_order, node_results,
                        frontier_cap=self.frontier_cap, platform=target.name)
                    platform_frontiers[target.name] = per_platform
                    truncated += per_truncated
            result = ModelDSEResult(
                model=model_name, platform=self.platform,
                graph_level=graph_level,
                seed=self.seed, node_order=node_order, skipped=skipped,
                node_results=node_results, frontier=frontier,
                truncated=truncated,
                frontier_cache_hits=self._revalidate_frontier(node_results,
                                                              known_before),
                wall_seconds=time.perf_counter() - started,
                platform_frontiers=platform_frontiers)
        if obs_on:
            obs.gauge("dse.jobs", self.jobs)
            obs.gauge("dse.wall_seconds", result.wall_seconds)
        return result

    # -- internals --------------------------------------------------------------------------

    def _revalidate_frontier(self, node_results: dict[str, ParallelDSEResult],
                             known_before: frozenset) -> int:
        """Count frontier-building records the cache held before this run.

        The composed model frontier mixes records restored from checkpoints
        with fresh evaluations; this pass reports how many of them the
        durable estimate store could already vouch for when the run started
        — making cache warmth visible on resumed runs that never dispatch an
        evaluation, while a cold run (which only just stored its records)
        reports 0.
        """
        if self.cache is None or not known_before:
            return 0
        hits = 0
        for result in node_results.values():
            for record in result.frontier_records():
                if (result.fingerprint, tuple(record.encoded)) in known_before:
                    hits += 1
        return hits

    def _node_tasks(self, stage_funcs, flops: dict[str, int],
                    max_nodes: Optional[int]
                    ) -> tuple[list[KernelTask], list[str], list[str]]:
        """One single-function module + budgeted task per explorable node.

        Explorability and the ``max_nodes`` selection are decided on the
        original functions; only the kept nodes pay for a deep clone.
        """
        from repro.dialects.affine_ops import outermost_loops

        candidates = []
        skipped: list[str] = []
        for func_op in stage_funcs:
            name = func_op.get_attr("sym_name")
            if not outermost_loops(func_op):  # no loop nest to explore
                skipped.append(name)
                continue
            candidates.append((name, func_op))
        if max_nodes is not None and len(candidates) > max_nodes:
            # Keep the heaviest nodes (they dominate the model frontier);
            # ties break by name so the selection is deterministic.
            keep = sorted(candidates,
                          key=lambda item: (-flops.get(item[0], 0), item[0]))
            keep_names = {name for name, _ in keep[:max_nodes]}
            skipped.extend(name for name, _ in candidates
                           if name not in keep_names)
            candidates = [item for item in candidates if item[0] in keep_names]

        heaviest = max((flops.get(name, 0) for name, _ in candidates),
                       default=0)
        tasks = []
        for name, func_op in candidates:
            node_module = ModuleOp(name)
            node_module.append(func_op.clone())
            space = KernelDesignSpace.from_function(
                node_module.functions()[0], platforms=self.platforms or None)
            num_samples, max_iterations = self.budget.budget_for(
                flops.get(name, 0), heaviest)
            tasks.append(KernelTask(
                key=name, module=node_module, func_name=name, space=space,
                num_samples=num_samples, max_iterations=max_iterations,
                max_evaluations=self.max_evaluations_per_node))
        return tasks, [task.key for task in tasks], skipped

"""Resumable exploration checkpoints.

A checkpoint is a full snapshot of explorer state at a batch boundary: the
evaluated records, the RNG state, and the progress counters.  Because the
exploration policy is deterministic and proposals only happen at batch
boundaries, resuming from a checkpoint continues the *exact* trajectory the
uninterrupted run would have taken — the final frontier is identical.

Snapshots are written atomically (temp file + ``os.replace``), so a run
killed mid-write leaves the previous checkpoint intact.
"""

from __future__ import annotations

import dataclasses
import json
import os
import random
import tempfile
import warnings
from typing import Optional

from repro.dse.runtime.records import EvaluationRecord

#: Bumped whenever the on-disk layout changes incompatibly.
CHECKPOINT_VERSION = 1


@dataclasses.dataclass
class ExplorerState:
    """The resumable state of one exploration run.

    ``config`` echoes the exploration parameters that define the trajectory
    (seed, batch size, budgets); a resume is only valid when they match, so
    an interrupted seed-1 run can never silently masquerade as a seed-2 one.
    """

    fingerprint: str
    records: dict[tuple[int, ...], EvaluationRecord]
    rng_state: tuple
    samples_done: bool
    iterations_done: int
    seed: int
    config: dict = dataclasses.field(default_factory=dict)

    @classmethod
    def fresh(cls, fingerprint: str, seed: int,
              config: Optional[dict] = None) -> "ExplorerState":
        return cls(fingerprint=fingerprint, records={},
                   rng_state=random.Random(seed).getstate(),
                   samples_done=False, iterations_done=0, seed=seed,
                   config=dict(config or {}))

    def make_rng(self) -> random.Random:
        rng = random.Random()
        rng.setstate(self.rng_state)
        return rng

    def capture_rng(self, rng: random.Random) -> None:
        self.rng_state = rng.getstate()


class CheckpointStore:
    """Loads and saves :class:`ExplorerState` snapshots at ``path``."""

    def __init__(self, path: str):
        self.path = path

    def exists(self) -> bool:
        return os.path.exists(self.path)

    # -- save -------------------------------------------------------------------------------

    def save(self, state: ExplorerState) -> None:
        payload = {
            "version": CHECKPOINT_VERSION,
            "fingerprint": state.fingerprint,
            "seed": state.seed,
            "config": state.config,
            "samples_done": state.samples_done,
            "iterations_done": state.iterations_done,
            "rng_state": _rng_state_to_json(state.rng_state),
            "records": [record.to_json_dict() for record in state.records.values()],
        }
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        fd, temp_path = tempfile.mkstemp(dir=directory, suffix=".ckpt.tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
                # Crash consistency: the bytes must be durable *before* the
                # rename publishes them, or a power loss could leave the
                # checkpoint pointing at a hole.
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp_path, self.path)
        except BaseException:
            if os.path.exists(temp_path):
                os.unlink(temp_path)
            raise

    # -- load -------------------------------------------------------------------------------

    def load(self, expected_fingerprint: Optional[str] = None,
             expected_config: Optional[dict] = None) -> Optional[ExplorerState]:
        """Load the snapshot, or ``None`` if absent / incompatible.

        A snapshot is incompatible when the kernel fingerprint or the
        trajectory-defining exploration config differs from what the caller
        is about to run — resuming it would mislabel the results.
        """
        if not self.exists():
            return None
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                try:
                    payload = json.load(handle)
                except ValueError:
                    # Atomic writes make this near-impossible for our own
                    # files — a corrupt checkpoint means something else
                    # wrote here.  Say so instead of silently starting over.
                    warnings.warn(
                        f"checkpoint {self.path!r} is not valid JSON; "
                        f"ignoring it and starting fresh",
                        RuntimeWarning, stacklevel=2)
                    return None
            if payload.get("version") != CHECKPOINT_VERSION:
                return None
            if expected_fingerprint is not None \
                    and payload.get("fingerprint") != expected_fingerprint:
                return None
            if expected_config is not None \
                    and payload.get("config") != expected_config:
                return None
            records = {}
            for data in payload["records"]:
                record = EvaluationRecord.from_json_dict(data)
                records[record.encoded] = record
            return ExplorerState(
                fingerprint=payload["fingerprint"],
                records=records,
                rng_state=_rng_state_from_json(payload["rng_state"]),
                samples_done=bool(payload["samples_done"]),
                iterations_done=int(payload["iterations_done"]),
                seed=int(payload["seed"]),
                config=dict(payload.get("config", {})),
            )
        except (OSError, KeyError, TypeError, ValueError):
            # A corrupt or foreign file is "no usable checkpoint", not a
            # crash: exploration starts fresh and overwrites it atomically.
            return None


def _rng_state_to_json(state: tuple) -> list:
    """``random.Random.getstate()`` → JSON-safe nested lists."""
    version, internal, gauss_next = state
    return [version, list(internal), gauss_next]


def _rng_state_from_json(data: list) -> tuple:
    version, internal, gauss_next = data
    return (int(version), tuple(int(v) for v in internal), gauss_next)

"""Distributed DSE over a supervised socket transport.

This module lets the evaluation side of the runtime leave the machine: a
:class:`RemotePoolBackend` on the coordinator dispatches ``(kernel key,
encoded point)`` tasks to *worker agents* (``repro-hls worker-agent
--connect HOST:PORT``) over TCP, and gets back the exact ``(tag, record,
telemetry)`` tuples the local backends exchange — the wire contract is the
guarded task of :mod:`repro.dse.runtime.worker`, unchanged.

Protocol
--------

Length-prefixed frames: an 12-byte header (``!4sII`` — magic ``RDSE``,
payload length, CRC-32 of the payload) followed by a pickled ``(kind,
data)`` payload.  A frame with a bad magic, an oversized length or a
checksum mismatch poisons the stream: the connection is closed and its
in-flight task is requeued (this is how the ``garbage-frame`` chaos fault
is detected).  Pickle implies a *trusted network* — worker agents are part
of the deployment, not an open endpoint.

Handshake::

    agent → coordinator   hello    {protocol, session, agent}
    coordinator → agent   welcome  {session, payload, pipeline, heartbeat_interval}
                          (or reject {error} — actionable, agent exits)
    agent → coordinator   ready    {pipeline, agent}

``session`` is a fingerprint over the run's design spaces, platform
configurations and transform-pipeline signature: a reconnecting agent
echoes the fingerprint it last handshook, and an agent carrying a
different session (stale process, wrong coordinator) is *rejected* with an
actionable error instead of silently being fed tasks.  ``payload`` is the
same pickled ``(contexts, pipelines)`` registry the process pool ships to
its workers; the agent installs it with the worker initializer and then
verifies its own pipeline signature against the coordinator's
(version-skew guard, same as local workers).

Steady state: the coordinator sends ``task {id, key, encoded, traced}``
frames; the agent replies ``result {id, tag, payload, telemetry}`` and
emits ``heartbeat`` frames from a background thread the whole time (also
*during* long evaluations, so silence specifically means transport
trouble).  ``shutdown`` ends an agent cleanly.

Fault attribution (the PR 8 model, over sockets)
------------------------------------------------

* **Charged** — the agent *reported* an evaluation error, or the task
  exceeded ``--task-timeout`` while its connection stayed healthy: the
  design point is at fault.  Charged faults consume ``--max-retries``
  bounded retries with the shared deterministic backoff
  (:func:`~repro.dse.runtime.faults.backoff_delay`) and then quarantine —
  byte-identically to the local backends at any topology.
* **Uncharged** — the connection broke, garbled, or went silent past the
  heartbeat window before a result arrived: the point is innocent.  It is
  requeued without touching its retry budget and lands on the next healthy
  agent.  A stale result from a worker the coordinator gave up on can
  never be double-counted: giving up *is* closing the connection, so the
  worker's late send fails and it re-joins through a fresh handshake.

Because retries, quarantine and telemetry absorption run the same
per-point logic as :class:`~repro.dse.runtime.worker.ProcessPoolBackend`
(in submission order, never completion order), the frontier is
byte-identical whether evaluation ran serial, in a local pool, or across N
agents with mid-run disconnects — which is what the transport chaos tests
byte-compare.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import os
import pickle
import queue
import socket
import struct
import subprocess
import sys
import threading
import time
import zlib
from typing import Optional, Sequence

from repro import obs
from repro.dse.runtime import worker as worker_mod
from repro.dse.runtime.faults import (
    EvaluationFailure,
    SupervisionPolicy,
    backoff_delay,
)
from repro.dse.runtime.records import EvaluationRecord

#: Bumped on every incompatible frame/handshake change; agents and
#: coordinators refuse to pair across versions.
PROTOCOL_VERSION = 1

_MAGIC = b"RDSE"
_HEADER = struct.Struct("!4sII")

#: Ceiling on a single frame payload (the context registry of a large model
#: is a few MB; anything near this is a corrupt length field).
MAX_FRAME_BYTES = 1 << 30

#: Reconnect sleeps are exponential but capped, so an agent that outlives
#: its coordinator spends its retry budget in minutes, not centuries.
_MAX_RECONNECT_DELAY = 5.0


class FrameError(ConnectionError):
    """A malformed frame arrived: the stream can no longer be trusted."""


class AgentError(RuntimeError):
    """The coordinator rejected this agent — actionable, never retried."""


# -- framing --------------------------------------------------------------------------------


def send_frame(sock: socket.socket, kind: str, data,
               lock: Optional[threading.Lock] = None) -> None:
    """Send one ``(kind, data)`` frame (atomically, when ``lock`` given)."""
    payload = pickle.dumps((kind, data), protocol=pickle.HIGHEST_PROTOCOL)
    frame = _HEADER.pack(_MAGIC, len(payload), zlib.crc32(payload)) + payload
    if lock is None:
        sock.sendall(frame)
    else:
        with lock:
            sock.sendall(frame)


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = []
    while count:
        try:
            chunk = sock.recv(min(count, 1 << 20))
        except socket.timeout:
            if chunks:
                # A timeout before any byte is an idle poll (callers retry);
                # a timeout *mid-frame* leaves the stream desynchronized —
                # frames are sent atomically, so a healthy peer never stalls
                # here — and must poison the connection instead.
                raise FrameError("timed out mid-frame")
            raise
        if not chunk:
            raise ConnectionError("connection closed by peer")
        chunks.append(chunk)
        count -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket):
    """Receive one frame; raise :class:`FrameError` on any corruption.

    A ``socket.timeout`` before the first byte of a frame is re-raised
    as-is (an idle poll); a timeout once a frame started is a
    :class:`FrameError`, because the stream position is lost.
    """
    magic, length, checksum = _HEADER.unpack(_recv_exact(sock, _HEADER.size))
    if magic != _MAGIC:
        raise FrameError(f"bad frame magic {magic!r}")
    if length > MAX_FRAME_BYTES:
        raise FrameError(f"oversized frame ({length} bytes)")
    payload = _recv_exact(sock, length)
    if zlib.crc32(payload) != checksum:
        raise FrameError("frame checksum mismatch")
    try:
        kind, data = pickle.loads(payload)
    except Exception as error:  # any unpickling failure poisons the stream
        raise FrameError(f"undecodable frame payload "
                         f"({worker_mod._describe_error(error)})")
    return kind, data


def _corrupt_frame() -> bytes:
    """A syntactically plausible frame with a wrong checksum (chaos only)."""
    payload = pickle.dumps(("result", {"id": -1}))
    return _HEADER.pack(_MAGIC, len(payload),
                        zlib.crc32(payload) ^ 0xFFFFFFFF) + payload


def session_fingerprint(contexts: dict, pipeline_signature: str) -> str:
    """Fingerprint of everything that must match between the two sides.

    Covers the protocol version, the transform-pipeline signature, and each
    kernel's design-space fingerprint and platform configuration hash — the
    exact inputs that make evaluation a pure function.  Two runs with the
    same fingerprint are interchangeable for a worker agent; anything else
    is a re-handshake rejection.
    """
    parts = [f"protocol={PROTOCOL_VERSION}", f"pipeline={pipeline_signature}"]
    for key in sorted(contexts):
        context = contexts[key]
        parts.append(f"{key}:{context.space.fingerprint()}"
                     f":{context.platform.config_hash()}")
    digest = hashlib.sha256("|".join(parts).encode("utf-8")).hexdigest()
    return digest[:20]


# -- coordinator side -----------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class TransportConfig:
    """How a coordinator exposes itself to worker agents.

    ``spawn_workers`` local agents are launched as subprocesses connecting
    over loopback; ``host``/``port`` additionally accept external agents
    (``port=0`` binds an ephemeral port, fine for purely local runs).
    ``min_workers`` is how many connected agents :meth:`~RemotePoolBackend.
    warm_up` waits for (default: the spawned count, at least one).

    Heartbeat settings bound dead-agent detection: an agent is presumed
    gone when its connection stays silent for ``heartbeat_timeout`` seconds
    while a task is in flight — agents heartbeat every
    ``heartbeat_interval`` seconds even mid-evaluation, so silence means
    transport trouble, not a slow point (slow points are the *charged*
    ``task_timeout``'s business).  ``max_requeues`` is a fail-safe against
    livelock from a point whose dispatch kills every agent; it is far above
    anything a real run should hit.
    """

    host: str = "127.0.0.1"
    port: int = 0
    spawn_workers: int = 0
    min_workers: Optional[int] = None
    heartbeat_interval: float = 1.0
    heartbeat_timeout: float = 10.0
    connect_timeout: float = 60.0
    reconnect_base: float = 0.25
    max_requeues: int = 100

    @property
    def expected_workers(self) -> int:
        if self.min_workers is not None:
            return max(1, self.min_workers)
        return max(1, self.spawn_workers)


class _RemoteTask:
    """One in-flight dispatch; completion lands on its ``done`` queue."""

    __slots__ = ("id", "key", "encoded", "index", "traced", "done",
                 "kind", "payload", "telemetry", "requeues")

    def __init__(self, task_id: int, key: str, encoded: tuple, index: int,
                 traced: bool, done: "queue.Queue[_RemoteTask]"):
        self.id = task_id
        self.key = key
        self.encoded = encoded
        self.index = index
        self.traced = traced
        self.done = done
        self.kind = ""
        self.payload = None
        self.telemetry = None
        self.requeues = 0


class _ConnectionLost(Exception):
    """Internal: unwind one connection's serving loop (task already routed)."""


class RemotePoolBackend:
    """Socket-transport sibling of ``ProcessPoolBackend``.

    Same ``evaluate(key, batch) -> [EvaluationRecord]`` interface and the
    same supervision semantics; evaluation capacity comes from connected
    worker agents instead of forked processes.  One listener thread accepts
    and handshakes agents; one thread per connection pulls tasks from a
    shared queue, dispatches them, and watches heartbeats.
    """

    def __init__(self, contexts: dict, transport: TransportConfig,
                 supervision: Optional[SupervisionPolicy] = None,
                 stop_event: Optional[threading.Event] = None):
        from repro.dse.apply import CLEANUP_PIPELINES, kernel_pipeline_signature

        self._config = transport
        self._contexts = contexts
        self._supervision = supervision or SupervisionPolicy()
        self._stop_event = stop_event
        self._signature = kernel_pipeline_signature()
        self._payload = pickle.dumps((contexts, dict(CLEANUP_PIPELINES)))
        self._session = session_fingerprint(contexts, self._signature)
        #: Parallel capacity hint for the schedulers (mirrors the local
        #: backends' ``jobs`` attribute).
        self.jobs = transport.expected_workers
        self._tasks: "queue.Queue[_RemoteTask]" = queue.Queue()
        self._task_ids = itertools.count(1)
        self._lock = threading.Lock()
        self._connections: dict[int, socket.socket] = {}
        self._connection_ids = itertools.count(1)
        self._threads: list[threading.Thread] = []
        self._agents: list[subprocess.Popen] = []
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._address: Optional[tuple[str, int]] = None
        self._closing = False
        self._started = False

    # -- lifecycle --------------------------------------------------------------------------

    @property
    def address(self) -> Optional[tuple[str, int]]:
        """The bound ``(host, port)`` once :meth:`start` ran."""
        return self._address

    @property
    def num_connected(self) -> int:
        with self._lock:
            return len(self._connections)

    def start(self) -> None:
        """Bind the listener and launch any local agents (idempotent)."""
        with self._lock:
            if self._started:
                return
            self._started = True
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self._config.host, self._config.port))
        listener.listen(16)
        listener.settimeout(0.2)
        self._listener = listener
        self._address = listener.getsockname()[:2]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="transport-accept", daemon=True)
        self._accept_thread.start()
        if self._config.spawn_workers:
            self._spawn_agents(self._config.spawn_workers)

    def _spawn_agents(self, count: int) -> None:
        import repro

        source_root = os.path.dirname(
            os.path.abspath(next(iter(repro.__path__))))
        env = dict(os.environ)
        env["PYTHONPATH"] = source_root + os.pathsep \
            + env.get("PYTHONPATH", "")
        host, port = self._address
        if host in ("", "0.0.0.0", "::"):
            host = "127.0.0.1"
        for index in range(count):
            # -c instead of -m: repro.tools re-exports the driver from its
            # __init__, and runpy warns when the target module is already
            # imported as a side effect of importing its package.
            command = [sys.executable, "-c",
                       "import sys; from repro.tools.driver import main; "
                       "sys.exit(main(sys.argv[1:]))",
                       "worker-agent", "--connect", f"{host}:{port}",
                       "--agent-id", f"local-{index}",
                       "--reconnect-base", str(self._config.reconnect_base)]
            # stdout stays quiet (a coordinator's stdout may be a frontier
            # JSON byte-compare); agent status lines go to inherited stderr.
            self._agents.append(subprocess.Popen(
                command, env=env, stdout=subprocess.DEVNULL))

    def warm_up(self) -> None:
        """Block until the expected number of agents handshook."""
        self.start()
        self._await_workers(self._config.expected_workers)

    def _await_workers(self, count: int) -> None:
        deadline = time.monotonic() + self._config.connect_timeout
        while True:
            with self._lock:
                if len(self._connections) >= count:
                    return
            worker_mod._check_stop(self._stop_event)
            if time.monotonic() >= deadline:
                host, port = self._address or (self._config.host,
                                               self._config.port)
                raise EvaluationFailure(
                    f"no worker agent connected within "
                    f"{self._config.connect_timeout:g}s (need {count}, have "
                    f"{self.num_connected}); start agents with 'repro-hls "
                    f"worker-agent --connect {host}:{port}' or pass "
                    f"--workers N to spawn local ones")
            time.sleep(0.05)

    def request_stop(self) -> None:
        """Interrupt path: unblock every evaluate() and connection thread."""
        if self._stop_event is not None:
            self._stop_event.set()
        self._closing = True
        with self._lock:
            connections = list(self._connections.values())
        for sock in connections:
            _close_quietly(sock)

    def close(self) -> None:
        self._closing = True
        if self._listener is not None:
            _close_quietly(self._listener)
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)
        # Connection threads notice _closing between tasks, send a clean
        # shutdown frame and exit; give them a moment, then cut the cord.
        for thread in list(self._threads):
            thread.join(timeout=2.0)
        with self._lock:
            connections = list(self._connections.values())
        for sock in connections:
            _close_quietly(sock)
        for process in self._agents:
            if process.poll() is None:
                try:
                    process.wait(timeout=2.0)
                except subprocess.TimeoutExpired:
                    process.kill()
                    process.wait()
        self._agents.clear()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    # -- accepting and serving connections --------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._closing:
            try:
                sock, addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # listener closed
            thread = threading.Thread(
                target=self._serve_connection, args=(sock, addr),
                name=f"transport-conn-{addr[0]}:{addr[1]}", daemon=True)
            self._threads.append(thread)
            thread.start()

    def _handshake(self, sock: socket.socket, addr) -> Optional[str]:
        """Run the coordinator side of the handshake; return the agent name
        (None means the connection was rejected or garbled and closed)."""
        sock.settimeout(max(self._config.heartbeat_timeout, 5.0))
        kind, data = recv_frame(sock)
        if kind != "hello":
            raise FrameError(f"expected hello, got {kind!r}")
        if data.get("protocol") != PROTOCOL_VERSION:
            send_frame(sock, "reject", {"error": (
                f"protocol version mismatch: coordinator speaks "
                f"v{PROTOCOL_VERSION}, agent speaks "
                f"v{data.get('protocol')} — upgrade the older side")})
            return None
        presented = data.get("session", "")
        if presented and presented != self._session:
            send_frame(sock, "reject", {"error": (
                f"session fingerprint mismatch: this coordinator runs "
                f"session {self._session} (pipeline '{self._signature}') "
                f"but the agent last handshook session {presented} — the "
                f"agent belongs to a different run; restart it against "
                f"this coordinator")})
            return None
        send_frame(sock, "welcome", {
            "session": self._session,
            "payload": self._payload,
            "pipeline": self._signature,
            "heartbeat_interval": self._config.heartbeat_interval,
        })
        kind, data = recv_frame(sock)
        if kind != "ready":
            raise FrameError(f"expected ready, got {kind!r}")
        if data.get("pipeline") != self._signature:
            send_frame(sock, "reject", {"error": (
                f"worker pipeline mismatch: coordinator evaluates under "
                f"'{self._signature}' but the agent would run "
                f"'{data.get('pipeline')}' — coordinator and agents must "
                f"run the same code version")})
            return None
        return data.get("agent") or f"{addr[0]}:{addr[1]}"

    def _serve_connection(self, sock: socket.socket, addr) -> None:
        connection_id = next(self._connection_ids)
        name = None
        task: Optional[_RemoteTask] = None
        try:
            name = self._handshake(sock, addr)
            if name is None:
                return
            with self._lock:
                self._connections[connection_id] = sock
            obs.counter("dse.transport.connects")
            while not self._closing:
                worker_mod._check_stop(self._stop_event)
                try:
                    task = self._tasks.get(timeout=0.2)
                except queue.Empty:
                    continue
                try:
                    send_frame(sock, "task", {
                        "id": task.id, "key": task.key,
                        "encoded": task.encoded, "traced": task.traced})
                    self._await_result(sock, task)
                except _ConnectionLost:
                    obs.counter("dse.transport.disconnects")
                    return
                task = None
            # Clean coordinator-side teardown: tell the agent to exit.
            try:
                send_frame(sock, "shutdown", {})
            except OSError:
                pass
        except (FrameError, ConnectionError, OSError, KeyboardInterrupt):
            if name is not None:
                obs.counter("dse.transport.disconnects")
            if task is not None:
                self._requeue(task, "connection lost")
        finally:
            with self._lock:
                self._connections.pop(connection_id, None)
            _close_quietly(sock)

    def _await_result(self, sock: socket.socket, task: _RemoteTask) -> None:
        """Read frames until ``task`` resolves; raise ``_ConnectionLost``
        when this connection can no longer be trusted (task already
        completed or requeued — never both)."""
        timeout = self._supervision.task_timeout
        now = time.monotonic()
        task_deadline = None if timeout is None else now + timeout
        heartbeat_deadline = now + self._config.heartbeat_timeout
        while True:
            if self._closing:
                self._requeue(task, "coordinator shutting down")
                raise _ConnectionLost
            now = time.monotonic()
            if task_deadline is not None and now >= task_deadline:
                # Charged: the connection is healthy but the evaluation blew
                # its wall-clock budget.  Cut the connection — the agent is
                # presumed stuck, and closing guarantees its late result
                # can never arrive.
                self._complete(task, "timeout",
                               f"evaluation exceeded the task timeout of "
                               f"{timeout:g}s", None)
                raise _ConnectionLost
            if now >= heartbeat_deadline:
                obs.counter("dse.transport.heartbeat_misses")
                self._requeue(task, "heartbeat missed")
                raise _ConnectionLost
            wait = heartbeat_deadline - now
            if task_deadline is not None:
                wait = min(wait, task_deadline - now)
            sock.settimeout(max(min(wait, 0.5), 0.01))
            try:
                kind, data = recv_frame(sock)
            except FrameError:
                obs.counter("dse.transport.garbage_frames")
                self._requeue(task, "garbage frame")
                raise _ConnectionLost
            except socket.timeout:
                continue
            except (ConnectionError, OSError):
                self._requeue(task, "connection lost")
                raise _ConnectionLost
            if kind == "heartbeat":
                heartbeat_deadline = time.monotonic() \
                    + self._config.heartbeat_timeout
                continue
            if kind == "result" and data.get("id") == task.id:
                self._complete(task, data.get("tag"), data.get("payload"),
                               data.get("telemetry"))
                return
            # Anything else (e.g. a result for a superseded task id from a
            # pre-requeue dispatch on this very connection) is ignored.

    def _requeue(self, task: _RemoteTask, cause: str) -> None:
        """Uncharged: the point is innocent, put it back on the queue."""
        obs.counter("dse.transport.requeues")
        task.requeues += 1
        if task.requeues > self._config.max_requeues:
            self._complete(task, worker_mod._FATAL,
                           f"task requeued {task.requeues} times over broken "
                           f"connections (last: {cause}) — worker agents are "
                           f"not staying up long enough to evaluate it; "
                           f"check the agents' stderr", None)
            return
        self._tasks.put(task)

    @staticmethod
    def _complete(task: _RemoteTask, kind: str, payload, telemetry) -> None:
        task.kind = kind
        task.payload = payload
        task.telemetry = telemetry
        task.done.put(task)

    # -- the supervised evaluate loop -------------------------------------------------------

    def evaluate(self, key: str,
                 batch: Sequence[tuple[int, ...]]) -> list[EvaluationRecord]:
        self.start()
        self._await_workers(1)
        traced = obs.active() is not None
        policy = self._supervision
        total = len(batch)
        results: list[Optional[EvaluationRecord]] = [None] * total
        telemetry: list = [None] * total
        attempts = [0] * total
        done: "queue.Queue[_RemoteTask]" = queue.Queue()
        for index, encoded in enumerate(batch):
            self._submit(key, tuple(encoded), index, traced, done)
        outstanding = total
        starved_since: Optional[float] = None
        while outstanding:
            worker_mod._check_stop(self._stop_event)
            try:
                task = done.get(timeout=0.2)
            except queue.Empty:
                # Fail-safe: with zero connected agents nothing can ever
                # complete — surface that instead of waiting forever.
                if self.num_connected:
                    starved_since = None
                elif starved_since is None:
                    starved_since = time.monotonic()
                elif time.monotonic() - starved_since \
                        > self._config.connect_timeout:
                    raise EvaluationFailure(
                        f"kernel {key!r}: every worker agent disconnected "
                        f"and none re-joined within "
                        f"{self._config.connect_timeout:g}s — check the "
                        f"agents' stderr")
                continue
            starved_since = None
            if task.kind == worker_mod._OK:
                results[task.index] = task.payload
                telemetry[task.index] = task.telemetry
                outstanding -= 1
            elif task.kind == worker_mod._FATAL:
                raise EvaluationFailure(
                    f"kernel {key!r} point {task.encoded}: {task.payload}")
            else:  # charged fault: error / timeout
                attempts[task.index] += 1
                if task.kind == "timeout":
                    obs.counter("dse.faults.timeouts")
                if attempts[task.index] > policy.max_retries:
                    results[task.index] = worker_mod._quarantine_record(
                        self._contexts[key], key, task.encoded, task.payload,
                        policy)
                    outstanding -= 1
                else:
                    worker_mod._retry_pause(key, attempts[task.index],
                                            task.kind, policy)
                    self._resubmit(task)
        if traced:
            # Submission order, after everything settled — identical merge
            # rule as the local backends, so traces are topology-independent.
            for index in range(total):
                obs.absorb_task(f"worker:{key}", telemetry[index])
        return results

    def _submit(self, key: str, encoded: tuple, index: int, traced: bool,
                done: "queue.Queue[_RemoteTask]") -> None:
        task = _RemoteTask(next(self._task_ids), key, encoded, index, traced,
                           done)
        self._tasks.put(task)

    def _resubmit(self, task: _RemoteTask) -> None:
        task.id = next(self._task_ids)  # retries never match stale results
        task.kind = ""
        task.payload = None
        task.telemetry = None
        self._tasks.put(task)


def _close_quietly(sock: socket.socket) -> None:
    try:
        sock.close()
    except OSError:
        pass


# -- worker-agent side ----------------------------------------------------------------------


def _transport_plan():
    """The installed fault plan, when it targets the transport layer."""
    for context in worker_mod._WORKER_CONTEXTS.values():
        plan = context.faults
        if plan is not None and plan.transport_fault:
            return plan
    return None


def _serve_agent(sock: socket.socket, agent_id: str, session: str,
                 handshook: Optional[list] = None):
    """Serve one connection; returns ``(outcome, session)`` where outcome
    is ``"shutdown"`` (clean exit) or ``"retry"`` (reconnect).

    ``handshook`` (a mutable flag list) is marked as soon as the handshake
    completes, so the caller can distinguish a mid-serve connection drop
    (reconnect with a fresh attempt budget) from a coordinator that was
    never reachable (counts against ``max_reconnects``) even when this
    function unwinds with an exception.
    """
    from repro.dse.apply import kernel_pipeline_signature

    lock = threading.Lock()
    sock.settimeout(30.0)  # the handshake must be prompt
    send_frame(sock, "hello", {"protocol": PROTOCOL_VERSION,
                               "session": session, "agent": agent_id}, lock)
    kind, data = recv_frame(sock)
    if kind == "reject":
        raise AgentError(data.get("error", "rejected by coordinator"))
    if kind != "welcome":
        raise FrameError(f"expected welcome, got {kind!r}")
    session = data["session"]
    worker_mod._init_worker(data["payload"])
    send_frame(sock, "ready", {"pipeline": kernel_pipeline_signature(),
                               "agent": agent_id}, lock)
    if handshook is not None:
        handshook.append(True)
    sock.settimeout(None)
    plan = _transport_plan()
    interval = float(data.get("heartbeat_interval", 1.0))
    stop = threading.Event()
    paused = threading.Event()

    def _heartbeats() -> None:
        # Runs for the life of the connection — including while the main
        # thread is deep inside an evaluation — so the coordinator can tell
        # "slow point" (heartbeats flowing) from "dead transport" (silence).
        while not stop.wait(interval):
            if paused.is_set():
                continue
            try:
                send_frame(sock, "heartbeat", {}, lock)
            except OSError:
                return

    beater = threading.Thread(target=_heartbeats, daemon=True,
                              name=f"heartbeat-{agent_id}")
    beater.start()
    try:
        while True:
            kind, message = recv_frame(sock)
            if kind == "shutdown":
                return "shutdown", session
            if kind == "reject":
                raise AgentError(message.get("error", "rejected"))
            if kind != "task":
                continue
            key = message["key"]
            encoded = tuple(message["encoded"])
            action = plan.transport_action(key, encoded) if plan else None
            if action == "disconnect":
                return "retry", session  # drop the link, result unsent
            if action == "garbage-frame":
                with lock:
                    sock.sendall(_corrupt_frame())
                return "retry", session
            if action == "stall":
                # Go silent long enough to blow the heartbeat window, then
                # come back (the coordinator has moved on; our next send
                # fails and we re-join through a fresh handshake).
                paused.set()
                time.sleep(plan.hang_seconds)
                paused.clear()
            task = worker_mod._evaluate_task_traced if message["traced"] \
                else worker_mod._evaluate_task
            tag, payload, telemetry = task(key, encoded)
            send_frame(sock, "result", {"id": message["id"], "tag": tag,
                                        "payload": payload,
                                        "telemetry": telemetry}, lock)
    finally:
        stop.set()
        beater.join(timeout=interval + 1.0)


def run_worker_agent(host: str, port: int, agent_id: str = "",
                     reconnect_base: float = 0.25,
                     max_reconnects: int = 30) -> int:
    """The agent main loop: connect, serve, re-join on failure.

    Reconnect sleeps follow the shared deterministic schedule
    (:func:`~repro.dse.runtime.faults.backoff_delay`, capped at
    ``_MAX_RECONNECT_DELAY``).  Exit codes: 0 — coordinator shut us down;
    2 — rejected with an actionable error (printed); 3 — the coordinator
    stayed unreachable for ``max_reconnects`` attempts.
    """
    agent_id = agent_id or f"agent-{os.getpid()}"
    session = ""
    attempt = 0
    while True:
        if attempt:
            if attempt > max_reconnects:
                print(f"worker-agent {agent_id}: giving up on {host}:{port} "
                      f"after {attempt - 1} reconnect attempts",
                      file=sys.stderr)
                return 3
            time.sleep(min(backoff_delay(attempt, reconnect_base),
                           _MAX_RECONNECT_DELAY))
        try:
            sock = socket.create_connection((host, port), timeout=10.0)
        except OSError:
            attempt += 1
            continue
        handshook: list = []
        try:
            outcome, session = _serve_agent(sock, agent_id, session,
                                            handshook)
        except AgentError as error:
            print(f"worker-agent {agent_id}: rejected by coordinator: "
                  f"{error}", file=sys.stderr)
            return 2
        except (FrameError, ConnectionError, OSError):
            outcome = "retry"
        finally:
            _close_quietly(sock)
        if outcome == "shutdown":
            print(f"worker-agent {agent_id}: coordinator shut down cleanly",
                  file=sys.stderr)
            return 0
        # A post-handshake drop re-joins after one base backoff step; a
        # coordinator that vanished for good is caught by the attempt cap
        # once connects start failing outright.
        attempt = 1 if handshook else attempt + 1

"""The QoR estimate cache.

Design-point evaluation — cloning the kernel, running the transform
pipeline, estimating QoR — dominates DSE wall-clock time, yet repeated
sweeps (benchmark reruns, resumed sessions, neighboring seeds) re-estimate
mostly the same points.  :class:`EstimateCache` memoizes
:class:`~repro.dse.runtime.records.EvaluationRecord` objects keyed by
``(kernel fingerprint, encoded design point)`` and can persist every entry
as one JSON line, so a warm cache survives the process.

The coordinator consults the cache *before* dispatching work to the pool,
so hit/miss accounting is exact and worker processes never touch the file.
"""

from __future__ import annotations

import dataclasses
import json
import os
import threading
import warnings
from typing import Optional, Sequence

from repro import obs
from repro.dse.runtime.records import EvaluationRecord
from repro.estimation.estimator import QOR_MODEL_VERSION

#: Cache key: (kernel fingerprint, encoded design point).
CacheKey = tuple[str, tuple[int, ...]]


@dataclasses.dataclass
class CacheStats:
    """Lifetime accounting of one :class:`EstimateCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    loaded: int = 0
    evictions: int = 0
    #: Dead JSONL lines dropped by load-time compaction (superseded
    #: duplicates, stale-model entries, corrupt lines, byte-bound evictees).
    compacted: int = 0
    #: Torn trailing lines recovered at load time — the signature of a crash
    #: mid-append.  The truncated line is dropped with a warning (its entry
    #: simply re-evaluates) instead of failing the load.
    recovered_lines: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> "CacheStats":
        return CacheStats(hits=self.hits, misses=self.misses,
                          stores=self.stores, loaded=self.loaded,
                          evictions=self.evictions, compacted=self.compacted,
                          recovered_lines=self.recovered_lines)


class EstimateCache:
    """In-process QoR memo with optional JSONL persistence.

    ``max_entries`` bounds the in-memory entry count with LRU eviction
    (lookup hits refresh recency); None keeps the cache unbounded.  Evicted
    entries count into ``stats.evictions``.  The bound also applies while
    warming from a persisted file — the JSONL file itself is append-only and
    is *not* rewritten on entry-count eviction, so a later, larger-bounded
    process can still warm from everything ever stored.

    ``max_bytes`` bounds the cache by *serialized size* instead (each entry
    is charged its JSONL line length).  Unlike the entry-count bound it is a
    real storage budget, so it does rewrite the file: loading compacts the
    JSONL — dead lines (superseded duplicates, stale-model entries, corrupt
    lines, byte-bound evictees) are dropped and the file is atomically
    replaced by its live suffix, keeping it near the configured budget
    instead of growing forever.  Compaction also runs without ``max_bytes``
    whenever a load finds dead lines; dropped lines count into
    ``stats.compacted``.
    """

    def __init__(self, path: Optional[str] = None,
                 max_entries: Optional[int] = None,
                 max_bytes: Optional[int] = None):
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.path = path
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.stats = CacheStats()
        #: Insertion-ordered; least recently used first (hits re-insert).
        self._entries: dict[CacheKey, EvaluationRecord] = {}
        #: Serialized line bytes per entry (maintained iff max_bytes is set).
        self._sizes: dict[CacheKey, int] = {}
        self._total_bytes = 0
        self._handle = None
        #: Guards entries, stats and file appends: one cache instance may be
        #: shared by the per-kernel coordinator threads of a scheduler.
        self._lock = threading.Lock()
        if path:
            os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
            if os.path.exists(path):
                self._load(path)

    # -- lookup -----------------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def known_keys(self) -> frozenset:
        """Snapshot of every (fingerprint, encoded point) key currently held.

        Lets callers distinguish estimates that pre-dated a run from ones
        the run itself stored (no stats are touched).
        """
        with self._lock:
            return frozenset(self._entries)

    def get(self, fingerprint: str,
            encoded: Sequence[int]) -> Optional[EvaluationRecord]:
        with self._lock:
            key = (fingerprint, tuple(encoded))
            record = self._entries.get(key)
            if record is None:
                self.stats.misses += 1
                obs.counter("cache.misses")
            else:
                self.stats.hits += 1
                obs.counter("cache.hits")
                if self.max_entries is not None or self.max_bytes is not None:
                    # Refresh recency: re-insert at the most-recent end.
                    del self._entries[key]
                    self._entries[key] = record
            return record

    def put(self, fingerprint: str, record: EvaluationRecord) -> None:
        with self._lock:
            key = (fingerprint, tuple(record.encoded))
            if key in self._entries:
                return
            line = self._serialize(fingerprint, record) \
                if self.path or self.max_bytes is not None else None
            self._entries[key] = record
            if self.max_bytes is not None:
                self._charge(key, len(line) + 1)
            self.stats.stores += 1
            obs.counter("cache.stores")
            self._evict_over_bound()
            if self.path:
                self._append(line)

    def _charge(self, key: CacheKey, size: int) -> None:
        self._total_bytes += size - self._sizes.get(key, 0)
        self._sizes[key] = size

    def _evict_entry(self, key: CacheKey) -> None:
        del self._entries[key]
        if self.max_bytes is not None:
            self._total_bytes -= self._sizes.pop(key, 0)
        self.stats.evictions += 1
        obs.counter("cache.evictions")

    def _evict_over_bound(self) -> None:
        # Caller holds the lock.  Entries iterate least-recent first.  The
        # byte bound always keeps the newest entry, even one that alone
        # exceeds the budget — a cache that rejects what it just stored
        # would silently re-evaluate that point forever.
        if self.max_entries is not None:
            while len(self._entries) > self.max_entries:
                self._evict_entry(next(iter(self._entries)))
        if self.max_bytes is not None:
            while self._total_bytes > self.max_bytes and len(self._entries) > 1:
                self._evict_entry(next(iter(self._entries)))

    # -- persistence ------------------------------------------------------------------------

    def _load(self, path: str) -> None:
        # ``live`` holds the latest valid line per key, in first-seen order;
        # re-inserting on supersede would change which entries the LRU
        # bounds keep, so only the *content* is refreshed.
        live: dict[CacheKey, tuple[EvaluationRecord, str]] = {}
        dead = 0
        with open(path, "r", encoding="utf-8") as handle:
            lines = [line.strip() for line in handle]
        while lines and not lines[-1]:
            lines.pop()
        last_index = len(lines) - 1
        for index, line in enumerate(lines):
            if not line:
                continue
            try:
                data = json.loads(line)
                if data.get("model") != QOR_MODEL_VERSION:
                    dead += 1  # estimated under a stale QoR model
                    continue
                record = EvaluationRecord.from_json_dict(data["record"])
                key = (data["fingerprint"], record.encoded)
            except (KeyError, TypeError, ValueError):
                dead += 1  # truncated/corrupt/foreign line
                if index == last_index:
                    # A torn *trailing* line is the expected artifact of a
                    # crash mid-append (appends are flushed per line, so
                    # only the final one can be cut short).  Recover by
                    # dropping it: the entry just re-evaluates.
                    self.stats.recovered_lines += 1
                    obs.counter("cache.recovered_lines")
                    warnings.warn(
                        f"estimate cache {path!r}: dropped a truncated "
                        f"trailing line (torn write from an interrupted "
                        f"run); the affected point will be re-evaluated",
                        RuntimeWarning, stacklevel=2)
                continue
            if key in live:
                dead += 1  # superseded by this fresher line
            live[key] = (record, line)

        # The byte bound governs the file too: drop the least recently
        # stored lines until the live suffix fits the budget.
        if self.max_bytes is not None:
            keys = list(live)
            total = sum(len(line) + 1 for _, line in live.values())
            while total > self.max_bytes and len(live) > 1:
                _, line = live.pop(keys.pop(0))
                total -= len(line) + 1
                dead += 1

        for key, (record, line) in live.items():
            self._entries[key] = record
            if self.max_bytes is not None:
                self._charge(key, len(line) + 1)
            self.stats.loaded += 1
            obs.counter("cache.loaded")
            self._evict_over_bound()

        # Compact only when dead lines exist: an entry-count eviction alone
        # never rewrites the file (append-only warming stays intact).
        if dead:
            self._compact(path, [line for _, line in live.values()], dead)

    def _compact(self, path: str, lines: list[str], dead: int) -> None:
        """Atomically replace the JSONL file with its live lines."""
        tmp_path = path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            handle.write("".join(line + "\n" for line in lines))
        os.replace(tmp_path, path)
        self.stats.compacted += dead
        obs.counter("cache.compacted", dead)

    @staticmethod
    def _serialize(fingerprint: str, record: EvaluationRecord) -> str:
        return json.dumps({"fingerprint": fingerprint,
                           "model": QOR_MODEL_VERSION,
                           "record": record.to_json_dict()})

    def _append(self, line: str) -> None:
        # One lazily opened append handle for the cache's lifetime (caller
        # holds the lock); flushed per line so entries survive a crash.
        if self._handle is None:
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(line + "\n")
        self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

"""The QoR estimate cache.

Design-point evaluation — cloning the kernel, running the transform
pipeline, estimating QoR — dominates DSE wall-clock time, yet repeated
sweeps (benchmark reruns, resumed sessions, neighboring seeds) re-estimate
mostly the same points.  :class:`EstimateCache` memoizes
:class:`~repro.dse.runtime.records.EvaluationRecord` objects keyed by
``(kernel fingerprint, encoded design point)`` and can persist every entry
as one JSON line, so a warm cache survives the process.

The coordinator consults the cache *before* dispatching work to the pool,
so hit/miss accounting is exact and worker processes never touch the file.
"""

from __future__ import annotations

import dataclasses
import json
import os
import threading
from typing import Optional, Sequence

from repro import obs
from repro.dse.runtime.records import EvaluationRecord
from repro.estimation.estimator import QOR_MODEL_VERSION

#: Cache key: (kernel fingerprint, encoded design point).
CacheKey = tuple[str, tuple[int, ...]]


@dataclasses.dataclass
class CacheStats:
    """Lifetime accounting of one :class:`EstimateCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    loaded: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> "CacheStats":
        return CacheStats(hits=self.hits, misses=self.misses,
                          stores=self.stores, loaded=self.loaded,
                          evictions=self.evictions)


class EstimateCache:
    """In-process QoR memo with optional JSONL persistence.

    ``max_entries`` bounds the in-memory entry count with LRU eviction
    (lookup hits refresh recency); None keeps the cache unbounded.  Evicted
    entries count into ``stats.evictions``.  The bound also applies while
    warming from a persisted file — the JSONL file itself is append-only and
    is *not* rewritten on eviction, so a later, larger-bounded process can
    still warm from everything ever stored.
    """

    def __init__(self, path: Optional[str] = None,
                 max_entries: Optional[int] = None):
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.path = path
        self.max_entries = max_entries
        self.stats = CacheStats()
        #: Insertion-ordered; least recently used first (hits re-insert).
        self._entries: dict[CacheKey, EvaluationRecord] = {}
        self._handle = None
        #: Guards entries, stats and file appends: one cache instance may be
        #: shared by the per-kernel coordinator threads of a scheduler.
        self._lock = threading.Lock()
        if path:
            os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
            if os.path.exists(path):
                self._load(path)

    # -- lookup -----------------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def known_keys(self) -> frozenset:
        """Snapshot of every (fingerprint, encoded point) key currently held.

        Lets callers distinguish estimates that pre-dated a run from ones
        the run itself stored (no stats are touched).
        """
        with self._lock:
            return frozenset(self._entries)

    def get(self, fingerprint: str,
            encoded: Sequence[int]) -> Optional[EvaluationRecord]:
        with self._lock:
            key = (fingerprint, tuple(encoded))
            record = self._entries.get(key)
            if record is None:
                self.stats.misses += 1
                obs.counter("cache.misses")
            else:
                self.stats.hits += 1
                obs.counter("cache.hits")
                if self.max_entries is not None:
                    # Refresh recency: re-insert at the most-recent end.
                    del self._entries[key]
                    self._entries[key] = record
            return record

    def put(self, fingerprint: str, record: EvaluationRecord) -> None:
        with self._lock:
            key = (fingerprint, tuple(record.encoded))
            if key in self._entries:
                return
            self._entries[key] = record
            self.stats.stores += 1
            obs.counter("cache.stores")
            self._evict_over_bound()
            if self.path:
                self._append(fingerprint, record)

    def _evict_over_bound(self) -> None:
        # Caller holds the lock.  Entries iterate least-recent first.
        if self.max_entries is None:
            return
        while len(self._entries) > self.max_entries:
            del self._entries[next(iter(self._entries))]
            self.stats.evictions += 1
            obs.counter("cache.evictions")

    # -- persistence ------------------------------------------------------------------------

    def _load(self, path: str) -> None:
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    data = json.loads(line)
                    if data.get("model") != QOR_MODEL_VERSION:
                        continue  # estimated under a stale QoR model
                    record = EvaluationRecord.from_json_dict(data["record"])
                    key = (data["fingerprint"], record.encoded)
                except (KeyError, TypeError, ValueError):
                    continue  # tolerate truncated/corrupt/foreign lines
                self._entries.pop(key, None)  # later lines are fresher: refresh
                self._entries[key] = record
                self.stats.loaded += 1
                obs.counter("cache.loaded")
                self._evict_over_bound()

    def _append(self, fingerprint: str, record: EvaluationRecord) -> None:
        # One lazily opened append handle for the cache's lifetime (caller
        # holds the lock); flushed per line so entries survive a crash.
        if self._handle is None:
            self._handle = open(self.path, "a", encoding="utf-8")
        line = json.dumps({"fingerprint": fingerprint,
                           "model": QOR_MODEL_VERSION,
                           "record": record.to_json_dict()})
        self._handle.write(line + "\n")
        self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

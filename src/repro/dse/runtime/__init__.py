"""The parallel DSE runtime: multi-worker exploration at scale.

This package turns the single-threaded 5-step DSE engine into a scalable
exploration service, in four pieces:

* :class:`~repro.dse.runtime.parallel.ParallelExplorer` — a batch-synchronous
  coordinator that drives the engine's pure
  :class:`~repro.dse.engine.ExplorationPolicy` across a pool of worker
  processes, with a hard determinism guarantee: a fixed seed produces an
  identical Pareto frontier for any worker count.
* :class:`~repro.dse.runtime.cache.EstimateCache` — a QoR memo keyed by
  ``(kernel fingerprint, encoded design point)`` with optional JSONL
  persistence, so repeated sweeps skip re-estimation entirely.
* :class:`~repro.dse.runtime.checkpoint.CheckpointStore` — atomic snapshots
  of explorer state (records, RNG, progress) every N evaluations, enabling
  ``--resume`` after interruption with a bit-identical final frontier.
* :class:`~repro.dse.runtime.scheduler.MultiKernelScheduler` — concurrent
  DSE over many :class:`~repro.dse.runtime.scheduler.KernelTask`s (e.g.
  every function of a module) on one shared worker pool and cache.
* :class:`~repro.dse.runtime.model.ModelScheduler` — the whole-model flow:
  graph staging, per-node kernel splitting, budgeted multi-kernel sweep and
  model-level frontier composition.
* :class:`~repro.dse.runtime.transport.RemotePoolBackend` — the distributed
  flavor: evaluation dispatched over a supervised socket transport to
  worker agents (``repro-hls worker-agent``), local or off-machine, with
  the same determinism guarantee under disconnects and reconnects.
"""

from repro.dse.runtime.cache import CacheStats, EstimateCache
from repro.dse.runtime.checkpoint import CheckpointStore, ExplorerState
from repro.dse.runtime.faults import (
    EvaluationFailure,
    FaultPlan,
    InjectedFault,
    SupervisionPolicy,
    backoff_delay,
)
from repro.dse.runtime.model import (
    ModelDSEResult,
    ModelFrontierPoint,
    ModelScheduler,
    NodeBudgetPolicy,
    compose_model_frontier,
)
from repro.dse.runtime.parallel import ParallelDSEResult, ParallelExplorer
from repro.dse.runtime.records import EvaluationRecord
from repro.dse.runtime.scheduler import KernelTask, MultiKernelScheduler
from repro.dse.runtime.transport import (
    RemotePoolBackend,
    TransportConfig,
    run_worker_agent,
)
from repro.dse.runtime.worker import (
    KernelContext,
    ProcessPoolBackend,
    SerialBackend,
    create_backend,
)

__all__ = [
    "CacheStats",
    "EstimateCache",
    "CheckpointStore",
    "ExplorerState",
    "EvaluationFailure",
    "FaultPlan",
    "InjectedFault",
    "SupervisionPolicy",
    "backoff_delay",
    "ModelDSEResult",
    "ModelFrontierPoint",
    "ModelScheduler",
    "NodeBudgetPolicy",
    "compose_model_frontier",
    "ParallelDSEResult",
    "ParallelExplorer",
    "EvaluationRecord",
    "KernelTask",
    "MultiKernelScheduler",
    "RemotePoolBackend",
    "TransportConfig",
    "run_worker_agent",
    "KernelContext",
    "ProcessPoolBackend",
    "SerialBackend",
    "create_backend",
]

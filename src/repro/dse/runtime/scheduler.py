"""Concurrent DSE over every kernel of a module.

A DNN compiled through the graph flow (:func:`repro.pipeline.compile_dnn`)
contains one lowered function per dataflow stage; sweeping a whole model
means running DSE for each of them.  :class:`MultiKernelScheduler` does so
under a *shared resource budget*: one worker pool of ``jobs`` processes
serves all kernels, per-kernel coordinator threads interleave their batches
onto it, and a shared :class:`EstimateCache` deduplicates work across
kernels and runs.

Each kernel's trajectory stays fully deterministic — it only depends on the
kernel's own ``(seed, policy)`` stream, never on how the pool interleaved
the evaluations of its neighbors.
"""

from __future__ import annotations

import concurrent.futures
import os
from typing import Optional, Sequence

from repro.dse.runtime.cache import EstimateCache
from repro.dse.runtime.parallel import ParallelDSEResult, ParallelExplorer
from repro.dse.runtime.worker import KernelContext, create_backend
from repro.dse.space import KernelDesignSpace
from repro.estimation.platform import Platform, XC7Z020
from repro.ir.module import ModuleOp


class MultiKernelScheduler:
    """Runs DSE for many kernels concurrently on one shared worker pool."""

    def __init__(self, platform: Platform = XC7Z020, jobs: int = 1,
                 num_samples: int = 24, max_iterations: int = 48,
                 seed: int = 2022, batch_size: int = 8,
                 cache: Optional[EstimateCache] = None,
                 checkpoint_dir: Optional[str] = None,
                 checkpoint_every: int = 32,
                 mp_context: Optional[str] = None):
        self.platform = platform
        self.jobs = max(1, int(jobs))
        self.num_samples = num_samples
        self.max_iterations = max_iterations
        self.seed = seed
        self.batch_size = batch_size
        self.cache = cache
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_every = checkpoint_every
        self.mp_context = mp_context

    # -- public API -------------------------------------------------------------------------

    def explore_module(self, module: ModuleOp,
                       func_names: Optional[Sequence[str]] = None,
                       resume: bool = False) -> dict[str, ParallelDSEResult]:
        """Run DSE for every explorable function of ``module``.

        Functions without an affine loop nest (e.g. a dataflow top that only
        contains calls) are skipped.  Returns per-function results keyed by
        the function's symbol name.
        """
        kernels = self._explorable_kernels(module, func_names)
        if not kernels:
            return {}

        from repro.dse.apply import kernel_pipeline_signature

        signature = kernel_pipeline_signature()
        contexts = {
            name: KernelContext(module=module, func_name=name,
                                platform=self.platform, space=space,
                                pipeline=signature)
            for name, space in kernels
        }
        backend = create_backend(contexts, self.jobs, mp_context=self.mp_context)
        try:
            if self.jobs <= 1 or len(kernels) == 1:
                return {name: self._explore_one(module, name, space, backend, resume)
                        for name, space in kernels}
            # Spawn the pool's workers from the main thread, before any
            # coordinator threads exist: forking from a multi-threaded
            # process risks inheriting locks held by other threads.
            if hasattr(backend, "warm_up"):
                backend.warm_up()
            # One coordinator thread per kernel; they are I/O-bound (waiting
            # on pool futures), so threads are enough to keep the pool busy.
            with concurrent.futures.ThreadPoolExecutor(
                    max_workers=len(kernels)) as coordinators:
                futures = {
                    name: coordinators.submit(self._explore_one, module, name,
                                              space, backend, resume)
                    for name, space in kernels
                }
                return {name: future.result() for name, future in futures.items()}
        finally:
            backend.close()

    # -- internals --------------------------------------------------------------------------

    def _explorable_kernels(self, module: ModuleOp,
                            func_names: Optional[Sequence[str]]
                            ) -> list[tuple[str, KernelDesignSpace]]:
        if func_names is None:
            func_names = [func_op.get_attr("sym_name")
                          for func_op in module.functions()]
        kernels: list[tuple[str, KernelDesignSpace]] = []
        for name in func_names:
            func_op = module.lookup(name)
            if func_op is None:
                raise ValueError(f"function {name!r} not found in the module")
            try:
                space = KernelDesignSpace.from_function(func_op)
            except ValueError:
                continue  # no loop nest to explore
            kernels.append((name, space))
        return kernels

    def _explore_one(self, module: ModuleOp, name: str,
                     space: KernelDesignSpace, backend,
                     resume: bool) -> ParallelDSEResult:
        checkpoint_path = None
        if self.checkpoint_dir:
            checkpoint_path = os.path.join(self.checkpoint_dir, f"{name}.ckpt.json")
        explorer = ParallelExplorer(
            platform=self.platform, num_samples=self.num_samples,
            max_iterations=self.max_iterations, seed=self.seed,
            jobs=self.jobs, batch_size=self.batch_size, cache=self.cache,
            checkpoint_path=checkpoint_path, checkpoint_every=self.checkpoint_every)
        return explorer.explore(module, space=space, func_name=name,
                                resume=resume, backend=backend, context_key=name)

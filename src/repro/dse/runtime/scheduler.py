"""Concurrent DSE over many kernels sharing one worker pool.

A DNN compiled through the graph flow (:func:`repro.pipeline.compile_dnn`)
contains one lowered function per dataflow stage; sweeping a whole model
means running DSE for each of them.  :class:`MultiKernelScheduler` does so
under a *shared resource budget*: one worker pool of ``jobs`` processes
serves all kernels, per-kernel coordinator threads interleave their batches
onto it, and a shared :class:`EstimateCache` deduplicates work across
kernels and runs.

The unit of scheduling is a :class:`KernelTask` — a (module, function,
design space) triple with an optional per-task exploration budget.  The
whole-model scheduler (:mod:`repro.dse.runtime.model`) builds one task per
DNN node, each against its own single-function module: workers still
receive every task's context up front (one initializer payload), but it
holds N single-function modules instead of N copies of the whole model.

Each kernel's trajectory stays fully deterministic — it only depends on the
kernel's own ``(seed, budget)`` stream, never on how the pool interleaved
the evaluations of its neighbors.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import os
import threading
from typing import Optional, Sequence

from repro import obs
from repro.dse.runtime.cache import EstimateCache
from repro.dse.runtime.faults import (
    EvaluationFailure,
    FaultPlan,
    SupervisionPolicy,
)
from repro.dse.runtime.parallel import ParallelDSEResult, ParallelExplorer
from repro.dse.runtime.worker import KernelContext, create_backend
from repro.dse.space import KernelDesignSpace
from repro.estimation.platform import Platform, XC7Z020
from repro.ir.module import ModuleOp


@dataclasses.dataclass
class KernelTask:
    """One kernel to explore: where it lives and how much budget it gets.

    ``key`` names the task everywhere: the worker context, the checkpoint
    file (``<key>.ckpt.json``) and the result dictionary.  ``num_samples``
    and ``max_iterations`` override the scheduler defaults when set — the
    per-node budget policy of the whole-model sweep uses them to give light
    dataflow stages proportionally smaller explorations.
    """

    key: str
    module: ModuleOp
    func_name: Optional[str]
    space: KernelDesignSpace
    num_samples: Optional[int] = None
    max_iterations: Optional[int] = None
    #: Hard cap on evaluations processed this run (used to bound partial
    #: sweeps; unlike the budgets above it is not part of the trajectory, so
    #: a capped run checkpoints a resumable prefix of the uncapped one).
    max_evaluations: Optional[int] = None


class MultiKernelScheduler:
    """Runs DSE for many kernels concurrently on one shared worker pool."""

    def __init__(self, platform: Platform = XC7Z020, jobs: int = 1,
                 num_samples: int = 24, max_iterations: int = 48,
                 seed: int = 2022, batch_size: int = 8,
                 cache: Optional[EstimateCache] = None,
                 checkpoint_dir: Optional[str] = None,
                 checkpoint_every: int = 32,
                 mp_context: Optional[str] = None,
                 incremental: bool = True,
                 supervision: Optional[SupervisionPolicy] = None,
                 faults: Optional[FaultPlan] = None,
                 platforms: Optional[Sequence[Platform]] = None,
                 transport=None):
        self.platform = platform
        #: Platforms of a multi-platform sweep (adds the platform dimension
        #: to every task space built by :meth:`_module_tasks`); empty/None
        #: keeps the historical single-platform spaces.
        self.platforms = tuple(platforms or ())
        self.jobs = max(1, int(jobs))
        self.num_samples = num_samples
        self.max_iterations = max_iterations
        self.seed = seed
        self.batch_size = batch_size
        self.cache = cache
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_every = checkpoint_every
        self.mp_context = mp_context
        self.incremental = incremental
        self.supervision = supervision or SupervisionPolicy()
        self.faults = faults
        #: Socket-transport configuration; when set the shared backend is a
        #: :class:`~repro.dse.runtime.transport.RemotePoolBackend` and the
        #: per-kernel coordinators always run as threads (agent slots are
        #: the parallelism, not ``jobs``).
        self.transport = transport

    # -- public API -------------------------------------------------------------------------

    def explore_module(self, module: ModuleOp,
                       func_names: Optional[Sequence[str]] = None,
                       resume: bool = False) -> dict[str, ParallelDSEResult]:
        """Run DSE for every explorable function of ``module``.

        Functions without an affine loop nest (e.g. a dataflow top that only
        contains calls) are skipped.  Returns per-function results keyed by
        the function's symbol name.
        """
        tasks = self._module_tasks(module, func_names)
        return self.explore_kernels(tasks, resume=resume)

    def explore_kernels(self, tasks: Sequence[KernelTask],
                        resume: bool = False) -> dict[str, ParallelDSEResult]:
        """Run DSE for every :class:`KernelTask` on one shared pool.

        Returns results keyed by ``task.key`` (insertion order preserved).
        """
        tasks = list(tasks)
        if not tasks:
            return {}
        keys = [task.key for task in tasks]
        if len(set(keys)) != len(keys):
            raise ValueError(f"kernel task keys must be unique, got {keys}")

        from repro.dse.apply import kernel_pipeline_signature

        signature = kernel_pipeline_signature()
        contexts = {
            task.key: KernelContext(module=task.module, func_name=task.func_name,
                                    platform=self.platform, space=task.space,
                                    pipeline=signature,
                                    incremental=self.incremental,
                                    faults=self.faults)
            for task in tasks
        }
        stop_event = threading.Event()
        backend = create_backend(contexts, self.jobs, mp_context=self.mp_context,
                                 supervision=self.supervision,
                                 stop_event=stop_event,
                                 transport=self.transport)
        schedule_span = obs.NULL_SPAN if obs.active() is None else obs.span(
            "dse.schedule", kernels=len(tasks), jobs=self.jobs)
        try:
            with schedule_span:
                if (self.jobs <= 1 and self.transport is None) \
                        or len(tasks) == 1:
                    return {task.key: self._explore_one(task, backend, resume,
                                                        stop_event)
                            for task in tasks}
                # Spawn the pool's workers from the main thread, before any
                # coordinator threads exist: forking from a multi-threaded
                # process risks inheriting locks held by other threads.
                # Deliberately unspanned: the warm-up only exists for jobs>1,
                # and the trace skeleton must be identical across --jobs.
                if hasattr(backend, "warm_up"):
                    backend.warm_up()
                # One coordinator thread per kernel; they are I/O-bound
                # (waiting on pool futures), so threads are enough to keep
                # the pool busy.
                with concurrent.futures.ThreadPoolExecutor(
                        max_workers=len(tasks)) as coordinators:
                    futures = {
                        task.key: coordinators.submit(self._explore_one, task,
                                                      backend, resume,
                                                      stop_event)
                        for task in tasks
                    }
                    try:
                        return {key: self._task_result(key, future)
                                for key, future in futures.items()}
                    except KeyboardInterrupt:
                        # Ctrl-C: stop submissions, fail in-flight futures
                        # so every coordinator unblocks, writes its boundary
                        # checkpoint and exits; then let the interrupt
                        # propagate (the ThreadPoolExecutor context joins
                        # the unblocked coordinators on the way out).
                        if hasattr(backend, "request_stop"):
                            backend.request_stop()
                        for future in futures.values():
                            future.cancel()
                        raise
        finally:
            backend.close()

    # -- internals --------------------------------------------------------------------------

    def _module_tasks(self, module: ModuleOp,
                      func_names: Optional[Sequence[str]]) -> list[KernelTask]:
        if func_names is None:
            func_names = [func_op.get_attr("sym_name")
                          for func_op in module.functions()]
        tasks: list[KernelTask] = []
        for name in func_names:
            func_op = module.lookup(name)
            if func_op is None:
                raise ValueError(f"function {name!r} not found in the module")
            try:
                space = KernelDesignSpace.from_function(
                    func_op, platforms=self.platforms or None)
            except ValueError:
                continue  # no loop nest to explore
            tasks.append(KernelTask(key=name, module=module, func_name=name,
                                    space=space))
        return tasks

    @staticmethod
    def _task_result(key: str, future) -> ParallelDSEResult:
        """Unwrap one coordinator future with an attributable error."""
        try:
            return future.result()
        except (EvaluationFailure, concurrent.futures.CancelledError):
            raise
        except Exception as error:
            raise EvaluationFailure(
                f"DSE for kernel {key!r} failed: "
                f"{type(error).__name__}: {error}") from error

    def _explore_one(self, task: KernelTask, backend, resume: bool,
                     stop_event: Optional[threading.Event] = None
                     ) -> ParallelDSEResult:
        checkpoint_path = None
        if self.checkpoint_dir:
            checkpoint_path = os.path.join(self.checkpoint_dir,
                                           f"{task.key}.ckpt.json")
        explorer = ParallelExplorer(
            platform=self.platform,
            platforms=self.platforms or None,
            num_samples=task.num_samples if task.num_samples is not None
            else self.num_samples,
            max_iterations=task.max_iterations if task.max_iterations is not None
            else self.max_iterations,
            seed=self.seed, jobs=self.jobs, batch_size=self.batch_size,
            cache=self.cache, checkpoint_path=checkpoint_path,
            checkpoint_every=self.checkpoint_every,
            max_evaluations=task.max_evaluations,
            incremental=self.incremental,
            supervision=self.supervision, faults=self.faults,
            stop_event=stop_event)
        return explorer.explore(task.module, space=task.space,
                                func_name=task.func_name, resume=resume,
                                backend=backend, context_key=task.key)

"""The parallel design-space exploration coordinator.

:class:`ParallelExplorer` drives the same :class:`ExplorationPolicy` as the
serial engine, but in *batches*: every iteration proposes ``batch_size``
distinct unexplored neighbors against the current frontier, evaluates the
batch through an evaluation backend (inline or a process pool), then merges
the results and recomputes the frontier.

Determinism contract
--------------------

For a fixed ``(seed, num_samples, max_iterations, batch_size)`` the explorer
visits the same points and returns the same frontier regardless of

* the number of worker processes (``jobs``) — proposals never depend on
  evaluation completion order, and the frontier is a pure function of the
  evaluated *set*;
* cache warmth — cached records equal freshly evaluated ones because
  evaluation is deterministic;
* interruption — checkpoints snapshot state at batch boundaries, and a
  resumed run replays the exact continuation of the trajectory.

``batch_size`` is deliberately independent of ``jobs``: it is part of the
exploration trajectory, while ``jobs`` is purely an execution detail.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Optional, Sequence

from repro import obs
from repro.dse.apply import AppliedDesign, apply_design_point
from repro.dse.engine import ExplorationPolicy
from repro.dse.pareto import ParetoPoint
from repro.dse.runtime.cache import EstimateCache
from repro.dse.runtime.checkpoint import CheckpointStore, ExplorerState
from repro.dse.runtime.faults import FaultPlan, SupervisionPolicy
from repro.dse.runtime.records import EvaluationRecord
from repro.dse.runtime.worker import KernelContext, create_backend
from repro.dse.space import KernelDesignSpace
from repro.estimation.platform import Platform, XC7Z020
from repro.ir.module import ModuleOp


def frontier_hypervolume(frontier: list[ParetoPoint]) -> float:
    """Deterministic 2D hypervolume of a (latency, area) Pareto frontier.

    The reference point is the frontier's own worst corner (max latency, max
    area), so the value is a pure function of the frontier — no external
    bounds to configure, deterministic across runs and worker counts.  A
    frontier of fewer than two points has zero dominated area by this
    definition; growth of the value over iterations tracks how much of the
    trade-off curve the exploration has uncovered.
    """
    if len(frontier) < 2:
        return 0.0
    ref_latency = max(point.latency for point in frontier)
    ref_area = max(point.area for point in frontier)
    # Standard 2D staircase sweep: ascending latency, descending area.
    ordered = sorted(frontier, key=lambda p: (p.latency, p.area))
    volume = 0.0
    for point, nxt in zip(ordered, ordered[1:]):
        volume += (nxt.latency - point.latency) * (ref_area - point.area)
    return volume


def _kernel_fingerprint(space: KernelDesignSpace, func_op,
                        platform: Optional[Platform] = None) -> str:
    """Cache/checkpoint identity of (kernel, design space, pipeline, platform).

    ``space.fingerprint()`` covers the kernel IR only when the space was
    built via :meth:`KernelDesignSpace.from_function`; a directly
    constructed space (``ir_digest == ""``) would collide across different
    kernels with the same shape.  The runtime always has the function at
    hand, so it mixes the actual IR digest in for that case.

    The canonical pipeline signature of the evaluation flow is always mixed
    in: cached estimates produced under a different transform pipeline must
    never be reused.  The same goes for the hardware model: the platform's
    ``config_hash()`` is mixed in (for multi-platform spaces, the space
    fingerprint already hashes every platform of the sweep), so estimates
    cached under one platform are never served to a sweep over another.
    """
    import hashlib

    from repro.dse.apply import kernel_pipeline_signature

    parts = [space.fingerprint(), kernel_pipeline_signature()]
    if platform is not None:
        parts.append(platform.config_hash())
    if not space.ir_digest:
        from repro.dse.space import ir_digest

        parts.append(ir_digest(func_op))
    combined = ":".join(parts)
    return hashlib.sha256(combined.encode("utf-8")).hexdigest()[:20]


@dataclasses.dataclass
class ParallelDSEResult:
    """Outcome of one parallel exploration run.

    Unlike the serial :class:`~repro.dse.engine.DSEResult`, evaluations are
    slim :class:`EvaluationRecord` objects; the optimized IR of interesting
    designs is re-materialized on demand via :meth:`materialize`.
    """

    frontier: list[ParetoPoint]
    records: dict[tuple[int, ...], EvaluationRecord]
    best_record: Optional[EvaluationRecord]
    num_evaluations: int
    evaluated_this_run: int
    cache_hits: int
    cache_misses: int
    space: KernelDesignSpace
    fingerprint: str
    wall_seconds: float
    module: ModuleOp
    func_name: Optional[str]
    platform: Platform
    #: Refinement iterations completed over the kernel's whole trajectory
    #: (across resumes).  Reporting-only: deliberately absent from any
    #: exported JSON so artifacts stay byte-identical run to run.
    iterations_done: int = 0

    @property
    def best_point(self):
        return self.best_record.point if self.best_record is not None else None

    def frontier_records(self) -> list[EvaluationRecord]:
        return [self.records[point.encoded] for point in self.frontier]

    # -- per-platform views (multi-platform sweeps) ------------------------------------------

    def platform_names(self) -> list[str]:
        """The sweep's platform names (empty for single-platform runs)."""
        return list(self.space.platform_options)

    def _records_for(self, name: str) -> dict[tuple[int, ...], EvaluationRecord]:
        return {encoded: record for encoded, record in self.records.items()
                if record.point.platform == name}

    def frontier_for(self, name: str):
        """Pareto frontier over the points evaluated against one platform."""
        from repro.dse.engine import ExplorationPolicy

        return ExplorationPolicy.frontier_of(self._records_for(name))

    def frontier_records_for(self, name: str) -> list[EvaluationRecord]:
        records = self._records_for(name)
        return [records[point.encoded] for point in self.frontier_for(name)]

    def best_record_for(self, name: str) -> Optional[EvaluationRecord]:
        """Finalized design of one platform of the sweep (step 5 per target)."""
        from repro.dse.engine import ExplorationPolicy

        records = self._records_for(name)
        return ExplorationPolicy.finalize(self.frontier_for(name), records,
                                          self.space.platform_named(name))

    def quarantined_records(self) -> list[EvaluationRecord]:
        """Points that exhausted their fault retries, in encoded order."""
        return [record for _, record in sorted(self.records.items())
                if not record.ok]

    @property
    def num_quarantined(self) -> int:
        return sum(1 for record in self.records.values() if not record.ok)

    def materialize(self, encoded: tuple[int, ...]) -> AppliedDesign:
        """Re-apply a design point to get its optimized module (for emission)."""
        point = self.space.decode(encoded)
        platform = (self.space.platform_named(point.platform)
                    if point.platform else self.platform)
        return apply_design_point(self.module, point, platform,
                                  func_name=self.func_name)

    def best_design(self) -> Optional[AppliedDesign]:
        if self.best_record is None:
            return None
        return self.materialize(self.best_record.encoded)


class ParallelExplorer:
    """Batch-synchronous, cache-aware, checkpointable DSE coordinator."""

    def __init__(self, platform: Platform = XC7Z020, num_samples: int = 24,
                 max_iterations: int = 48, seed: int = 2022,
                 jobs: int = 1, batch_size: int = 8,
                 cache: Optional[EstimateCache] = None,
                 checkpoint_path: Optional[str] = None,
                 checkpoint_every: int = 32,
                 max_evaluations: Optional[int] = None,
                 mp_context: Optional[str] = None,
                 incremental: bool = True,
                 supervision: Optional[SupervisionPolicy] = None,
                 faults: Optional[FaultPlan] = None,
                 stop_event=None,
                 platforms: Optional[Sequence[Platform]] = None,
                 transport=None):
        self.platform = platform
        #: Platforms of a multi-platform sweep (adds the platform dimension
        #: to spaces the explorer builds itself); empty/None sweeps a single
        #: platform with the exact historical space shape and trajectory.
        self.platforms = tuple(platforms or ())
        self.num_samples = num_samples
        self.max_iterations = max_iterations
        self.seed = seed
        self.jobs = max(1, int(jobs))
        self.batch_size = max(1, int(batch_size))
        self.cache = cache
        self.checkpoint_path = checkpoint_path
        self.checkpoint_every = max(1, int(checkpoint_every))
        self.max_evaluations = max_evaluations
        self.mp_context = mp_context
        #: Prefix-snapshot caching in the evaluation backends (execution
        #: detail: results are identical either way, so the flag is absent
        #: from checkpoint configs and cache fingerprints).
        self.incremental = incremental
        #: Fault handling (timeouts/retries/quarantine) and the injected
        #: fault schedule.  Both are execution details: fault outcomes
        #: attach to design points, so they never alter the trajectory and
        #: stay out of fingerprints and checkpoint configs.
        self.supervision = supervision or SupervisionPolicy()
        self.faults = faults
        #: Cooperative-stop flag shared with an owning scheduler (checked by
        #: the backends at wave boundaries).
        self.stop_event = stop_event
        #: Socket-transport configuration
        #: (:class:`~repro.dse.runtime.transport.TransportConfig`); when set,
        #: evaluation runs on connected worker agents instead of a local
        #: backend.  Pure execution detail, like ``jobs``.
        self.transport = transport

    # -- exploration ------------------------------------------------------------------------

    def explore(self, module: ModuleOp,
                space: Optional[KernelDesignSpace] = None,
                func_name: Optional[str] = None,
                resume: bool = False,
                backend=None, context_key: str = "kernel") -> ParallelDSEResult:
        """Explore ``module``'s kernel; optionally resume from a checkpoint.

        ``backend``/``context_key`` let a scheduler inject a shared worker
        pool; when omitted the explorer creates (and owns) its own backend.
        """
        started = time.perf_counter()
        func_op = module.lookup(func_name) if func_name else module.functions()[0]
        if space is None:
            space = KernelDesignSpace.from_function(
                func_op, platforms=self.platforms or None)
        fingerprint = _kernel_fingerprint(
            space, func_op, platform=None if space.platforms else self.platform)

        # The parameters that define the exploration trajectory: a checkpoint
        # taken under different ones must not be resumed (it would continue
        # the *old* trajectory mislabeled as the new configuration).  The
        # pipeline signature guards the *meaning* of every recorded QoR the
        # same way.
        from repro.dse.apply import kernel_pipeline_signature

        config = {"seed": self.seed, "batch_size": self.batch_size,
                  "num_samples": self.num_samples,
                  "max_iterations": self.max_iterations,
                  "pipeline": kernel_pipeline_signature()}
        # The hardware model(s) the recorded QoRs are valid under: a
        # checkpoint taken against a different platform config (even one
        # merely renamed or re-clocked) must not be resumed.
        if space.platforms:
            # Lists, not tuples: the config must survive the checkpoint's
            # JSON round-trip and still compare equal on load.
            config["platforms"] = [[platform.name, platform.config_hash()]
                                   for platform in space.platforms]
        else:
            config["platform"] = self.platform.config_hash()
        store = CheckpointStore(self.checkpoint_path) if self.checkpoint_path else None
        state: Optional[ExplorerState] = None
        if resume and store is not None:
            state = store.load(expected_fingerprint=fingerprint,
                               expected_config=config)
        if state is None:
            state = ExplorerState.fresh(fingerprint, self.seed, config=config)

        # The backend is created lazily: a fully cache-warm run never needs
        # worker processes at all.
        injected_backend = backend
        created_backend = None

        def get_backend():
            nonlocal created_backend
            if injected_backend is not None:
                return injected_backend
            if created_backend is None:
                contexts = {context_key: KernelContext(
                    module=module, func_name=func_name,
                    platform=self.platform, space=space,
                    pipeline=config["pipeline"],
                    incremental=self.incremental,
                    faults=self.faults)}
                created_backend = create_backend(contexts, self.jobs,
                                                 mp_context=self.mp_context,
                                                 supervision=self.supervision,
                                                 stop_event=self.stop_event,
                                                 transport=self.transport)
            return created_backend

        evaluated_this_run = 0
        processed_this_run = 0
        since_checkpoint = 0
        run_hits = 0
        run_misses = 0

        obs_on = obs.active() is not None

        def evaluate_batch(batch: list[tuple[int, ...]]) -> None:
            nonlocal evaluated_this_run, processed_this_run, since_checkpoint
            nonlocal run_hits, run_misses
            batch_span = obs.NULL_SPAN if not obs_on else obs.span(
                "dse.batch", kernel=context_key, points=len(batch))
            with batch_span:
                missing: list[tuple[int, ...]] = []
                for encoded in batch:
                    record = (self.cache.get(fingerprint, encoded)
                              if self.cache is not None else None)
                    if record is not None:
                        state.records[encoded] = record
                    else:
                        missing.append(encoded)
                batch_span.set(cached=len(batch) - len(missing))
                if missing:
                    for record in get_backend().evaluate(context_key, missing):
                        state.records[record.encoded] = record
                        if self.cache is not None:
                            self.cache.put(fingerprint, record)
            if self.cache is not None:
                run_hits += len(batch) - len(missing)
                run_misses += len(missing)
            evaluated_this_run += len(missing)
            processed_this_run += len(batch)
            since_checkpoint += len(batch)
            if obs_on:
                obs.counter("dse.points", len(batch))
                obs.counter("dse.evaluations", len(missing))
                obs.observe("dse.batch.points", len(batch))

        def record_frontier(frontier: list[ParetoPoint]) -> None:
            """Per-iteration convergence series: frontier size + hypervolume.

            Keyed by the trajectory step (``iterations_done``), not by time,
            so the series is identical across ``--jobs``.
            """
            if obs_on:
                obs.series(f"dse.frontier.size.{context_key}",
                           state.iterations_done, len(frontier))
                obs.series(f"dse.frontier.hv.{context_key}",
                           state.iterations_done,
                           frontier_hypervolume(frontier))

        def maybe_checkpoint(rng, force: bool = False) -> None:
            nonlocal since_checkpoint
            if store is None:
                return
            if not force and since_checkpoint < self.checkpoint_every:
                return
            state.capture_rng(rng)
            store.save(state)
            since_checkpoint = 0

        def budget_left() -> bool:
            return (self.max_evaluations is None
                    or processed_this_run < self.max_evaluations)

        # A consistent batch-boundary snapshot for interrupt checkpointing:
        # mid-batch state (an advanced RNG plus a partially merged batch)
        # must never reach disk — resuming it would diverge from the
        # uninterrupted trajectory.  The snapshot is refreshed after every
        # fully merged batch and is what a Ctrl-C checkpoint saves.
        boundary = None

        def mark_boundary(rng) -> None:
            nonlocal boundary
            boundary = (dict(state.records), state.samples_done,
                        state.iterations_done, rng.getstate())

        def checkpoint_boundary() -> None:
            if store is None or boundary is None:
                return
            records, samples_done, iterations_done, rng_state = boundary
            state.records = records
            state.samples_done = samples_done
            state.iterations_done = iterations_done
            state.rng_state = rng_state
            store.save(state)

        explore_span = obs.NULL_SPAN if not obs_on else obs.span(
            "dse.explore", kernel=context_key, jobs=self.jobs,
            batch_size=self.batch_size, seed=self.seed)
        try:
            with obs.track(f"dse:{context_key}"), explore_span:
                rng = state.make_rng()
                mark_boundary(rng)

                # Step 1: initial sampling (skipped entirely when resuming
                # past it).
                if not state.samples_done:
                    batch = ExplorationPolicy.initial_batch(
                        space, rng, self.num_samples)
                    evaluate_batch([e for e in batch
                                    if e not in state.records])
                    state.samples_done = True
                    mark_boundary(rng)
                    maybe_checkpoint(rng)

                frontier = ExplorationPolicy.frontier_of(state.records)
                record_frontier(frontier)

                # Steps 2-4: batched frontier evolution.
                while (state.iterations_done < self.max_iterations and frontier
                       and budget_left()):
                    remaining = self.max_iterations - state.iterations_done
                    batch = ExplorationPolicy.propose_batch(
                        frontier, space, state.records, rng,
                        batch_size=min(self.batch_size, remaining))
                    if not batch:
                        break
                    evaluate_batch(batch)
                    state.iterations_done += len(batch)
                    mark_boundary(rng)
                    frontier = ExplorationPolicy.frontier_of(state.records)
                    record_frontier(frontier)
                    maybe_checkpoint(rng)

                maybe_checkpoint(rng, force=True)

                # Step 5: finalization.
                best = ExplorationPolicy.finalize(frontier, state.records,
                                                  self.platform)
                if obs_on:
                    obs.gauge(f"dse.node.{context_key}.iterations_done",
                              state.iterations_done)
                    obs.gauge(f"dse.node.{context_key}.iterations_budget",
                              self.max_iterations)
                    obs.gauge(f"dse.node.{context_key}.samples_budget",
                              self.num_samples)
        except KeyboardInterrupt:
            # Graceful interruption: persist the last completed batch
            # boundary so --resume continues the exact trajectory, then let
            # the interrupt propagate to the caller (the driver turns it
            # into a one-line resume hint).
            checkpoint_boundary()
            raise
        finally:
            if created_backend is not None:
                created_backend.close()

        return ParallelDSEResult(
            frontier=frontier,
            records=dict(state.records),
            best_record=best,
            num_evaluations=len(state.records),
            evaluated_this_run=evaluated_this_run,
            cache_hits=run_hits,
            cache_misses=run_misses,
            space=space,
            fingerprint=fingerprint,
            wall_seconds=time.perf_counter() - started,
            module=module,
            func_name=func_name,
            platform=self.platform,
            iterations_done=state.iterations_done,
        )

"""Slim, picklable evaluation results exchanged between DSE processes.

An :class:`EvaluationRecord` is everything the exploration policy needs to
know about an evaluated design point — its QoR and the decoded transform
parameters — without the transformed IR module.  Workers ship records back
to the coordinator (cheap to pickle), the estimate cache persists them as
JSON lines, and checkpoints snapshot them wholesale.  The full
:class:`~repro.dse.apply.AppliedDesign` (with the optimized module, e.g. for
C++ emission) is re-materialized on demand by re-applying the design point,
which is cheap for the handful of frontier designs that survive exploration.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.dse.apply import AppliedDesign
from repro.dse.space import KernelDesignPoint
from repro.estimation.estimator import QoRResult
from repro.estimation.resources import ResourceUsage


#: A record that evaluated successfully carries this status.
STATUS_OK = "ok"

#: A record whose point exhausted its fault retries and was quarantined:
#: it is cached and checkpointed like any other record (so the decision
#: survives ``--resume`` and warm caches), but it is excluded from every
#: frontier and can never be finalized.
STATUS_QUARANTINED = "quarantined"


@dataclasses.dataclass(frozen=True)
class EvaluationRecord:
    """QoR of one evaluated design point, detached from its IR module.

    ``status`` distinguishes healthy records (:data:`STATUS_OK`, with a
    real ``qor``) from quarantined ones (:data:`STATUS_QUARANTINED`, whose
    ``qor`` is None and whose ``error`` describes the exhausted fault).
    Quarantined records are first-class: the exploration policy treats
    their points as *visited* (so proposals are identical at any worker
    count) while every frontier excludes them.
    """

    encoded: tuple[int, ...]
    point: KernelDesignPoint
    qor: Optional[QoRResult]
    achieved_ii: Optional[int] = None
    status: str = STATUS_OK
    error: str = ""
    #: ``config_hash()`` of the platform the point was evaluated against,
    #: or "" in single-platform sweeps (where the runtime fingerprint
    #: already pins the platform globally).
    platform_hash: str = ""

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    @classmethod
    def from_design(cls, encoded: tuple[int, ...], design: AppliedDesign,
                    platform_hash: str = "") -> "EvaluationRecord":
        return cls(encoded=tuple(encoded), point=design.point, qor=design.qor,
                   achieved_ii=design.achieved_ii, platform_hash=platform_hash)

    @classmethod
    def quarantined(cls, encoded: tuple[int, ...], point: KernelDesignPoint,
                    error: str) -> "EvaluationRecord":
        """A failed evaluation promoted to a first-class, persistable record."""
        return cls(encoded=tuple(encoded), point=point, qor=None,
                   achieved_ii=None, status=STATUS_QUARANTINED, error=error)

    # -- JSON (de)serialization for the cache / checkpoint files ----------------------------

    def to_json_dict(self) -> dict:
        data = {
            "encoded": list(self.encoded),
            "point": {
                "loop_perfectization": self.point.loop_perfectization,
                "remove_variable_bound": self.point.remove_variable_bound,
                "perm_map": list(self.point.perm_map),
                "tile_sizes": list(self.point.tile_sizes),
                "target_ii": self.point.target_ii,
                "pipeline": self.point.pipeline,
            },
            "qor": None if self.qor is None else {
                "latency": self.qor.latency,
                "interval": self.qor.interval,
                "resources": dataclasses.asdict(self.qor.resources),
            },
            "achieved_ii": self.achieved_ii,
        }
        # Healthy single-platform records keep the historical layout
        # byte-for-byte, so caches and checkpoints written before the
        # status/platform fields existed stay valid (and identical) both ways.
        if self.point.platform:
            data["point"]["platform"] = self.point.platform
        if self.platform_hash:
            data["platform_hash"] = self.platform_hash
        if not self.ok:
            data["status"] = self.status
            data["error"] = self.error
        return data

    @classmethod
    def from_json_dict(cls, data: dict) -> "EvaluationRecord":
        point_data = data["point"]
        qor_data = data["qor"]
        return cls(
            encoded=tuple(int(v) for v in data["encoded"]),
            point=KernelDesignPoint(
                loop_perfectization=bool(point_data["loop_perfectization"]),
                remove_variable_bound=bool(point_data["remove_variable_bound"]),
                perm_map=tuple(int(v) for v in point_data["perm_map"]),
                tile_sizes=tuple(int(v) for v in point_data["tile_sizes"]),
                target_ii=int(point_data["target_ii"]),
                pipeline=str(point_data.get("pipeline", "default")),
                platform=str(point_data.get("platform", "")),
            ),
            qor=None if qor_data is None else QoRResult(
                latency=int(qor_data["latency"]),
                interval=int(qor_data["interval"]),
                resources=ResourceUsage(**qor_data["resources"]),
            ),
            achieved_ii=data.get("achieved_ii"),
            status=str(data.get("status", STATUS_OK)),
            error=str(data.get("error", "")),
            platform_hash=str(data.get("platform_hash", "")),
        )

"""Slim, picklable evaluation results exchanged between DSE processes.

An :class:`EvaluationRecord` is everything the exploration policy needs to
know about an evaluated design point — its QoR and the decoded transform
parameters — without the transformed IR module.  Workers ship records back
to the coordinator (cheap to pickle), the estimate cache persists them as
JSON lines, and checkpoints snapshot them wholesale.  The full
:class:`~repro.dse.apply.AppliedDesign` (with the optimized module, e.g. for
C++ emission) is re-materialized on demand by re-applying the design point,
which is cheap for the handful of frontier designs that survive exploration.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.dse.apply import AppliedDesign
from repro.dse.space import KernelDesignPoint
from repro.estimation.estimator import QoRResult
from repro.estimation.resources import ResourceUsage


@dataclasses.dataclass(frozen=True)
class EvaluationRecord:
    """QoR of one evaluated design point, detached from its IR module."""

    encoded: tuple[int, ...]
    point: KernelDesignPoint
    qor: QoRResult
    achieved_ii: Optional[int] = None

    @classmethod
    def from_design(cls, encoded: tuple[int, ...],
                    design: AppliedDesign) -> "EvaluationRecord":
        return cls(encoded=tuple(encoded), point=design.point, qor=design.qor,
                   achieved_ii=design.achieved_ii)

    # -- JSON (de)serialization for the cache / checkpoint files ----------------------------

    def to_json_dict(self) -> dict:
        return {
            "encoded": list(self.encoded),
            "point": {
                "loop_perfectization": self.point.loop_perfectization,
                "remove_variable_bound": self.point.remove_variable_bound,
                "perm_map": list(self.point.perm_map),
                "tile_sizes": list(self.point.tile_sizes),
                "target_ii": self.point.target_ii,
                "pipeline": self.point.pipeline,
            },
            "qor": {
                "latency": self.qor.latency,
                "interval": self.qor.interval,
                "resources": dataclasses.asdict(self.qor.resources),
            },
            "achieved_ii": self.achieved_ii,
        }

    @classmethod
    def from_json_dict(cls, data: dict) -> "EvaluationRecord":
        point_data = data["point"]
        qor_data = data["qor"]
        return cls(
            encoded=tuple(int(v) for v in data["encoded"]),
            point=KernelDesignPoint(
                loop_perfectization=bool(point_data["loop_perfectization"]),
                remove_variable_bound=bool(point_data["remove_variable_bound"]),
                perm_map=tuple(int(v) for v in point_data["perm_map"]),
                tile_sizes=tuple(int(v) for v in point_data["tile_sizes"]),
                target_ii=int(point_data["target_ii"]),
                pipeline=str(point_data.get("pipeline", "default")),
            ),
            qor=QoRResult(
                latency=int(qor_data["latency"]),
                interval=int(qor_data["interval"]),
                resources=ResourceUsage(**qor_data["resources"]),
            ),
            achieved_ii=data.get("achieved_ii"),
        )

"""Fault injection and supervision policy for the DSE runtime.

The evaluation backends in :mod:`repro.dse.runtime.worker` are supervised:
per-task wall-clock timeouts, worker-crash detection with pool respawn, and
bounded retries with deterministic quarantine.  This module holds the two
configuration objects of that layer plus the fault-injection harness the
tests and CI chaos runs use to exercise it:

* :class:`SupervisionPolicy` — how the coordinator reacts to evaluation
  faults (timeout budget, retry budget, quarantine vs. abort).
* :class:`FaultPlan` — *injected* faults: a picklable description threaded
  into :class:`~repro.dse.runtime.worker.KernelContext` that makes selected
  evaluations crash, hang, flake or fail deterministically, so the
  supervision layer can be tested end-to-end without real hardware faults
  (driver flag: ``--inject-faults SPEC``).

Determinism: fault *selection* is a pure function of the encoded design
point (a stable hash, never ``id()`` or wall-clock), and flaky/crash/hang
attempt counting lives in an on-disk ledger shared by every worker process
— so an injected fault fires on the same points, the same number of times,
at any ``--jobs`` and across pool respawns.  A retried point therefore
converges to the same record the fault-free run computes, which is what the
frontier byte-compare tests assert.
"""

from __future__ import annotations

import dataclasses
import os
import tempfile
import time
import zlib
from typing import Optional

#: Exit code of an injected worker crash (recognizable in CI logs).
CRASH_EXIT_CODE = 86

#: Transport-level failure modes: they fire in the *worker agent* around a
#: task (see :mod:`repro.dse.runtime.transport`), never inside the
#: evaluation itself, so local backends simply never trigger them.
TRANSPORT_FAULT_MODES = ("disconnect", "stall", "garbage-frame")

#: The injectable failure modes.
FAULT_MODES = ("crash", "hang", "flaky", "poison") + TRANSPORT_FAULT_MODES

#: Per-process evaluation ordinal (used by the ``nth`` chaos selector).
_LOCAL_EVALUATIONS = 0


def backoff_delay(attempt: int, base: float) -> float:
    """Deterministic exponential backoff: ``base * 2**(attempt - 1)`` seconds.

    ``attempt`` is 1-based (the first retry waits ``base`` seconds).  This is
    *the* retry schedule of the runtime — the evaluation retry path
    (:meth:`SupervisionPolicy.backoff_seconds`) and the transport reconnect
    path (:func:`repro.dse.runtime.transport.run_worker_agent`) both call it,
    so every backoff in the system is provably the same pure function of the
    attempt number (wall-clock only, never part of a trajectory).
    """
    return base * (2 ** max(0, attempt - 1))


class InjectedFault(RuntimeError):
    """Raised by :meth:`FaultPlan.apply` for the flaky/poison modes."""


class EvaluationFailure(RuntimeError):
    """A design-point evaluation failed for good.

    Raised by the supervision layer when ``on_fault="fail"`` (or for
    non-retryable configuration errors), always carrying the kernel name
    and the encoded design point so the error is actionable.
    """


@dataclasses.dataclass(frozen=True)
class SupervisionPolicy:
    """How the evaluation backends react to faults.

    ``task_timeout`` is a wall-clock budget per dispatched evaluation (None
    disables timeouts); a task that exceeds it has its worker killed and is
    charged one fault.  Every charged fault (timeout, worker crash, or an
    exception raised by the evaluation itself) consumes one of
    ``max_retries`` bounded retries with deterministic exponential backoff
    (``backoff * 2**attempt`` seconds — wall-clock only, never part of the
    trajectory).  A point that exhausts its retries is *quarantined* — it
    becomes a first-class failed
    :class:`~repro.dse.runtime.records.EvaluationRecord` that is cached,
    checkpointed and excluded from the frontier identically at any
    ``--jobs`` — or, with ``on_fault="fail"``, aborts the run with an
    :class:`EvaluationFailure`.
    """

    task_timeout: Optional[float] = None
    max_retries: int = 2
    on_fault: str = "quarantine"
    backoff: float = 0.05

    def __post_init__(self):
        if self.on_fault not in ("quarantine", "fail"):
            raise ValueError(f"on_fault must be 'quarantine' or 'fail', "
                             f"got {self.on_fault!r}")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError(f"task_timeout must be positive, "
                             f"got {self.task_timeout}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")

    def backoff_seconds(self, attempt: int) -> float:
        """Deterministic backoff before retry number ``attempt`` (1-based)."""
        return backoff_delay(attempt, self.backoff)


def stable_point_hash(key: str, encoded: tuple) -> int:
    """A stable, process-independent hash of one (kernel, point) identity."""
    return zlib.crc32(f"{key}:{','.join(str(v) for v in encoded)}".encode())


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """An injectable fault schedule, shipped to workers as plain data.

    ``mode`` picks the failure (see :data:`FAULT_MODES`):

    * ``crash`` — the worker process dies (``os._exit``), exactly like a
      segfault or an OOM kill.
    * ``hang`` — the evaluation sleeps ``hang_seconds`` (the supervisor's
      ``--task-timeout`` must kill it).
    * ``flaky`` — the evaluation raises :class:`InjectedFault`, then
      succeeds once its attempt budget is spent.
    * ``poison`` — the evaluation *always* raises: the point can never
      succeed, exercising the quarantine path.
    * ``disconnect`` / ``stall`` / ``garbage-frame`` — transport faults:
      a worker agent drops its connection before sending the result,
      stops heartbeating for ``hang_seconds``, or sends a corrupted frame.
      They fire in the agent's serving loop via :meth:`transport_action`
      (never inside the evaluation), so local backends ignore them and the
      coordinator sees them as *uncharged* connection failures.

    ``select`` picks the victims: every point whose
    :func:`stable_point_hash` is ``0 mod select`` matches (so roughly one
    in ``select`` evaluations faults, deterministically).  ``times`` bounds
    how many attempts of a matching point fail before it recovers (poison
    ignores it).  ``nth > 0`` adds a *chaos* selector on top: every Nth
    evaluation of a worker process faults regardless of the point — not
    deterministic across worker counts, but every fault is still retryable,
    so the final frontier stays byte-identical.

    ``state_dir`` is the cross-process attempt ledger for the recoverable
    modes; :meth:`parse` creates a temporary one automatically.  The same
    point is never attempted concurrently (retries are serialized by the
    owning coordinator), so the ledger needs no locking.
    """

    mode: str
    select: int = 4
    times: int = 1
    nth: int = 0
    hang_seconds: float = 3600.0
    state_dir: str = ""

    def __post_init__(self):
        if self.mode not in FAULT_MODES:
            raise ValueError(f"unknown fault mode {self.mode!r}; "
                             f"expected one of {FAULT_MODES}")
        if self.select < 1:
            raise ValueError(f"select must be >= 1, got {self.select}")
        if self.times < 1:
            raise ValueError(f"times must be >= 1, got {self.times}")

    # -- spec parsing ----------------------------------------------------------------------

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Build a plan from a ``--inject-faults`` spec string.

        ``SPEC`` is ``MODE`` or ``MODE:key=value,key=value`` — e.g.
        ``flaky``, ``crash:select=8,times=2``, ``hang:select=6``,
        ``poison:select=10``.
        """
        mode, _, options = spec.strip().partition(":")
        values: dict = {}
        if options:
            for item in options.split(","):
                name, separator, raw = item.partition("=")
                name = name.strip()
                if not separator or name not in ("select", "times", "nth",
                                                 "hang_seconds", "state_dir"):
                    raise ValueError(f"bad fault option {item!r} in {spec!r}; "
                                     f"expected select=/times=/nth="
                                     f"/hang_seconds=/state_dir=")
                if name == "state_dir":
                    values[name] = raw.strip()
                elif name == "hang_seconds":
                    values[name] = float(raw)
                else:
                    values[name] = int(raw)
        if not values.get("state_dir"):
            values["state_dir"] = tempfile.mkdtemp(prefix="repro-faults-")
        return cls(mode=mode, **values)

    def to_spec(self) -> str:
        """The canonical spec string (round-trips through :meth:`parse`)."""
        options = [f"select={self.select}", f"times={self.times}"]
        if self.nth:
            options.append(f"nth={self.nth}")
        if self.state_dir:
            options.append(f"state_dir={self.state_dir}")
        return f"{self.mode}:{','.join(options)}"

    # -- selection and firing --------------------------------------------------------------

    def matches(self, key: str, encoded: tuple) -> bool:
        """Whether the plan targets this (kernel, point) — pure and stable."""
        return stable_point_hash(key, encoded) % self.select == 0

    def _ledger_path(self, key: str, encoded: tuple) -> str:
        return os.path.join(self.state_dir,
                            f"{stable_point_hash(key, encoded):08x}.attempts")

    def _record_attempt(self, key: str, encoded: tuple) -> int:
        """Append one attempt to the on-disk ledger; return the new count.

        The write lands *before* the fault fires, so even an ``os._exit``
        crash leaves the attempt recorded and the retry can succeed.
        """
        if not self.state_dir:
            return 1
        os.makedirs(self.state_dir, exist_ok=True)
        path = self._ledger_path(key, encoded)
        with open(path, "ab") as handle:
            handle.write(b".")
            handle.flush()
            os.fsync(handle.fileno())
        return os.path.getsize(path)

    def apply(self, key: str, encoded: tuple) -> None:
        """Fire the planned fault for this evaluation, if any.

        Called from inside the evaluation path (worker process or the
        serial backend) — crashes, hangs or raises according to the plan,
        or returns normally when this evaluation is not a victim.
        """
        if self.transport_fault:
            return  # transport faults fire in the agent's serving loop
        global _LOCAL_EVALUATIONS
        _LOCAL_EVALUATIONS += 1
        chaos_hit = self.nth > 0 and _LOCAL_EVALUATIONS % self.nth == 0
        if not chaos_hit and not self.matches(key, encoded):
            return
        if self.mode == "poison":
            raise InjectedFault(f"injected poison: kernel {key!r} "
                                f"point {tuple(encoded)} can never succeed")
        attempt = self._record_attempt(key, encoded)
        if attempt > self.times:
            return  # budget spent: the point recovers
        if self.mode == "crash":
            os._exit(CRASH_EXIT_CODE)
        if self.mode == "hang":
            time.sleep(self.hang_seconds)
            return
        raise InjectedFault(f"injected flake: kernel {key!r} "
                            f"point {tuple(encoded)} attempt {attempt}")

    @property
    def transport_fault(self) -> bool:
        """Whether this plan targets the socket transport layer."""
        return self.mode in TRANSPORT_FAULT_MODES

    def transport_action(self, key: str, encoded: tuple) -> Optional[str]:
        """The transport fault to fire before serving this task, or None.

        Called by the worker agent when it receives a task.  Victim
        selection is the same pure :meth:`matches` predicate, and attempts
        ride the same on-disk ledger as the recoverable local modes — so a
        matching point disconnects/stalls/garbles exactly ``times`` times
        across agent restarts and then recovers, deterministically.  (The
        ledger is a coordinator-local directory: injected transport chaos
        assumes loopback agents, which is what the tests and CI spawn.)
        """
        if not self.transport_fault or not self.matches(key, encoded):
            return None
        attempt = self._record_attempt(key, encoded)
        if attempt > self.times:
            return None  # budget spent: the point is served normally
        return self.mode

    @property
    def requires_process_isolation(self) -> bool:
        """Crash/hang faults must never run inline in the coordinator."""
        return self.mode in ("crash", "hang")

"""Pareto frontier utilities for the latency-area trade-off space."""

from __future__ import annotations

import dataclasses
from typing import Iterable, Optional, Sequence


@dataclasses.dataclass
class ParetoPoint:
    """One evaluated design point in the latency-area plane."""

    latency: float
    area: float
    encoded: tuple[int, ...]
    payload: object = None

    def as_tuple(self) -> tuple[float, float]:
        return (self.latency, self.area)


def dominates(a: ParetoPoint, b: ParetoPoint) -> bool:
    """True if ``a`` is at least as good as ``b`` on both axes and better on one."""
    return (a.latency <= b.latency and a.area <= b.area
            and (a.latency < b.latency or a.area < b.area))


def pareto_frontier(points: Iterable[ParetoPoint]) -> list[ParetoPoint]:
    """The non-dominated subset, sorted by ascending latency.

    Ties in (latency, area) are broken by the encoded design point, so the
    frontier is a pure function of the evaluated *set* — independent of the
    order evaluations completed, which is what lets the parallel DSE runtime
    produce identical frontiers for any worker count.
    """
    candidates = sorted(points, key=lambda p: (p.latency, p.area, p.encoded))
    frontier: list[ParetoPoint] = []
    best_area: Optional[float] = None
    for point in candidates:
        if best_area is None or point.area < best_area:
            frontier.append(point)
            best_area = point.area
    return frontier


def is_pareto_optimal(point: ParetoPoint, others: Sequence[ParetoPoint]) -> bool:
    """True when no other point dominates ``point``."""
    return not any(dominates(other, point) for other in others if other is not point)


def hypervolume(frontier: Sequence[ParetoPoint], reference: tuple[float, float]) -> float:
    """2-D hypervolume (area dominated by the frontier up to a reference point).

    A simple quality indicator used by the DSE tests: a better frontier
    dominates a larger area below the reference point.
    """
    ref_latency, ref_area = reference
    points = [p for p in pareto_frontier(frontier)
              if p.latency <= ref_latency and p.area <= ref_area]
    if not points:
        return 0.0
    # Points are sorted by ascending latency with strictly decreasing area; each
    # contributes a rectangle from its latency to the next point's latency.
    volume = 0.0
    for index, point in enumerate(points):
        next_latency = points[index + 1].latency if index + 1 < len(points) else ref_latency
        volume += max(0.0, next_latency - point.latency) * max(0.0, ref_area - point.area)
    return volume

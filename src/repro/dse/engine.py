"""The automated DSE engine (paper Section V-E2).

The engine implements the paper's 5-step neighbor-traversing algorithm:

1. **Initial sampling** — random design points are drawn from the space and
   evaluated with the QoR estimator; the initial Pareto frontier is extracted.
2. **Point proposal** — a random point of the current frontier proposes its
   closest unexplored neighbor (one dimension changed by one step).
3. **Point evaluation** — the neighbor is evaluated with the estimator and the
   frontier is updated if it dominates an existing member.
4. **Frontier evolution** — steps 2-3 repeat until no eligible neighbor
   remains or the iteration budget is exhausted.
5. **Design finalization** — the Pareto points are sorted by latency and the
   first one satisfying the platform's resource constraints is selected.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Callable, Optional

from repro.dse.apply import AppliedDesign, apply_design_point
from repro.dse.pareto import ParetoPoint, pareto_frontier
from repro.dse.space import KernelDesignPoint, KernelDesignSpace
from repro.estimation.platform import Platform, XC7Z020
from repro.ir.module import ModuleOp


@dataclasses.dataclass
class DSEResult:
    """Outcome of one exploration run."""

    best: Optional[AppliedDesign]
    frontier: list[ParetoPoint]
    evaluations: dict[tuple[int, ...], AppliedDesign]
    num_evaluations: int
    space: KernelDesignSpace

    @property
    def best_point(self) -> Optional[KernelDesignPoint]:
        return self.best.point if self.best is not None else None

    def frontier_designs(self) -> list[AppliedDesign]:
        return [self.evaluations[point.encoded] for point in self.frontier]


class DesignSpaceExplorer:
    """Explores the latency-area space of a kernel with the 5-step algorithm."""

    def __init__(self, platform: Platform = XC7Z020, num_samples: int = 24,
                 max_iterations: int = 48, seed: int = 2022,
                 evaluator: Optional[Callable[[ModuleOp, KernelDesignPoint], AppliedDesign]] = None):
        self.platform = platform
        self.num_samples = num_samples
        self.max_iterations = max_iterations
        self.seed = seed
        self._evaluator = evaluator

    # -- evaluation -------------------------------------------------------------------------

    def _evaluate(self, module: ModuleOp, point: KernelDesignPoint) -> AppliedDesign:
        if self._evaluator is not None:
            return self._evaluator(module, point)
        return apply_design_point(module, point, self.platform)

    # -- exploration ------------------------------------------------------------------------

    def explore(self, module: ModuleOp,
                space: Optional[KernelDesignSpace] = None,
                func_name: Optional[str] = None) -> DSEResult:
        """Run the 5-step exploration on the kernel contained in ``module``."""
        func_op = module.lookup(func_name) if func_name else module.functions()[0]
        if space is None:
            space = KernelDesignSpace.from_function(func_op)
        rng = random.Random(self.seed)

        evaluations: dict[tuple[int, ...], AppliedDesign] = {}

        def evaluate(encoded: tuple[int, ...]) -> AppliedDesign:
            if encoded not in evaluations:
                evaluations[encoded] = self._evaluate(module, space.decode(encoded))
            return evaluations[encoded]

        # Step 1: initial sampling.
        sampled: set[tuple[int, ...]] = set()
        attempts = 0
        while len(sampled) < min(self.num_samples, space.num_points) and attempts < 10 * self.num_samples:
            sampled.add(space.random_point(rng))
            attempts += 1
        for encoded in sampled:
            evaluate(encoded)

        frontier = self._frontier_from(evaluations)

        # Steps 2-4: frontier evolution by neighbor traversal.
        for _ in range(self.max_iterations):
            if not frontier:
                break
            proposal = self._propose_neighbor(frontier, space, evaluations, rng)
            if proposal is None:
                break
            evaluate(proposal)
            frontier = self._frontier_from(evaluations)

        # Step 5: design finalization under the resource constraints.
        best = self._finalize(frontier, evaluations)
        return DSEResult(best=best, frontier=frontier, evaluations=evaluations,
                         num_evaluations=len(evaluations), space=space)

    # -- internals -----------------------------------------------------------------------------

    @staticmethod
    def _frontier_from(evaluations: dict[tuple[int, ...], AppliedDesign]) -> list[ParetoPoint]:
        points = [
            ParetoPoint(latency=float(design.qor.latency), area=float(design.qor.dsp),
                        encoded=encoded, payload=design)
            for encoded, design in evaluations.items()
        ]
        return pareto_frontier(points)

    @staticmethod
    def _propose_neighbor(frontier: list[ParetoPoint], space: KernelDesignSpace,
                          evaluations: dict, rng: random.Random) -> Optional[tuple[int, ...]]:
        candidates = list(frontier)
        rng.shuffle(candidates)
        for pareto_point in candidates:
            neighbors = [n for n in space.neighbors(pareto_point.encoded)
                         if n not in evaluations]
            if neighbors:
                return rng.choice(neighbors)
        return None

    def _finalize(self, frontier: list[ParetoPoint],
                  evaluations: dict[tuple[int, ...], AppliedDesign]) -> Optional[AppliedDesign]:
        if not frontier:
            return None
        ordered = sorted(frontier, key=lambda p: (p.latency, p.area))
        for point in ordered:
            design = evaluations[point.encoded]
            if self.platform.fits(design.qor.resources, memory_margin=float("inf")):
                return design
        # Nothing satisfies the constraints: fall back to the smallest design.
        smallest = min(ordered, key=lambda p: p.area)
        return evaluations[smallest.encoded]

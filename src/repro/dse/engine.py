"""The automated DSE engine (paper Section V-E2).

The engine implements the paper's 5-step neighbor-traversing algorithm:

1. **Initial sampling** — random design points are drawn from the space and
   evaluated with the QoR estimator; the initial Pareto frontier is extracted.
2. **Point proposal** — a random point of the current frontier proposes its
   closest unexplored neighbor (one dimension changed by one step).
3. **Point evaluation** — the neighbor is evaluated with the estimator and the
   frontier is updated if it dominates an existing member.
4. **Frontier evolution** — steps 2-3 repeat until no eligible neighbor
   remains or the iteration budget is exhausted.
5. **Design finalization** — the Pareto points are sorted by latency and the
   first one satisfying the platform's resource constraints is selected.

The algorithm's *policy* (how points are sampled, proposed and merged into
the frontier) lives in :class:`ExplorationPolicy` as pure functions of
``(space, frontier, visited, rng)``.  :class:`DesignSpaceExplorer` drives the
policy serially, one evaluation at a time (batch size 1); the parallel
runtime in :mod:`repro.dse.runtime` drives the identical policy in
deterministic batches across worker processes.  Because every proposal
depends only on explorer state (never on evaluation *order*), a driver
visits the same points and produces the same frontier for a given seed and
batch size, regardless of worker count.  Note the batch size itself is part
of the trajectory: the serial engine (batch size 1) and a parallel run with
``batch_size=8`` legitimately explore different points.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Callable, Mapping, Optional

from repro.dse.apply import AppliedDesign, apply_design_point
from repro.dse.pareto import ParetoPoint, pareto_frontier
from repro.dse.space import KernelDesignPoint, KernelDesignSpace
from repro.estimation.platform import Platform, XC7Z020
from repro.ir.module import ModuleOp


class ExplorationPolicy:
    """Pure step functions of the 5-step algorithm.

    Every method is deterministic given its arguments (including the RNG
    state), and none of them evaluates anything — evaluation is the driver's
    job.  ``visited`` is any container supporting ``in`` over encoded points.
    """

    @staticmethod
    def initial_batch(space: KernelDesignSpace, rng: random.Random,
                      num_samples: int) -> list[tuple[int, ...]]:
        """Step 1: the deduplicated initial random sample, in draw order."""
        target = min(num_samples, space.num_points)
        sampled: list[tuple[int, ...]] = []
        seen: set[tuple[int, ...]] = set()
        attempts = 0
        while len(sampled) < target and attempts < 10 * max(1, num_samples):
            encoded = space.random_point(rng)
            if encoded not in seen:
                seen.add(encoded)
                sampled.append(encoded)
            attempts += 1
        return sampled

    @staticmethod
    def propose_batch(frontier: list[ParetoPoint], space: KernelDesignSpace,
                      visited, rng: random.Random,
                      batch_size: int) -> list[tuple[int, ...]]:
        """Steps 2: propose up to ``batch_size`` distinct unexplored neighbors.

        All proposals are made against the *same* frontier (the one computed
        at the last update), so the batch is a pure function of explorer
        state — evaluating its members in any order or degree of parallelism
        cannot change the trajectory.
        """
        proposals: list[tuple[int, ...]] = []
        blocked: set[tuple[int, ...]] = set()
        for _ in range(max(1, batch_size)):
            candidates = list(frontier)
            rng.shuffle(candidates)
            pick: Optional[tuple[int, ...]] = None
            for pareto_point in candidates:
                neighbors = [n for n in space.neighbors(pareto_point.encoded)
                             if n not in visited and n not in blocked]
                if neighbors:
                    pick = rng.choice(neighbors)
                    break
            if pick is None:
                break
            proposals.append(pick)
            blocked.add(pick)
        return proposals

    @staticmethod
    def frontier_of(evaluations: Mapping[tuple[int, ...], object]) -> list[ParetoPoint]:
        """Steps 3-4: the Pareto frontier of everything evaluated so far.

        ``evaluations`` maps encoded points to any object exposing a ``qor``
        attribute (:class:`AppliedDesign` or the runtime's slim
        ``EvaluationRecord``).  Items are visited in sorted key order so the
        result is independent of insertion (i.e. evaluation-completion) order.
        Quarantined records (``ok`` is False, no QoR) count as visited but
        never enter the frontier.
        """
        points = [
            ParetoPoint(latency=float(design.qor.latency), area=float(design.qor.dsp),
                        encoded=encoded, payload=design)
            for encoded, design in sorted(evaluations.items())
            if getattr(design, "ok", True)
        ]
        return pareto_frontier(points)

    @staticmethod
    def finalize(frontier: list[ParetoPoint],
                 evaluations: Mapping[tuple[int, ...], object],
                 platform: Platform):
        """Step 5: first frontier design (by latency) fitting the platform."""
        if not frontier:
            return None
        ordered = sorted(frontier, key=lambda p: (p.latency, p.area, p.encoded))
        for point in ordered:
            design = evaluations[point.encoded]
            if platform.fits(design.qor.resources, memory_margin=float("inf")):
                return design
        # Nothing satisfies the constraints: fall back to the smallest design.
        smallest = min(ordered, key=lambda p: (p.area, p.encoded))
        return evaluations[smallest.encoded]


@dataclasses.dataclass
class DSEResult:
    """Outcome of one exploration run."""

    best: Optional[AppliedDesign]
    frontier: list[ParetoPoint]
    evaluations: dict[tuple[int, ...], AppliedDesign]
    num_evaluations: int
    space: KernelDesignSpace

    @property
    def best_point(self) -> Optional[KernelDesignPoint]:
        return self.best.point if self.best is not None else None

    def frontier_designs(self) -> list[AppliedDesign]:
        return [self.evaluations[point.encoded] for point in self.frontier]


class DesignSpaceExplorer:
    """Explores the latency-area space of a kernel with the 5-step algorithm."""

    def __init__(self, platform: Platform = XC7Z020, num_samples: int = 24,
                 max_iterations: int = 48, seed: int = 2022,
                 evaluator: Optional[Callable[[ModuleOp, KernelDesignPoint], AppliedDesign]] = None):
        self.platform = platform
        self.num_samples = num_samples
        self.max_iterations = max_iterations
        self.seed = seed
        self._evaluator = evaluator

    # -- evaluation -------------------------------------------------------------------------

    def _evaluate(self, module: ModuleOp, point: KernelDesignPoint,
                  space: Optional[KernelDesignSpace] = None) -> AppliedDesign:
        if self._evaluator is not None:
            return self._evaluator(module, point)
        platform = self.platform
        if point.platform and space is not None:
            platform = space.platform_named(point.platform)
        return apply_design_point(module, point, platform)

    # -- exploration ------------------------------------------------------------------------

    def explore(self, module: ModuleOp,
                space: Optional[KernelDesignSpace] = None,
                func_name: Optional[str] = None) -> DSEResult:
        """Run the 5-step exploration on the kernel contained in ``module``."""
        func_op = module.lookup(func_name) if func_name else module.functions()[0]
        if space is None:
            space = KernelDesignSpace.from_function(func_op)
        rng = random.Random(self.seed)

        evaluations: dict[tuple[int, ...], AppliedDesign] = {}

        # Step 1: initial sampling.
        for encoded in ExplorationPolicy.initial_batch(space, rng, self.num_samples):
            evaluations[encoded] = self._evaluate(module, space.decode(encoded),
                                                  space=space)
        frontier = ExplorationPolicy.frontier_of(evaluations)

        # Steps 2-4: frontier evolution by neighbor traversal.
        for _ in range(self.max_iterations):
            if not frontier:
                break
            batch = ExplorationPolicy.propose_batch(frontier, space, evaluations, rng,
                                                    batch_size=1)
            if not batch:
                break
            for encoded in batch:
                evaluations[encoded] = self._evaluate(module, space.decode(encoded),
                                                      space=space)
            frontier = ExplorationPolicy.frontier_of(evaluations)

        # Step 5: design finalization under the resource constraints.
        best = ExplorationPolicy.finalize(frontier, evaluations, self.platform)
        return DSEResult(best=best, frontier=frontier, evaluations=evaluations,
                         num_evaluations=len(evaluations), space=space)

"""The automated design space exploration engine (paper Section V-E)."""

from repro.dse.space import KernelDesignPoint, KernelDesignSpace
from repro.dse.pareto import ParetoPoint, pareto_frontier, dominates
from repro.dse.apply import apply_design_point, optimize_kernel_module
from repro.dse.engine import DesignSpaceExplorer, DSEResult, ExplorationPolicy
from repro.dse.runtime import (
    EstimateCache,
    EvaluationRecord,
    MultiKernelScheduler,
    ParallelDSEResult,
    ParallelExplorer,
)

__all__ = [
    "KernelDesignPoint",
    "KernelDesignSpace",
    "ParetoPoint",
    "pareto_frontier",
    "dominates",
    "apply_design_point",
    "optimize_kernel_module",
    "DesignSpaceExplorer",
    "DSEResult",
    "ExplorationPolicy",
    "EstimateCache",
    "EvaluationRecord",
    "MultiKernelScheduler",
    "ParallelDSEResult",
    "ParallelExplorer",
]

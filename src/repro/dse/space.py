"""Design space construction for computation kernels.

Each dimension of the multi-dimensional design space corresponds to the
on/off switch or a tunable parameter of a transform pass (Tab. II):

* loop perfectization on/off,
* variable-bound removal on/off,
* the loop permutation of the band,
* one tile size per band loop (powers of two dividing the trip count),
* the pipeline target II,
* the named cleanup pipeline run after the design point (a categorical
  dimension over :data:`repro.dse.apply.CLEANUP_PIPELINES` — exploring
  *how to clean up* alongside *how to transform*),
* optionally, the target platform (a categorical dimension over a sweep's
  :class:`~repro.estimation.platform.Platform` list — one exploration
  covering design points × hardware targets).  The dimension exists only
  when a sweep names multiple platforms: single-platform spaces keep their
  exact historical shape, encoding and random trajectory.

A design point is encoded as a tuple of indices into the per-dimension
option lists, which makes "closest neighbor" proposals (Step 2 of the DSE
algorithm) a matter of bumping one index by one.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import random
from typing import Optional, Sequence

from repro.dialects.affine_ops import AffineForOp, loop_band_from, outermost_loops
from repro.ir.operation import Operation


def ir_digest(func_op: Operation) -> str:
    """Stable content digest of a function's IR.

    The single definition of the digest recipe: both
    :meth:`KernelDesignSpace.from_function` and the DSE runtime's
    cache/checkpoint fingerprinting rely on it producing identical values
    for structurally identical IR across processes and sessions.
    """
    from repro.ir.printer import print_op

    return hashlib.sha256(
        print_op(func_op, stable_ids=True).encode("utf-8")).hexdigest()


@dataclasses.dataclass(frozen=True)
class KernelDesignPoint:
    """Decoded transform parameters for one kernel design."""

    loop_perfectization: bool
    remove_variable_bound: bool
    perm_map: tuple[int, ...]
    tile_sizes: tuple[int, ...]
    target_ii: int
    #: Name of the cleanup pipeline run after the design point (a key of
    #: :data:`repro.dse.apply.CLEANUP_PIPELINES`).
    pipeline: str = "default"
    #: Name of the target platform this point is evaluated against, or ""
    #: when the sweep has a single (implicit) platform.
    platform: str = ""

    def prefix_key(self) -> str:
        """Key of the evaluation *prefix* this point shares with others.

        The prefix of an evaluation — canonicalization plus the two boolean
        structural knobs — is a pure function of this key, which is what the
        incremental evaluator's snapshot cache is keyed on (together with the
        kernel IR digest; see :mod:`repro.dse.incremental`).
        """
        return (f"lp{int(self.loop_perfectization)}"
                f"-rvb{int(self.remove_variable_bound)}")

    def describe(self) -> str:
        text = (f"LP={'yes' if self.loop_perfectization else 'no'} "
                f"RVB={'yes' if self.remove_variable_bound else 'no'} "
                f"perm={list(self.perm_map)} tiles={list(self.tile_sizes)} "
                f"II={self.target_ii} pipe={self.pipeline}")
        if self.platform:
            text += f" plat={self.platform}"
        return text


class KernelDesignSpace:
    """The per-kernel design space, encoded dimension by dimension."""

    #: Upper bound on the product of tile sizes: this is the unroll factor of
    #: the pipelined body, so it directly bounds how large the IR (and the
    #: resource usage) can grow.
    MAX_UNROLL_PRODUCT = 128

    def __init__(self, band_trip_counts: Sequence[int], has_variable_bounds: bool,
                 is_imperfect: bool, max_tile: int = 16, max_target_ii: int = 8,
                 ir_digest: str = "", pipeline_names: Optional[Sequence[str]] = None,
                 platforms: Optional[Sequence] = None):
        #: Stable digest of the kernel IR the space was built from ("" when the
        #: space was constructed directly from trip counts).
        self.ir_digest = ir_digest
        self.band_trip_counts = tuple(int(t) for t in band_trip_counts)
        self.has_variable_bounds = has_variable_bounds
        self.is_imperfect = is_imperfect
        num_loops = len(self.band_trip_counts)

        self.lp_options = [True, False] if is_imperfect else [False]
        self.rvb_options = [True, False] if has_variable_bounds else [False]
        self.perm_options = self._permutation_options(num_loops)
        self.tile_options = [self._tile_sizes(trip, max_tile)
                             for trip in self.band_trip_counts]
        self.ii_options = [1, 2, 4, max_target_ii]
        from repro.dse.apply import cleanup_pipeline_names, cleanup_pipeline_spec

        if pipeline_names is None:
            pipeline_names = cleanup_pipeline_names()
        else:
            for name in pipeline_names:
                cleanup_pipeline_spec(name)  # fail fast on unregistered names
        self.pipeline_options = list(pipeline_names)

        #: Platforms the sweep explores (:class:`~repro.estimation.platform.
        #: Platform` instances); empty for single-platform sweeps.  The
        #: dimension is appended *only* when platforms are given: an
        #: always-present one-option dimension would still consume RNG
        #: entropy in :meth:`random_point` and lengthen every encoded tuple,
        #: silently changing existing trajectories and checkpoints.
        self.platforms = tuple(platforms or ())
        self.platform_options = [platform.name for platform in self.platforms]

        #: Dimension option lists, in a fixed order.
        self.dimensions: list[list] = [self.lp_options, self.rvb_options, self.perm_options]
        self.dimensions.extend(self.tile_options)
        self.dimensions.append(self.ii_options)
        self.dimensions.append(self.pipeline_options)
        if self.platform_options:
            self.dimensions.append(self.platform_options)

    # -- construction ----------------------------------------------------------------------

    @classmethod
    def from_function(cls, func_op: Operation, max_tile: int = 16,
                      platforms: Optional[Sequence] = None) -> "KernelDesignSpace":
        """Build the space by analysing the kernel's (possibly imperfect) loop band."""
        outer_loops = outermost_loops(func_op)
        if not outer_loops:
            raise ValueError("the kernel has no affine loop nest to explore")
        band = loop_band_from(outer_loops[0])
        trip_counts = []
        has_variable = False
        for loop in band:
            trip = loop.trip_count()
            if trip is None:
                has_variable = True
                trip = _estimated_trip(loop)
            trip_counts.append(max(1, trip))
        is_imperfect = any(
            len([op for op in loop.body.operations
                 if op.name != "affine.yield" and not isinstance(op, AffineForOp)]) > 0
            for loop in band[:-1])
        return cls(trip_counts, has_variable, is_imperfect, max_tile=max_tile,
                   ir_digest=ir_digest(func_op), platforms=platforms)

    # -- identity ---------------------------------------------------------------------------

    def fingerprint(self) -> str:
        """Stable identity of (kernel IR, design space shape).

        Two spaces built via :meth:`from_function` share a fingerprint
        exactly when their kernels' IR is structurally identical and their
        dimension options match, making the fingerprint a safe key for the
        QoR estimate cache and for checkpoint compatibility checks across
        processes and sessions.  A directly constructed space carries no IR
        digest, so its fingerprint only identifies the space *shape* — the
        DSE runtime mixes the kernel IR back in for that case.

        The cleanup-pipeline dimension is hashed by the canonical printed
        spec of each named pipeline, not by its name: editing a pipeline in
        :data:`repro.dse.apply.CLEANUP_PIPELINES` changes the fingerprint,
        so estimates cached under the old meaning can never be reused.  The
        platform dimension is likewise hashed by each platform's
        ``config_hash()``, so two sweeps whose platforms merely share names
        but differ in any budget/bandwidth/clock knob never share estimates.
        A platform-free space hashes the exact historical payload.
        """
        from repro.dse.apply import cleanup_pipeline_signature

        parts = [
            self.ir_digest,
            self.band_trip_counts,
            self.has_variable_bounds,
            self.is_imperfect,
            [[repr(option) for option in options] for options in self.dimensions],
            [(name, cleanup_pipeline_signature(name))
             for name in self.pipeline_options],
        ]
        if self.platforms:
            parts.append([(platform.name, platform.config_hash())
                          for platform in self.platforms])
        payload = repr(tuple(parts))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:20]

    # -- encoding ---------------------------------------------------------------------------

    @property
    def num_dimensions(self) -> int:
        return len(self.dimensions)

    @property
    def num_points(self) -> int:
        total = 1
        for options in self.dimensions:
            total *= len(options)
        return total

    def decode(self, encoded: Sequence[int]) -> KernelDesignPoint:
        """Decode an index tuple into transform parameters."""
        if len(encoded) != self.num_dimensions:
            raise ValueError("encoded point has the wrong number of dimensions")
        values = [options[index] for options, index in zip(self.dimensions, encoded)]
        num_loops = len(self.band_trip_counts)
        lp, rvb, perm = values[0], values[1], values[2]
        tiles = list(values[3:3 + num_loops])
        target_ii = values[3 + num_loops]
        pipeline = values[3 + num_loops + 1]
        platform = values[3 + num_loops + 2] if self.platform_options else ""
        tiles = self._clamp_tile_product(tiles)
        return KernelDesignPoint(
            loop_perfectization=lp,
            remove_variable_bound=rvb,
            perm_map=tuple(perm),
            tile_sizes=tuple(tiles),
            target_ii=target_ii,
            pipeline=pipeline,
            platform=platform,
        )

    def platform_named(self, name: str):
        """The :class:`Platform` of the sweep with the given name."""
        for platform in self.platforms:
            if platform.name == name:
                return platform
        raise KeyError(f"platform {name!r} is not part of this design space "
                       f"(available: {', '.join(self.platform_options) or 'none'})")

    def encode_vector(self, encoded: Sequence[int]) -> list[float]:
        """Numeric feature vector of a point (used for the Fig. 6 PCA profile)."""
        point = self.decode(encoded)
        vector: list[float] = [
            1.0 if point.loop_perfectization else 0.0,
            1.0 if point.remove_variable_bound else 0.0,
        ]
        vector.extend(float(p) for p in point.perm_map)
        vector.extend(float(t) for t in point.tile_sizes)
        vector.append(float(point.target_ii))
        vector.append(float(self.pipeline_options.index(point.pipeline)))
        if self.platform_options:
            vector.append(float(self.platform_options.index(point.platform)))
        return vector

    def random_point(self, rng: random.Random) -> tuple[int, ...]:
        return tuple(rng.randrange(len(options)) for options in self.dimensions)

    def neighbors(self, encoded: Sequence[int]) -> list[tuple[int, ...]]:
        """All points that differ from ``encoded`` by one step in one dimension."""
        result = []
        for dimension, index in enumerate(encoded):
            for delta in (-1, 1):
                new_index = index + delta
                if 0 <= new_index < len(self.dimensions[dimension]):
                    neighbor = list(encoded)
                    neighbor[dimension] = new_index
                    result.append(tuple(neighbor))
        return result

    def all_points(self):
        """Iterate the full cartesian space (only sensible for small spaces)."""
        ranges = [range(len(options)) for options in self.dimensions]
        return itertools.product(*ranges)

    # -- helpers ------------------------------------------------------------------------------

    @staticmethod
    def _permutation_options(num_loops: int) -> list[tuple[int, ...]]:
        identity = tuple(range(num_loops))
        if num_loops <= 1:
            return [identity]
        if num_loops <= 3:
            return [tuple(p) for p in _permutation_maps(num_loops)]
        # Larger bands: identity, full reversal and single rotations.
        options = {identity, tuple(reversed(identity))}
        rotated = tuple(list(identity[1:]) + [identity[0]])
        options.add(rotated)
        return sorted(options)

    @staticmethod
    def _tile_sizes(trip: int, max_tile: int) -> list[int]:
        sizes = [1]
        size = 2
        while size <= min(trip, max_tile):
            if trip % size == 0:
                sizes.append(size)
            size *= 2
        return sizes

    def _clamp_tile_product(self, tiles: list[int]) -> list[int]:
        product = 1
        for tile in tiles:
            product *= tile
        while product > self.MAX_UNROLL_PRODUCT:
            largest = max(range(len(tiles)), key=lambda i: tiles[i])
            if tiles[largest] <= 1:
                break
            tiles[largest] //= 2
            product //= 2
        return tiles


def _permutation_maps(num_loops: int) -> list[tuple[int, ...]]:
    """All permutation maps for a small band (``perm_map[i]`` = new position of loop i)."""
    maps = []
    for ordering in itertools.permutations(range(num_loops)):
        perm_map = [0] * num_loops
        for new_position, original in enumerate(ordering):
            perm_map[original] = new_position
        maps.append(tuple(perm_map))
    return sorted(set(maps))


def _estimated_trip(loop: AffineForOp) -> int:
    """Best-effort trip estimate for variable-bound loops (max extent)."""
    from repro.transforms.loop.remove_variable_bound import _constant_extreme

    result = _constant_extreme(loop.upper_map, loop.ub_operands, want_max=True)
    if result is None:
        return 1
    upper = result[0]
    lower = loop.constant_lower_bound if loop.has_constant_lower_bound() else 0
    return max(1, (upper - lower) // max(1, loop.step))

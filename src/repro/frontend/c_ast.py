"""Abstract syntax tree of the HLS C subset."""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence, Union


# -- expressions -----------------------------------------------------------------------


@dataclasses.dataclass
class IntLiteral:
    value: int


@dataclasses.dataclass
class FloatLiteral:
    value: float


@dataclasses.dataclass
class VarRef:
    name: str


@dataclasses.dataclass
class ArrayRef:
    name: str
    indices: list["Expr"]


@dataclasses.dataclass
class BinaryExpr:
    op: str  # + - * / % < <= > >= == != && ||
    lhs: "Expr"
    rhs: "Expr"


@dataclasses.dataclass
class UnaryExpr:
    op: str  # - !
    operand: "Expr"


@dataclasses.dataclass
class TernaryExpr:
    condition: "Expr"
    true_value: "Expr"
    false_value: "Expr"


Expr = Union[IntLiteral, FloatLiteral, VarRef, ArrayRef, BinaryExpr, UnaryExpr, TernaryExpr]


# -- statements ------------------------------------------------------------------------


@dataclasses.dataclass
class Declaration:
    """A local variable or array declaration, e.g. ``float tmp[64];``."""

    name: str
    base_type: str  # "float", "int", "double"
    dims: list[int]
    init: Optional[Expr] = None


@dataclasses.dataclass
class Assignment:
    """``target op value`` where op is one of ``=``, ``+=``, ``-=``, ``*=``, ``/=``."""

    target: Union[VarRef, ArrayRef]
    op: str
    value: Expr


@dataclasses.dataclass
class ForLoop:
    """A canonical counted loop ``for (int i = init; i < bound; i += step)``."""

    var: str
    init: Expr
    bound: Expr
    compare_op: str  # "<" or "<="
    step: int
    body: "BlockStmt"


@dataclasses.dataclass
class IfStmt:
    condition: Expr
    then_body: "BlockStmt"
    else_body: Optional["BlockStmt"] = None


@dataclasses.dataclass
class ReturnStmt:
    value: Optional[Expr] = None


@dataclasses.dataclass
class BlockStmt:
    statements: list["Stmt"]


Stmt = Union[Declaration, Assignment, ForLoop, IfStmt, ReturnStmt, BlockStmt]


# -- top level --------------------------------------------------------------------------


@dataclasses.dataclass
class Param:
    """A function parameter: a scalar or a fixed-size array."""

    name: str
    base_type: str
    dims: list[int]

    @property
    def is_array(self) -> bool:
        return bool(self.dims)


@dataclasses.dataclass
class FunctionDef:
    name: str
    return_type: str
    params: list[Param]
    body: BlockStmt


@dataclasses.dataclass
class Program:
    functions: list[FunctionDef]

    def function(self, name: str) -> Optional[FunctionDef]:
        for fn in self.functions:
            if fn.name == name:
                return fn
        return None

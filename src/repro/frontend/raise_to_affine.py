"""The ``-raise-scf-to-affine`` pass.

Upgrades ``scf.for`` loops whose bounds are affine functions of enclosing
affine induction variables into ``affine.for`` loops, ``scf.if`` conditionals
with affine comparisons into ``affine.if``, and ``memref.load`` /
``memref.store`` accesses with affine index expressions into ``affine.load``
/ ``affine.store``.  Anything that does not satisfy the affine restrictions
is left untouched (paper Section VI-A).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.affine.expr import AffineExpr
from repro.affine.map import AffineMap
from repro.affine.set import Constraint, IntegerSet
from repro.dialects import arith
from repro.dialects.affine_ops import (
    AffineForOp,
    AffineIfOp,
    AffineLoadOp,
    AffineStoreOp,
    value_to_affine_expr,
)
from repro.ir.block import Block
from repro.ir.operation import Operation
from repro.ir.pass_manager import FunctionPass
from repro.ir.pass_registry import register_pass
from repro.ir.value import Value


@register_pass("raise-scf-to-affine")
class RaiseSCFToAffinePass(FunctionPass):
    """Raise scf-level control flow and memory accesses to the affine dialect."""

    def run(self, func_op: Operation) -> None:
        self._process_block(func_op.region(0).front, [])

    # -- block / op processing ----------------------------------------------------------

    def _process_block(self, block: Block, affine_ivs: list[Value]) -> None:
        for op in list(block.operations):
            if op.parent is not block:
                continue  # already replaced
            self._process_op(op, affine_ivs)

    def _process_op(self, op: Operation, affine_ivs: list[Value]) -> None:
        if op.name == "scf.for":
            self._raise_for(op, affine_ivs)
        elif op.name == "scf.if":
            self._raise_if(op, affine_ivs)
        elif op.name in ("memref.load", "memref.store"):
            self._raise_access(op, affine_ivs)
        elif isinstance(op, AffineForOp):
            self._process_block(op.body, affine_ivs + [op.induction_variable])
        elif op.regions:
            for region in op.regions:
                for nested_block in region.blocks:
                    self._process_block(nested_block, affine_ivs)

    # -- scf.for -------------------------------------------------------------------------

    def _raise_for(self, op, affine_ivs: list[Value]) -> None:
        dim_map = {iv: position for position, iv in enumerate(affine_ivs)}
        lower_expr = value_to_affine_expr(op.lower, dim_map)
        upper_expr = value_to_affine_expr(op.upper, dim_map)
        step = arith.constant_value(op.step)
        if lower_expr is None or upper_expr is None or step is None:
            # Not affine: keep the scf loop but still process its body.
            self._process_block(op.body, affine_ivs)
            return

        lower_map, lb_operands = _compact_map(lower_expr, affine_ivs)
        upper_map, ub_operands = _compact_map(upper_expr, affine_ivs)
        new_for = AffineForOp(lower_map, upper_map, int(step),
                              lb_operands=lb_operands, ub_operands=ub_operands)
        op.parent.insert_before(op, new_for)

        old_iv = op.induction_variable
        for inner in list(op.body.operations):
            new_for.body.append(inner)
        old_iv.replace_all_uses_with(new_for.induction_variable)
        op.erase()

        self._process_block(new_for.body, affine_ivs + [new_for.induction_variable])

    # -- scf.if ---------------------------------------------------------------------------

    def _raise_if(self, op, affine_ivs: list[Value]) -> None:
        if op.results:
            # Value-yielding conditionals are left in scf form.
            for region in op.regions:
                for nested_block in region.blocks:
                    self._process_block(nested_block, affine_ivs)
            return
        dim_map = {iv: position for position, iv in enumerate(affine_ivs)}
        condition = _condition_to_set(op.condition, dim_map, len(affine_ivs))
        if condition is None:
            for region in op.regions:
                for nested_block in region.blocks:
                    self._process_block(nested_block, affine_ivs)
            return

        integer_set, operands = _compact_set(condition, affine_ivs)
        has_else = op.else_block is not None and not op.else_block.empty()
        new_if = AffineIfOp(integer_set, operands, with_else=has_else)
        op.parent.insert_before(op, new_if)
        for inner in list(op.then_block.operations):
            new_if.then_block.append(inner)
        if has_else:
            for inner in list(op.else_block.operations):
                new_if.else_block.append(inner)
        op.erase()

        self._process_block(new_if.then_block, affine_ivs)
        if has_else:
            self._process_block(new_if.else_block, affine_ivs)

    # -- memory accesses ---------------------------------------------------------------------

    def _raise_access(self, op, affine_ivs: list[Value]) -> None:
        dim_map = {iv: position for position, iv in enumerate(affine_ivs)}
        if op.name == "memref.load":
            memref_value, indices = op.operand(0), op.operands[1:]
        else:
            memref_value, indices = op.operand(1), op.operands[2:]
        exprs = []
        for index_value in indices:
            expr = value_to_affine_expr(index_value, dim_map)
            if expr is None:
                return
            exprs.append(expr)
        access_map, operands = _compact_multi_map(exprs, affine_ivs)
        if op.name == "memref.load":
            new_op = AffineLoadOp(memref_value, operands, access_map)
            op.parent.insert_before(op, new_op)
            op.result().replace_all_uses_with(new_op.result())
            op.erase()
        else:
            new_op = AffineStoreOp(op.operand(0), memref_value, operands, access_map)
            op.parent.insert_before(op, new_op)
            op.erase()


# -- helpers -----------------------------------------------------------------------------------


def _compact_map(expr: AffineExpr, affine_ivs: Sequence[Value]) -> tuple[AffineMap, list[Value]]:
    """Build a single-result map over only the dims the expression uses."""
    compact_expr, operands = _compact_exprs([expr], affine_ivs)
    return AffineMap(len(operands), 0, compact_expr), operands


def _compact_multi_map(exprs: Sequence[AffineExpr],
                       affine_ivs: Sequence[Value]) -> tuple[AffineMap, list[Value]]:
    compact, operands = _compact_exprs(exprs, affine_ivs)
    return AffineMap(len(operands), 0, compact), operands


def _compact_exprs(exprs: Sequence[AffineExpr],
                   affine_ivs: Sequence[Value]) -> tuple[list[AffineExpr], list[Value]]:
    used = sorted(set().union(*[expr.used_dims() for expr in exprs]) if exprs else set())
    remap = {old: new for new, old in enumerate(used)}
    from repro.affine.expr import dim as dim_expr

    replacements = {old: dim_expr(new) for old, new in remap.items()}
    compact = [expr.replace(replacements) for expr in exprs]
    operands = [affine_ivs[d] for d in used]
    return compact, operands


def _condition_to_set(condition: Value, dim_map: dict[Value, int],
                      num_dims: int) -> Optional[IntegerSet]:
    """Convert an ``arith.cmpi`` condition into an integer set, if possible."""
    from repro.ir.value import OpResult

    if not isinstance(condition, OpResult):
        return None
    cmp_op = condition.owner
    if cmp_op.name != "arith.cmpi":
        return None
    lhs = value_to_affine_expr(cmp_op.operand(0), dim_map)
    rhs = value_to_affine_expr(cmp_op.operand(1), dim_map)
    if lhs is None or rhs is None:
        return None
    predicate = cmp_op.get_attr("predicate")
    if predicate == "sge":
        return IntegerSet(num_dims, 0, [Constraint(lhs - rhs, False)])
    if predicate == "sle":
        return IntegerSet(num_dims, 0, [Constraint(rhs - lhs, False)])
    if predicate == "sgt":
        return IntegerSet(num_dims, 0, [Constraint(lhs - rhs - 1, False)])
    if predicate == "slt":
        return IntegerSet(num_dims, 0, [Constraint(rhs - lhs - 1, False)])
    if predicate == "eq":
        return IntegerSet(num_dims, 0, [Constraint(lhs - rhs, True)])
    return None


def _compact_set(integer_set: IntegerSet,
                 affine_ivs: Sequence[Value]) -> tuple[IntegerSet, list[Value]]:
    """Shrink an integer set to only the dims it references."""
    exprs = [c.expr for c in integer_set.constraints]
    compact, operands = _compact_exprs(exprs, affine_ivs)
    constraints = [Constraint(expr, c.is_equality)
                   for expr, c in zip(compact, integer_set.constraints)]
    return IntegerSet(len(operands), 0, constraints), operands

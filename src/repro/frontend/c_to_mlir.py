"""Lower the C AST to ``scf``-level IR.

The front-end mirrors the paper's design: C constructs map 1:1 onto ``scf``
operations (``for`` → ``scf.for``, ``if`` → ``scf.if``), fixed-size arrays
map onto memrefs, and scalar locals are modelled as single-element memrefs so
that loop-carried scalar updates stay within memory semantics.  The
``-raise-scf-to-affine`` pass (see :mod:`repro.frontend.raise_to_affine`)
subsequently upgrades everything that satisfies the affine restrictions.
"""

from __future__ import annotations

from typing import Optional

from repro.dialects import arith, func, memref, scf
from repro.frontend import c_ast as ast
from repro.frontend.c_parser import parse_c
from repro.ir.builder import Builder
from repro.ir.module import ModuleOp
from repro.ir.types import (
    FloatType,
    FunctionType,
    IndexType,
    IntegerType,
    MemRefType,
    f32,
    i32,
    index,
)
from repro.ir.value import Value


class FrontendError(Exception):
    """Raised when the program uses constructs outside the supported subset."""


_BASE_TYPES = {"float": f32, "double": FloatType(64), "int": i32}


class _SymbolTable:
    """Per-function mapping from C names to IR values."""

    def __init__(self):
        self.scalars: dict[str, Value] = {}
        self.memrefs: dict[str, Value] = {}
        self.scalar_slots: dict[str, Value] = {}
        self.loop_vars: dict[str, Value] = {}

    def lookup_kind(self, name: str) -> Optional[str]:
        if name in self.loop_vars:
            return "loop"
        if name in self.memrefs:
            return "memref"
        if name in self.scalar_slots:
            return "slot"
        if name in self.scalars:
            return "scalar"
        return None


class CToMLIR:
    """Translates one :class:`~repro.frontend.c_ast.Program` into a module."""

    def __init__(self, program: ast.Program, module_name: str = "c_module"):
        self.program = program
        self.module = ModuleOp(module_name)
        self.builder = Builder()
        self.symbols = _SymbolTable()

    # -- top level ------------------------------------------------------------------------

    def convert(self) -> ModuleOp:
        for function in self.program.functions:
            self._convert_function(function)
        return self.module

    def _convert_function(self, function: ast.FunctionDef) -> None:
        if function.return_type != "void":
            raise FrontendError("only void functions are supported (arrays are in/out)")
        input_types = []
        for param in function.params:
            element_type = _BASE_TYPES.get(param.base_type)
            if element_type is None:
                raise FrontendError(f"unsupported parameter type {param.base_type!r}")
            if param.is_array:
                input_types.append(MemRefType(param.dims, element_type))
            else:
                input_types.append(element_type)
        func_op = func.FuncOp(function.name, FunctionType(input_types, []),
                              attributes={"arg_names": [p.name for p in function.params]})
        self.module.append(func_op)

        self.symbols = _SymbolTable()
        for param, argument in zip(function.params, func_op.arguments):
            if param.is_array:
                self.symbols.memrefs[param.name] = argument
            else:
                self.symbols.scalars[param.name] = argument

        self.builder.set_insertion_point_to_end(func_op.body)
        self._convert_block(function.body)
        self.builder.set_insertion_point_to_end(func_op.body)
        self.builder.insert(func.ReturnOp())

    # -- statements -------------------------------------------------------------------------

    def _convert_block(self, block: ast.BlockStmt) -> None:
        for statement in block.statements:
            self._convert_statement(statement)

    def _convert_statement(self, statement: ast.Stmt) -> None:
        if isinstance(statement, ast.BlockStmt):
            self._convert_block(statement)
        elif isinstance(statement, ast.Declaration):
            self._convert_declaration(statement)
        elif isinstance(statement, ast.Assignment):
            self._convert_assignment(statement)
        elif isinstance(statement, ast.ForLoop):
            self._convert_for(statement)
        elif isinstance(statement, ast.IfStmt):
            self._convert_if(statement)
        elif isinstance(statement, ast.ReturnStmt):
            if statement.value is not None:
                raise FrontendError("returning values is not supported")
        else:
            raise FrontendError(f"unsupported statement {statement!r}")

    def _convert_declaration(self, decl: ast.Declaration) -> None:
        element_type = _BASE_TYPES.get(decl.base_type)
        if element_type is None:
            raise FrontendError(f"unsupported declaration type {decl.base_type!r}")
        if decl.dims:
            alloc = self.builder.insert(memref.AllocOp(
                MemRefType(decl.dims, element_type), name=decl.name))
            self.symbols.memrefs[decl.name] = alloc.result()
            if decl.init is not None:
                raise FrontendError("array initialisers are not supported")
            return
        # Scalar local: a single-element buffer keeps assignment semantics simple.
        alloc = self.builder.insert(memref.AllocOp(
            MemRefType((1,), element_type), name=decl.name))
        self.symbols.scalar_slots[decl.name] = alloc.result()
        if decl.init is not None:
            value = self._emit_expr(decl.init, element_type)
            zero = self._index_constant(0)
            self.builder.insert(memref.StoreOp(value, alloc.result(), [zero]))

    def _convert_assignment(self, assignment: ast.Assignment) -> None:
        target = assignment.target
        if isinstance(target, ast.ArrayRef):
            buffer = self.symbols.memrefs.get(target.name)
            if buffer is None:
                raise FrontendError(f"unknown array {target.name!r}")
            indices = [self._emit_expr(expr, index) for expr in target.indices]
            element_type = buffer.type.element_type
            value = self._emit_expr(assignment.value, element_type)
            if assignment.op != "=":
                current = self.builder.insert(memref.LoadOp(buffer, indices)).result()
                value = self._apply_compound(assignment.op, current, value, element_type)
            self.builder.insert(memref.StoreOp(value, buffer, indices))
            return
        # Scalar target.
        kind = self.symbols.lookup_kind(target.name)
        if kind == "slot":
            slot = self.symbols.scalar_slots[target.name]
            element_type = slot.type.element_type
            value = self._emit_expr(assignment.value, element_type)
            zero = self._index_constant(0)
            if assignment.op != "=":
                current = self.builder.insert(memref.LoadOp(slot, [zero])).result()
                value = self._apply_compound(assignment.op, current, value, element_type)
            self.builder.insert(memref.StoreOp(value, slot, [zero]))
            return
        raise FrontendError(
            f"cannot assign to {target.name!r} (function parameters are read-only)")

    def _apply_compound(self, op: str, current: Value, value: Value, element_type) -> Value:
        is_float = isinstance(element_type, FloatType)
        table = {
            "+=": arith.AddFOp if is_float else arith.AddIOp,
            "-=": arith.SubFOp if is_float else arith.SubIOp,
            "*=": arith.MulFOp if is_float else arith.MulIOp,
            "/=": arith.DivFOp if is_float else arith.DivSIOp,
        }
        op_class = table.get(op)
        if op_class is None:
            raise FrontendError(f"unsupported compound assignment {op!r}")
        return self.builder.insert(op_class(current, value)).result()

    def _convert_for(self, loop: ast.ForLoop) -> None:
        lower = self._emit_expr(loop.init, index)
        upper = self._emit_expr(loop.bound, index)
        if loop.compare_op == "<=":
            one = self._index_constant(1)
            upper = self.builder.insert(arith.AddIOp(upper, one)).result()
        step = self._index_constant(loop.step)
        loop_op = self.builder.insert(scf.SCFForOp(lower, upper, step))

        saved_loop_vars = dict(self.symbols.loop_vars)
        self.symbols.loop_vars[loop.var] = loop_op.induction_variable
        saved_point = self.builder.insertion_point
        self.builder.set_insertion_point_to_end(loop_op.body)
        self._convert_block(loop.body)
        self.builder.insertion_point = saved_point
        self.symbols.loop_vars = saved_loop_vars

    def _convert_if(self, statement: ast.IfStmt) -> None:
        condition = self._emit_condition(statement.condition)
        if_op = self.builder.insert(scf.SCFIfOp(condition,
                                                with_else=statement.else_body is not None))
        saved_point = self.builder.insertion_point
        self.builder.set_insertion_point_to_end(if_op.then_block)
        self._convert_block(statement.then_body)
        if statement.else_body is not None:
            self.builder.set_insertion_point_to_end(if_op.else_block)
            self._convert_block(statement.else_body)
        self.builder.insertion_point = saved_point

    # -- expressions ---------------------------------------------------------------------------

    def _emit_condition(self, expr: ast.Expr) -> Value:
        if isinstance(expr, ast.BinaryExpr) and expr.op in ("<", "<=", ">", ">=", "==", "!="):
            lhs_float = self._expr_is_float(expr.lhs) or self._expr_is_float(expr.rhs)
            target_type = f32 if lhs_float else index
            lhs = self._emit_expr(expr.lhs, target_type)
            rhs = self._emit_expr(expr.rhs, target_type)
            predicate = {"<": "slt", "<=": "sle", ">": "sgt", ">=": "sge",
                         "==": "eq", "!=": "ne"}[expr.op]
            if lhs_float:
                predicate = {"slt": "olt", "sle": "ole", "sgt": "ogt",
                             "sge": "oge", "eq": "eq", "ne": "ne"}[predicate]
                return self.builder.insert(arith.CmpFOp(predicate, lhs, rhs)).result()
            return self.builder.insert(arith.CmpIOp(predicate, lhs, rhs)).result()
        raise FrontendError("conditions must be comparisons")

    def _expr_is_float(self, expr: ast.Expr) -> bool:
        if isinstance(expr, ast.FloatLiteral):
            return True
        if isinstance(expr, ast.VarRef):
            value = self.symbols.scalars.get(expr.name)
            if value is not None:
                return isinstance(value.type, FloatType)
            slot = self.symbols.scalar_slots.get(expr.name)
            if slot is not None:
                return isinstance(slot.type.element_type, FloatType)
            return False
        if isinstance(expr, ast.ArrayRef):
            buffer = self.symbols.memrefs.get(expr.name)
            return buffer is not None and isinstance(buffer.type.element_type, FloatType)
        if isinstance(expr, ast.BinaryExpr):
            return self._expr_is_float(expr.lhs) or self._expr_is_float(expr.rhs)
        if isinstance(expr, ast.UnaryExpr):
            return self._expr_is_float(expr.operand)
        if isinstance(expr, ast.TernaryExpr):
            return self._expr_is_float(expr.true_value) or self._expr_is_float(expr.false_value)
        return False

    def _emit_expr(self, expr: ast.Expr, target_type) -> Value:
        is_float = isinstance(target_type, FloatType)
        if isinstance(expr, ast.IntLiteral):
            return self.builder.insert(arith.ConstantOp(
                float(expr.value) if is_float else expr.value, target_type)).result()
        if isinstance(expr, ast.FloatLiteral):
            if not is_float:
                raise FrontendError("float literal used where an integer is required")
            return self.builder.insert(arith.ConstantOp(expr.value, target_type)).result()
        if isinstance(expr, ast.VarRef):
            return self._emit_var(expr, target_type)
        if isinstance(expr, ast.ArrayRef):
            buffer = self.symbols.memrefs.get(expr.name)
            if buffer is None:
                raise FrontendError(f"unknown array {expr.name!r}")
            indices = [self._emit_expr(e, index) for e in expr.indices]
            return self.builder.insert(memref.LoadOp(buffer, indices)).result()
        if isinstance(expr, ast.UnaryExpr):
            if expr.op == "-":
                operand = self._emit_expr(expr.operand, target_type)
                zero = self.builder.insert(arith.ConstantOp(
                    0.0 if is_float else 0, target_type)).result()
                op_class = arith.SubFOp if is_float else arith.SubIOp
                return self.builder.insert(op_class(zero, operand)).result()
            raise FrontendError(f"unsupported unary operator {expr.op!r}")
        if isinstance(expr, ast.TernaryExpr):
            condition = self._emit_condition(expr.condition)
            true_value = self._emit_expr(expr.true_value, target_type)
            false_value = self._emit_expr(expr.false_value, target_type)
            return self.builder.insert(arith.SelectOp(condition, true_value, false_value)).result()
        if isinstance(expr, ast.BinaryExpr):
            return self._emit_binary(expr, target_type)
        raise FrontendError(f"unsupported expression {expr!r}")

    def _emit_var(self, expr: ast.VarRef, target_type) -> Value:
        kind = self.symbols.lookup_kind(expr.name)
        if kind == "loop":
            value = self.symbols.loop_vars[expr.name]
            if isinstance(target_type, IndexType):
                return value
            if isinstance(target_type, FloatType):
                return self.builder.insert(arith.SIToFPOp(value, target_type)).result()
            return self.builder.insert(arith.IndexCastOp(value, target_type)).result()
        if kind == "scalar":
            return self.symbols.scalars[expr.name]
        if kind == "slot":
            slot = self.symbols.scalar_slots[expr.name]
            zero = self._index_constant(0)
            return self.builder.insert(memref.LoadOp(slot, [zero])).result()
        if kind == "memref":
            raise FrontendError(f"array {expr.name!r} used as a scalar")
        raise FrontendError(f"unknown identifier {expr.name!r}")

    def _emit_binary(self, expr: ast.BinaryExpr, target_type) -> Value:
        is_float = isinstance(target_type, FloatType)
        lhs = self._emit_expr(expr.lhs, target_type)
        rhs = self._emit_expr(expr.rhs, target_type)
        if is_float:
            table = {"+": arith.AddFOp, "-": arith.SubFOp, "*": arith.MulFOp, "/": arith.DivFOp}
        else:
            table = {"+": arith.AddIOp, "-": arith.SubIOp, "*": arith.MulIOp,
                     "/": arith.DivSIOp, "%": arith.RemSIOp}
        op_class = table.get(expr.op)
        if op_class is None:
            raise FrontendError(f"unsupported binary operator {expr.op!r}")
        return self.builder.insert(op_class(lhs, rhs)).result()

    def _index_constant(self, value: int) -> Value:
        return self.builder.insert(arith.ConstantOp(value, index)).result()


def parse_c_to_module(source: str, module_name: str = "c_module") -> ModuleOp:
    """Parse C source and lower it to an ``scf``-level module."""
    program = parse_c(source)
    return CToMLIR(program, module_name).convert()

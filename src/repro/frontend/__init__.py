"""Front-ends: HLS C parsing and PyTorch-like graph construction.

* :mod:`repro.frontend.c_parser` / :mod:`repro.frontend.c_to_mlir` — parse the
  synthesizable C subset and emit ``scf``-level IR (paper Section VI-A).
* :mod:`repro.frontend.raise_to_affine` — the ``-raise-scf-to-affine`` pass.
* :mod:`repro.frontend.pytorch_like` / :mod:`repro.frontend.models` — build
  graph-level IR for DNN models the way Torch-MLIR / ONNX-MLIR would.
"""

from repro.frontend.c_to_mlir import parse_c_to_module
from repro.frontend.raise_to_affine import RaiseSCFToAffinePass
from repro.frontend.pytorch_like import GraphBuilder
from repro.frontend.models import resnet18, vgg16, mobilenet

__all__ = [
    "parse_c_to_module",
    "RaiseSCFToAffinePass",
    "GraphBuilder",
    "resnet18",
    "vgg16",
    "mobilenet",
]

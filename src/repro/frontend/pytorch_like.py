"""A PyTorch-like model building API producing graph-level IR.

The paper imports PyTorch/ONNX models through Torch-MLIR and ONNX-MLIR; this
module provides the equivalent entry point for the reproduction: a
:class:`GraphBuilder` with layer methods (``conv2d``, ``relu``, ``dense`` ...)
that append graph-dialect operations to a ``forward`` function.  The builders
in :mod:`repro.frontend.models` use it to construct ResNet-18, VGG-16 and
MobileNet for the CIFAR-10 input shape used in the paper's evaluation.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.dialects import func, graph, hlscpp
from repro.ir.builder import Builder
from repro.ir.module import ModuleOp
from repro.ir.types import FunctionType, TensorType, f32
from repro.ir.value import Value


class GraphBuilder:
    """Builds a single-function graph-level module layer by layer."""

    def __init__(self, model_name: str = "model", input_shape: Sequence[int] = (1, 3, 32, 32),
                 func_name: str = "forward"):
        self.module = ModuleOp(model_name)
        input_type = TensorType(tuple(input_shape), f32)
        self.func_op = func.FuncOp(func_name, FunctionType([input_type], []))
        self.module.append(self.func_op)
        hlscpp.set_top_function(self.func_op)
        self.builder = Builder()
        self.builder.set_insertion_point_to_end(self.func_op.body)
        self.input: Value = self.func_op.arguments[0]
        self._finished = False
        self._layer_counter = 0

    # -- layer methods ----------------------------------------------------------------

    def conv2d(self, x: Value, out_channels: int, kernel_size: int, stride: int = 1,
               padding: int = 0, groups: int = 1, bias: bool = True,
               name: str = "") -> Value:
        op = self.builder.insert(graph.Conv2DOp(
            x, out_channels, kernel_size, stride=stride, padding=padding,
            groups=groups, has_bias=bias, name=name or self._auto_name("conv")))
        return op.result()

    def depthwise_conv2d(self, x: Value, kernel_size: int, stride: int = 1,
                         padding: int = 0, name: str = "") -> Value:
        channels = x.type.shape[1]
        return self.conv2d(x, channels, kernel_size, stride=stride, padding=padding,
                           groups=channels, name=name or self._auto_name("dwconv"))

    def batchnorm(self, x: Value, name: str = "") -> Value:
        op = self.builder.insert(graph.BatchNormOp(x, name=name or self._auto_name("bn")))
        return op.result()

    def relu(self, x: Value, name: str = "") -> Value:
        op = self.builder.insert(graph.ReLUOp(x, name=name or self._auto_name("relu")))
        return op.result()

    def add(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        op = self.builder.insert(graph.AddOp(lhs, rhs, name=name or self._auto_name("add")))
        return op.result()

    def maxpool2d(self, x: Value, kernel_size: int, stride: Optional[int] = None,
                  padding: int = 0, name: str = "") -> Value:
        op = self.builder.insert(graph.MaxPool2DOp(
            x, kernel_size, stride=stride, padding=padding,
            name=name or self._auto_name("maxpool")))
        return op.result()

    def avgpool2d(self, x: Value, kernel_size: int, stride: Optional[int] = None,
                  padding: int = 0, name: str = "") -> Value:
        op = self.builder.insert(graph.AvgPool2DOp(
            x, kernel_size, stride=stride, padding=padding,
            name=name or self._auto_name("avgpool")))
        return op.result()

    def global_avgpool2d(self, x: Value, name: str = "") -> Value:
        spatial = x.type.shape[2]
        return self.avgpool2d(x, spatial, name=name or self._auto_name("gap"))

    def flatten(self, x: Value, name: str = "") -> Value:
        op = self.builder.insert(graph.FlattenOp(x, name=name or self._auto_name("flatten")))
        return op.result()

    def dense(self, x: Value, out_features: int, bias: bool = True, name: str = "") -> Value:
        op = self.builder.insert(graph.DenseOp(
            x, out_features, has_bias=bias, name=name or self._auto_name("fc")))
        return op.result()

    # -- composite blocks ---------------------------------------------------------------

    def conv_bn_relu(self, x: Value, out_channels: int, kernel_size: int,
                     stride: int = 1, padding: int = 0, groups: int = 1,
                     name: str = "") -> Value:
        x = self.conv2d(x, out_channels, kernel_size, stride=stride, padding=padding,
                        groups=groups, name=name)
        x = self.batchnorm(x)
        return self.relu(x)

    # -- finalisation ---------------------------------------------------------------------

    def finish(self, output: Value) -> ModuleOp:
        """Mark ``output`` as the model result and return the finished module."""
        if self._finished:
            raise RuntimeError("the builder has already been finished")
        self.func_op.set_result_types([output.type])
        self.builder.insert(func.ReturnOp([output]))
        self._finished = True
        return self.module

    # -- helpers -----------------------------------------------------------------------------

    def _auto_name(self, prefix: str) -> str:
        self._layer_counter += 1
        return f"{prefix}_{self._layer_counter}"


def model_flops(module: ModuleOp) -> int:
    """Total multiply-accumulate style operations of every graph op in the module."""
    total = 0
    for op in module.walk():
        if isinstance(op, graph.GraphOp):
            total += op.flops()
    return total


def model_parameters(module: ModuleOp) -> int:
    """Total number of weight parameters of every graph op in the module."""
    total = 0
    for op in module.walk():
        if isinstance(op, graph.GraphOp):
            total += op.weight_elements()
    return total

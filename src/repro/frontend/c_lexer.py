"""Tokenizer for the synthesizable HLS C subset."""

from __future__ import annotations

import dataclasses
import re
from typing import Iterator

KEYWORDS = {
    "void", "float", "double", "int", "for", "if", "else", "return", "const",
}

#: Multi-character operators, longest first so the tokenizer is greedy.
OPERATORS = [
    "+=", "-=", "*=", "/=", "==", "!=", "<=", ">=", "++", "--", "&&", "||",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "?", ":",
]

PUNCTUATION = ["(", ")", "{", "}", "[", "]", ";", ","]


@dataclasses.dataclass
class Token:
    """A single lexical token with its source line for diagnostics."""

    kind: str  # "keyword", "identifier", "number", "operator", "punct", "eof"
    text: str
    line: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, line {self.line})"


class LexError(Exception):
    """Raised on an unrecognised character."""


_NUMBER_RE = re.compile(r"\d+\.\d*([eE][+-]?\d+)?[fF]?|\.\d+([eE][+-]?\d+)?[fF]?|\d+[fF]?")
_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


def tokenize(source: str) -> list[Token]:
    """Tokenize C source, skipping comments and ``#pragma`` / ``#include`` lines."""
    tokens: list[Token] = []
    line = 1
    i = 0
    length = len(source)
    while i < length:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            continue
        if ch == "#":
            # Preprocessor directive: skip the rest of the (logical) line.
            while i < length and source[i] != "\n":
                i += 1
            continue
        if source.startswith("//", i):
            while i < length and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end == -1:
                raise LexError(f"unterminated block comment at line {line}")
            line += source.count("\n", i, end)
            i = end + 2
            continue
        number = _NUMBER_RE.match(source, i)
        if number and number.start() == i and source[i].isdigit() or (ch == "." and number):
            text = number.group(0)
            tokens.append(Token("number", text, line))
            i = number.end()
            continue
        ident = _IDENT_RE.match(source, i)
        if ident:
            text = ident.group(0)
            kind = "keyword" if text in KEYWORDS else "identifier"
            tokens.append(Token(kind, text, line))
            i = ident.end()
            continue
        matched = False
        for op in OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token("operator", op, line))
                i += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in PUNCTUATION:
            tokens.append(Token("punct", ch, line))
            i += 1
            continue
        raise LexError(f"unexpected character {ch!r} at line {line}")
    tokens.append(Token("eof", "", line))
    return tokens


def iter_tokens(source: str) -> Iterator[Token]:
    return iter(tokenize(source))

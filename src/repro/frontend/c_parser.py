"""Recursive-descent parser for the synthesizable HLS C subset.

Supported constructs mirror what Vivado HLS accepts for the PolyBench-style
kernels this reproduction compiles: ``void`` functions with scalar and
fixed-size array parameters, local declarations, canonical counted ``for``
loops, ``if``/``else``, assignments (including the compound forms), and
arithmetic / comparison expressions with array subscripts.  Pointers,
structs, ``while`` loops and function calls are rejected — the paper's
front-end rejects unsupported constructs the same way.
"""

from __future__ import annotations

from typing import Optional

from repro.frontend import c_ast as ast
from repro.frontend.c_lexer import Token, tokenize


class ParseError(Exception):
    """Raised when the source is outside the supported C subset."""


class Parser:
    """Parses a token stream into a :class:`~repro.frontend.c_ast.Program`."""

    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.position = 0

    # -- token helpers -------------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.position]

    def advance(self) -> Token:
        token = self.current
        self.position += 1
        return token

    def check(self, kind: str, text: Optional[str] = None) -> bool:
        token = self.current
        return token.kind == kind and (text is None or token.text == text)

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self.check(kind, text):
            return self.advance()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        if not self.check(kind, text):
            want = text or kind
            raise ParseError(
                f"line {self.current.line}: expected {want!r}, found {self.current.text!r}")
        return self.advance()

    # -- top level ------------------------------------------------------------------

    def parse_program(self) -> ast.Program:
        functions = []
        while not self.check("eof"):
            functions.append(self.parse_function())
        return ast.Program(functions)

    def parse_function(self) -> ast.FunctionDef:
        return_type = self.expect("keyword").text
        name = self.expect("identifier").text
        self.expect("punct", "(")
        params = []
        if not self.check("punct", ")"):
            params.append(self.parse_param())
            while self.accept("punct", ","):
                params.append(self.parse_param())
        self.expect("punct", ")")
        body = self.parse_block()
        return ast.FunctionDef(name, return_type, params, body)

    def parse_param(self) -> ast.Param:
        self.accept("keyword", "const")
        base_type = self.expect("keyword").text
        if base_type not in ("float", "double", "int"):
            raise ParseError(f"unsupported parameter type {base_type!r}")
        name = self.expect("identifier").text
        dims = []
        while self.accept("punct", "["):
            dims.append(int(self.expect("number").text))
            self.expect("punct", "]")
        return ast.Param(name, base_type, dims)

    # -- statements -------------------------------------------------------------------

    def parse_block(self) -> ast.BlockStmt:
        self.expect("punct", "{")
        statements = []
        while not self.check("punct", "}"):
            statements.append(self.parse_statement())
        self.expect("punct", "}")
        return ast.BlockStmt(statements)

    def parse_statement(self) -> ast.Stmt:
        if self.check("punct", "{"):
            return self.parse_block()
        if self.check("keyword", "for"):
            return self.parse_for()
        if self.check("keyword", "if"):
            return self.parse_if()
        if self.check("keyword", "return"):
            self.advance()
            value = None
            if not self.check("punct", ";"):
                value = self.parse_expression()
            self.expect("punct", ";")
            return ast.ReturnStmt(value)
        if self.check("keyword"):
            return self.parse_declaration()
        return self.parse_assignment()

    def parse_declaration(self) -> ast.Declaration:
        base_type = self.expect("keyword").text
        if base_type not in ("float", "double", "int"):
            raise ParseError(f"unsupported declaration type {base_type!r}")
        name = self.expect("identifier").text
        dims = []
        while self.accept("punct", "["):
            dims.append(int(self.expect("number").text))
            self.expect("punct", "]")
        init = None
        if self.accept("operator", "="):
            init = self.parse_expression()
        self.expect("punct", ";")
        return ast.Declaration(name, base_type, dims, init)

    def parse_assignment(self) -> ast.Assignment:
        target = self.parse_postfix()
        if not isinstance(target, (ast.VarRef, ast.ArrayRef)):
            raise ParseError("assignment target must be a variable or array element")
        token = self.current
        if token.kind == "operator" and token.text in ("=", "+=", "-=", "*=", "/="):
            op = self.advance().text
            value = self.parse_expression()
            self.expect("punct", ";")
            return ast.Assignment(target, op, value)
        if token.kind == "operator" and token.text in ("++", "--"):
            self.advance()
            self.expect("punct", ";")
            delta = ast.IntLiteral(1)
            op = "+=" if token.text == "++" else "-="
            return ast.Assignment(target, op, delta)
        raise ParseError(f"line {token.line}: expected an assignment operator")

    def parse_for(self) -> ast.ForLoop:
        self.expect("keyword", "for")
        self.expect("punct", "(")
        # Initialisation: "int i = <expr>" or "i = <expr>".
        self.accept("keyword", "int")
        var = self.expect("identifier").text
        self.expect("operator", "=")
        init = self.parse_expression()
        self.expect("punct", ";")
        # Condition: "<var> < <expr>" or "<var> <= <expr>".
        cond_var = self.expect("identifier").text
        if cond_var != var:
            raise ParseError(f"loop condition must test the induction variable {var!r}")
        cmp_token = self.expect("operator")
        if cmp_token.text not in ("<", "<="):
            raise ParseError("loop condition must use < or <=")
        bound = self.parse_expression()
        self.expect("punct", ";")
        # Update: "i++", "++i", "i += c" or "i = i + c".
        step = self.parse_for_update(var)
        self.expect("punct", ")")
        body = self.parse_statement()
        if not isinstance(body, ast.BlockStmt):
            body = ast.BlockStmt([body])
        return ast.ForLoop(var, init, bound, cmp_token.text, step, body)

    def parse_for_update(self, var: str) -> int:
        if self.accept("operator", "++"):
            self.expect("identifier", var) if self.check("identifier", var) else None
            return 1
        name = self.expect("identifier").text
        if name != var:
            raise ParseError("loop update must modify the induction variable")
        if self.accept("operator", "++"):
            return 1
        if self.accept("operator", "--"):
            raise ParseError("decrementing loops are not supported")
        if self.accept("operator", "+="):
            step_token = self.expect("number")
            return int(step_token.text)
        if self.accept("operator", "="):
            # i = i + c
            lhs = self.expect("identifier").text
            if lhs != var:
                raise ParseError("loop update must be of the form i = i + c")
            self.expect("operator", "+")
            step_token = self.expect("number")
            return int(step_token.text)
        raise ParseError("unsupported loop update expression")

    def parse_if(self) -> ast.IfStmt:
        self.expect("keyword", "if")
        self.expect("punct", "(")
        condition = self.parse_expression()
        self.expect("punct", ")")
        then_body = self.parse_statement()
        if not isinstance(then_body, ast.BlockStmt):
            then_body = ast.BlockStmt([then_body])
        else_body = None
        if self.accept("keyword", "else"):
            parsed = self.parse_statement()
            else_body = parsed if isinstance(parsed, ast.BlockStmt) else ast.BlockStmt([parsed])
        return ast.IfStmt(condition, then_body, else_body)

    # -- expressions -----------------------------------------------------------------------

    def parse_expression(self) -> ast.Expr:
        return self.parse_ternary()

    def parse_ternary(self) -> ast.Expr:
        condition = self.parse_logical()
        if self.accept("operator", "?"):
            true_value = self.parse_expression()
            self.expect("operator", ":")
            false_value = self.parse_expression()
            return ast.TernaryExpr(condition, true_value, false_value)
        return condition

    def parse_logical(self) -> ast.Expr:
        expr = self.parse_comparison()
        while self.check("operator", "&&") or self.check("operator", "||"):
            op = self.advance().text
            rhs = self.parse_comparison()
            expr = ast.BinaryExpr(op, expr, rhs)
        return expr

    def parse_comparison(self) -> ast.Expr:
        expr = self.parse_additive()
        while self.current.kind == "operator" and self.current.text in (
                "<", "<=", ">", ">=", "==", "!="):
            op = self.advance().text
            rhs = self.parse_additive()
            expr = ast.BinaryExpr(op, expr, rhs)
        return expr

    def parse_additive(self) -> ast.Expr:
        expr = self.parse_multiplicative()
        while self.current.kind == "operator" and self.current.text in ("+", "-"):
            op = self.advance().text
            rhs = self.parse_multiplicative()
            expr = ast.BinaryExpr(op, expr, rhs)
        return expr

    def parse_multiplicative(self) -> ast.Expr:
        expr = self.parse_unary()
        while self.current.kind == "operator" and self.current.text in ("*", "/", "%"):
            op = self.advance().text
            rhs = self.parse_unary()
            expr = ast.BinaryExpr(op, expr, rhs)
        return expr

    def parse_unary(self) -> ast.Expr:
        if self.accept("operator", "-"):
            return ast.UnaryExpr("-", self.parse_unary())
        if self.accept("operator", "!"):
            return ast.UnaryExpr("!", self.parse_unary())
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Expr:
        if self.check("punct", "("):
            self.advance()
            expr = self.parse_expression()
            self.expect("punct", ")")
            return expr
        if self.check("number"):
            text = self.advance().text.rstrip("fF")
            if "." in text or "e" in text or "E" in text:
                return ast.FloatLiteral(float(text))
            return ast.IntLiteral(int(text))
        name = self.expect("identifier").text
        if self.check("punct", "["):
            indices = []
            while self.accept("punct", "["):
                indices.append(self.parse_expression())
                self.expect("punct", "]")
            return ast.ArrayRef(name, indices)
        return ast.VarRef(name)


def parse_c(source: str) -> ast.Program:
    """Parse C source text into an AST program."""
    return Parser(source).parse_program()

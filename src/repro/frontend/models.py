"""DNN model builders for the paper's evaluation (Section VII-B).

The three models — ResNet-18, VGG-16 and MobileNet — are built for the
CIFAR-10 image-classification task (1x3x32x32 inputs, 10 classes), matching
the configurations the paper evaluates on one SLR of a Xilinx VU9P.
"""

from __future__ import annotations

from repro.frontend.pytorch_like import GraphBuilder
from repro.ir.module import ModuleOp


def resnet18(num_classes: int = 10, input_shape=(1, 3, 32, 32)) -> ModuleOp:
    """ResNet-18 (CIFAR-10 variant: 3x3 stem, no initial max-pool)."""
    builder = GraphBuilder("resnet18", input_shape)
    x = builder.conv_bn_relu(builder.input, 64, 3, stride=1, padding=1, name="stem")

    def basic_block(x, out_channels, stride):
        identity = x
        out = builder.conv_bn_relu(x, out_channels, 3, stride=stride, padding=1)
        out = builder.conv2d(out, out_channels, 3, stride=1, padding=1)
        out = builder.batchnorm(out)
        if stride != 1 or identity.type.shape[1] != out_channels:
            identity = builder.conv2d(identity, out_channels, 1, stride=stride, padding=0)
            identity = builder.batchnorm(identity)
        out = builder.add(out, identity)
        return builder.relu(out)

    stage_channels = (64, 128, 256, 512)
    for stage_index, channels in enumerate(stage_channels):
        stride = 1 if stage_index == 0 else 2
        x = basic_block(x, channels, stride)
        x = basic_block(x, channels, 1)

    x = builder.global_avgpool2d(x)
    x = builder.flatten(x)
    x = builder.dense(x, num_classes, name="classifier")
    return builder.finish(x)


def vgg16(num_classes: int = 10, input_shape=(1, 3, 32, 32)) -> ModuleOp:
    """VGG-16 with batch normalization (CIFAR-10 variant)."""
    builder = GraphBuilder("vgg16", input_shape)
    x = builder.input
    configuration = [
        (64, 2), (128, 2), (256, 3), (512, 3), (512, 3),
    ]
    for channels, repeats in configuration:
        for _ in range(repeats):
            x = builder.conv_bn_relu(x, channels, 3, stride=1, padding=1)
        x = builder.maxpool2d(x, 2)
    x = builder.flatten(x)
    x = builder.dense(x, 512)
    x = builder.relu(x)
    x = builder.dense(x, 512)
    x = builder.relu(x)
    x = builder.dense(x, num_classes, name="classifier")
    return builder.finish(x)


def mobilenet(num_classes: int = 10, input_shape=(1, 3, 32, 32),
              width_multiplier: float = 1.0) -> ModuleOp:
    """MobileNet-V1 built from depthwise-separable blocks (CIFAR-10 variant)."""
    builder = GraphBuilder("mobilenet", input_shape)

    def channels(base: int) -> int:
        return max(8, int(base * width_multiplier))

    def separable_block(x, out_channels, stride):
        x = builder.depthwise_conv2d(x, 3, stride=stride, padding=1)
        x = builder.batchnorm(x)
        x = builder.relu(x)
        x = builder.conv_bn_relu(x, out_channels, 1, stride=1, padding=0)
        return x

    x = builder.conv_bn_relu(builder.input, channels(32), 3, stride=1, padding=1, name="stem")
    block_configuration = [
        (64, 1), (128, 2), (128, 1), (256, 2), (256, 1),
        (512, 2), (512, 1), (512, 1), (512, 1), (512, 1), (512, 1),
        (1024, 2), (1024, 1),
    ]
    for out_channels, stride in block_configuration:
        x = separable_block(x, channels(out_channels), stride)

    x = builder.global_avgpool2d(x)
    x = builder.flatten(x)
    x = builder.dense(x, num_classes, name="classifier")
    return builder.finish(x)


#: Registry used by the DNN benchmarks.
MODEL_BUILDERS = {
    "resnet18": resnet18,
    "vgg16": vgg16,
    "mobilenet": mobilenet,
}


def build_model(name: str, **kwargs) -> ModuleOp:
    """Build a model by name (``resnet18``, ``vgg16`` or ``mobilenet``)."""
    try:
        builder = MODEL_BUILDERS[name]
    except KeyError as error:
        raise ValueError(f"unknown model {name!r}; expected one of {sorted(MODEL_BUILDERS)}") \
            from error
    return builder(**kwargs)

"""HLS C++ emission back-end (paper Section VI-B)."""

from repro.emit.hlscpp_emitter import HLSCppEmitter, emit_hlscpp

__all__ = ["HLSCppEmitter", "emit_hlscpp"]

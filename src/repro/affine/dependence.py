"""Memory dependence analysis over affine accesses.

The loop-order optimization pass and the pipeline II estimation both need to
know, for a band of loops, which loops *carry* a dependence between a write
and another access of the same buffer, and with what iteration distance.

The model is intentionally simple but conservative: accesses whose index
expressions are not linear in the band's induction variables, or whose
coefficient structure differs, are treated as having an unknown ("free")
dependence along every loop, which forces the consumers to assume a carried
dependence of distance one.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional, Sequence

from repro.affine.analysis import linearize
from repro.affine.expr import AffineExpr

#: Marker distance for "the dependence may be carried with any distance".
FREE = "free"


@dataclasses.dataclass
class MemoryAccess:
    """One memory access inside a loop band.

    ``memref`` identifies the accessed buffer (any hashable object — in
    practice the SSA :class:`~repro.ir.value.Value` of the memref).
    ``indices`` are affine expressions over the band's induction variables,
    outermost loop first.
    """

    memref: object
    indices: tuple[AffineExpr, ...]
    is_write: bool
    op: object = None

    def __post_init__(self):
        self.indices = tuple(self.indices)


@dataclasses.dataclass
class Dependence:
    """A dependence between two accesses with per-loop distances.

    ``distances[d]`` is either an integer iteration distance along loop ``d``
    or the string ``"free"`` meaning any distance (the accesses hit the same
    address regardless of that loop's induction variable).
    """

    source: MemoryAccess
    target: MemoryAccess
    distances: tuple[object, ...]

    def carried_by(self, loop_dim: int) -> bool:
        """Return True if the dependence is carried by loop ``loop_dim``."""
        distance = self.distances[loop_dim]
        if distance == FREE:
            return True
        return distance != 0

    def distance_along(self, loop_dim: int) -> int:
        """Minimal positive carried distance along ``loop_dim`` (1 if free)."""
        distance = self.distances[loop_dim]
        if distance == FREE:
            return 1
        return abs(int(distance))


def dependence_distance(source: MemoryAccess, target: MemoryAccess,
                        num_dims: int) -> Optional[Dependence]:
    """Compute the dependence between two accesses, if any.

    Returns ``None`` when the accesses provably never conflict (different
    buffers, both reads, or incompatible constant offsets), otherwise a
    :class:`Dependence` with per-loop distances.
    """
    if source.memref is not target.memref and source.memref != target.memref:
        return None
    if not source.is_write and not target.is_write:
        return None
    if len(source.indices) != len(target.indices):
        return _conservative(source, target, num_dims)

    src_lin = [linearize(expr, num_dims) for expr in source.indices]
    dst_lin = [linearize(expr, num_dims) for expr in target.indices]
    if any(entry is None for entry in src_lin) or any(entry is None for entry in dst_lin):
        return _conservative(source, target, num_dims)

    # Coefficient structure must match for the simple distance solve below.
    for (src_coeffs, _), (dst_coeffs, _) in zip(src_lin, dst_lin):
        if src_coeffs != dst_coeffs:
            return _conservative(source, target, num_dims)

    distances: list[object] = [FREE] * num_dims
    determined: dict[int, int] = {}
    for (coeffs, src_const), (_, dst_const) in zip(src_lin, dst_lin):
        nonzero = [d for d, c in enumerate(coeffs) if c != 0]
        offset = src_const - dst_const
        if not nonzero:
            if offset != 0:
                # Constant, differing addresses in this dimension: no conflict.
                return None
            continue
        if len(nonzero) == 1:
            d = nonzero[0]
            coeff = coeffs[d]
            if offset % coeff != 0:
                return None
            distance = offset // coeff
            if d in determined and determined[d] != distance:
                return None
            determined[d] = distance
        # Multiple coupled dims (e.g. flattened i*T + ii): leave them "free",
        # which is conservative.

    for d, distance in determined.items():
        distances[d] = distance
    # Dims referenced by the accesses but not pinned above stay FREE only if
    # their coefficient is zero everywhere; a dim with a nonzero coefficient
    # that was pinned is already in `determined`.
    for d in range(num_dims):
        if d in determined:
            continue
        referenced = any(coeffs[d] != 0 for coeffs, _ in src_lin)
        if referenced:
            # Coupled dim; stay conservative.
            distances[d] = FREE
        else:
            distances[d] = FREE
    # Dims with zero coefficients everywhere genuinely leave the address
    # unchanged -> dependence is carried with any distance, hence FREE.
    return Dependence(source, target, tuple(distances))


def _conservative(source: MemoryAccess, target: MemoryAccess, num_dims: int) -> Dependence:
    return Dependence(source, target, tuple([FREE] * num_dims))


def accesses_conflict(a: MemoryAccess, b: MemoryAccess, num_dims: int) -> bool:
    """Return True unless the two accesses provably never touch the same address."""
    if a.memref is not b.memref and a.memref != b.memref:
        return False
    if not a.is_write and not b.is_write:
        return False
    return dependence_distance(a, b, num_dims) is not None


def all_dependences(accesses: Sequence[MemoryAccess], num_dims: int) -> list[Dependence]:
    """All pairwise dependences among ``accesses`` (at least one write per pair)."""
    found: list[Dependence] = []
    for i, src in enumerate(accesses):
        for dst in accesses[i:]:
            if not src.is_write and not dst.is_write:
                continue
            dep = dependence_distance(src, dst, num_dims)
            if dep is not None:
                found.append(dep)
    return found


def loops_carrying_dependence(accesses: Sequence[MemoryAccess], num_dims: int) -> set[int]:
    """The set of loop dims that carry at least one dependence.

    A loop carries a dependence when a write and another access of the same
    buffer resolve to the same address for different values of that loop's
    induction variable — the classic reduction pattern ``C[i][j] += ...``
    inside a ``k`` loop carries a dependence on ``k``.
    """
    carrying: set[int] = set()
    for dep in all_dependences(accesses, num_dims):
        src_dims = set().union(*[expr.used_dims() for expr in dep.source.indices]) \
            if dep.source.indices else set()
        dst_dims = set().union(*[expr.used_dims() for expr in dep.target.indices]) \
            if dep.target.indices else set()
        referenced = src_dims | dst_dims
        for d in range(num_dims):
            distance = dep.distances[d]
            if distance == FREE:
                if d not in referenced:
                    carrying.add(d)
            elif distance != 0:
                carrying.add(d)
    return carrying


def minimum_carried_distance(accesses: Sequence[MemoryAccess], num_dims: int,
                             loop_dim: int) -> Optional[int]:
    """Minimal positive dependence distance carried by ``loop_dim``.

    Returns ``None`` if no dependence is carried by the loop (pipelining the
    loop is then constrained only by resources).
    """
    best: Optional[int] = None
    for dep in all_dependences(accesses, num_dims):
        if not dep.carried_by(loop_dim):
            continue
        referenced = set()
        for expr in dep.source.indices + dep.target.indices:
            referenced |= expr.used_dims()
        distance = dep.distances[loop_dim]
        if distance == FREE and loop_dim in referenced:
            # Coupled but unresolved: assume distance one (conservative).
            candidate = 1
        elif distance == FREE:
            candidate = 1
        else:
            candidate = abs(int(distance))
            if candidate == 0:
                continue
        best = candidate if best is None else min(best, candidate)
    if best is not None:
        return best
    return None


def gcd_distance(distances: Sequence[int]) -> int:
    """Greatest common divisor of a list of distances (0 if empty)."""
    result = 0
    for value in distances:
        result = math.gcd(result, abs(int(value)))
    return result

"""Affine expressions.

An affine expression is built from dimension identifiers (``d0``, ``d1``, ...),
symbol identifiers (``s0``, ``s1``, ...), integer constants and the operators
``+``, ``-``, ``*`` (by a constant), ``mod``, ``floordiv`` and ``ceildiv``
(by a positive constant).  Expressions are immutable and hashable; light
simplification (constant folding, identity/zero elimination) is applied at
construction time so that structurally equal expressions compare equal in the
common cases the compiler cares about.
"""

from __future__ import annotations

import enum
from typing import Mapping, Sequence


class AffineExprKind(enum.Enum):
    """Kinds of affine expression nodes."""

    DIM = "dim"
    SYMBOL = "symbol"
    CONSTANT = "constant"
    ADD = "add"
    MUL = "mul"
    MOD = "mod"
    FLOORDIV = "floordiv"
    CEILDIV = "ceildiv"


class AffineExpr:
    """Base class of all affine expression nodes."""

    kind: AffineExprKind

    # -- construction helpers -------------------------------------------------

    @staticmethod
    def get_dim(position: int) -> "AffineDimExpr":
        return AffineDimExpr(position)

    @staticmethod
    def get_symbol(position: int) -> "AffineSymbolExpr":
        return AffineSymbolExpr(position)

    @staticmethod
    def get_constant(value: int) -> "AffineConstantExpr":
        return AffineConstantExpr(value)

    # -- arithmetic operators --------------------------------------------------

    def __add__(self, other) -> "AffineExpr":
        return _make_add(self, _wrap(other))

    def __radd__(self, other) -> "AffineExpr":
        return _make_add(_wrap(other), self)

    def __sub__(self, other) -> "AffineExpr":
        return _make_add(self, _make_mul(_wrap(other), AffineConstantExpr(-1)))

    def __rsub__(self, other) -> "AffineExpr":
        return _make_add(_wrap(other), _make_mul(self, AffineConstantExpr(-1)))

    def __mul__(self, other) -> "AffineExpr":
        return _make_mul(self, _wrap(other))

    def __rmul__(self, other) -> "AffineExpr":
        return _make_mul(_wrap(other), self)

    def __neg__(self) -> "AffineExpr":
        return _make_mul(self, AffineConstantExpr(-1))

    def __mod__(self, other) -> "AffineExpr":
        return _make_binary(AffineExprKind.MOD, self, _wrap(other))

    def floordiv(self, other) -> "AffineExpr":
        return _make_binary(AffineExprKind.FLOORDIV, self, _wrap(other))

    def ceildiv(self, other) -> "AffineExpr":
        return _make_binary(AffineExprKind.CEILDIV, self, _wrap(other))

    def __floordiv__(self, other) -> "AffineExpr":
        return self.floordiv(other)

    # -- queries ---------------------------------------------------------------

    def is_constant(self) -> bool:
        return isinstance(self, AffineConstantExpr)

    def is_pure_affine(self) -> bool:
        """Return True if the expression is affine in its dims and symbols.

        Multiplication must have at least one constant operand and ``mod`` /
        ``floordiv`` / ``ceildiv`` must have a constant right-hand side.
        """
        if isinstance(self, (AffineDimExpr, AffineSymbolExpr, AffineConstantExpr)):
            return True
        assert isinstance(self, AffineBinaryExpr)
        lhs, rhs = self.lhs, self.rhs
        if not (lhs.is_pure_affine() and rhs.is_pure_affine()):
            return False
        if self.kind is AffineExprKind.ADD:
            return True
        if self.kind is AffineExprKind.MUL:
            return lhs.is_constant() or rhs.is_constant()
        # mod / floordiv / ceildiv
        return rhs.is_constant()

    def evaluate(self, dims: Sequence[int], symbols: Sequence[int] = ()) -> int:
        """Evaluate the expression for concrete dim and symbol values."""
        if isinstance(self, AffineDimExpr):
            return int(dims[self.position])
        if isinstance(self, AffineSymbolExpr):
            return int(symbols[self.position])
        if isinstance(self, AffineConstantExpr):
            return self.value
        assert isinstance(self, AffineBinaryExpr)
        lhs = self.lhs.evaluate(dims, symbols)
        rhs = self.rhs.evaluate(dims, symbols)
        if self.kind is AffineExprKind.ADD:
            return lhs + rhs
        if self.kind is AffineExprKind.MUL:
            return lhs * rhs
        if self.kind is AffineExprKind.MOD:
            return lhs % rhs
        if self.kind is AffineExprKind.FLOORDIV:
            return lhs // rhs
        if self.kind is AffineExprKind.CEILDIV:
            return -((-lhs) // rhs)
        raise AssertionError(f"unhandled kind {self.kind}")

    def replace(self, dim_replacements: Mapping[int, "AffineExpr"] | Sequence["AffineExpr"],
                symbol_replacements: Mapping[int, "AffineExpr"] | Sequence["AffineExpr"] = ()) -> "AffineExpr":
        """Substitute dims and symbols with replacement expressions."""
        if isinstance(self, AffineDimExpr):
            repl = _lookup(dim_replacements, self.position)
            return repl if repl is not None else self
        if isinstance(self, AffineSymbolExpr):
            repl = _lookup(symbol_replacements, self.position)
            return repl if repl is not None else self
        if isinstance(self, AffineConstantExpr):
            return self
        assert isinstance(self, AffineBinaryExpr)
        lhs = self.lhs.replace(dim_replacements, symbol_replacements)
        rhs = self.rhs.replace(dim_replacements, symbol_replacements)
        return _make_binary(self.kind, lhs, rhs)

    def shift_dims(self, shift: int) -> "AffineExpr":
        """Return a copy with every dim position increased by ``shift``."""
        if isinstance(self, AffineDimExpr):
            return AffineDimExpr(self.position + shift)
        if isinstance(self, (AffineSymbolExpr, AffineConstantExpr)):
            return self
        assert isinstance(self, AffineBinaryExpr)
        return _make_binary(self.kind, self.lhs.shift_dims(shift), self.rhs.shift_dims(shift))

    def used_dims(self) -> set[int]:
        """Return the set of dim positions referenced by the expression."""
        result: set[int] = set()
        _collect(self, AffineDimExpr, result)
        return result

    def used_symbols(self) -> set[int]:
        """Return the set of symbol positions referenced by the expression."""
        result: set[int] = set()
        _collect(self, AffineSymbolExpr, result)
        return result

    # -- comparison ------------------------------------------------------------

    def __eq__(self, other) -> bool:
        if not isinstance(other, AffineExpr):
            return NotImplemented
        return self._k == other._k

    def __hash__(self) -> int:
        return self._h

    def _key(self):
        # Structural identity, precomputed at construction (expressions are
        # immutable): equality and hashing are hot in access analyses, so
        # they must not rebuild the key tuple recursively per comparison.
        return self._k

    def __repr__(self) -> str:
        return f"AffineExpr({self})"


class AffineDimExpr(AffineExpr):
    """A dimension identifier ``d<position>``."""

    kind = AffineExprKind.DIM

    def __init__(self, position: int):
        if position < 0:
            raise ValueError("dim position must be non-negative")
        self.position = position
        self._k = (self.kind, position)
        self._h = hash(self._k)

    def __str__(self) -> str:
        return f"d{self.position}"


class AffineSymbolExpr(AffineExpr):
    """A symbol identifier ``s<position>``."""

    kind = AffineExprKind.SYMBOL

    def __init__(self, position: int):
        if position < 0:
            raise ValueError("symbol position must be non-negative")
        self.position = position
        self._k = (self.kind, position)
        self._h = hash(self._k)

    def __str__(self) -> str:
        return f"s{self.position}"


class AffineConstantExpr(AffineExpr):
    """An integer constant."""

    kind = AffineExprKind.CONSTANT

    def __init__(self, value: int):
        self.value = int(value)
        self._k = (self.kind, self.value)
        self._h = hash(self._k)

    def __str__(self) -> str:
        return str(self.value)


_BINARY_SYMBOL = {
    AffineExprKind.ADD: "+",
    AffineExprKind.MUL: "*",
    AffineExprKind.MOD: "mod",
    AffineExprKind.FLOORDIV: "floordiv",
    AffineExprKind.CEILDIV: "ceildiv",
}


class AffineBinaryExpr(AffineExpr):
    """A binary affine expression (add, mul, mod, floordiv, ceildiv)."""

    def __init__(self, kind: AffineExprKind, lhs: AffineExpr, rhs: AffineExpr):
        self.kind = kind
        self.lhs = lhs
        self.rhs = rhs
        self._k = (kind, lhs._k, rhs._k)
        self._h = hash(self._k)

    def __str__(self) -> str:
        return f"({self.lhs} {_BINARY_SYMBOL[self.kind]} {self.rhs})"


# -- module-level convenience constructors ------------------------------------


def dim(position: int) -> AffineDimExpr:
    """Shorthand for :meth:`AffineExpr.get_dim`."""
    return AffineDimExpr(position)


def symbol(position: int) -> AffineSymbolExpr:
    """Shorthand for :meth:`AffineExpr.get_symbol`."""
    return AffineSymbolExpr(position)


#: Interned constants: unrolled access analyses materialize the same small
#: integers millions of times; expressions are immutable, so sharing is safe.
_CONSTANT_CACHE: dict[int, AffineConstantExpr] = {}


def constant(value: int) -> AffineConstantExpr:
    """Shorthand for :meth:`AffineExpr.get_constant` (interned)."""
    cached = _CONSTANT_CACHE.get(value)
    if cached is None:
        cached = _CONSTANT_CACHE[value] = AffineConstantExpr(int(value))
    return cached


# -- internal simplification helpers ------------------------------------------


def _wrap(value) -> AffineExpr:
    if isinstance(value, AffineExpr):
        return value
    if isinstance(value, int):
        return AffineConstantExpr(value)
    raise TypeError(f"cannot build an affine expression from {value!r}")


def _lookup(replacements, position):
    if isinstance(replacements, Mapping):
        return replacements.get(position)
    if 0 <= position < len(replacements):
        return replacements[position]
    return None


def _collect(expr: AffineExpr, node_type, out: set[int]) -> None:
    if isinstance(expr, node_type):
        out.add(expr.position)
    elif isinstance(expr, AffineBinaryExpr):
        _collect(expr.lhs, node_type, out)
        _collect(expr.rhs, node_type, out)


def _make_add(lhs: AffineExpr, rhs: AffineExpr) -> AffineExpr:
    if isinstance(lhs, AffineConstantExpr) and isinstance(rhs, AffineConstantExpr):
        return AffineConstantExpr(lhs.value + rhs.value)
    if isinstance(lhs, AffineConstantExpr) and lhs.value == 0:
        return rhs
    if isinstance(rhs, AffineConstantExpr) and rhs.value == 0:
        return lhs
    # Canonical form: constants to the right.
    if isinstance(lhs, AffineConstantExpr):
        lhs, rhs = rhs, lhs
    return AffineBinaryExpr(AffineExprKind.ADD, lhs, rhs)


def _make_mul(lhs: AffineExpr, rhs: AffineExpr) -> AffineExpr:
    if isinstance(lhs, AffineConstantExpr) and isinstance(rhs, AffineConstantExpr):
        return AffineConstantExpr(lhs.value * rhs.value)
    if isinstance(lhs, AffineConstantExpr):
        lhs, rhs = rhs, lhs
    if isinstance(rhs, AffineConstantExpr):
        if rhs.value == 0:
            return AffineConstantExpr(0)
        if rhs.value == 1:
            return lhs
    return AffineBinaryExpr(AffineExprKind.MUL, lhs, rhs)


def _make_binary(kind: AffineExprKind, lhs: AffineExpr, rhs: AffineExpr) -> AffineExpr:
    if kind is AffineExprKind.ADD:
        return _make_add(lhs, rhs)
    if kind is AffineExprKind.MUL:
        return _make_mul(lhs, rhs)
    if isinstance(rhs, AffineConstantExpr) and rhs.value <= 0:
        raise ValueError(f"{kind.value} requires a positive constant divisor")
    if isinstance(lhs, AffineConstantExpr) and isinstance(rhs, AffineConstantExpr):
        if kind is AffineExprKind.MOD:
            return AffineConstantExpr(lhs.value % rhs.value)
        if kind is AffineExprKind.FLOORDIV:
            return AffineConstantExpr(lhs.value // rhs.value)
        if kind is AffineExprKind.CEILDIV:
            return AffineConstantExpr(-((-lhs.value) // rhs.value))
    if isinstance(rhs, AffineConstantExpr) and rhs.value == 1:
        if kind is AffineExprKind.MOD:
            return AffineConstantExpr(0)
        return lhs
    return AffineBinaryExpr(kind, lhs, rhs)

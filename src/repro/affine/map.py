"""Affine maps.

An :class:`AffineMap` is a function ``(d0, ..., dN-1)[s0, ..., sM-1] ->
(expr0, ..., exprK-1)`` mapping a list of dimension and symbol values to a
list of result expressions.  ScaleHLS uses affine maps in three places:

* loop bounds of ``affine.for`` operations,
* memory access index computations of ``affine.load`` / ``affine.store``,
* the memref *layout map* that encodes array partitioning (an N-dimensional
  array partitioned into physical banks has a layout map with N inputs and 2N
  results: the first N results are the partition indices and the last N the
  physical indices, exactly as described in Section IV-C3 of the paper).
"""

from __future__ import annotations

from typing import Sequence

from repro.affine.expr import (
    AffineConstantExpr,
    AffineDimExpr,
    AffineExpr,
    AffineSymbolExpr,
    dim,
)


class AffineMap:
    """An immutable affine map."""

    def __init__(self, num_dims: int, num_symbols: int, results: Sequence[AffineExpr]):
        self.num_dims = int(num_dims)
        self.num_symbols = int(num_symbols)
        self.results: tuple[AffineExpr, ...] = tuple(results)
        for expr in self.results:
            if not isinstance(expr, AffineExpr):
                raise TypeError(f"map result {expr!r} is not an AffineExpr")
            bad_dims = {d for d in expr.used_dims() if d >= self.num_dims}
            bad_syms = {s for s in expr.used_symbols() if s >= self.num_symbols}
            if bad_dims or bad_syms:
                raise ValueError(
                    f"map result {expr} references out-of-range dims {bad_dims} "
                    f"or symbols {bad_syms}"
                )

    # -- constructors ----------------------------------------------------------

    @staticmethod
    def identity(num_dims: int) -> "AffineMap":
        """The identity map ``(d0, ..., dN-1) -> (d0, ..., dN-1)``."""
        return AffineMap(num_dims, 0, [dim(i) for i in range(num_dims)])

    @staticmethod
    def constant_map(value: int) -> "AffineMap":
        """A zero-input map returning a single constant."""
        return AffineMap(0, 0, [AffineConstantExpr(value)])

    @staticmethod
    def from_exprs(num_dims: int, exprs: Sequence[AffineExpr], num_symbols: int = 0) -> "AffineMap":
        return AffineMap(num_dims, num_symbols, exprs)

    # -- queries ---------------------------------------------------------------

    @property
    def num_results(self) -> int:
        return len(self.results)

    def is_identity(self) -> bool:
        if self.num_results != self.num_dims:
            return False
        return all(
            isinstance(expr, AffineDimExpr) and expr.position == i
            for i, expr in enumerate(self.results)
        )

    def is_constant(self) -> bool:
        return all(expr.is_constant() for expr in self.results)

    def constant_results(self) -> tuple[int, ...]:
        if not self.is_constant():
            raise ValueError("map is not constant")
        return tuple(expr.value for expr in self.results)  # type: ignore[attr-defined]

    def is_single_constant(self) -> bool:
        return self.num_results == 1 and self.results[0].is_constant()

    def single_constant_result(self) -> int:
        if not self.is_single_constant():
            raise ValueError("map does not have a single constant result")
        return self.results[0].value  # type: ignore[attr-defined]

    def used_dims(self) -> set[int]:
        used: set[int] = set()
        for expr in self.results:
            used |= expr.used_dims()
        return used

    def used_symbols(self) -> set[int]:
        used: set[int] = set()
        for expr in self.results:
            used |= expr.used_symbols()
        return used

    # -- evaluation and composition ---------------------------------------------

    def evaluate(self, dims: Sequence[int], symbols: Sequence[int] = ()) -> tuple[int, ...]:
        """Evaluate every result expression for concrete input values."""
        if len(dims) != self.num_dims:
            raise ValueError(f"expected {self.num_dims} dims, got {len(dims)}")
        if len(symbols) != self.num_symbols:
            raise ValueError(f"expected {self.num_symbols} symbols, got {len(symbols)}")
        return tuple(expr.evaluate(dims, symbols) for expr in self.results)

    def compose(self, other: "AffineMap") -> "AffineMap":
        """Return ``self ∘ other``, i.e. ``self(other(dims))``.

        The number of results of ``other`` must equal the number of dims of
        ``self``.  Symbols of both maps are concatenated (self's symbols
        first).
        """
        if other.num_results != self.num_dims:
            raise ValueError(
                f"cannot compose: inner map produces {other.num_results} results "
                f"but outer map expects {self.num_dims} dims"
            )
        shifted_other = [
            expr.replace({}, {s: AffineSymbolExpr(s + self.num_symbols)
                              for s in expr.used_symbols()})
            for expr in other.results
        ]
        results = [
            expr.replace(list(shifted_other))
            for expr in self.results
        ]
        return AffineMap(other.num_dims, self.num_symbols + other.num_symbols, results)

    def replace_results(self, results: Sequence[AffineExpr]) -> "AffineMap":
        return AffineMap(self.num_dims, self.num_symbols, results)

    def get_sub_map(self, positions: Sequence[int]) -> "AffineMap":
        return AffineMap(self.num_dims, self.num_symbols,
                         [self.results[p] for p in positions])

    # -- comparison / printing --------------------------------------------------

    def __eq__(self, other) -> bool:
        if not isinstance(other, AffineMap):
            return NotImplemented
        return (self.num_dims == other.num_dims
                and self.num_symbols == other.num_symbols
                and self.results == other.results)

    def __hash__(self) -> int:
        return hash((self.num_dims, self.num_symbols, self.results))

    def __str__(self) -> str:
        # Cached: maps are immutable and str() is called per memory access by
        # the cleanup passes' access keys, not just for printing.
        cached = self.__dict__.get("_str")
        if cached is not None:
            return cached
        dims = ", ".join(f"d{i}" for i in range(self.num_dims))
        syms = ", ".join(f"s{i}" for i in range(self.num_symbols))
        head = f"({dims})"
        if syms:
            head += f"[{syms}]"
        body = ", ".join(str(expr) for expr in self.results)
        self._str = rendered = f"affine_map<{head} -> ({body})>"
        return rendered

    def __repr__(self) -> str:
        return str(self)

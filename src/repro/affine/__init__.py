"""Affine machinery: expressions, maps, integer sets and dependence analysis.

This package is a self-contained reimplementation of the pieces of the MLIR
affine infrastructure that ScaleHLS relies on: affine expressions over loop
induction variables (dims) and symbols, affine maps (used both for loop bounds
and for encoding array-partition layouts into memref types), integer sets
(used for ``affine.if`` conditions), and a light-weight memory dependence
analysis used by loop-order optimization and pipeline II estimation.
"""

from repro.affine.expr import (
    AffineExpr,
    AffineDimExpr,
    AffineSymbolExpr,
    AffineConstantExpr,
    AffineBinaryExpr,
    AffineExprKind,
    dim,
    symbol,
    constant,
)
from repro.affine.map import AffineMap
from repro.affine.set import IntegerSet, Constraint
from repro.affine.analysis import (
    expr_is_function_of_dim,
    expr_constant_term,
    expr_dim_coefficients,
    expr_min_max,
)
from repro.affine.dependence import (
    MemoryAccess,
    dependence_distance,
    accesses_conflict,
)

__all__ = [
    "AffineExpr",
    "AffineDimExpr",
    "AffineSymbolExpr",
    "AffineConstantExpr",
    "AffineBinaryExpr",
    "AffineExprKind",
    "dim",
    "symbol",
    "constant",
    "AffineMap",
    "IntegerSet",
    "Constraint",
    "expr_is_function_of_dim",
    "expr_constant_term",
    "expr_dim_coefficients",
    "expr_min_max",
    "MemoryAccess",
    "dependence_distance",
    "accesses_conflict",
]

"""Integer sets.

An :class:`IntegerSet` is a conjunction of affine constraints over dims and
symbols.  Each constraint is either an equality ``expr == 0`` or an inequality
``expr >= 0``.  ``affine.if`` operations carry an integer set describing the
condition under which their "then" region executes.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Sequence

from repro.affine.expr import AffineExpr, dim


@dataclasses.dataclass(frozen=True)
class Constraint:
    """A single affine constraint: ``expr == 0`` or ``expr >= 0``."""

    expr: AffineExpr
    is_equality: bool = False

    def holds(self, dims: Sequence[int], symbols: Sequence[int] = ()) -> bool:
        value = self.expr.evaluate(dims, symbols)
        return value == 0 if self.is_equality else value >= 0

    def __str__(self) -> str:
        op = "==" if self.is_equality else ">="
        return f"{self.expr} {op} 0"


class IntegerSet:
    """A conjunction of affine constraints."""

    def __init__(self, num_dims: int, num_symbols: int, constraints: Sequence[Constraint]):
        self.num_dims = int(num_dims)
        self.num_symbols = int(num_symbols)
        self.constraints: tuple[Constraint, ...] = tuple(constraints)
        if not self.constraints:
            raise ValueError("an integer set needs at least one constraint")

    # -- constructors ----------------------------------------------------------

    @staticmethod
    def from_constraints(num_dims: int, exprs: Sequence[AffineExpr],
                         eq_flags: Sequence[bool], num_symbols: int = 0) -> "IntegerSet":
        if len(exprs) != len(eq_flags):
            raise ValueError("exprs and eq_flags must have the same length")
        return IntegerSet(num_dims, num_symbols,
                          [Constraint(e, bool(f)) for e, f in zip(exprs, eq_flags)])

    @staticmethod
    def equality(num_dims: int, expr: AffineExpr) -> "IntegerSet":
        """The set ``{ dims : expr == 0 }``."""
        return IntegerSet(num_dims, 0, [Constraint(expr, True)])

    @staticmethod
    def non_negative(num_dims: int, expr: AffineExpr) -> "IntegerSet":
        """The set ``{ dims : expr >= 0 }``."""
        return IntegerSet(num_dims, 0, [Constraint(expr, False)])

    # -- queries ---------------------------------------------------------------

    def contains(self, dims: Sequence[int], symbols: Sequence[int] = ()) -> bool:
        """Return True if the given point satisfies every constraint."""
        return all(c.holds(dims, symbols) for c in self.constraints)

    def used_dims(self) -> set[int]:
        used: set[int] = set()
        for c in self.constraints:
            used |= c.expr.used_dims()
        return used

    def is_trivially_true_over(self, dim_ranges: Sequence[tuple[int, int]]) -> bool:
        """Return True if the set holds for every point of a rectangular domain.

        ``dim_ranges[i]`` is the half-open ``(lower, upper)`` range of dim i.
        The check is exact but enumerative, so it is only used for small
        domains; callers should guard with :func:`domain_size`.
        """
        return all(self.contains(point) for point in _iter_domain(dim_ranges, self.num_dims))

    def is_trivially_false_over(self, dim_ranges: Sequence[tuple[int, int]]) -> bool:
        """Return True if the set holds for no point of a rectangular domain."""
        return not any(self.contains(point) for point in _iter_domain(dim_ranges, self.num_dims))

    # -- transformation ---------------------------------------------------------

    def replace_dims(self, replacements) -> "IntegerSet":
        """Substitute dims using ``replacements`` (mapping or sequence)."""
        new_constraints = [
            Constraint(c.expr.replace(replacements), c.is_equality)
            for c in self.constraints
        ]
        return IntegerSet(self.num_dims, self.num_symbols, new_constraints)

    def conjunction(self, other: "IntegerSet") -> "IntegerSet":
        if self.num_dims != other.num_dims or self.num_symbols != other.num_symbols:
            raise ValueError("conjunction requires identical dim/symbol counts")
        return IntegerSet(self.num_dims, self.num_symbols,
                          self.constraints + other.constraints)

    # -- comparison / printing ---------------------------------------------------

    def __eq__(self, other) -> bool:
        if not isinstance(other, IntegerSet):
            return NotImplemented
        return (self.num_dims == other.num_dims
                and self.num_symbols == other.num_symbols
                and self.constraints == other.constraints)

    def __hash__(self) -> int:
        return hash((self.num_dims, self.num_symbols, self.constraints))

    def __str__(self) -> str:
        dims = ", ".join(f"d{i}" for i in range(self.num_dims))
        constraints = ", ".join(str(c) for c in self.constraints)
        return f"affine_set<({dims}) : ({constraints})>"

    def __repr__(self) -> str:
        return str(self)


def domain_size(dim_ranges: Sequence[tuple[int, int]]) -> int:
    """Number of integer points in a rectangular domain."""
    size = 1
    for low, high in dim_ranges:
        size *= max(0, high - low)
    return size


def _iter_domain(dim_ranges: Sequence[tuple[int, int]], num_dims: int):
    ranges = list(dim_ranges[:num_dims])
    while len(ranges) < num_dims:
        ranges.append((0, 1))
    return itertools.product(*[range(low, high) for low, high in ranges])

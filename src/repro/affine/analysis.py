"""Analysis helpers over affine expressions.

These utilities answer the questions the loop transforms and the QoR
estimator need: is an expression linear in the loop induction variables, what
are its per-dim coefficients, and what are its extreme values over a
rectangular iteration domain (used by ``-remove-variable-bound``).
"""

from __future__ import annotations

import itertools
from typing import Sequence

from repro.affine.expr import (
    AffineBinaryExpr,
    AffineConstantExpr,
    AffineDimExpr,
    AffineExpr,
    AffineExprKind,
    AffineSymbolExpr,
)

#: Enumeration fallback limit for non-linear expressions in :func:`expr_min_max`.
_ENUMERATION_LIMIT = 1 << 16


def expr_is_function_of_dim(expr: AffineExpr, position: int) -> bool:
    """Return True if ``expr`` references dim ``position``."""
    return position in expr.used_dims()


def linearize(expr: AffineExpr, num_dims: int) -> tuple[list[int], int] | None:
    """Decompose a linear affine expression into per-dim coefficients.

    Returns ``(coefficients, constant)`` such that
    ``expr == sum(coefficients[d] * d_d) + constant``, or ``None`` if the
    expression is not linear in its dims (contains mod/floordiv/ceildiv of a
    dim, a product of dims, or references symbols).
    """
    if isinstance(expr, AffineConstantExpr):
        return [0] * num_dims, expr.value
    if isinstance(expr, AffineDimExpr):
        coeffs = [0] * num_dims
        if expr.position >= num_dims:
            return None
        coeffs[expr.position] = 1
        return coeffs, 0
    if isinstance(expr, AffineSymbolExpr):
        return None
    if isinstance(expr, AffineBinaryExpr):
        if expr.kind is AffineExprKind.ADD:
            lhs = linearize(expr.lhs, num_dims)
            rhs = linearize(expr.rhs, num_dims)
            if lhs is None or rhs is None:
                return None
            return [a + b for a, b in zip(lhs[0], rhs[0])], lhs[1] + rhs[1]
        if expr.kind is AffineExprKind.MUL:
            lhs = linearize(expr.lhs, num_dims)
            rhs = linearize(expr.rhs, num_dims)
            if lhs is None or rhs is None:
                return None
            lhs_const = all(c == 0 for c in lhs[0])
            rhs_const = all(c == 0 for c in rhs[0])
            if rhs_const:
                factor = rhs[1]
                return [c * factor for c in lhs[0]], lhs[1] * factor
            if lhs_const:
                factor = lhs[1]
                return [c * factor for c in rhs[0]], rhs[1] * factor
            return None
        # mod / floordiv / ceildiv are non-linear unless the operand is constant.
        lhs = linearize(expr.lhs, num_dims)
        rhs = linearize(expr.rhs, num_dims)
        if (lhs is not None and rhs is not None
                and all(c == 0 for c in lhs[0]) and all(c == 0 for c in rhs[0])):
            return [0] * num_dims, expr.evaluate([0] * num_dims)
        return None
    return None


def expr_dim_coefficients(expr: AffineExpr, num_dims: int) -> list[int] | None:
    """Per-dim coefficients of a linear expression, or None if non-linear."""
    decomposed = linearize(expr, num_dims)
    return None if decomposed is None else decomposed[0]


def expr_constant_term(expr: AffineExpr, num_dims: int) -> int | None:
    """The constant term of a linear expression, or None if non-linear."""
    decomposed = linearize(expr, num_dims)
    return None if decomposed is None else decomposed[1]


def expr_min_max(expr: AffineExpr, dim_ranges: Sequence[tuple[int, int]]) -> tuple[int, int]:
    """Min and max of ``expr`` over a half-open rectangular dim domain.

    For linear expressions the bounds are computed analytically from the
    coefficient signs.  For non-linear expressions (mod/floordiv) the domain
    is enumerated, which is only permitted for small domains.
    """
    num_dims = len(dim_ranges)
    for low, high in dim_ranges:
        if high <= low:
            raise ValueError("every dim range must be non-empty")
    decomposed = linearize(expr, num_dims)
    if decomposed is not None:
        coeffs, const = decomposed
        low_total = const
        high_total = const
        for coeff, (low, high) in zip(coeffs, dim_ranges):
            last = high - 1
            if coeff >= 0:
                low_total += coeff * low
                high_total += coeff * last
            else:
                low_total += coeff * last
                high_total += coeff * low
        return low_total, high_total

    size = 1
    for low, high in dim_ranges:
        size *= high - low
    if size > _ENUMERATION_LIMIT:
        raise ValueError(
            "cannot bound a non-linear affine expression over a domain of "
            f"{size} points (limit {_ENUMERATION_LIMIT})"
        )
    values = [
        expr.evaluate(point)
        for point in itertools.product(*[range(low, high) for low, high in dim_ranges])
    ]
    return min(values), max(values)

"""Dialects: the operation vocabulary of each abstraction level.

* :mod:`repro.dialects.graph` — graph-level tensor operations (the role the
  ``onnx`` dialect plays in the paper).
* :mod:`repro.dialects.affine_ops`, :mod:`repro.dialects.scf`,
  :mod:`repro.dialects.memref`, :mod:`repro.dialects.arith` — loop-level IR.
* :mod:`repro.dialects.hlscpp` — directive-level attributes and helpers
  (function/loop directives, array partition encoding, top-function marker).
* :mod:`repro.dialects.func` — functions, calls and returns, shared by all
  levels.
"""

from repro.dialects import arith, func, memref, affine_ops, scf, hlscpp, graph

__all__ = ["arith", "func", "memref", "affine_ops", "scf", "hlscpp", "graph"]

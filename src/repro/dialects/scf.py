"""The ``scf`` dialect: structured control flow with SSA-value bounds.

The HLS C front-end emits ``scf`` operations because C loop bounds and
conditions are arbitrary expressions; the ``-raise-scf-to-affine`` pass then
upgrades the loops and memory accesses that satisfy the affine restrictions.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.ir.block import Block
from repro.ir.dialect import register_operation
from repro.ir.operation import Operation
from repro.ir.types import Type, index
from repro.ir.value import BlockArgument, Value


@register_operation("scf", "for")
class SCFForOp(Operation):
    """A counted loop ``scf.for %iv = %lb to %ub step %step``."""

    __slots__ = ()

    def __init__(self, lower: Value, upper: Value, step: Value):
        super().__init__("scf.for", operands=[lower, upper, step], num_regions=1)
        self.region(0).add_block(Block([index]))

    @property
    def lower(self) -> Value:
        return self.operand(0)

    @property
    def upper(self) -> Value:
        return self.operand(1)

    @property
    def step(self) -> Value:
        return self.operand(2)

    @property
    def body(self) -> Block:
        return self.region(0).front

    @property
    def induction_variable(self) -> BlockArgument:
        return self.body.arguments[0]


@register_operation("scf", "if")
class SCFIfOp(Operation):
    """A conditional with an ``i1`` condition operand."""

    __slots__ = ()

    def __init__(self, condition: Value, with_else: bool = False,
                 result_types: Sequence[Type] = ()):
        super().__init__("scf.if", operands=[condition], result_types=result_types,
                         num_regions=2)
        self.region(0).add_block(Block())
        if with_else or result_types:
            self.region(1).add_block(Block())

    @property
    def condition(self) -> Value:
        return self.operand(0)

    @property
    def then_block(self) -> Block:
        return self.region(0).front

    @property
    def else_block(self) -> Optional[Block]:
        return self.region(1).front if self.region(1).blocks else None


@register_operation("scf", "yield")
class SCFYieldOp(Operation):
    """Terminator yielding values from an ``scf.if`` region."""

    __slots__ = ()

    def __init__(self, operands: Sequence[Value] = ()):
        super().__init__("scf.yield", operands=operands)

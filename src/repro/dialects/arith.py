"""The ``arith`` dialect: constants, integer/float arithmetic and comparisons."""

from __future__ import annotations

from typing import Optional

from repro.ir.dialect import register_operation
from repro.ir.operation import Operation
from repro.ir.types import FloatType, IndexType, IntegerType, Type, f32, i1, index
from repro.ir.value import Value


@register_operation("arith", "constant")
class ConstantOp(Operation):
    """A compile-time constant of integer, index or float type."""

    __slots__ = ()

    def __init__(self, value, type: Type):
        if isinstance(type, (IntegerType, IndexType)):
            value = int(value)
        elif isinstance(type, FloatType):
            value = float(value)
        super().__init__("arith.constant", result_types=[type],
                         attributes={"value": value})

    @property
    def value(self):
        return self.get_attr("value")


class _BinaryOp(Operation):
    """Common base of element-wise binary arithmetic operations."""

    __slots__ = ()

    MNEMONIC = ""

    def __init__(self, lhs: Value, rhs: Value, result_type: Optional[Type] = None):
        if result_type is None:
            result_type = lhs.type
        super().__init__(f"arith.{self.MNEMONIC}", operands=[lhs, rhs],
                         result_types=[result_type])

    @property
    def lhs(self) -> Value:
        return self.operand(0)

    @property
    def rhs(self) -> Value:
        return self.operand(1)


@register_operation("arith", "addf")
class AddFOp(_BinaryOp):

    __slots__ = ()
    MNEMONIC = "addf"


@register_operation("arith", "subf")
class SubFOp(_BinaryOp):

    __slots__ = ()
    MNEMONIC = "subf"


@register_operation("arith", "mulf")
class MulFOp(_BinaryOp):

    __slots__ = ()
    MNEMONIC = "mulf"


@register_operation("arith", "divf")
class DivFOp(_BinaryOp):

    __slots__ = ()
    MNEMONIC = "divf"


@register_operation("arith", "addi")
class AddIOp(_BinaryOp):

    __slots__ = ()
    MNEMONIC = "addi"


@register_operation("arith", "subi")
class SubIOp(_BinaryOp):

    __slots__ = ()
    MNEMONIC = "subi"


@register_operation("arith", "muli")
class MulIOp(_BinaryOp):

    __slots__ = ()
    MNEMONIC = "muli"


@register_operation("arith", "divsi")
class DivSIOp(_BinaryOp):

    __slots__ = ()
    MNEMONIC = "divsi"


@register_operation("arith", "remsi")
class RemSIOp(_BinaryOp):

    __slots__ = ()
    MNEMONIC = "remsi"


@register_operation("arith", "maxf")
class MaxFOp(_BinaryOp):

    __slots__ = ()
    MNEMONIC = "maxf"


#: Comparison predicates recognised by :class:`CmpIOp` / :class:`CmpFOp`.
CMP_PREDICATES = ("eq", "ne", "slt", "sle", "sgt", "sge", "olt", "ole", "ogt", "oge")


@register_operation("arith", "cmpi")
class CmpIOp(Operation):
    """Integer comparison producing an ``i1``."""

    __slots__ = ()

    def __init__(self, predicate: str, lhs: Value, rhs: Value):
        if predicate not in CMP_PREDICATES:
            raise ValueError(f"unknown predicate {predicate!r}")
        super().__init__("arith.cmpi", operands=[lhs, rhs], result_types=[i1],
                         attributes={"predicate": predicate})

    @property
    def predicate(self) -> str:
        return self.get_attr("predicate")


@register_operation("arith", "cmpf")
class CmpFOp(Operation):
    """Float comparison producing an ``i1``."""

    __slots__ = ()

    def __init__(self, predicate: str, lhs: Value, rhs: Value):
        if predicate not in CMP_PREDICATES:
            raise ValueError(f"unknown predicate {predicate!r}")
        super().__init__("arith.cmpf", operands=[lhs, rhs], result_types=[i1],
                         attributes={"predicate": predicate})

    @property
    def predicate(self) -> str:
        return self.get_attr("predicate")


@register_operation("arith", "select")
class SelectOp(Operation):
    """Select between two values based on an ``i1`` condition."""

    __slots__ = ()

    def __init__(self, condition: Value, true_value: Value, false_value: Value):
        super().__init__("arith.select",
                         operands=[condition, true_value, false_value],
                         result_types=[true_value.type])

    @property
    def condition(self) -> Value:
        return self.operand(0)

    @property
    def true_value(self) -> Value:
        return self.operand(1)

    @property
    def false_value(self) -> Value:
        return self.operand(2)


@register_operation("arith", "index_cast")
class IndexCastOp(Operation):
    """Cast between ``index`` and integer types."""

    __slots__ = ()

    def __init__(self, value: Value, result_type: Type):
        super().__init__("arith.index_cast", operands=[value], result_types=[result_type])


@register_operation("arith", "sitofp")
class SIToFPOp(Operation):
    """Convert a signed integer to floating point."""

    __slots__ = ()

    def __init__(self, value: Value, result_type: Type = f32):
        super().__init__("arith.sitofp", operands=[value], result_types=[result_type])


# -- helpers used throughout the transforms ---------------------------------------


def is_constant(value: Value) -> bool:
    """True if ``value`` is the result of an ``arith.constant``."""
    from repro.ir.value import OpResult

    return isinstance(value, OpResult) and value.owner.name == "arith.constant"


def constant_value(value: Value):
    """The Python value of an ``arith.constant`` result (or None)."""
    if not is_constant(value):
        return None
    return value.owner.get_attr("value")


def constant_index(builder, value: int) -> Value:
    """Create (and insert) an index constant, returning its result."""
    op = builder.insert(ConstantOp(int(value), index))
    return op.result()


#: Set of arith operation names that are pure (freely CSE-able / DCE-able).
PURE_OPS = {
    "arith.constant", "arith.addf", "arith.subf", "arith.mulf", "arith.divf",
    "arith.addi", "arith.subi", "arith.muli", "arith.divsi", "arith.remsi",
    "arith.maxf", "arith.cmpi", "arith.cmpf", "arith.select",
    "arith.index_cast", "arith.sitofp",
}

"""The ``graph`` dialect: tensor operations for the graph-level IR.

This dialect plays the role the third-party ``onnx`` dialect plays in the
paper: neural-network models are represented as a DAG of tensor operations
whose edges are SSA tensor values, so graph-level transforms (dataflow
legalization, function splitting) are simple define-use manipulations.

Layer weights are carried as *shape attributes* rather than operands: the
compilation flow never needs the numeric values, only the amount of
computation and the buffer sizes, and keeping weights out of the operand list
means the dataflow edges are exactly the activation tensors.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.ir.dialect import register_operation
from repro.ir.operation import Operation
from repro.ir.types import TensorType, f32
from repro.ir.value import Value


def _tensor(value: Value) -> TensorType:
    if not isinstance(value.type, TensorType):
        raise TypeError(f"expected a tensor-typed value, got {value.type}")
    return value.type


class GraphOp(Operation):
    """Common base of graph-level tensor operations."""

    __slots__ = ()

    def output_type(self) -> TensorType:
        return self.result().type

    def flops(self) -> int:
        """Multiply-accumulate style operation count of the layer."""
        return 0

    def weight_elements(self) -> int:
        """Number of weight parameters the layer carries."""
        shape = self.get_attr("weight_shape")
        total = 1 if shape else 0
        for d in shape or ():
            total *= d
        bias = self.get_attr("bias_shape")
        for d in bias or ():
            total += d if len(bias) == 1 else 0
        return total


@register_operation("graph", "conv2d")
class Conv2DOp(GraphOp):
    """2-D convolution (supports grouped/depthwise convolution via ``groups``)."""

    def __init__(self, input: Value, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0, groups: int = 1,
                 has_bias: bool = True, name: str = ""):
        input_type = _tensor(input)
        n, c, h, w = input_type.shape
        if c % groups != 0 or out_channels % groups != 0:
            raise ValueError("channels must be divisible by groups")
        out_h = (h + 2 * padding - kernel_size) // stride + 1
        out_w = (w + 2 * padding - kernel_size) // stride + 1
        if out_h <= 0 or out_w <= 0:
            raise ValueError("convolution output would be empty")
        result_type = TensorType((n, out_channels, out_h, out_w), input_type.element_type)
        attrs = {
            "out_channels": out_channels,
            "kernel_size": kernel_size,
            "stride": stride,
            "padding": padding,
            "groups": groups,
            "weight_shape": (out_channels, c // groups, kernel_size, kernel_size),
            "bias_shape": (out_channels,) if has_bias else (),
        }
        if name:
            attrs["layer_name"] = name
        super().__init__("graph.conv2d", operands=[input], result_types=[result_type],
                         attributes=attrs)

    @property
    def input(self) -> Value:
        return self.operand(0)

    def flops(self) -> int:
        n, oc, oh, ow = self.output_type().shape
        _, ic_per_group, k, _ = self.get_attr("weight_shape")
        return 2 * n * oc * oh * ow * ic_per_group * k * k


@register_operation("graph", "dense")
class DenseOp(GraphOp):
    """Fully connected layer: ``output[n][o] = sum_i input[n][i] * W[o][i]``."""

    def __init__(self, input: Value, out_features: int, has_bias: bool = True,
                 name: str = ""):
        input_type = _tensor(input)
        if input_type.rank != 2:
            raise ValueError("dense expects a rank-2 input (batch, features)")
        n, in_features = input_type.shape
        result_type = TensorType((n, out_features), input_type.element_type)
        attrs = {
            "out_features": out_features,
            "weight_shape": (out_features, in_features),
            "bias_shape": (out_features,) if has_bias else (),
        }
        if name:
            attrs["layer_name"] = name
        super().__init__("graph.dense", operands=[input], result_types=[result_type],
                         attributes=attrs)

    @property
    def input(self) -> Value:
        return self.operand(0)

    def flops(self) -> int:
        n, out_features = self.output_type().shape
        _, in_features = self.get_attr("weight_shape")
        return 2 * n * out_features * in_features


@register_operation("graph", "relu")
class ReLUOp(GraphOp):
    """Element-wise rectified linear unit."""

    def __init__(self, input: Value, name: str = ""):
        input_type = _tensor(input)
        attrs = {"layer_name": name} if name else {}
        super().__init__("graph.relu", operands=[input], result_types=[input_type],
                         attributes=attrs)

    @property
    def input(self) -> Value:
        return self.operand(0)

    def flops(self) -> int:
        return self.output_type().num_elements


@register_operation("graph", "batchnorm")
class BatchNormOp(GraphOp):
    """Batch normalization (inference form: scale and shift per channel)."""

    def __init__(self, input: Value, name: str = ""):
        input_type = _tensor(input)
        channels = input_type.shape[1] if input_type.rank >= 2 else input_type.shape[0]
        attrs = {"weight_shape": (channels, 2), "bias_shape": ()}
        if name:
            attrs["layer_name"] = name
        super().__init__("graph.batchnorm", operands=[input], result_types=[input_type],
                         attributes=attrs)

    @property
    def input(self) -> Value:
        return self.operand(0)

    def flops(self) -> int:
        return 2 * self.output_type().num_elements


@register_operation("graph", "add")
class AddOp(GraphOp):
    """Element-wise addition of two equally shaped tensors (residual connections)."""

    def __init__(self, lhs: Value, rhs: Value, name: str = ""):
        lhs_type = _tensor(lhs)
        rhs_type = _tensor(rhs)
        if lhs_type.shape != rhs_type.shape:
            raise ValueError(f"shape mismatch in graph.add: {lhs_type} vs {rhs_type}")
        attrs = {"layer_name": name} if name else {}
        super().__init__("graph.add", operands=[lhs, rhs], result_types=[lhs_type],
                         attributes=attrs)

    def flops(self) -> int:
        return self.output_type().num_elements


@register_operation("graph", "maxpool2d")
class MaxPool2DOp(GraphOp):
    """2-D max pooling."""

    def __init__(self, input: Value, kernel_size: int, stride: Optional[int] = None,
                 padding: int = 0, name: str = ""):
        input_type = _tensor(input)
        stride = stride or kernel_size
        n, c, h, w = input_type.shape
        out_h = (h + 2 * padding - kernel_size) // stride + 1
        out_w = (w + 2 * padding - kernel_size) // stride + 1
        result_type = TensorType((n, c, out_h, out_w), input_type.element_type)
        attrs = {"kernel_size": kernel_size, "stride": stride, "padding": padding}
        if name:
            attrs["layer_name"] = name
        super().__init__("graph.maxpool2d", operands=[input], result_types=[result_type],
                         attributes=attrs)

    @property
    def input(self) -> Value:
        return self.operand(0)

    def flops(self) -> int:
        k = self.get_attr("kernel_size")
        return self.output_type().num_elements * k * k


@register_operation("graph", "avgpool2d")
class AvgPool2DOp(GraphOp):
    """2-D average pooling."""

    def __init__(self, input: Value, kernel_size: int, stride: Optional[int] = None,
                 padding: int = 0, name: str = ""):
        input_type = _tensor(input)
        stride = stride or kernel_size
        n, c, h, w = input_type.shape
        out_h = (h + 2 * padding - kernel_size) // stride + 1
        out_w = (w + 2 * padding - kernel_size) // stride + 1
        result_type = TensorType((n, c, out_h, out_w), input_type.element_type)
        attrs = {"kernel_size": kernel_size, "stride": stride, "padding": padding}
        if name:
            attrs["layer_name"] = name
        super().__init__("graph.avgpool2d", operands=[input], result_types=[result_type],
                         attributes=attrs)

    @property
    def input(self) -> Value:
        return self.operand(0)

    def flops(self) -> int:
        k = self.get_attr("kernel_size")
        return self.output_type().num_elements * k * k


@register_operation("graph", "flatten")
class FlattenOp(GraphOp):
    """Flatten every dimension but the batch dimension."""

    def __init__(self, input: Value, name: str = ""):
        input_type = _tensor(input)
        n = input_type.shape[0]
        rest = input_type.num_elements // n
        result_type = TensorType((n, rest), input_type.element_type)
        attrs = {"layer_name": name} if name else {}
        super().__init__("graph.flatten", operands=[input], result_types=[result_type],
                         attributes=attrs)

    @property
    def input(self) -> Value:
        return self.operand(0)


@register_operation("graph", "copy")
class CopyOp(GraphOp):
    """An explicit tensor copy, inserted by aggressive dataflow legalization."""

    def __init__(self, input: Value, name: str = ""):
        input_type = _tensor(input)
        attrs = {"layer_name": name} if name else {}
        super().__init__("graph.copy", operands=[input], result_types=[input_type],
                         attributes=attrs)

    @property
    def input(self) -> Value:
        return self.operand(0)

    def flops(self) -> int:
        return self.output_type().num_elements


#: Graph operation names considered dataflow "procedures" (nodes).
GRAPH_NODE_OPS = {
    "graph.conv2d", "graph.dense", "graph.relu", "graph.batchnorm", "graph.add",
    "graph.maxpool2d", "graph.avgpool2d", "graph.flatten", "graph.copy",
}


def graph_nodes(func_op: Operation) -> list[Operation]:
    """Graph-dialect operations directly inside a function body, in order."""
    return [op for op in func_op.region(0).front.operations if op.name in GRAPH_NODE_OPS]


def input_tensor(shape: Sequence[int], element_type=f32) -> TensorType:
    """Convenience constructor for model input tensor types."""
    return TensorType(tuple(shape), element_type)

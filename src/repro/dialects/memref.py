"""The ``memref`` dialect: buffer allocation and unstructured memory access."""

from __future__ import annotations

from typing import Sequence

from repro.ir.dialect import register_operation
from repro.ir.operation import Operation
from repro.ir.types import MemRefType
from repro.ir.value import Value


@register_operation("memref", "alloc")
class AllocOp(Operation):
    """Allocate an on-chip buffer of the given memref type."""

    __slots__ = ()

    def __init__(self, memref_type: MemRefType, name: str = ""):
        attrs = {"buffer_name": name} if name else {}
        super().__init__("memref.alloc", result_types=[memref_type], attributes=attrs)

    @property
    def memref_type(self) -> MemRefType:
        return self.result().type


@register_operation("memref", "dealloc")
class DeallocOp(Operation):
    """Release a buffer (emitted for symmetry; has no effect on estimation)."""

    __slots__ = ()

    def __init__(self, memref: Value):
        super().__init__("memref.dealloc", operands=[memref])


@register_operation("memref", "load")
class LoadOp(Operation):
    """Load one element from a memref at dynamic indices."""

    __slots__ = ()

    def __init__(self, memref: Value, indices: Sequence[Value]):
        memref_type = memref.type
        if not isinstance(memref_type, MemRefType):
            raise TypeError("memref.load requires a memref-typed operand")
        if len(indices) != memref_type.rank:
            raise ValueError("index count must match memref rank")
        super().__init__("memref.load", operands=[memref, *indices],
                         result_types=[memref_type.element_type])

    @property
    def memref(self) -> Value:
        return self.operand(0)

    @property
    def indices(self) -> tuple[Value, ...]:
        return self.operands[1:]


@register_operation("memref", "store")
class StoreOp(Operation):
    """Store one element to a memref at dynamic indices."""

    __slots__ = ()

    def __init__(self, value: Value, memref: Value, indices: Sequence[Value]):
        memref_type = memref.type
        if not isinstance(memref_type, MemRefType):
            raise TypeError("memref.store requires a memref-typed operand")
        if len(indices) != memref_type.rank:
            raise ValueError("index count must match memref rank")
        super().__init__("memref.store", operands=[value, memref, *indices])

    @property
    def value(self) -> Value:
        return self.operand(0)

    @property
    def memref(self) -> Value:
        return self.operand(1)

    @property
    def indices(self) -> tuple[Value, ...]:
        return self.operands[2:]


@register_operation("memref", "copy")
class CopyOp(Operation):
    """Copy the contents of one buffer into another (used by dataflow legalization)."""

    __slots__ = ()

    def __init__(self, source: Value, target: Value):
        super().__init__("memref.copy", operands=[source, target])

    @property
    def source(self) -> Value:
        return self.operand(0)

    @property
    def target(self) -> Value:
        return self.operand(1)

"""The ``affine`` dialect: structured loops, conditionals and memory accesses.

``affine.for`` loop bounds are affine maps over SSA operands, which lets the
same operation represent both constant-bound loops and loops whose bounds
depend on outer induction variables (the SYRK ``%j`` loop of the paper's
Fig. 5).  ``affine.load`` / ``affine.store`` carry an access map applied to
their index operands, and ``affine.if`` carries an integer set condition.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.affine.expr import AffineConstantExpr, AffineExpr, constant as const_expr, dim as dim_expr
from repro.affine.map import AffineMap
from repro.affine.set import IntegerSet
from repro.ir.block import Block
from repro.ir.dialect import register_operation
from repro.ir.operation import Operation
from repro.ir.types import IndexType, MemRefType, Type, index
from repro.ir.value import BlockArgument, OpResult, Value


@register_operation("affine", "for")
class AffineForOp(Operation):
    """An affine loop ``affine.for %iv = lower to upper step s``.

    Bounds are affine maps; the effective lower bound is the *maximum* over
    the lower map's results and the upper bound the *minimum* over the upper
    map's results (MLIR semantics).  Operands are the lower-bound operands
    followed by the upper-bound operands.
    """

    __slots__ = ()

    def __init__(self, lower_map: AffineMap, upper_map: AffineMap, step: int = 1,
                 lb_operands: Sequence[Value] = (), ub_operands: Sequence[Value] = (),
                 attributes: Optional[dict] = None):
        attrs = dict(attributes or {})
        attrs["lower_map"] = lower_map
        attrs["upper_map"] = upper_map
        attrs["step"] = int(step)
        attrs["num_lb_operands"] = len(lb_operands)
        super().__init__("affine.for", operands=[*lb_operands, *ub_operands],
                         attributes=attrs, num_regions=1)
        self.region(0).add_block(Block([index]))

    # -- construction helpers -----------------------------------------------------

    @classmethod
    def constant_bounds(cls, lower: int, upper: int, step: int = 1) -> "AffineForOp":
        """A loop with constant bounds ``[lower, upper)``."""
        return cls(AffineMap.constant_map(lower), AffineMap.constant_map(upper), step)

    # -- accessors ------------------------------------------------------------------

    @property
    def lower_map(self) -> AffineMap:
        return self.get_attr("lower_map")

    @property
    def upper_map(self) -> AffineMap:
        return self.get_attr("upper_map")

    @property
    def step(self) -> int:
        return self.get_attr("step")

    def set_step(self, step: int) -> None:
        self.set_attr("step", int(step))

    @property
    def num_lb_operands(self) -> int:
        return self.get_attr("num_lb_operands")

    @property
    def lb_operands(self) -> tuple[Value, ...]:
        return self.operands[: self.num_lb_operands]

    @property
    def ub_operands(self) -> tuple[Value, ...]:
        return self.operands[self.num_lb_operands:]

    @property
    def body(self) -> Block:
        return self.region(0).front

    @property
    def induction_variable(self) -> BlockArgument:
        return self.body.arguments[0]

    # -- bound manipulation ------------------------------------------------------------

    def set_lower_bound(self, lower_map: AffineMap, operands: Sequence[Value] = ()) -> None:
        ub_operands = list(self.ub_operands)
        self.set_attr("lower_map", lower_map)
        self.set_attr("num_lb_operands", len(operands))
        self.set_operands([*operands, *ub_operands])

    def set_upper_bound(self, upper_map: AffineMap, operands: Sequence[Value] = ()) -> None:
        lb_operands = list(self.lb_operands)
        self.set_attr("upper_map", upper_map)
        self.set_operands([*lb_operands, *operands])

    def set_constant_bounds(self, lower: int, upper: int) -> None:
        self.set_attr("lower_map", AffineMap.constant_map(lower))
        self.set_attr("upper_map", AffineMap.constant_map(upper))
        self.set_attr("num_lb_operands", 0)
        self.set_operands([])

    # -- queries -------------------------------------------------------------------------

    def has_constant_lower_bound(self) -> bool:
        return self.lower_map.is_single_constant()

    def has_constant_upper_bound(self) -> bool:
        return self.upper_map.is_single_constant()

    def has_constant_bounds(self) -> bool:
        return self.has_constant_lower_bound() and self.has_constant_upper_bound()

    @property
    def constant_lower_bound(self) -> int:
        return self.lower_map.single_constant_result()

    @property
    def constant_upper_bound(self) -> int:
        return self.upper_map.single_constant_result()

    def trip_count(self) -> Optional[int]:
        """Number of iterations if the bounds are constant, else None."""
        if not self.has_constant_bounds():
            return None
        span = self.constant_upper_bound - self.constant_lower_bound
        if span <= 0:
            return 0
        step = max(1, self.step)
        return -(-span // step)

    def nested_for_ops(self) -> list["AffineForOp"]:
        """Directly nested ``affine.for`` ops in this loop's body."""
        return [op for op in self.body.operations if isinstance(op, AffineForOp)]


@register_operation("affine", "yield")
class AffineYieldOp(Operation):
    """Terminator yielding values out of an ``affine.if`` (or loop) region."""

    __slots__ = ()

    def __init__(self, operands: Sequence[Value] = ()):
        super().__init__("affine.yield", operands=operands)


@register_operation("affine", "if")
class AffineIfOp(Operation):
    """A conditional guarded by an integer-set condition over affine operands."""

    __slots__ = ()

    def __init__(self, condition: IntegerSet, operands: Sequence[Value] = (),
                 with_else: bool = False, result_types: Sequence[Type] = ()):
        super().__init__("affine.if", operands=operands, result_types=result_types,
                         attributes={"condition": condition}, num_regions=2)
        self.region(0).add_block(Block())
        if with_else or result_types:
            self.region(1).add_block(Block())

    @property
    def condition(self) -> IntegerSet:
        return self.get_attr("condition")

    def set_condition(self, condition: IntegerSet) -> None:
        self.set_attr("condition", condition)

    @property
    def then_block(self) -> Block:
        return self.region(0).front

    @property
    def else_block(self) -> Optional[Block]:
        return self.region(1).front if self.region(1).blocks else None

    def has_else(self) -> bool:
        return bool(self.region(1).blocks) and not self.region(1).front.empty()


@register_operation("affine", "apply")
class AffineApplyOp(Operation):
    """Apply a single-result affine map to index operands."""

    __slots__ = ()

    def __init__(self, map: AffineMap, operands: Sequence[Value]):
        if map.num_results != 1:
            raise ValueError("affine.apply requires a single-result map")
        if map.num_dims != len(operands):
            raise ValueError("operand count must match the map's dim count")
        super().__init__("affine.apply", operands=operands, result_types=[index],
                         attributes={"map": map})

    @property
    def map(self) -> AffineMap:
        return self.get_attr("map")


@register_operation("affine", "load")
class AffineLoadOp(Operation):
    """Load through an affine access map: ``affine.load %m[map(%indices)]``."""

    __slots__ = ()

    def __init__(self, memref: Value, indices: Sequence[Value],
                 map: Optional[AffineMap] = None):
        memref_type = memref.type
        if not isinstance(memref_type, MemRefType):
            raise TypeError("affine.load requires a memref-typed operand")
        if map is None:
            map = AffineMap.identity(len(indices))
        if map.num_results != memref_type.rank:
            raise ValueError("access map result count must match memref rank")
        super().__init__("affine.load", operands=[memref, *indices],
                         result_types=[memref_type.element_type],
                         attributes={"map": map})

    @property
    def memref(self) -> Value:
        return self.operand(0)

    @property
    def indices(self) -> tuple[Value, ...]:
        return self.operands[1:]

    @property
    def map(self) -> AffineMap:
        return self.get_attr("map")


@register_operation("affine", "store")
class AffineStoreOp(Operation):
    """Store through an affine access map."""

    __slots__ = ()

    def __init__(self, value: Value, memref: Value, indices: Sequence[Value],
                 map: Optional[AffineMap] = None):
        memref_type = memref.type
        if not isinstance(memref_type, MemRefType):
            raise TypeError("affine.store requires a memref-typed operand")
        if map is None:
            map = AffineMap.identity(len(indices))
        if map.num_results != memref_type.rank:
            raise ValueError("access map result count must match memref rank")
        super().__init__("affine.store", operands=[value, memref, *indices],
                         attributes={"map": map})

    @property
    def value(self) -> Value:
        return self.operand(0)

    @property
    def memref(self) -> Value:
        return self.operand(1)

    @property
    def indices(self) -> tuple[Value, ...]:
        return self.operands[2:]

    @property
    def map(self) -> AffineMap:
        return self.get_attr("map")


# -- access and band utilities ---------------------------------------------------------


def is_affine_access(op: Operation) -> bool:
    return op.name in ("affine.load", "affine.store")


def access_memref(op: Operation) -> Value:
    """The memref operand of an affine or memref load/store."""
    if op.name in ("affine.load", "memref.load"):
        return op.operand(0)
    if op.name in ("affine.store", "memref.store"):
        return op.operand(1)
    raise ValueError(f"{op.name} is not a memory access")


def access_indices(op: Operation) -> tuple[Value, ...]:
    if op.name in ("affine.load", "memref.load"):
        return op.operands[1:]
    if op.name in ("affine.store", "memref.store"):
        return op.operands[2:]
    raise ValueError(f"{op.name} is not a memory access")


def access_is_write(op: Operation) -> bool:
    return op.name in ("affine.store", "memref.store")


def value_to_affine_expr(value: Value, dim_map: dict[Value, int]) -> Optional[AffineExpr]:
    """Express an index ``value`` as an affine expression over the dims in ``dim_map``.

    ``dim_map`` maps loop induction variables (or other anchor values) to dim
    positions.  The chase follows ``affine.apply``, ``arith.constant`` and the
    linear integer arithmetic ops; anything else returns None.
    """
    if value in dim_map:
        return dim_expr(dim_map[value])
    if isinstance(value, OpResult):
        op = value.owner
        if op.name == "arith.constant":
            return const_expr(int(op.get_attr("value")))
        if op.name == "affine.apply":
            operand_exprs = []
            for operand in op.operands:
                expr = value_to_affine_expr(operand, dim_map)
                if expr is None:
                    return None
                operand_exprs.append(expr)
            return op.get_attr("map").results[0].replace(operand_exprs)
        if op.name in ("arith.addi", "arith.subi", "arith.muli"):
            lhs = value_to_affine_expr(op.operand(0), dim_map)
            rhs = value_to_affine_expr(op.operand(1), dim_map)
            if lhs is None or rhs is None:
                return None
            if op.name == "arith.addi":
                return lhs + rhs
            if op.name == "arith.subi":
                return lhs - rhs
            if isinstance(lhs, AffineConstantExpr) or isinstance(rhs, AffineConstantExpr):
                return lhs * rhs
            return None
    return None


def access_expressions(op: Operation, dim_map: dict[Value, int]) -> Optional[list[AffineExpr]]:
    """Per-dimension index expressions of an access in terms of ``dim_map`` dims."""
    indices = access_indices(op)
    if op.name in ("affine.load", "affine.store"):
        access_map: AffineMap = op.get_attr("map")
        # All-constant fast path (the shape of every access in a fully
        # unrolled pipelined body): evaluate the map numerically rather than
        # substituting constant exprs into each result and re-folding the
        # tree.  The construction-time fold rules collapse an all-constant
        # substitution to the same AffineConstantExpr, so the output is
        # identical.
        if access_map.num_symbols == 0:
            values: Optional[list[int]] = []
            for operand in indices:
                if (isinstance(operand, OpResult)
                        and operand.owner.name == "arith.constant"
                        and operand not in dim_map):
                    values.append(int(operand.owner.get_attr("value")))
                else:
                    values = None
                    break
            if values is not None and len(values) == access_map.num_dims:
                return [const_expr(value) for value in access_map.evaluate(values)]
    operand_exprs = []
    for operand in indices:
        expr = value_to_affine_expr(operand, dim_map)
        if expr is None:
            return None
        operand_exprs.append(expr)
    if op.name in ("affine.load", "affine.store"):
        access_map: AffineMap = op.get_attr("map")
        return [result.replace(operand_exprs) for result in access_map.results]
    return operand_exprs


def perfect_loop_band(outer: AffineForOp) -> list[AffineForOp]:
    """The maximal perfectly nested band rooted at ``outer``.

    A band is perfect when each loop's body contains exactly one operation
    and that operation is the next ``affine.for`` (ignoring a trailing
    ``affine.yield``).
    """
    band = [outer]
    current = outer
    while True:
        body_ops = [op for op in current.body.operations if op.name != "affine.yield"]
        if len(body_ops) == 1 and isinstance(body_ops[0], AffineForOp):
            current = body_ops[0]
            band.append(current)
        else:
            break
    return band


def loop_band_from(outer: AffineForOp) -> list[AffineForOp]:
    """The (possibly imperfect) band: follow the unique nested loop at each level."""
    band = [outer]
    current = outer
    while True:
        nested = current.nested_for_ops()
        if len(nested) == 1:
            current = nested[0]
            band.append(current)
        else:
            break
    return band


def outermost_loops(parent: Operation) -> list[AffineForOp]:
    """Top-level ``affine.for`` loops directly inside a function body (or block)."""
    if parent.name == "func.func":
        block = parent.region(0).front
    else:
        block = parent.region(0).front if parent.regions else None
    if block is None:
        return []
    return [op for op in block.operations if isinstance(op, AffineForOp)]


def innermost_loops(root: Operation) -> list[AffineForOp]:
    """Every ``affine.for`` that contains no further loops."""
    result = []
    for op in root.walk():
        if isinstance(op, AffineForOp) and not any(
                isinstance(nested, AffineForOp) for nested in op.walk() if nested is not op):
            result.append(op)
    return result


def band_dim_map(band: Sequence[AffineForOp]) -> dict[Value, int]:
    """Map each band loop's induction variable to its dim position (outermost = 0)."""
    return {loop.induction_variable: position for position, loop in enumerate(band)}


def band_dim_ranges(band: Sequence[AffineForOp]) -> Optional[list[tuple[int, int]]]:
    """Half-open constant iteration ranges of a band (None if any bound is variable)."""
    ranges = []
    for loop in band:
        if not loop.has_constant_bounds():
            return None
        ranges.append((loop.constant_lower_bound, loop.constant_upper_bound))
    return ranges

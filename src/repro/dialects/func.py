"""The ``func`` dialect: functions, calls and returns."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.ir.block import Block
from repro.ir.dialect import register_operation
from repro.ir.operation import Operation
from repro.ir.types import FunctionType, Type
from repro.ir.value import BlockArgument, Value


@register_operation("func", "func")
class FuncOp(Operation):
    """A function definition owning a single-block body region."""

    __slots__ = ()

    def __init__(self, sym_name: str, function_type: FunctionType,
                 attributes: Optional[dict] = None):
        attrs = dict(attributes or {})
        attrs["sym_name"] = sym_name
        attrs["function_type"] = function_type
        super().__init__("func.func", attributes=attrs, num_regions=1)
        self.region(0).add_block(Block(function_type.inputs))

    # -- accessors -------------------------------------------------------------------

    @property
    def sym_name(self) -> str:
        return self.get_attr("sym_name")

    @sym_name.setter
    def sym_name(self, value: str) -> None:
        self.set_attr("sym_name", value)

    @property
    def function_type(self) -> FunctionType:
        return self.get_attr("function_type")

    @property
    def body(self) -> Block:
        return self.region(0).front

    @property
    def entry_block(self) -> Block:
        return self.body

    @property
    def arguments(self) -> list[BlockArgument]:
        return list(self.body.arguments)

    def add_argument(self, type: Type) -> BlockArgument:
        """Append a function argument, updating the function type."""
        argument = self.body.add_argument(type)
        current = self.function_type
        self.set_attr("function_type",
                      FunctionType(list(current.inputs) + [type], current.results))
        return argument

    def set_result_types(self, result_types: Sequence[Type]) -> None:
        current = self.function_type
        self.set_attr("function_type", FunctionType(current.inputs, result_types))

    def return_op(self) -> Optional["ReturnOp"]:
        for op in reversed(self.body.operations):
            if op.name == "func.return":
                return op
        return None


@register_operation("func", "return")
class ReturnOp(Operation):
    """Function terminator, optionally returning values."""

    __slots__ = ()

    def __init__(self, operands: Sequence[Value] = ()):
        super().__init__("func.return", operands=operands)


@register_operation("func", "call")
class CallOp(Operation):
    """A call to a function identified by symbol name."""

    __slots__ = ()

    def __init__(self, callee: str, operands: Sequence[Value] = (),
                 result_types: Sequence[Type] = ()):
        super().__init__("func.call", operands=operands, result_types=result_types,
                         attributes={"callee": callee})

    @property
    def callee(self) -> str:
        return self.get_attr("callee")

    @callee.setter
    def callee(self, value: str) -> None:
        self.set_attr("callee", value)


def build_function(module, sym_name: str, input_types: Sequence[Type],
                   result_types: Sequence[Type] = ()) -> FuncOp:
    """Create a function, append it to ``module`` and return it."""
    func_op = FuncOp(sym_name, FunctionType(input_types, result_types))
    module.append(func_op)
    return func_op

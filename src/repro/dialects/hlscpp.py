"""The ``hlscpp`` dialect: HLS-specific directives as structured attributes.

ScaleHLS represents the function and loop pipeline/dataflow directives as
customized attributes (paper Section IV-C); array partitioning and the
resource/interface directives are encoded into the memref type's layout map
and memory space, so they need no operations here.  This module defines the
two directive attribute classes and the helpers the transform passes and the
C++ emitter use to read and write them.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.ir.operation import Operation

#: Attribute keys used on operations.
FUNC_DIRECTIVE_ATTR = "func_directive"
LOOP_DIRECTIVE_ATTR = "loop_directive"
TOP_FUNCTION_ATTR = "top_function"
DATAFLOW_STAGE_ATTR = "dataflow_stage"
PARALLEL_FACTOR_ATTR = "parallel_factor"


@dataclasses.dataclass
class FuncDirective:
    """Function-level directives: dataflow, pipeline and the target II."""

    dataflow: bool = False
    pipeline: bool = False
    target_ii: int = 1

    def clone(self) -> "FuncDirective":
        return dataclasses.replace(self)

    def __str__(self) -> str:
        return (f"#hlscpp.func<dataflow={str(self.dataflow).lower()}, "
                f"pipeline={str(self.pipeline).lower()}, targetII={self.target_ii}>")


@dataclasses.dataclass
class LoopDirective:
    """Loop-level directives: pipeline (with target II), dataflow and flattening."""

    pipeline: bool = False
    target_ii: int = 1
    dataflow: bool = False
    flatten: bool = False
    #: II actually achieved according to the QoR estimator (filled in lazily).
    achieved_ii: Optional[int] = None

    def clone(self) -> "LoopDirective":
        return dataclasses.replace(self)

    def __str__(self) -> str:
        return (f"#hlscpp.loop<pipeline={str(self.pipeline).lower()}, "
                f"targetII={self.target_ii}, dataflow={str(self.dataflow).lower()}, "
                f"flatten={str(self.flatten).lower()}>")


# -- directive accessors ---------------------------------------------------------------


def set_func_directive(func_op: Operation, directive: FuncDirective) -> None:
    func_op.set_attr(FUNC_DIRECTIVE_ATTR, directive)


def get_func_directive(func_op: Operation) -> Optional[FuncDirective]:
    return func_op.get_attr(FUNC_DIRECTIVE_ATTR)


def ensure_func_directive(func_op: Operation) -> FuncDirective:
    directive = get_func_directive(func_op)
    if directive is None:
        directive = FuncDirective()
        set_func_directive(func_op, directive)
    return directive


def set_loop_directive(loop_op: Operation, directive: LoopDirective) -> None:
    loop_op.set_attr(LOOP_DIRECTIVE_ATTR, directive)


def get_loop_directive(loop_op: Operation) -> Optional[LoopDirective]:
    return loop_op.get_attr(LOOP_DIRECTIVE_ATTR)


def ensure_loop_directive(loop_op: Operation) -> LoopDirective:
    directive = get_loop_directive(loop_op)
    if directive is None:
        directive = LoopDirective()
        set_loop_directive(loop_op, directive)
    return directive


def is_pipelined(loop_op: Operation) -> bool:
    directive = get_loop_directive(loop_op)
    return directive is not None and directive.pipeline


def is_flattened(loop_op: Operation) -> bool:
    directive = get_loop_directive(loop_op)
    return directive is not None and directive.flatten


# -- top function marker ------------------------------------------------------------------


def set_top_function(func_op: Operation, is_top: bool = True) -> None:
    func_op.set_attr(TOP_FUNCTION_ATTR, bool(is_top))


def is_top_function(func_op: Operation) -> bool:
    return bool(func_op.get_attr(TOP_FUNCTION_ATTR, False))


def find_top_function(module) -> Optional[Operation]:
    """The function marked as the accelerator top (or the only function)."""
    functions = module.functions() if hasattr(module, "functions") else []
    for func_op in functions:
        if is_top_function(func_op):
            return func_op
    if len(functions) == 1:
        return functions[0]
    return None


# -- dataflow stages -----------------------------------------------------------------------


def set_dataflow_stage(op: Operation, stage: int) -> None:
    op.set_attr(DATAFLOW_STAGE_ATTR, int(stage))


def get_dataflow_stage(op: Operation) -> Optional[int]:
    return op.get_attr(DATAFLOW_STAGE_ATTR)

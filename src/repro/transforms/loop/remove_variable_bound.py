"""The ``-remove-variable-bound`` pass.

Replaces variable loop bounds (bounds that are affine functions of outer
induction variables) with their extreme constant value, and guards the loop
body with an ``affine.if`` reproducing the original bound condition.  This
regularizes non-rectangular loop nests (SYRK, SYR2K, TRMM) so that tiling and
QoR estimation can proceed (paper Section V-B3).
"""

from __future__ import annotations

from typing import Optional

from repro.affine.analysis import expr_min_max
from repro.affine.expr import AffineExpr, dim as dim_expr
from repro.affine.map import AffineMap
from repro.affine.set import Constraint, IntegerSet
from repro.dialects.affine_ops import AffineForOp, AffineIfOp
from repro.ir.operation import Operation
from repro.ir.pass_manager import FunctionPass
from repro.ir.pass_registry import register_pass
from repro.ir.value import BlockArgument, Value


def remove_variable_bounds(root: Operation) -> int:
    """Remove variable bounds of every loop nested under ``root``.

    Returns the number of loops whose bounds were made constant.
    """
    changed = 0
    for op in list(root.walk()):
        if isinstance(op, AffineForOp) and op.parent is not None:
            if _remove_for_loop(op):
                changed += 1
    return changed


@register_pass("remove-variable-bound")
class RemoveVariableBoundPass(FunctionPass):
    """Pass wrapper around :func:`remove_variable_bounds`."""

    def run(self, op: Operation) -> None:
        remove_variable_bounds(op)


# -- implementation ----------------------------------------------------------------------------


def _operand_range(value: Value) -> Optional[tuple[int, int]]:
    if isinstance(value, BlockArgument):
        owner = value.owner.parent_op if value.owner.parent is not None else None
        if isinstance(owner, AffineForOp) and owner.has_constant_bounds():
            return (owner.constant_lower_bound, owner.constant_upper_bound)
    from repro.dialects import arith

    constant = arith.constant_value(value)
    if constant is not None:
        return (int(constant), int(constant) + 1)
    return None


def _remove_for_loop(loop: AffineForOp) -> bool:
    lower_variable = not loop.has_constant_lower_bound()
    upper_variable = not loop.has_constant_upper_bound()
    if not lower_variable and not upper_variable:
        return False

    guard_constraints: list[Constraint] = []
    guard_operands: list[Value] = []

    if upper_variable:
        result = _constant_extreme(loop.upper_map, loop.ub_operands, want_max=True)
        if result is None:
            return False
        new_upper, constraint_expr, operands = result
        # Original condition: iv < upper_expr  <=>  upper_expr - iv - 1 >= 0.
        guard_constraints.append((constraint_expr, operands, "upper"))
        loop.set_attr("upper_map", AffineMap.constant_map(new_upper))
    if lower_variable:
        result = _constant_extreme(loop.lower_map, loop.lb_operands, want_max=False)
        if result is None:
            return False
        new_lower, constraint_expr, operands = result
        guard_constraints.append((constraint_expr, operands, "lower"))
        loop.set_attr("lower_map", AffineMap.constant_map(new_lower))

    # Rebuild the operand list (bounds are constant now).
    loop.set_attr("num_lb_operands", 0)
    loop.set_operands([])

    # Build the guard: dims are the original bound operands followed by the IV.
    all_operands: list[Value] = []
    constraints: list[Constraint] = []
    for expr, operands, kind in guard_constraints:
        remapped, all_operands = _merge_operands(expr, operands, all_operands)
        iv_dim = dim_expr(len(all_operands))  # placeholder; fixed after merge below
        constraints.append((remapped, kind))

    iv_position = len(all_operands)
    final_constraints = []
    for remapped, kind in constraints:
        if kind == "upper":
            final_constraints.append(Constraint(remapped - dim_expr(iv_position) - 1, False))
        else:
            final_constraints.append(Constraint(dim_expr(iv_position) - remapped, False))
    guard_set = IntegerSet(iv_position + 1, 0, final_constraints)

    # The guard is generated in the *innermost* loop of the (perfect) nest below,
    # so the band stays perfectly nested (paper Fig. 5, transform C).
    target = loop
    while True:
        body_ops = [op for op in target.body.operations if op.name != "affine.yield"]
        if len(body_ops) == 1 and isinstance(body_ops[0], AffineForOp):
            target = body_ops[0]
            continue
        break
    guard = AffineIfOp(guard_set, [*all_operands, loop.induction_variable])
    body_ops = [op for op in target.body.operations if op.name != "affine.yield"]
    target.body.prepend(guard)
    for op in body_ops:
        op.detach()
        guard.then_block.append(op)
    return True


def _constant_extreme(bound_map: AffineMap, operands, want_max: bool):
    """Extreme value of a single-result bound map over its operands' ranges."""
    if bound_map.num_results != 1:
        return None
    ranges = []
    for operand in operands:
        value_range = _operand_range(operand)
        if value_range is None:
            return None
        ranges.append(value_range)
    expr = bound_map.results[0]
    if not ranges:
        return None
    try:
        low, high = expr_min_max(expr, ranges)
    except ValueError:
        return None
    return (high if want_max else low), expr, list(operands)


def _merge_operands(expr: AffineExpr, operands, all_operands: list[Value]):
    """Remap ``expr``'s dims into the combined operand list, extending it as needed."""
    replacements = {}
    for position, operand in enumerate(operands):
        if operand in all_operands:
            new_position = all_operands.index(operand)
        else:
            new_position = len(all_operands)
            all_operands.append(operand)
        replacements[position] = dim_expr(new_position)
    return expr.replace(replacements), all_operands

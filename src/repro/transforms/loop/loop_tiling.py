"""The ``-affine-loop-tile`` pass (``tile-sizes`` parameter in Tab. II).

Tiles a perfect affine loop band: each loop of the band becomes a *tile*
(inter-tile) loop stepping by the tile size, and a *point* (intra-tile) loop
iterating inside the tile.  Following the paper's DSE flow, every point loop
is placed in the innermost region so it can later be fully unrolled to
increase computation parallelism.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.affine.expr import dim as dim_expr
from repro.affine.map import AffineMap
from repro.dialects.affine_ops import AffineApplyOp, AffineForOp, perfect_loop_band
from repro.ir.operation import Operation
from repro.ir.pass_manager import FunctionPass, PassError, PassOption
from repro.ir.pass_registry import register_pass


def tile_loop_band(band: Sequence[AffineForOp],
                   tile_sizes: Sequence[int]) -> tuple[list[AffineForOp], list[AffineForOp]]:
    """Tile a perfect band with the given per-loop tile sizes.

    Returns ``(tile_loops, point_loops)`` — the new inter-tile band (outermost
    first) and the intra-tile loops nested inside it.  Tile sizes are clamped
    to each loop's trip count and adjusted down to the nearest divisor so the
    transform stays exact.  A tile size of 1 leaves that loop untiled.
    """
    band = list(band)
    if len(tile_sizes) != len(band):
        raise PassError("one tile size per band loop is required")
    for loop in band:
        if not loop.has_constant_bounds():
            raise PassError("loop tiling requires constant bounds "
                            "(run -remove-variable-bound first)")
        if loop.step != 1:
            raise PassError("loop tiling requires unit-step loops")
    _check_band_is_perfect(band)

    adjusted_sizes = [
        _adjust_tile_size(loop.trip_count(), size) for loop, size in zip(band, tile_sizes)]

    outer_block = band[0].parent
    innermost_body_ops = [op for op in band[-1].body.operations if op.name != "affine.yield"]

    # Build the inter-tile loops.
    tile_loops: list[AffineForOp] = []
    for loop, tile in zip(band, adjusted_sizes):
        step = tile if tile > 1 else 1
        new_loop = AffineForOp.constant_bounds(
            loop.constant_lower_bound, loop.constant_upper_bound, step)
        if tile_loops:
            tile_loops[-1].body.append(new_loop)
        else:
            outer_block.insert_before(band[0], new_loop)
        tile_loops.append(new_loop)

    # Build the intra-tile (point) loops inside the innermost tile loop.  Point
    # loops iterate over [0, tile) so their bounds stay constant; the original
    # iteration index is reconstructed as ``tile_iv + point_iv``.
    point_loops: list[AffineForOp] = []
    insertion_parent = tile_loops[-1]
    combined_index: list[tuple[AffineForOp, AffineForOp, AffineForOp]] = []
    iv_replacements: dict = {}
    for original, tile_loop, tile in zip(band, tile_loops, adjusted_sizes):
        if tile <= 1:
            iv_replacements[original.induction_variable] = tile_loop.induction_variable
            continue
        point_loop = AffineForOp.constant_bounds(0, tile)
        insertion_parent.body.append(point_loop)
        insertion_parent = point_loop
        point_loops.append(point_loop)
        combined_index.append((original, tile_loop, point_loop))

    # Move the body into the innermost new loop and rewire induction variables.
    target_body = insertion_parent.body
    sum_map = AffineMap(2, 0, [dim_expr(0) + dim_expr(1)])
    for original, tile_loop, point_loop in combined_index:
        apply_op = AffineApplyOp(sum_map, [tile_loop.induction_variable,
                                           point_loop.induction_variable])
        target_body.append(apply_op)
        iv_replacements[original.induction_variable] = apply_op.result()
    for op in innermost_body_ops:
        target_body.append(op)
    for old_iv, new_iv in iv_replacements.items():
        old_iv.replace_all_uses_with(new_iv)

    band[0].erase()
    return tile_loops, point_loops


@register_pass("affine-loop-tile", aliases=("loop-tiling",))
class AffineLoopTilePass(FunctionPass):
    """Tile every outermost perfect band of a function with fixed tile sizes."""

    OPTIONS = (
        PassOption("sizes", type="int-list", attr="tile_sizes", default=None,
                   help="per-loop tile sizes (padded with 1s)"),
        PassOption("default-size", type="int", attr="default_size", default=2,
                   help="tile size used when 'sizes' is omitted"),
    )

    def __init__(self, tile_sizes: Optional[Sequence[int]] = None, default_size: int = 2):
        self.tile_sizes = list(tile_sizes) if tile_sizes is not None else None
        self.default_size = default_size

    def run(self, op: Operation) -> None:
        from repro.dialects.affine_ops import outermost_loops

        for outer in outermost_loops(op):
            if outer.parent is None:
                continue
            band = perfect_loop_band(outer)
            sizes = self.tile_sizes or [self.default_size] * len(band)
            sizes = list(sizes)[: len(band)]
            sizes += [1] * (len(band) - len(sizes))
            try:
                tile_loop_band(band, sizes)
            except PassError:
                continue


# -- helpers ----------------------------------------------------------------------------------


def _adjust_tile_size(trip_count: int, requested: int) -> int:
    requested = max(1, min(int(requested), trip_count))
    while trip_count % requested != 0:
        requested -= 1
    return requested


def _check_band_is_perfect(band: Sequence[AffineForOp]) -> None:
    for outer, inner in zip(band, band[1:]):
        body_ops = [op for op in outer.body.operations if op.name != "affine.yield"]
        if len(body_ops) != 1 or body_ops[0] is not inner:
            raise PassError("loop tiling requires a perfectly nested band "
                            "(run -affine-loop-perfectization first)")

"""The ``-affine-loop-unroll`` pass.

Partial unrolling duplicates the loop body ``factor`` times (substituting
``iv + k*step`` for the induction variable) and multiplies the step; full
unrolling replaces the loop with one copy of the body per iteration, with the
induction variable replaced by a constant.  Full unrolling is the mechanism
behind both the intra-tile unrolling of the DSE flow and the pipeline
legalization of ``-loop-pipelining``.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.affine.expr import dim as dim_expr
from repro.affine.map import AffineMap
from repro.dialects import arith
from repro.dialects.affine_ops import AffineApplyOp, AffineForOp
from repro.ir.operation import Operation
from repro.ir.pass_manager import FunctionPass, PassError, PassOption
from repro.ir.pass_registry import register_pass
from repro.ir.types import index


def unroll_loop(loop: AffineForOp, factor: int) -> Optional[list[Operation]]:
    """Unroll ``loop`` by ``factor``.

    Returns the list of operations that replaced the loop when it was fully
    unrolled, or None when the loop was partially unrolled in place.  The
    factor is clamped to the trip count; a factor that does not divide the
    trip count is reduced to the largest divisor (keeping the transform
    exact, as required for predictable QoR estimation).
    """
    if factor <= 1:
        return None
    trip = loop.trip_count()
    if trip is None:
        raise PassError("cannot unroll a loop with variable bounds")
    if trip == 0:
        return []
    factor = min(factor, trip)
    while trip % factor != 0:
        factor -= 1
    if factor == trip:
        return _fully_unroll(loop)
    _partially_unroll(loop, factor)
    return None


def fully_unroll(loop: AffineForOp) -> list[Operation]:
    """Fully unroll ``loop`` (which must have constant bounds)."""
    trip = loop.trip_count()
    if trip is None:
        raise PassError("cannot fully unroll a loop with variable bounds")
    return _fully_unroll(loop)


def fully_unroll_nested(root: Operation) -> int:
    """Fully unroll every ``affine.for`` nested inside ``root`` (post-order).

    ``root`` itself is not unrolled.  Returns the number of loops unrolled.
    """
    # One post-order snapshot suffices: inner loops are listed (and hence
    # unrolled) before their enclosing loops, so every loop is innermost by
    # the time it is reached — no per-loop subtree scan or re-sweep needed.
    # Loops the unrolling erases (the snapshotted inner loops) drop out via
    # the parent check; unrolled bodies are cloned loop-free.
    unrolled = 0
    for op in list(root.walk_post_order()):
        if op is root or not isinstance(op, AffineForOp) or op.parent is None:
            continue
        fully_unroll(op)
        unrolled += 1
    return unrolled


@register_pass("affine-loop-unroll", aliases=("loop-unroll",))
class AffineLoopUnrollPass(FunctionPass):
    """Unroll innermost loops by a fixed factor (Tab. II: ``unroll-factor``)."""

    OPTIONS = (PassOption("factor", type="int", attr="unroll_factor", default=4,
                          help="unroll factor applied to every innermost loop"),)

    def __init__(self, unroll_factor: int = 4):
        self.unroll_factor = unroll_factor

    def run(self, op: Operation) -> None:
        from repro.dialects.affine_ops import innermost_loops

        for loop in innermost_loops(op):
            if loop.parent is None:
                continue
            unroll_loop(loop, self.unroll_factor)


# -- implementation ------------------------------------------------------------------------


def _fully_unroll(loop: AffineForOp) -> list[Operation]:
    block = loop.parent
    lower = loop.constant_lower_bound
    upper = loop.constant_upper_bound
    step = loop.step
    new_ops: list[Operation] = []
    for iteration_value in range(lower, upper, step):
        constant = arith.ConstantOp(iteration_value, index)
        new_ops.append(constant)
        value_map = {loop.induction_variable: constant.result()}
        for body_op in loop.body.operations:
            name = body_op.name
            if name == "affine.yield":
                continue
            if name == "affine.apply":
                # Fold now instead of cloning: the canonicalizer would fold
                # this apply anyway (its operands are constants after iv
                # substitution) by inserting a constant exactly here, so
                # emitting the constant directly produces byte-identical
                # post-canonicalize IR while skipping the clone, the fold
                # rewrite and the dead-apply erasure for every iteration.
                folded = _fold_cloned_apply(body_op, value_map)
                if folded is not None:
                    new_ops.append(folded)
                    continue
            new_ops.append(body_op.clone(value_map))
    block.insert_all_after(loop, new_ops)
    loop.erase()
    return new_ops


def _fold_cloned_apply(apply_op: Operation,
                       value_map: dict) -> Optional[Operation]:
    """The constant an unrolled ``affine.apply`` clone folds to (or None).

    Returns a fresh ``arith.constant`` — and maps the apply's result to it —
    when every operand is constant under ``value_map``; chains across folds,
    so applies feeding applies collapse in one unrolling.
    """
    values = []
    for use in apply_op._operands:
        operand = value_map.get(use.value, use.value)
        value = arith.constant_value(operand)
        if value is None:
            value = _single_iteration_iv_value(operand)
            if value is None:
                return None
        values.append(int(value))
    folded = apply_op.get_attr("map").evaluate(values)[0]
    constant = arith.ConstantOp(folded, apply_op.result().type)
    value_map[apply_op.result()] = constant.result()
    return constant


def _single_iteration_iv_value(value) -> Optional[int]:
    """The only value a single-iteration loop's iv can take (or None).

    The canonicalizer substitutes exactly this constant when it promotes the
    trip-1 loop, so folding with it early cannot change the final IR.
    """
    from repro.ir.value import BlockArgument

    if not isinstance(value, BlockArgument):
        return None
    region = value.block.parent
    loop = region.parent if region is not None else None
    if not isinstance(loop, AffineForOp) or value is not loop.induction_variable:
        return None
    if loop.trip_count() == 1 and loop.has_constant_lower_bound():
        return loop.constant_lower_bound
    return None


def _partially_unroll(loop: AffineForOp, factor: int) -> None:
    step = loop.step
    original_ops = [op for op in loop.body.operations if op.name != "affine.yield"]
    iv = loop.induction_variable
    anchor = original_ops[-1] if original_ops else None
    for k in range(1, factor):
        offset_map = AffineMap(1, 0, [dim_expr(0) + k * step])
        apply_op = AffineApplyOp(offset_map, [iv])
        if anchor is None:
            loop.body.append(apply_op)
        else:
            loop.body.insert_after(anchor, apply_op)
        anchor = apply_op
        value_map = {iv: apply_op.result()}
        for body_op in original_ops:
            clone = body_op.clone(value_map)
            loop.body.insert_after(anchor, clone)
            anchor = clone
    loop.set_step(step * factor)

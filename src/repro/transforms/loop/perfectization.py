"""The ``-affine-loop-perfectization`` pass.

Relocates operations that sit between loop statements (which make the nest
imperfect) into the innermost loop, guarding state-modifying operations
(stores) with an ``affine.if`` on the first — or, for trailing operations,
last — iteration of the loop they were moved into.  Non-store operations are
hoisted out of the conditional, exactly as described in Section V-B1 of the
paper.
"""

from __future__ import annotations

from repro.affine.expr import dim as dim_expr
from repro.affine.set import Constraint, IntegerSet
from repro.dialects.affine_ops import AffineForOp, AffineIfOp
from repro.ir.operation import Operation
from repro.ir.pass_manager import FunctionPass
from repro.ir.pass_registry import register_pass


def perfectize_band(outer: AffineForOp) -> bool:
    """Perfectize the loop nest rooted at ``outer``.  Returns True if changed."""
    changed = False
    current = outer
    while True:
        nested = current.nested_for_ops()
        if len(nested) != 1:
            break
        inner = nested[0]
        changed |= _sink_surrounding_ops(current, inner)
        current = inner
    return changed


@register_pass("affine-loop-perfectization")
class AffineLoopPerfectizationPass(FunctionPass):
    """Perfectize every outermost loop nest of a function."""

    def run(self, op: Operation) -> None:
        from repro.dialects.affine_ops import outermost_loops

        for outer in outermost_loops(op):
            perfectize_band(outer)


# -- implementation --------------------------------------------------------------------------


def _sink_surrounding_ops(loop: AffineForOp, inner: AffineForOp) -> bool:
    """Move the ops around ``inner`` in ``loop``'s body into ``inner``'s body."""
    body_ops = [op for op in loop.body.operations if op.name != "affine.yield"]
    inner_index = body_ops.index(inner)
    before_ops = body_ops[:inner_index]
    after_ops = body_ops[inner_index + 1:]
    if not before_ops and not after_ops:
        return False
    if not inner.has_constant_bounds():
        return False
    if not _can_sink(before_ops, after_ops, inner):
        return False

    changed = False
    if before_ops:
        changed |= _sink_group(before_ops, inner, at_start=True)
    if after_ops:
        changed |= _sink_group(after_ops, inner, at_start=False)
    return changed


def _can_sink(before_ops, after_ops, inner: AffineForOp) -> bool:
    """Sinking is legal only if no moved value is needed by the loop bounds or later."""
    moving = set(before_ops) | set(after_ops)
    inner_ops = set(inner.walk())
    for op in moving:
        for result in op.results:
            for use in result.uses:
                user = use.owner
                if user is inner:
                    # Used by the inner loop's bound operands.
                    return False
                if user in moving or user in inner_ops:
                    continue
                # Used by an ancestor of the moved set inside the inner loop?
                if any(ancestor in inner_ops or ancestor in moving
                       for ancestor in user.ancestors()):
                    continue
                return False
    return True


def _sink_group(ops, inner: AffineForOp, at_start: bool) -> bool:
    """Move ``ops`` into ``inner``'s body, guarding stores on the boundary iteration."""
    iv = inner.induction_variable
    if at_start:
        boundary = inner.constant_lower_bound
        # Sunk ops land before the current first op of the body (None when
        # the body is empty, in which case "before the end" is the start).
        successor = inner.body.first_op
    else:
        trip = inner.trip_count()
        boundary = inner.constant_lower_bound + (trip - 1) * inner.step
        successor = None  # append at the end of the body

    guard_set = IntegerSet(1, 0, [Constraint(dim_expr(0) - boundary, True)])
    guard: AffineIfOp | None = None

    def place(op: Operation) -> None:
        if successor is None:
            inner.body.append(op)
        else:
            inner.body.insert_before(successor, op)

    for op in ops:
        op.detach()
        if op.name in ("affine.store", "memref.store", "memref.copy"):
            if guard is None:
                # A fresh guard per run of stores keeps the original ordering
                # between stores and the operations around them.
                guard = AffineIfOp(guard_set, [iv])
                place(guard)
            guard.then_block.append(op)
        else:
            place(op)
            guard = None
    return True

"""The ``-affine-loop-order-opt`` pass (``perm-map`` parameter in Tab. II).

Loop permutation changes the distance of loop-carried memory dependencies.
The pass analyses the band's memory accesses, identifies which loops carry
dependences, and permutes those loops towards the outermost positions so
that the innermost (pipelined) loop is dependence-free whenever possible —
which is precisely what reduces the achievable initiation interval.

An explicit ``perm_map`` can also be supplied: element ``i`` gives the new
position of the ``i``-th loop (outermost = position 0), matching the paper's
convention.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.affine.dependence import MemoryAccess, loops_carrying_dependence
from repro.dialects.affine_ops import (
    AffineForOp,
    access_expressions,
    access_is_write,
    access_memref,
    band_dim_map,
    is_affine_access,
    perfect_loop_band,
)
from repro.ir.operation import Operation
from repro.ir.pass_manager import FunctionPass, PassError, PassOption
from repro.ir.pass_registry import register_pass


def band_memory_accesses(band: Sequence[AffineForOp]) -> list[MemoryAccess]:
    """Collect the affine accesses of a band as :class:`MemoryAccess` records."""
    dim_map = band_dim_map(band)
    accesses: list[MemoryAccess] = []
    for op in band[-1].walk():
        if not is_affine_access(op):
            continue
        exprs = access_expressions(op, dim_map)
        if exprs is None:
            continue
        accesses.append(MemoryAccess(access_memref(op), tuple(exprs),
                                     access_is_write(op), op))
    return accesses


def compute_permutation(band: Sequence[AffineForOp]) -> list[int]:
    """Permutation map placing dependence-carrying loops outermost.

    Returns ``perm_map`` where ``perm_map[i]`` is the new position of loop
    ``i`` (the identity permutation if nothing needs to move).
    """
    accesses = band_memory_accesses(band)
    carrying = loops_carrying_dependence(accesses, len(band))
    carrying_order = [i for i in range(len(band)) if i in carrying]
    free_order = [i for i in range(len(band)) if i not in carrying]
    new_order = carrying_order + free_order  # new_order[p] = original loop at position p
    perm_map = [0] * len(band)
    for new_position, original in enumerate(new_order):
        perm_map[original] = new_position
    return perm_map


def permute_loop_band(band: Sequence[AffineForOp], perm_map: Sequence[int]) -> list[AffineForOp]:
    """Apply ``perm_map`` to a perfect band, returning the new band (outermost first)."""
    band = list(band)
    if sorted(perm_map) != list(range(len(band))):
        raise PassError(f"invalid permutation map {perm_map!r}")
    if list(perm_map) == list(range(len(band))):
        return band
    for loop in band:
        if not loop.has_constant_bounds():
            raise PassError("loop permutation requires constant bounds")
    _check_band_is_perfect(band)

    body_ops = [op for op in band[-1].body.operations if op.name != "affine.yield"]
    outer_block = band[0].parent

    # new_band[p] mirrors the original loop that moves to position p.
    originals_by_new_position = [None] * len(band)
    for original_index, new_position in enumerate(perm_map):
        originals_by_new_position[new_position] = band[original_index]

    new_band: list[AffineForOp] = []
    for original in originals_by_new_position:
        new_loop = AffineForOp.constant_bounds(
            original.constant_lower_bound, original.constant_upper_bound, original.step)
        if new_band:
            new_band[-1].body.append(new_loop)
        else:
            outer_block.insert_before(band[0], new_loop)
        new_band.append(new_loop)

    for op in body_ops:
        op.detach()
        new_band[-1].body.append(op)
    for original, new_position in zip(band, perm_map):
        original.induction_variable.replace_all_uses_with(
            new_band[new_position].induction_variable)
    band[0].erase()
    return new_band


def optimize_loop_order(band: Sequence[AffineForOp],
                        perm_map: Optional[Sequence[int]] = None) -> list[AffineForOp]:
    """Permute ``band`` for minimal loop-carried dependence impact.

    With no explicit ``perm_map`` the permutation is derived from dependence
    analysis (dependence-carrying loops outermost).
    """
    band = list(band)
    if perm_map is None:
        perm_map = compute_permutation(band)
    return permute_loop_band(band, perm_map)


@register_pass("affine-loop-order-opt")
class AffineLoopOrderOptPass(FunctionPass):
    """Optimize the loop order of every outermost perfect band of a function."""

    OPTIONS = (PassOption("perm", type="int-list", attr="perm_map", default=None,
                          help="explicit permutation map; derived when omitted"),)

    def __init__(self, perm_map: Optional[Sequence[int]] = None):
        self.perm_map = list(perm_map) if perm_map is not None else None

    def run(self, op: Operation) -> None:
        from repro.dialects.affine_ops import outermost_loops

        for outer in outermost_loops(op):
            if outer.parent is None:
                continue
            band = perfect_loop_band(outer)
            perm = self.perm_map
            if perm is not None and len(perm) != len(band):
                continue
            try:
                optimize_loop_order(band, perm)
            except PassError:
                continue


def _check_band_is_perfect(band: Sequence[AffineForOp]) -> None:
    for outer, inner in zip(band, band[1:]):
        body_ops = [op for op in outer.body.operations if op.name != "affine.yield"]
        if len(body_ops) != 1 or body_ops[0] is not inner:
            raise PassError("loop permutation requires a perfectly nested band")

"""Loop-level transform passes (paper Section V-B)."""

from repro.transforms.loop.perfectization import AffineLoopPerfectizationPass, perfectize_band
from repro.transforms.loop.remove_variable_bound import (
    RemoveVariableBoundPass,
    remove_variable_bounds,
)
from repro.transforms.loop.loop_order_opt import (
    AffineLoopOrderOptPass,
    band_memory_accesses,
    compute_permutation,
    optimize_loop_order,
    permute_loop_band,
)
from repro.transforms.loop.loop_tiling import AffineLoopTilePass, tile_loop_band
from repro.transforms.loop.loop_unroll import (
    AffineLoopUnrollPass,
    fully_unroll,
    fully_unroll_nested,
    unroll_loop,
)

__all__ = [
    "AffineLoopPerfectizationPass", "perfectize_band",
    "RemoveVariableBoundPass", "remove_variable_bounds",
    "AffineLoopOrderOptPass", "band_memory_accesses", "compute_permutation",
    "optimize_loop_order", "permute_loop_band",
    "AffineLoopTilePass", "tile_loop_band",
    "AffineLoopUnrollPass", "fully_unroll", "fully_unroll_nested", "unroll_loop",
]

"""The HLS transform and analysis library.

Every optimization described in the paper is exposed three ways, mirroring
how ScaleHLS packages its transform library (paper Section V):

* as a *registered pass* (``@register_pass``) constructible from the textual
  pipeline syntax of :mod:`repro.ir.pass_registry`,
* as a :class:`~repro.ir.pass_manager.Pass` subclass for programmatic
  pipeline construction, and
* as a callable function with explicit parameters (for the DSE engine).

Importing this package populates the pass registry.
"""

from repro.transforms.cleanup.canonicalize import (
    CanonicalizePass,
    canonicalize,
    canonicalization_patterns,
)
from repro.transforms.cleanup.cse import CSEPass, eliminate_common_subexpressions
from repro.transforms.cleanup.simplify_affine_if import SimplifyAffineIfPass, simplify_affine_ifs
from repro.transforms.cleanup.store_forward import AffineStoreForwardPass, forward_stores
from repro.transforms.cleanup.simplify_memref_access import (
    SimplifyMemrefAccessPass,
    simplify_memref_accesses,
)
from repro.transforms.loop.perfectization import AffineLoopPerfectizationPass, perfectize_band
from repro.transforms.loop.remove_variable_bound import (
    RemoveVariableBoundPass,
    remove_variable_bounds,
)
from repro.transforms.loop.loop_order_opt import (
    AffineLoopOrderOptPass,
    optimize_loop_order,
    permute_loop_band,
)
from repro.transforms.loop.loop_tiling import AffineLoopTilePass, tile_loop_band
from repro.transforms.loop.loop_unroll import AffineLoopUnrollPass, unroll_loop, fully_unroll
from repro.transforms.directive.pipelining import (
    LoopPipeliningPass,
    FuncPipeliningPass,
    pipeline_loop,
    pipeline_function,
)
from repro.transforms.directive.array_partition import ArrayPartitionPass, partition_arrays
from repro.transforms.graph.legalize_dataflow import LegalizeDataflowPass, legalize_dataflow
from repro.transforms.graph.split_function import SplitFunctionPass, split_function
from repro.transforms.graph.lower_graph import LowerGraphPass, lower_graph_to_loops
from repro.transforms.composite import (
    ApplyDesignPointPass,
    DesignPointPrefixPass,
    DesignPointSuffixPass,
    DNNLoopOptPass,
    unroll_towards_factor,
)

__all__ = [
    "CanonicalizePass", "canonicalize", "canonicalization_patterns",
    "CSEPass", "eliminate_common_subexpressions",
    "SimplifyAffineIfPass", "simplify_affine_ifs",
    "AffineStoreForwardPass", "forward_stores",
    "SimplifyMemrefAccessPass", "simplify_memref_accesses",
    "AffineLoopPerfectizationPass", "perfectize_band",
    "RemoveVariableBoundPass", "remove_variable_bounds",
    "AffineLoopOrderOptPass", "optimize_loop_order", "permute_loop_band",
    "AffineLoopTilePass", "tile_loop_band",
    "AffineLoopUnrollPass", "unroll_loop", "fully_unroll",
    "LoopPipeliningPass", "FuncPipeliningPass", "pipeline_loop", "pipeline_function",
    "ArrayPartitionPass", "partition_arrays",
    "LegalizeDataflowPass", "legalize_dataflow",
    "SplitFunctionPass", "split_function",
    "LowerGraphPass", "lower_graph_to_loops",
    "ApplyDesignPointPass", "DesignPointPrefixPass", "DesignPointSuffixPass",
    "DNNLoopOptPass", "unroll_towards_factor",
]

"""Composite registered passes used by the compilation flows.

These passes bundle the data-dependent transform sequences that the DSE and
the DNN flow apply per function, so that *every* flow — hand-written
pipelines, the serial DSE, the parallel runtime workers and the CLI — can be
expressed as one textual pipeline built from the registry:

* ``apply-design-point`` reproduces one :class:`KernelDesignPoint` of the
  paper's kernel DSE (Tab. II parameters) as a single configurable pass.
* ``dnn-loop-opt`` is the per-stage loop/directive optimization of the DNN
  flow (loop-order optimization, unrolling towards a factor, pipelining).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.dialects.affine_ops import AffineForOp, outermost_loops, perfect_loop_band
from repro.ir.operation import Operation
from repro.ir.pass_manager import FunctionPass, PassError, PassOption
from repro.ir.pass_registry import register_pass
from repro.transforms.directive.pipelining import pipeline_loop
from repro.transforms.loop.loop_order_opt import optimize_loop_order, permute_loop_band
from repro.transforms.loop.loop_tiling import tile_loop_band
from repro.transforms.loop.loop_unroll import fully_unroll, unroll_loop
from repro.transforms.loop.perfectization import perfectize_band
from repro.transforms.loop.remove_variable_bound import remove_variable_bounds


def run_design_point_prefix(func_op: Operation, perfectize: bool,
                            rvb: bool) -> None:
    """The *structural prefix* of one design point: perfectize + rvb.

    Only the two boolean knobs participate, so a kernel has at most four
    distinct prefixes — which is what makes the post-prefix IR worth caching
    (see :mod:`repro.dse.incremental`).
    """
    outer = _outer_loop(func_op)
    if outer is None:
        return
    if perfectize:
        perfectize_band(outer)
    if rvb:
        remove_variable_bounds(func_op)


def run_design_point_suffix(func_op: Operation, perm: Sequence[int],
                            tiles: Sequence[int], ii: int) -> None:
    """The *point-specific suffix*: permute, tile and pipeline the band.

    Transform steps that are not applicable (e.g. permutation of a
    non-perfect band) are skipped rather than failing — the estimator will
    simply see the weaker design, which is how unprofitable points lose in
    the exploration.
    """
    outer = _outer_loop(func_op)
    if outer is None:
        return
    band = perfect_loop_band(outer)
    if len(perm) == len(band):
        try:
            band = permute_loop_band(band, perm)
        except PassError:
            pass

    tile_loops = band
    if any(size > 1 for size in tiles[: len(band)]):
        sizes = list(tiles[: len(band)])
        sizes += [1] * (len(band) - len(sizes))
        try:
            tile_loops, _ = tile_loop_band(band, sizes)
        except PassError:
            tile_loops = band

    try:
        pipeline_loop(tile_loops[-1], ii)
    except PassError:
        pass


@register_pass("apply-design-point")
class ApplyDesignPointPass(FunctionPass):
    """Apply one kernel design point (perfectize, rvb, permute, tile, pipeline).

    Defined as exactly :func:`run_design_point_prefix` followed by
    :func:`run_design_point_suffix` — the split the incremental evaluator
    caches around — so the whole-point pass and the prefix/suffix pair can
    never diverge.
    """

    OPTIONS = (
        PassOption("perfectize", type="bool", default=False,
                   help="run loop perfectization first"),
        PassOption("rvb", type="bool", default=False,
                   help="remove variable loop bounds"),
        PassOption("perm", type="int-list", default=(),
                   help="loop permutation map (applied when it fits the band)"),
        PassOption("tiles", type="int-list", default=(),
                   help="per-loop tile sizes (1 leaves a loop untiled)"),
        PassOption("ii", type="int", default=1,
                   help="pipeline target initiation interval"),
    )

    def __init__(self, perfectize: bool = False, rvb: bool = False,
                 perm: Sequence[int] = (), tiles: Sequence[int] = (),
                 ii: int = 1):
        self.perfectize = perfectize
        self.rvb = rvb
        self.perm = tuple(perm)
        self.tiles = tuple(tiles)
        self.ii = ii

    def run(self, func_op: Operation) -> None:
        run_design_point_prefix(func_op, self.perfectize, self.rvb)
        run_design_point_suffix(func_op, self.perm, self.tiles, self.ii)


@register_pass("design-point-prefix")
class DesignPointPrefixPass(FunctionPass):
    """The structural (perfectize + rvb) prefix of ``apply-design-point``.

    Points sharing the two boolean knobs share this pass's output exactly,
    which the incremental evaluator exploits by snapshotting the post-prefix
    IR (:mod:`repro.dse.incremental`).
    """

    OPTIONS = (
        PassOption("perfectize", type="bool", default=False,
                   help="run loop perfectization first"),
        PassOption("rvb", type="bool", default=False,
                   help="remove variable loop bounds"),
    )

    def __init__(self, perfectize: bool = False, rvb: bool = False):
        self.perfectize = perfectize
        self.rvb = rvb

    def run(self, func_op: Operation) -> None:
        run_design_point_prefix(func_op, self.perfectize, self.rvb)


@register_pass("design-point-suffix")
class DesignPointSuffixPass(FunctionPass):
    """The point-specific (permute, tile, pipeline) suffix of
    ``apply-design-point``, run on prefix-transformed IR."""

    OPTIONS = (
        PassOption("perm", type="int-list", default=(),
                   help="loop permutation map (applied when it fits the band)"),
        PassOption("tiles", type="int-list", default=(),
                   help="per-loop tile sizes (1 leaves a loop untiled)"),
        PassOption("ii", type="int", default=1,
                   help="pipeline target initiation interval"),
    )

    def __init__(self, perm: Sequence[int] = (), tiles: Sequence[int] = (),
                 ii: int = 1):
        self.perm = tuple(perm)
        self.tiles = tuple(tiles)
        self.ii = ii

    def run(self, func_op: Operation) -> None:
        run_design_point_suffix(func_op, self.perm, self.tiles, self.ii)


@register_pass("dnn-loop-opt")
class DNNLoopOptPass(FunctionPass):
    """Loop + directive optimization of one lowered (loop-level) DNN stage.

    Each lowered loop nest is first loop-order optimized (reduction loops are
    permuted outwards so the pipelined loop carries no dependence), then the
    innermost loops are unrolled towards the requested factor, and the
    innermost remaining loop is pipelined.
    """

    OPTIONS = (PassOption("factor", type="int", default=1,
                          help="unroll factor the loop nests are driven towards"),)

    def __init__(self, factor: int = 1):
        self.factor = factor

    def run(self, func_op: Operation) -> None:
        for outer in outermost_loops(func_op):
            if outer.parent is None:
                continue
            band = perfect_loop_band(outer)
            try:
                band = optimize_loop_order(band)
            except PassError:
                pass
            target = unroll_towards_factor(band[-1], self.factor)
            if target is None:
                continue
            try:
                pipeline_loop(target, 1)
            except PassError:
                continue


def unroll_towards_factor(innermost: AffineForOp, factor: int) -> Optional[AffineForOp]:
    """Unroll a loop nest bottom-up until roughly ``factor`` copies exist.

    Fully unrolls inner loops while their trip count fits in the remaining
    factor, then partially unrolls the next enclosing loop.  Returns the loop
    that should be pipelined afterwards.
    """
    loop = innermost
    remaining = max(1, factor)
    while remaining > 1 and loop is not None:
        trip = loop.trip_count()
        if trip is None:
            break
        parent = loop.parent_op
        parent_loop = parent if isinstance(parent, AffineForOp) else None
        if trip <= remaining and parent_loop is not None:
            fully_unroll(loop)
            remaining = max(1, -(-remaining // max(1, trip)))
            loop = parent_loop
        else:
            unroll_loop(loop, remaining)
            remaining = 1
    return loop


def _outer_loop(func_op: Operation) -> Optional[AffineForOp]:
    loops = outermost_loops(func_op)
    return loops[0] if loops else None

"""The ``-loop-pipelining`` and ``-func-pipelining`` passes.

A legal pipeline directive allows no hierarchy inside the target: before the
directive is attached, every loop nested in the target is fully unrolled and
every called sub-function is marked for pipelining.  Perfectly nested parent
loops of a pipelined loop are annotated with ``flatten`` so the estimator and
the emitter treat them as a single flattened loop nest (paper Section V-C1).
"""

from __future__ import annotations

from typing import Optional

from repro.dialects.affine_ops import AffineForOp, innermost_loops
from repro.dialects.hlscpp import (
    FuncDirective,
    LoopDirective,
    ensure_func_directive,
    ensure_loop_directive,
)
from repro.ir.operation import Operation
from repro.ir.pass_manager import FunctionPass, PassError, PassOption
from repro.ir.pass_registry import register_pass
from repro.transforms.loop.loop_unroll import fully_unroll_nested


def pipeline_loop(loop: AffineForOp, target_ii: int = 1) -> int:
    """Legalize and pipeline ``loop`` with the given target II.

    Returns the number of nested loops that were fully unrolled during
    legalization.  Raises :class:`PassError` when a nested loop has variable
    bounds (the target cannot be legalized, mirroring the diagnostics the
    paper describes).
    """
    for nested in loop.walk():
        if nested is loop:
            continue
        if isinstance(nested, AffineForOp) and not nested.has_constant_bounds():
            raise PassError(
                "cannot pipeline: a nested loop has variable bounds "
                "(run -remove-variable-bound first)")
    unrolled = fully_unroll_nested(loop)

    directive = ensure_loop_directive(loop)
    directive.pipeline = True
    directive.target_ii = max(1, int(target_ii))

    _flatten_perfect_parents(loop)
    return unrolled


def pipeline_function(func_op: Operation, target_ii: int = 1) -> int:
    """Legalize and pipeline a whole function (all loops fully unrolled)."""
    for nested in func_op.walk():
        if isinstance(nested, AffineForOp) and not nested.has_constant_bounds():
            raise PassError("cannot pipeline a function containing variable-bound loops")
    unrolled = fully_unroll_nested(func_op)
    directive = ensure_func_directive(func_op)
    directive.pipeline = True
    directive.target_ii = max(1, int(target_ii))
    return unrolled


@register_pass("loop-pipelining", aliases=("pipeline",))
class LoopPipeliningPass(FunctionPass):
    """Pipeline every innermost loop of a function with a fixed target II."""

    OPTIONS = (PassOption("ii", type="int", attr="target_ii", default=1,
                          help="target initiation interval"),)

    def __init__(self, target_ii: int = 1):
        self.target_ii = target_ii

    def run(self, op: Operation) -> None:
        for loop in innermost_loops(op):
            if loop.parent is None:
                continue
            try:
                pipeline_loop(loop, self.target_ii)
            except PassError:
                continue


@register_pass("func-pipelining")
class FuncPipeliningPass(FunctionPass):
    """Pipeline entire functions (Tab. II: ``-func-pipelining``)."""

    OPTIONS = (
        PassOption("ii", type="int", attr="target_ii", default=1,
                   help="target initiation interval"),
        PassOption("only-named", type="str", attr="only_named", default=None,
                   help="restrict to the function with this sym_name"),
    )

    def __init__(self, target_ii: int = 1, only_named: Optional[str] = None):
        self.target_ii = target_ii
        self.only_named = only_named

    def run(self, op: Operation) -> None:
        if self.only_named is not None and op.get_attr("sym_name") != self.only_named:
            return
        try:
            pipeline_function(op, self.target_ii)
        except PassError:
            return


def _flatten_perfect_parents(loop: AffineForOp) -> None:
    """Mark perfectly nested ancestors of a pipelined loop with ``flatten``."""
    child: Operation = loop
    parent = child.parent_op
    while isinstance(parent, AffineForOp):
        body_ops = [op for op in parent.body.operations if op.name != "affine.yield"]
        if len(body_ops) != 1 or body_ops[0] is not child:
            break
        directive = ensure_loop_directive(parent)
        directive.flatten = True
        directive.pipeline = False
        child = parent
        parent = child.parent_op

"""The ``-array-partition`` pass.

Implements the access-pattern-driven array partitioning of Section V-C2: for
every array dimension the pass counts the distinct access index expressions
(``Accesses``) and the maximal index distance between any two accesses, and
derives the partition fashion (cyclic when the accesses are spread densely,
block otherwise) and the partition factor.  The result is encoded into the
memref type's layout map (N inputs -> 2N results) exactly as the paper's
Fig. 3 describes, which is what the QoR estimator and the C++ emitter read.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

from repro.affine.analysis import linearize
from repro.affine.expr import AffineExpr
from repro.dialects.affine_ops import (
    AffineForOp,
    access_expressions,
    access_memref,
    is_affine_access,
)
from repro.dialects.func import FuncOp
from repro.dialects.hlscpp import is_pipelined
from repro.ir.operation import Operation
from repro.ir.pass_manager import FunctionPass, PassOption
from repro.ir.pass_registry import register_pass
from repro.ir.types import FunctionType, MemRefType, PartitionKind
from repro.ir.value import BlockArgument, Value


@dataclasses.dataclass
class PartitionPlan:
    """The chosen partition fashion and factor for every dimension of one array."""

    memref: Value
    partition: tuple[tuple[str, int], ...]

    @property
    def factors(self) -> tuple[int, ...]:
        return tuple(factor for _, factor in self.partition)


def partition_arrays(func_op: Operation,
                     part_factors: Optional[dict[str, Sequence[int]]] = None,
                     max_factor: int = 64) -> list[PartitionPlan]:
    """Partition every array accessed by ``func_op``.

    ``part_factors`` optionally pins the factors of specific buffers (keyed by
    argument index as ``arg<i>`` or by the ``buffer_name`` attribute of the
    allocating op).  Returns the plan applied to each partitioned buffer.
    """
    part_factors = part_factors or {}
    plans: list[PartitionPlan] = []
    # One function-level pipelining scan shared across all buffers: the walk
    # over a fully unrolled body is large, and the answer is per-function.
    has_pipelined = _function_has_pipelined_loop(func_op)
    for memref_value in _collect_memrefs(func_op):
        name = _memref_name(memref_value, func_op)
        if name in part_factors:
            factors = part_factors[name]
            partition = tuple(
                (PartitionKind.CYCLIC if factor > 1 else PartitionKind.NONE, max(1, factor))
                for factor in factors)
        else:
            partition = _derive_partition(memref_value, func_op, max_factor,
                                          has_pipelined=has_pipelined)
        if partition is None:
            continue
        if all(factor <= 1 for _, factor in partition):
            continue
        _apply_partition(memref_value, partition, func_op)
        plans.append(PartitionPlan(memref_value, tuple(partition)))
    return plans


@register_pass("array-partition")
class ArrayPartitionPass(FunctionPass):
    """Pass wrapper around :func:`partition_arrays`."""

    OPTIONS = (PassOption("max-factor", type="int", attr="max_factor", default=64,
                          help="upper bound on any per-dimension partition factor"),)

    def __init__(self, part_factors: Optional[dict[str, Sequence[int]]] = None,
                 max_factor: int = 64):
        self.part_factors = part_factors
        self.max_factor = max_factor

    def run(self, op: Operation) -> None:
        partition_arrays(op, self.part_factors, self.max_factor)


# -- analysis -------------------------------------------------------------------------------


def _collect_memrefs(func_op: Operation) -> list[Value]:
    memrefs: list[Value] = []
    for argument in func_op.region(0).front.arguments:
        if isinstance(argument.type, MemRefType):
            memrefs.append(argument)
    for op in func_op.walk():
        if op.name == "memref.alloc":
            memrefs.append(op.result())
    return memrefs


def _memref_name(memref_value: Value, func_op: Operation) -> str:
    if isinstance(memref_value, BlockArgument):
        return f"arg{memref_value.index}"
    owner = memref_value.owner
    return owner.get_attr("buffer_name", "") or f"buffer{id(owner) % 10000}"


def _enclosing_loops(op: Operation) -> list[AffineForOp]:
    loops = [ancestor for ancestor in op.ancestors() if isinstance(ancestor, AffineForOp)]
    loops.reverse()  # outermost first
    return loops


def _function_has_pipelined_loop(func_op: Operation) -> bool:
    return any(isinstance(op, AffineForOp) and is_pipelined(op) for op in func_op.walk())


def _access_groups(memref_value: Value, func_op: Operation,
                   has_pipelined: Optional[bool] = None):
    """Group accesses of a buffer by their enclosing loop nest.

    Accesses inside pipelined loops are preferred (they determine the needed
    bandwidth); if no loop of the function is pipelined every access counts.
    """
    accesses = [use.owner for use in memref_value.uses if is_affine_access(use.owner)]
    if has_pipelined is None:
        has_pipelined = _function_has_pipelined_loop(func_op)

    groups: dict[tuple, list[tuple[Operation, list[AffineExpr]]]] = {}
    for access in accesses:
        loops = _enclosing_loops(access)
        if has_pipelined and not any(is_pipelined(loop) for loop in loops):
            continue
        dim_map = {loop.induction_variable: position for position, loop in enumerate(loops)}
        exprs = access_expressions(access, dim_map)
        if exprs is None:
            continue
        key = tuple(id(loop) for loop in loops)
        groups.setdefault(key, []).append((access, exprs))
    return groups


def _derive_partition(memref_value: Value, func_op: Operation,
                      max_factor: int,
                      has_pipelined: Optional[bool] = None) -> Optional[list[tuple[str, int]]]:
    memref_type = memref_value.type
    if not isinstance(memref_type, MemRefType):
        return None
    rank = memref_type.rank
    best = [(PartitionKind.NONE, 1)] * rank

    for _, group in _access_groups(memref_value, func_op, has_pipelined).items():
        num_dims = max((len(_enclosing_loops(access)) for access, _ in group), default=0)
        for d in range(rank):
            exprs = [exprs[d] for _, exprs in group]
            unique = _unique_exprs(exprs)
            accesses_count = len(unique)
            if accesses_count <= 1:
                continue
            max_distance = _max_index_distance(unique, num_dims)
            factor = min(accesses_count, memref_type.shape[d], max_factor)
            metric = accesses_count / max(1, max_distance)
            fashion = PartitionKind.CYCLIC if metric >= 1 else PartitionKind.BLOCK
            if factor > best[d][1]:
                best[d] = (fashion, factor)
    return best


def _unique_exprs(exprs: Sequence[AffineExpr]) -> list[AffineExpr]:
    unique: list[AffineExpr] = []
    seen = set()
    for expr in exprs:
        key = hash(expr)
        if key in seen and any(expr == other for other in unique):
            continue
        seen.add(key)
        unique.append(expr)
    return unique


def _max_index_distance(exprs: Sequence[AffineExpr], num_dims: int) -> int:
    """Largest ``index_m - index_n + 1`` over pairs with matching coefficients."""
    linearized = []
    for expr in exprs:
        decomposed = linearize(expr, num_dims)
        if decomposed is not None:
            linearized.append(decomposed)
    best = 1
    for i, (coeffs_a, const_a) in enumerate(linearized):
        for coeffs_b, const_b in linearized[i + 1:]:
            if coeffs_a == coeffs_b:
                best = max(best, abs(const_a - const_b) + 1)
    return best


# -- application -----------------------------------------------------------------------------


def _apply_partition(memref_value: Value, partition: Sequence[tuple[str, int]],
                     func_op: Operation) -> None:
    memref_type: MemRefType = memref_value.type
    new_type = memref_type.with_partition(partition)
    memref_value.type = new_type
    if isinstance(memref_value, BlockArgument) and isinstance(func_op, FuncOp):
        _refresh_function_type(func_op)
    elif not isinstance(memref_value, BlockArgument):
        # memref.alloc result: keep the op's result type in sync (same object).
        pass


def _refresh_function_type(func_op: FuncOp) -> None:
    input_types = [argument.type for argument in func_op.arguments]
    func_op.set_attr("function_type",
                     FunctionType(input_types, func_op.function_type.results))

"""Directive-level transform passes (paper Section V-C)."""

from repro.transforms.directive.pipelining import (
    FuncPipeliningPass,
    LoopPipeliningPass,
    pipeline_function,
    pipeline_loop,
)
from repro.transforms.directive.array_partition import (
    ArrayPartitionPass,
    PartitionPlan,
    partition_arrays,
)

__all__ = [
    "FuncPipeliningPass", "LoopPipeliningPass", "pipeline_function", "pipeline_loop",
    "ArrayPartitionPass", "PartitionPlan", "partition_arrays",
]

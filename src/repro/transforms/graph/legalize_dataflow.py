"""The ``-legalize-dataflow`` pass (``insert-copy`` option in Tab. II).

Dataflow pipelining in downstream HLS tools requires every intermediate
result to have a single producer/consumer pair in adjacent stages: bypass
paths are illegal.  The pass assigns each graph node a dataflow stage
(longest path from the inputs) and then either

* **conservatively** merges the stages spanned by each bypass edge into one
  stage (paper Fig. 4(b)), or
* **aggressively** inserts explicit copy nodes along bypass edges until the
  main path and the bypass path have the same number of nodes
  (paper Fig. 4(c), enabled with ``insert_copy=True``).

The resulting stage of every node is recorded in the ``dataflow_stage``
attribute, and the function is marked with the dataflow directive.
"""

from __future__ import annotations

from typing import Optional

from repro.dialects import graph as graph_dialect
from repro.dialects.hlscpp import FuncDirective, ensure_func_directive, set_dataflow_stage
from repro.ir.operation import Operation
from repro.ir.pass_manager import FunctionPass, PassError, PassOption
from repro.ir.pass_registry import register_pass
from repro.ir.value import OpResult


def legalize_dataflow(func_op: Operation, insert_copy: bool = False) -> int:
    """Legalize the dataflow of ``func_op``.  Returns the number of stages."""
    nodes = graph_dialect.graph_nodes(func_op)
    if not nodes:
        raise PassError("the function contains no graph-level dataflow nodes")

    if insert_copy:
        _insert_copies(func_op)
        nodes = graph_dialect.graph_nodes(func_op)

    levels = _longest_path_levels(nodes)
    stages = _merge_bypassed_levels(nodes, levels)

    for node in nodes:
        set_dataflow_stage(node, stages[node])
    directive = ensure_func_directive(func_op)
    directive.dataflow = True
    return max(stages.values()) + 1 if stages else 0


@register_pass("legalize-dataflow")
class LegalizeDataflowPass(FunctionPass):
    """Pass wrapper around :func:`legalize_dataflow`."""

    OPTIONS = (PassOption("insert-copy", type="bool", attr="insert_copy", default=False,
                          help="insert copy nodes along bypass paths (Fig. 4c)"),)

    def __init__(self, insert_copy: bool = False):
        self.insert_copy = insert_copy

    def run(self, op: Operation) -> None:
        if not graph_dialect.graph_nodes(op):
            return
        legalize_dataflow(op, self.insert_copy)


# -- analysis helpers ----------------------------------------------------------------------


def _node_predecessors(node: Operation, node_set: set) -> list[Operation]:
    predecessors = []
    for operand in node.operands:
        if isinstance(operand, OpResult) and operand.owner in node_set:
            predecessors.append(operand.owner)
    return predecessors


def _node_successors(node: Operation, node_set: set) -> list[Operation]:
    successors = []
    for result in node.results:
        for user in result.users:
            if user in node_set:
                successors.append(user)
    return successors


def _longest_path_levels(nodes: list[Operation]) -> dict[Operation, int]:
    """ASAP levels: the longest path (in nodes) from any graph input."""
    node_set = set(nodes)
    levels: dict[Operation, int] = {}
    for node in nodes:  # nodes appear in topological (program) order
        predecessors = _node_predecessors(node, node_set)
        levels[node] = max((levels[p] + 1 for p in predecessors), default=0)
    return levels


def _merge_bypassed_levels(nodes: list[Operation],
                           levels: dict[Operation, int]) -> dict[Operation, int]:
    """Merge the levels spanned by bypass edges until every edge is adjacent."""
    node_set = set(nodes)
    # stage_of_level maps a level to its (possibly merged) stage representative.
    level_values = sorted(set(levels.values()))
    stage_of_level = {level: level for level in level_values}

    def find(level: int) -> int:
        while stage_of_level[level] != level:
            stage_of_level[level] = stage_of_level[stage_of_level[level]]
            level = stage_of_level[level]
        return level

    def union(a: int, b: int) -> None:
        root_a, root_b = find(a), find(b)
        if root_a != root_b:
            stage_of_level[max(root_a, root_b)] = min(root_a, root_b)

    # Adjacency must be judged on *consecutive stage positions*, not on the raw
    # root labels (which become sparse as stages merge).  Each round merges the
    # span of one bypass edge, which removes at least one root, so the loop
    # terminates after at most len(level_values) rounds.
    while True:
        roots = sorted({find(level) for level in level_values})
        position = {root: index for index, root in enumerate(roots)}
        violation = None
        for node in nodes:
            for successor in _node_successors(node, node_set):
                source = find(levels[node])
                target = find(levels[successor])
                if position[target] - position[source] > 1:
                    violation = (source, target)
                    break
            if violation:
                break
        if violation is None:
            break
        source, target = violation
        for root in roots:
            if position[source] < position[root] <= position[target]:
                union(root, target)

    # Renumber the merged stages consecutively.
    roots = sorted({find(level) for level in level_values})
    renumber = {root: index for index, root in enumerate(roots)}
    return {node: renumber[find(level)] for node, level in levels.items()}


# -- copy insertion -----------------------------------------------------------------------------


def _insert_copies(func_op: Operation) -> int:
    """Insert copy nodes so every edge spans exactly one level (Fig. 4(c))."""
    inserted = 0
    max_rounds = 4 * len(graph_dialect.graph_nodes(func_op)) + 8
    for _ in range(max_rounds):
        nodes = graph_dialect.graph_nodes(func_op)
        node_set = set(nodes)
        levels = _longest_path_levels(nodes)
        bypass: Optional[tuple[Operation, Operation]] = None
        for node in nodes:
            for successor in _node_successors(node, node_set):
                if levels[successor] - levels[node] > 1:
                    bypass = (node, successor)
                    break
            if bypass:
                break
        if bypass is None:
            return inserted
        producer, consumer = bypass
        gap = levels[consumer] - levels[producer] - 1
        value = _edge_value(producer, consumer)
        current = value
        anchor = producer
        for _ in range(gap):
            copy_op = graph_dialect.CopyOp(current)
            producer.parent.insert_after(anchor, copy_op)
            anchor = copy_op
            current = copy_op.result()
            inserted += 1
        consumer.replaces_uses_of(value, current)
    return inserted


def _edge_value(producer: Operation, consumer: Operation):
    for operand in consumer.operands:
        if isinstance(operand, OpResult) and operand.owner is producer:
            return operand
    raise PassError("no dataflow edge between the given nodes")

"""Graph-level transform passes (paper Section V-A) and the graph-to-loop lowering."""

from repro.transforms.graph.legalize_dataflow import LegalizeDataflowPass, legalize_dataflow
from repro.transforms.graph.split_function import SplitFunctionPass, split_function
from repro.transforms.graph.lower_graph import LowerGraphPass, lower_graph_to_loops

__all__ = [
    "LegalizeDataflowPass", "legalize_dataflow",
    "SplitFunctionPass", "split_function",
    "LowerGraphPass", "lower_graph_to_loops",
]

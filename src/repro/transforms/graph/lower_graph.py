"""Lowering of graph-level tensor operations to affine loop nests over memrefs.

This is the bufferization + lowering step between the graph-level IR and the
loop-level IR: every tensor becomes an on-chip buffer and every graph
operation becomes one or more affine loop nests.  Convolution and dense
weights are materialized as 8-bit buffers (dequantized on the fly), which is
what keeps ResNet-18-class models within the on-chip memory budget of one
VU9P SLR, as the paper's memory utilization numbers imply.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.affine.expr import AffineExpr, constant as const_expr, dim as dim_expr
from repro.affine.map import AffineMap
from repro.affine.set import Constraint, IntegerSet
from repro.dialects import arith, memref as memref_dialect
from repro.dialects.affine_ops import AffineForOp, AffineIfOp, AffineLoadOp, AffineStoreOp
from repro.dialects.graph import GraphOp
from repro.ir.block import Block
from repro.ir.builder import Builder
from repro.ir.module import ModuleOp
from repro.ir.operation import Operation
from repro.ir.pass_manager import ModulePass, PassError
from repro.ir.pass_registry import register_pass
from repro.ir.types import (
    FunctionType,
    IntegerType,
    MemRefType,
    TensorType,
    f32,
)
from repro.ir.value import Value

#: Element type used for quantized convolution / dense weights.
WEIGHT_TYPE = IntegerType(8)


def lower_graph_to_loops(module: ModuleOp) -> int:
    """Lower every graph operation in the module.  Returns the number lowered."""
    lowered = 0
    for func_op in module.functions():
        _retype_function(func_op)
    for func_op in module.functions():
        lowered += _lower_function(func_op)
    _retype_calls(module)
    return lowered


@register_pass("lower-graph-to-loops")
class LowerGraphPass(ModulePass):
    """Pass wrapper around :func:`lower_graph_to_loops`."""

    def run(self, module: Operation) -> None:
        if isinstance(module, ModuleOp):
            lower_graph_to_loops(module)


# -- signature rewriting ------------------------------------------------------------------------


def _tensor_to_memref(tensor_type: TensorType) -> MemRefType:
    return MemRefType(tensor_type.shape, tensor_type.element_type)


def _retype_function(func_op: Operation) -> None:
    for argument in func_op.region(0).front.arguments:
        if isinstance(argument.type, TensorType):
            argument.type = _tensor_to_memref(argument.type)
    function_type: FunctionType = func_op.get_attr("function_type")
    inputs = [t if not isinstance(t, TensorType) else _tensor_to_memref(t)
              for t in function_type.inputs]
    results = [t if not isinstance(t, TensorType) else _tensor_to_memref(t)
               for t in function_type.results]
    func_op.set_attr("function_type", FunctionType(inputs, results))


def _retype_calls(module: ModuleOp) -> None:
    for op in module.walk():
        if op.name != "func.call":
            continue
        for result in op.results:
            if isinstance(result.type, TensorType):
                result.type = _tensor_to_memref(result.type)


# -- per-function lowering ----------------------------------------------------------------------


def _lower_function(func_op: Operation) -> int:
    lowered = 0
    builder = Builder()
    for op in list(func_op.region(0).front.operations):
        if not isinstance(op, GraphOp):
            continue
        builder.set_insertion_point_before(op)
        output_buffer = _lower_graph_op(builder, op)
        op.result().replace_all_uses_with(output_buffer)
        op.erase()
        lowered += 1
    return lowered


def _lower_graph_op(builder: Builder, op: GraphOp) -> Value:
    layer_name = op.get_attr("layer_name", "") or op.name.split(".")[-1]
    output_type = _tensor_to_memref(op.output_type())
    output = builder.insert(memref_dialect.AllocOp(output_type, name=layer_name)).result()

    handlers = {
        "graph.conv2d": _lower_conv2d,
        "graph.dense": _lower_dense,
        "graph.relu": _lower_relu,
        "graph.batchnorm": _lower_batchnorm,
        "graph.add": _lower_add,
        "graph.maxpool2d": _lower_maxpool,
        "graph.avgpool2d": _lower_avgpool,
        "graph.flatten": _lower_flatten,
        "graph.copy": _lower_copy,
    }
    handler = handlers.get(op.name)
    if handler is None:
        raise PassError(f"no lowering for {op.name}")
    handler(builder, op, output)
    return output


# -- loop-nest helpers ---------------------------------------------------------------------------


def _build_nest(builder: Builder, bounds: Sequence[int]) -> tuple[list[AffineForOp], list[Value]]:
    """Create a nest of constant-bound loops and return (loops, induction variables)."""
    loops: list[AffineForOp] = []
    ivs: list[Value] = []
    for bound in bounds:
        loop = AffineForOp.constant_bounds(0, int(bound))
        if loops:
            loops[-1].body.append(loop)
        else:
            builder.insert(loop)
        loops.append(loop)
        ivs.append(loop.induction_variable)
    return loops, ivs


def _body_builder(loops: Sequence[AffineForOp], builder: Builder) -> Builder:
    inner = Builder()
    if loops:
        inner.set_insertion_point_to_end(loops[-1].body)
    else:
        inner.insertion_point = builder.insertion_point
    return inner


def _constant(builder: Builder, value, type) -> Value:
    return builder.insert(arith.ConstantOp(value, type)).result()


def _load(builder: Builder, buffer: Value, ivs: Sequence[Value],
          exprs: Optional[Sequence[AffineExpr]] = None) -> Value:
    if exprs is None:
        exprs = [dim_expr(i) for i in range(len(ivs))]
    access_map = AffineMap(len(ivs), 0, exprs)
    return builder.insert(AffineLoadOp(buffer, ivs, access_map)).result()


def _store(builder: Builder, value: Value, buffer: Value, ivs: Sequence[Value],
           exprs: Optional[Sequence[AffineExpr]] = None) -> None:
    if exprs is None:
        exprs = [dim_expr(i) for i in range(len(ivs))]
    access_map = AffineMap(len(ivs), 0, exprs)
    builder.insert(AffineStoreOp(value, buffer, ivs, access_map))


def _weight_buffer(builder: Builder, op: GraphOp, element_type, suffix: str = "weight") -> Value:
    shape = op.get_attr("weight_shape")
    name = (op.get_attr("layer_name", "") or op.name.split(".")[-1]) + f"_{suffix}"
    buffer_type = MemRefType(shape, element_type)
    return builder.insert(memref_dialect.AllocOp(buffer_type, name=name)).result()


def _bias_buffer(builder: Builder, op: GraphOp) -> Optional[Value]:
    bias_shape = op.get_attr("bias_shape")
    if not bias_shape:
        return None
    name = (op.get_attr("layer_name", "") or op.name.split(".")[-1]) + "_bias"
    return builder.insert(memref_dialect.AllocOp(MemRefType(bias_shape, f32), name=name)).result()


def _dequantize(builder: Builder, value: Value) -> Value:
    if isinstance(value.type, IntegerType):
        return builder.insert(arith.SIToFPOp(value, f32)).result()
    return value


# -- per-op lowerings ------------------------------------------------------------------------------


def _init_output(builder: Builder, output: Value, shape: Sequence[int],
                 bias: Optional[Value] = None, init_value: float = 0.0,
                 channel_dim: int = 1) -> None:
    """Zero / bias initialisation nest over the full output buffer."""
    loops, ivs = _build_nest(builder, shape)
    body = _body_builder(loops, builder)
    if bias is not None:
        value = body.insert(AffineLoadOp(bias, [ivs[channel_dim]],
                                         AffineMap.identity(1))).result()
    else:
        value = _constant(body, init_value, f32)
    _store(body, value, output, ivs)


def _lower_conv2d(builder: Builder, op: GraphOp, output: Value) -> None:
    input_buffer = op.operand(0)
    n, in_channels, in_h, in_w = op.operand(0).type.shape
    _, out_channels, out_h, out_w = op.output_type().shape
    kernel = op.get_attr("kernel_size")
    stride = op.get_attr("stride")
    padding = op.get_attr("padding")
    groups = op.get_attr("groups")
    ic_per_group = in_channels // groups
    oc_per_group = out_channels // groups

    weights = _weight_buffer(builder, op, WEIGHT_TYPE)
    bias = _bias_buffer(builder, op)
    _init_output(builder, output, (n, out_channels, out_h, out_w), bias)

    # Reduction nest: n, oc, oh, ow, ic (per group), kh, kw.
    loops, ivs = _build_nest(builder, (n, out_channels, out_h, out_w,
                                       ic_per_group, kernel, kernel))
    body = _body_builder(loops, builder)
    iv_n, iv_oc, iv_oh, iv_ow, iv_ic, iv_kh, iv_kw = ivs

    # Input spatial coordinates as affine expressions of the loop dims.
    d = [dim_expr(i) for i in range(7)]
    h_expr = d[2] * stride + d[5] - padding
    w_expr = d[3] * stride + d[6] - padding
    channel_expr = (d[1].floordiv(oc_per_group)) * ic_per_group + d[4]

    mac_builder = body
    if padding > 0:
        guard = IntegerSet(7, 0, [
            Constraint(h_expr, False),
            Constraint(const_expr(in_h - 1) - h_expr, False),
            Constraint(w_expr, False),
            Constraint(const_expr(in_w - 1) - w_expr, False),
        ])
        if_op = body.insert(AffineIfOp(guard, list(ivs)))
        mac_builder = Builder()
        mac_builder.set_insertion_point_to_end(if_op.then_block)

    input_value = _load(mac_builder, input_buffer, ivs,
                        [d[0], channel_expr, h_expr, w_expr])
    weight_value = _load(mac_builder, weights, ivs, [d[1], d[4], d[5], d[6]])
    weight_value = _dequantize(mac_builder, weight_value)
    product = mac_builder.insert(arith.MulFOp(input_value, weight_value)).result()
    accumulator = _load(mac_builder, output, ivs, [d[0], d[1], d[2], d[3]])
    updated = mac_builder.insert(arith.AddFOp(accumulator, product)).result()
    _store(mac_builder, updated, output, ivs, [d[0], d[1], d[2], d[3]])


def _lower_dense(builder: Builder, op: GraphOp, output: Value) -> None:
    input_buffer = op.operand(0)
    n, in_features = input_buffer.type.shape
    _, out_features = op.output_type().shape

    weights = _weight_buffer(builder, op, WEIGHT_TYPE)
    bias = _bias_buffer(builder, op)
    _init_output(builder, output, (n, out_features), bias, channel_dim=1)

    loops, ivs = _build_nest(builder, (n, out_features, in_features))
    body = _body_builder(loops, builder)
    d = [dim_expr(i) for i in range(3)]
    input_value = _load(body, input_buffer, ivs, [d[0], d[2]])
    weight_value = _load(body, weights, ivs, [d[1], d[2]])
    weight_value = _dequantize(body, weight_value)
    product = body.insert(arith.MulFOp(input_value, weight_value)).result()
    accumulator = _load(body, output, ivs, [d[0], d[1]])
    updated = body.insert(arith.AddFOp(accumulator, product)).result()
    _store(body, updated, output, ivs, [d[0], d[1]])


def _lower_relu(builder: Builder, op: GraphOp, output: Value) -> None:
    input_buffer = op.operand(0)
    shape = op.output_type().shape
    loops, ivs = _build_nest(builder, shape)
    body = _body_builder(loops, builder)
    value = _load(body, input_buffer, ivs)
    zero = _constant(body, 0.0, f32)
    result = body.insert(arith.MaxFOp(value, zero)).result()
    _store(body, result, output, ivs)


def _lower_batchnorm(builder: Builder, op: GraphOp, output: Value) -> None:
    input_buffer = op.operand(0)
    shape = op.output_type().shape
    channel_dim = 1 if len(shape) >= 2 else 0
    params = _weight_buffer(builder, op, f32, suffix="params")
    loops, ivs = _build_nest(builder, shape)
    body = _body_builder(loops, builder)
    value = _load(body, input_buffer, ivs)
    channel_iv = ivs[channel_dim]
    scale = body.insert(AffineLoadOp(params, [channel_iv],
                                     AffineMap(1, 0, [dim_expr(0), const_expr(0)]))).result()
    shift = body.insert(AffineLoadOp(params, [channel_iv],
                                     AffineMap(1, 0, [dim_expr(0), const_expr(1)]))).result()
    scaled = body.insert(arith.MulFOp(value, scale)).result()
    shifted = body.insert(arith.AddFOp(scaled, shift)).result()
    _store(body, shifted, output, ivs)


def _lower_add(builder: Builder, op: GraphOp, output: Value) -> None:
    lhs, rhs = op.operand(0), op.operand(1)
    shape = op.output_type().shape
    loops, ivs = _build_nest(builder, shape)
    body = _body_builder(loops, builder)
    a = _load(body, lhs, ivs)
    b = _load(body, rhs, ivs)
    result = body.insert(arith.AddFOp(a, b)).result()
    _store(body, result, output, ivs)


def _lower_maxpool(builder: Builder, op: GraphOp, output: Value) -> None:
    input_buffer = op.operand(0)
    n, channels, out_h, out_w = op.output_type().shape
    kernel = op.get_attr("kernel_size")
    stride = op.get_attr("stride")
    _init_output(builder, output, (n, channels, out_h, out_w), init_value=-3.0e38)

    loops, ivs = _build_nest(builder, (n, channels, out_h, out_w, kernel, kernel))
    body = _body_builder(loops, builder)
    d = [dim_expr(i) for i in range(6)]
    value = _load(body, input_buffer, ivs,
                  [d[0], d[1], d[2] * stride + d[4], d[3] * stride + d[5]])
    current = _load(body, output, ivs, [d[0], d[1], d[2], d[3]])
    result = body.insert(arith.MaxFOp(current, value)).result()
    _store(body, result, output, ivs, [d[0], d[1], d[2], d[3]])


def _lower_avgpool(builder: Builder, op: GraphOp, output: Value) -> None:
    input_buffer = op.operand(0)
    n, channels, out_h, out_w = op.output_type().shape
    kernel = op.get_attr("kernel_size")
    stride = op.get_attr("stride")
    _init_output(builder, output, (n, channels, out_h, out_w))

    loops, ivs = _build_nest(builder, (n, channels, out_h, out_w, kernel, kernel))
    body = _body_builder(loops, builder)
    d = [dim_expr(i) for i in range(6)]
    value = _load(body, input_buffer, ivs,
                  [d[0], d[1], d[2] * stride + d[4], d[3] * stride + d[5]])
    current = _load(body, output, ivs, [d[0], d[1], d[2], d[3]])
    result = body.insert(arith.AddFOp(current, value)).result()
    _store(body, result, output, ivs, [d[0], d[1], d[2], d[3]])

    # Scale nest: divide by the pooling window size.
    scale_loops, scale_ivs = _build_nest(builder, (n, channels, out_h, out_w))
    scale_body = _body_builder(scale_loops, builder)
    accumulated = _load(scale_body, output, scale_ivs)
    factor = _constant(scale_body, 1.0 / (kernel * kernel), f32)
    scaled = scale_body.insert(arith.MulFOp(accumulated, factor)).result()
    _store(scale_body, scaled, output, scale_ivs)


def _lower_flatten(builder: Builder, op: GraphOp, output: Value) -> None:
    input_buffer = op.operand(0)
    shape = input_buffer.type.shape
    loops, ivs = _build_nest(builder, shape)
    body = _body_builder(loops, builder)
    value = _load(body, input_buffer, ivs)
    # Flattened index: row-major combination of every non-batch dimension.
    d = [dim_expr(i) for i in range(len(shape))]
    flat = const_expr(0)
    for position in range(1, len(shape)):
        size = 1
        for later in shape[position + 1:]:
            size *= later
        flat = flat + d[position] * size
    _store(body, value, output, ivs, [d[0], flat])


def _lower_copy(builder: Builder, op: GraphOp, output: Value) -> None:
    input_buffer = op.operand(0)
    shape = op.output_type().shape
    loops, ivs = _build_nest(builder, shape)
    body = _body_builder(loops, builder)
    value = _load(body, input_buffer, ivs)
    _store(body, value, output, ivs)

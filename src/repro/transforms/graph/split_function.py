"""The ``-split-function`` pass (``min-gran`` parameter in Tab. II).

After dataflow legalization every graph node carries a ``dataflow_stage``
attribute.  This pass clusters the nodes of ``min_granularity`` adjacent
stages into one sub-function each, replaces them with ``func.call``
operations in the (dataflow-pipelined) top function, and thereby exposes the
throughput/area trade-off the paper explores with the dataflow granularity
(Fig. 4(d)).
"""

from __future__ import annotations

import math
from typing import Optional

from repro.dialects import func as func_dialect
from repro.dialects import graph as graph_dialect
from repro.dialects.hlscpp import (
    FuncDirective,
    ensure_func_directive,
    get_dataflow_stage,
    set_dataflow_stage,
)
from repro.ir.module import ModuleOp
from repro.ir.operation import Operation
from repro.ir.pass_manager import ModulePass, PassError, PassOption
from repro.ir.pass_registry import register_pass
from repro.ir.types import FunctionType
from repro.ir.value import OpResult, Value


def split_function(module: ModuleOp, func_op: Operation,
                   min_granularity: int = 1) -> list[Operation]:
    """Split ``func_op`` into per-stage sub-functions.

    ``min_granularity`` is the number of adjacent dataflow stages merged into
    each sub-function.  Returns the created sub-functions (in stage order).
    """
    nodes = graph_dialect.graph_nodes(func_op)
    if not nodes:
        raise PassError("the function contains no graph-level dataflow nodes")
    if any(get_dataflow_stage(node) is None for node in nodes):
        raise PassError("run -legalize-dataflow before -split-function")
    min_granularity = max(1, int(min_granularity))

    num_stages = max(get_dataflow_stage(node) for node in nodes) + 1
    groups: dict[int, list[Operation]] = {}
    for node in nodes:
        group_index = get_dataflow_stage(node) // min_granularity
        groups.setdefault(group_index, []).append(node)

    return_op = func_op.region(0).front.last_op
    if return_op is None or return_op.name != "func.return":
        raise PassError("the top function must end with func.return")

    # Values available in the rewritten top function: arguments map to themselves.
    top_value: dict[Value, Value] = {
        argument: argument for argument in func_op.region(0).front.arguments}

    sub_functions: list[Operation] = []
    base_name = func_op.get_attr("sym_name")
    for order, group_index in enumerate(sorted(groups)):
        group = groups[group_index]
        group_set = set(group)

        inputs = _group_inputs(group, group_set)
        outputs = _group_outputs(group, group_set, return_op)

        sub_name = f"{base_name}_dataflow{order}"
        sub_func = func_dialect.FuncOp(
            sub_name, FunctionType([value.type for value in inputs],
                                   [value.type for value in outputs]))
        module.append(sub_func)
        sub_functions.append(sub_func)
        set_dataflow_stage(sub_func, order)

        value_map: dict[Value, Value] = {
            original: argument for original, argument in zip(inputs, sub_func.arguments)}
        for node in group:
            sub_func.body.append(node.clone(value_map))
        sub_func.body.append(func_dialect.ReturnOp([value_map[v] for v in outputs]))

        call = func_dialect.CallOp(sub_name,
                                   [top_value[value] for value in inputs],
                                   [value.type for value in outputs])
        return_op.parent.insert_before(return_op, call)
        for original, result in zip(outputs, call.results):
            top_value[original] = result

    # Point the return at the rewritten values, then remove the original nodes.
    for position, operand in enumerate(return_op.operands):
        if operand in top_value and top_value[operand] is not operand:
            return_op.set_operand(position, top_value[operand])
    for node in reversed(nodes):
        node.erase()

    directive = ensure_func_directive(func_op)
    directive.dataflow = True
    return sub_functions


@register_pass("split-function")
class SplitFunctionPass(ModulePass):
    """Split every dataflow-legalized function of the module."""

    OPTIONS = (PassOption("min-granularity", type="int", attr="min_granularity",
                          default=1, help="graph nodes merged per dataflow stage"),)

    def __init__(self, min_granularity: int = 1):
        self.min_granularity = min_granularity

    def run(self, module: Operation) -> None:
        if not isinstance(module, ModuleOp):
            return
        for func_op in list(module.functions()):
            nodes = graph_dialect.graph_nodes(func_op)
            if not nodes or any(get_dataflow_stage(node) is None for node in nodes):
                continue
            split_function(module, func_op, self.min_granularity)


# -- helpers ----------------------------------------------------------------------------------


def _group_inputs(group: list[Operation], group_set: set) -> list[Value]:
    inputs: list[Value] = []
    for node in group:
        for operand in node.operands:
            defined_inside = isinstance(operand, OpResult) and operand.owner in group_set
            if not defined_inside and operand not in inputs:
                inputs.append(operand)
    return inputs


def _group_outputs(group: list[Operation], group_set: set, return_op: Operation) -> list[Value]:
    outputs: list[Value] = []
    for node in group:
        for result in node.results:
            for use in result.uses:
                if use.owner not in group_set or use.owner is return_op:
                    if result not in outputs:
                        outputs.append(result)
                    break
    return outputs

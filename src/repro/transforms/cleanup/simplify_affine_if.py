"""The ``-simplify-affine-if`` pass.

Eliminates dead branches of ``affine.if`` operations by bounding each
constraint over the iteration domain of the surrounding loops: a constraint
``expr >= 0`` whose minimum over the domain is non-negative always holds, and
one whose maximum is negative never holds (similarly for equalities).  Always
true conditionals are inlined; never-true conditionals are replaced by their
else region (or erased).
"""

from __future__ import annotations

from typing import Optional

from repro.affine.analysis import expr_min_max
from repro.dialects.affine_ops import AffineForOp, AffineIfOp
from repro.ir.operation import Operation
from repro.ir.pass_manager import FunctionPass
from repro.ir.pass_registry import register_pass
from repro.ir.rewrite import GreedyRewriteDriver, PatternRewriter, RewritePattern
from repro.ir.value import BlockArgument, OpResult, Value


class SimplifyAffineIfPattern(RewritePattern):
    """Inline (or erase) ``affine.if`` ops whose condition is decidable."""

    op_name = "affine.if"
    benefit = 1

    def __init__(self):
        self.simplified = 0

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> bool:
        if not isinstance(op, AffineIfOp) or op.results:
            return False
        verdict = _evaluate_condition(op)
        if verdict is None:
            return False
        _inline_branch(op, take_then=verdict, rewriter=rewriter)
        self.simplified += 1
        return True


def simplify_affine_ifs(root: Operation, strategy: Optional[str] = None) -> int:
    """Simplify every ``affine.if`` nested under ``root``.  Returns #simplified."""
    pattern = SimplifyAffineIfPattern()
    GreedyRewriteDriver([pattern], strategy=strategy).rewrite(root)
    return pattern.simplified


@register_pass("simplify-affine-if")
class SimplifyAffineIfPass(FunctionPass):
    """Pass wrapper around :func:`simplify_affine_ifs`."""

    def run(self, op: Operation) -> None:
        simplify_affine_ifs(op)


def _operand_range(value: Value) -> Optional[tuple[int, int]]:
    """Half-open value range of an ``affine.if`` operand, if derivable.

    Handles constants, induction variables of constant-bound loops, and
    values computed from them through ``affine.apply`` / integer arithmetic
    (the combined indices produced by loop tiling).
    """
    from repro.dialects import arith
    from repro.dialects.affine_ops import value_to_affine_expr

    constant = arith.constant_value(value)
    if constant is not None:
        return (int(constant), int(constant) + 1)
    if isinstance(value, BlockArgument):
        owner = value.owner.parent_op if value.owner.parent is not None else None
        if isinstance(owner, AffineForOp) and owner.has_constant_bounds():
            return (owner.constant_lower_bound, owner.constant_upper_bound)
        return None
    # Derived index value: express it over the enclosing constant-bound loop IVs.
    if not isinstance(value, OpResult):
        return None
    defining = value.owner
    enclosing = [ancestor for ancestor in defining.ancestors()
                 if isinstance(ancestor, AffineForOp) and ancestor.has_constant_bounds()]
    enclosing.reverse()
    dim_map = {loop.induction_variable: position for position, loop in enumerate(enclosing)}
    expr = value_to_affine_expr(value, dim_map)
    if expr is None:
        return None
    ranges = [(loop.constant_lower_bound, loop.constant_upper_bound) for loop in enclosing]
    if not ranges:
        return None
    try:
        low, high = expr_min_max(expr, ranges)
    except ValueError:
        return None
    return (low, high + 1)


def _evaluate_condition(if_op: AffineIfOp) -> Optional[bool]:
    """True / False when the condition is decidable over the domain, else None."""
    ranges = []
    for operand in if_op.operands:
        value_range = _operand_range(operand)
        if value_range is None:
            return None
        ranges.append(value_range)
    condition = if_op.condition
    if not ranges:
        ranges = [(0, 1)] * condition.num_dims
    always = True
    for constraint in condition.constraints:
        try:
            low, high = expr_min_max(constraint.expr, ranges)
        except ValueError:
            return None
        if constraint.is_equality:
            if low == 0 and high == 0:
                continue
            if low > 0 or high < 0:
                return False
            always = False
        else:
            if low >= 0:
                continue
            if high < 0:
                return False
            always = False
    return True if always else None


def _inline_branch(if_op: AffineIfOp, take_then: bool,
                   rewriter: Optional[PatternRewriter] = None) -> None:
    block = if_op.parent
    source = if_op.then_block if take_then else if_op.else_block
    anchor = if_op
    if source is not None:
        for op in list(source.operations):
            if op.name == "affine.yield":
                continue
            op.detach()
            block.insert_after(anchor, op)
            anchor = op
            if rewriter is not None:
                rewriter.enqueue(op)
    if rewriter is not None:
        rewriter.erase_op(if_op)
    else:
        if_op.erase()

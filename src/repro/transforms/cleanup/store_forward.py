"""The ``-affine-store-forward`` pass.

Performs store-to-load forwarding inside straight-line blocks: a load whose
address matches a dominating store in the same block (with no potentially
conflicting store in between) is replaced by the stored value.  The pass also
removes buffers that end up write-only (every user is a store), which is how
"unused memory instances" disappear after forwarding.
"""

from __future__ import annotations

from repro.dialects.affine_ops import access_indices, access_is_write, access_memref
from repro.ir.block import Block
from repro.ir.operation import Operation
from repro.ir.pass_manager import FunctionPass
from repro.ir.pass_registry import register_pass
from repro.ir.rewrite import BlockScanPattern, GreedyRewriteDriver, PatternRewriter

#: The memory-access op names the block scans dispatch on (shared with
#: ``simplify-memref-access``).
ACCESS_OPS = frozenset({"affine.load", "affine.store",
                        "memref.load", "memref.store"})


class StoreForwardScanPattern(BlockScanPattern):
    """Linear per-block store-to-load forwarding."""

    op_names = ACCESS_OPS

    def scan_block(self, block: Block, rewriter: PatternRewriter) -> int:
        return _forward_in_block(block)


def forward_stores(root: Operation) -> int:
    """Forward stores to loads under ``root``.  Returns the number of forwards."""
    driver = GreedyRewriteDriver([StoreForwardScanPattern()])
    driver.rewrite(root)
    return driver.num_block_rewrites + _remove_write_only_buffers(root)


@register_pass("affine-store-forward")
class AffineStoreForwardPass(FunctionPass):
    """Pass wrapper around :func:`forward_stores`."""

    def run(self, op: Operation) -> None:
        forward_stores(op)


def access_key(op: Operation) -> tuple:
    """Hashable address identity of an access (memref, index values, access map)."""
    memref = access_memref(op)
    indices = tuple(id(v) for v in access_indices(op))
    access_map = op.get_attr("map")
    return (id(memref), indices, str(access_map) if access_map is not None else None)


def _forward_in_block(block: Block) -> int:
    forwarded = 0
    # Last store per exact address, bucketed by buffer so a store's
    # may-alias invalidation is one O(1) bucket replacement instead of a
    # rebuild of the whole map (quadratic on unrolled store streams).
    last_store: dict[int, dict[tuple, Operation]] = {}
    for op in list(block.operations):
        if op.parent is not block or op.name not in ACCESS_OPS:
            # Region-holding ops (loops, ifs) may touch memory: be conservative.
            if op.regions:
                for inner in op.walk():
                    if inner.name in ACCESS_OPS:
                        last_store.pop(id(access_memref(inner)), None)
            continue
        if access_is_write(op):
            key = access_key(op)
            # A store may alias any other address of the same buffer: only
            # this exact address survives, now defined by this store.
            last_store[id(access_memref(op))] = {key: op}
        else:
            key = access_key(op)
            stores = last_store.get(id(access_memref(op)))
            store = stores.get(key) if stores else None
            if store is not None:
                stored_value = store.operand(0)
                op.result().replace_all_uses_with(stored_value)
                op.erase()
                forwarded += 1
    return forwarded


def _remove_write_only_buffers(root: Operation) -> int:
    removed = 0
    for op in list(root.walk()):
        if op.name != "memref.alloc" or op.parent is None:
            continue
        users = [use.owner for use in op.result().uses]
        if not users:
            op.erase()
            removed += 1
            continue
        if all(user.name in ("affine.store", "memref.store", "memref.dealloc")
               and (user.name == "memref.dealloc" or access_memref(user) is op.result())
               for user in users):
            for user in list(users):
                user.erase()
            op.erase()
            removed += 1
    return removed

"""Redundancy-elimination passes (paper Section V-D)."""

from repro.transforms.cleanup.canonicalize import CanonicalizePass, canonicalize
from repro.transforms.cleanup.cse import CSEPass, eliminate_common_subexpressions
from repro.transforms.cleanup.simplify_affine_if import SimplifyAffineIfPass, simplify_affine_ifs
from repro.transforms.cleanup.store_forward import AffineStoreForwardPass, forward_stores
from repro.transforms.cleanup.simplify_memref_access import (
    SimplifyMemrefAccessPass,
    simplify_memref_accesses,
)

__all__ = [
    "CanonicalizePass", "canonicalize",
    "CSEPass", "eliminate_common_subexpressions",
    "SimplifyAffineIfPass", "simplify_affine_ifs",
    "AffineStoreForwardPass", "forward_stores",
    "SimplifyMemrefAccessPass", "simplify_memref_accesses",
]

"""The ``-cse`` pass: common-subexpression elimination for pure operations.

Two operations are equivalent when they have the same name, the same operand
values and the same attributes; the later one is replaced by the earlier one.
Only side-effect-free, region-free operations within the same block are
considered (memory accesses are handled by ``-simplify-memref-access``).
"""

from __future__ import annotations

from repro.dialects.arith import PURE_OPS
from repro.ir.block import Block
from repro.ir.operation import Operation
from repro.ir.pass_manager import FunctionPass
from repro.ir.pass_registry import register_pass
from repro.ir.rewrite import BlockScanPattern, GreedyRewriteDriver, PatternRewriter

#: Additional pure operations outside the arith dialect.
_EXTRA_PURE = {"affine.apply"}

#: Every op name the scan considers, resolved once (the scan's dispatch
#: bucket — one frozenset membership test per op instead of two).
_CSE_NAMES = frozenset(PURE_OPS) | frozenset(_EXTRA_PURE)


class CSEScanPattern(BlockScanPattern):
    """Linear per-block common-subexpression elimination."""

    op_names = _CSE_NAMES

    def scan_block(self, block: Block, rewriter: PatternRewriter) -> int:
        return _cse_block(block)


def eliminate_common_subexpressions(root: Operation) -> int:
    """Run CSE on every block nested under ``root``.  Returns #ops removed."""
    driver = GreedyRewriteDriver([CSEScanPattern()])
    driver.rewrite(root)
    return driver.num_block_rewrites


@register_pass("cse")
class CSEPass(FunctionPass):
    """Pass wrapper around :func:`eliminate_common_subexpressions`."""

    def run(self, op: Operation) -> None:
        eliminate_common_subexpressions(op)


def _cse_block(block: Block) -> int:
    removed = 0
    seen: dict[tuple, Operation] = {}
    for op in list(block.operations):
        if op.parent is not block:
            continue
        if op.name not in _CSE_NAMES:
            continue
        if op.regions or op.num_results != 1:
            continue
        key = _op_key(op)
        if key in seen:
            op.result().replace_all_uses_with(seen[key].result())
            op.erase()
            removed += 1
        else:
            seen[key] = op
    return removed


def _op_key(op: Operation) -> tuple:
    attrs = tuple(sorted((k, _hashable(v)) for k, v in op.attributes.items()))
    return (op.name, tuple(id(operand) for operand in op.operands), attrs)


def _hashable(value):
    if isinstance(value, (list, tuple)):
        return tuple(_hashable(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _hashable(v)) for k, v in value.items()))
    try:
        hash(value)
        return value
    except TypeError:
        return repr(value)

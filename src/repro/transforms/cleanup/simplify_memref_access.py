"""The ``-simplify-memref-access`` pass.

Folds identical memory accesses when no dependency conflict exists:

* a load whose address matches an earlier load in the same block, with no
  potentially conflicting store in between, reuses the earlier result;
* a store that is overwritten by a later store to the same address, with no
  intervening load of the buffer, is removed as dead.
"""

from __future__ import annotations

from repro.dialects.affine_ops import access_is_write, access_memref
from repro.ir.block import Block
from repro.ir.operation import Operation
from repro.ir.pass_manager import FunctionPass
from repro.ir.pass_registry import register_pass
from repro.ir.rewrite import BlockScanPattern, GreedyRewriteDriver, PatternRewriter
from repro.transforms.cleanup.store_forward import access_key

_ACCESS_OPS = {"affine.load", "affine.store", "memref.load", "memref.store"}


class MemrefAccessScanPattern(BlockScanPattern):
    """Linear per-block load folding + dead-store removal."""

    def scan_block(self, block: Block, rewriter: PatternRewriter) -> int:
        return _fold_loads(block) + _remove_dead_stores(block)


def simplify_memref_accesses(root: Operation) -> int:
    """Fold redundant accesses under ``root``.  Returns the number of ops removed."""
    driver = GreedyRewriteDriver([MemrefAccessScanPattern()])
    driver.rewrite(root)
    return driver.num_block_rewrites


@register_pass("simplify-memref-access")
class SimplifyMemrefAccessPass(FunctionPass):
    """Pass wrapper around :func:`simplify_memref_accesses`."""

    def run(self, op: Operation) -> None:
        simplify_memref_accesses(op)


def _touched_memrefs(op: Operation) -> set[int]:
    return {id(access_memref(inner)) for inner in op.walk() if inner.name in _ACCESS_OPS}


def _fold_loads(block: Block) -> int:
    removed = 0
    available: dict[tuple, Operation] = {}
    for op in list(block.operations):
        if op.parent is not block:
            continue
        if op.name not in _ACCESS_OPS:
            if op.regions:
                touched = _touched_memrefs(op)
                available = {key: load for key, load in available.items()
                             if key[0] not in touched}
            continue
        if access_is_write(op):
            memref_id = id(access_memref(op))
            available = {key: load for key, load in available.items()
                         if key[0] != memref_id}
            continue
        key = access_key(op)
        earlier = available.get(key)
        if earlier is not None:
            op.result().replace_all_uses_with(earlier.result())
            op.erase()
            removed += 1
        else:
            available[key] = op
    return removed


def _remove_dead_stores(block: Block) -> int:
    removed = 0
    pending: dict[tuple, Operation] = {}
    for op in list(block.operations):
        if op.parent is not block:
            continue
        if op.name not in _ACCESS_OPS:
            if op.regions:
                touched = _touched_memrefs(op)
                pending = {key: store for key, store in pending.items()
                           if key[0] not in touched}
            continue
        memref_id = id(access_memref(op))
        if access_is_write(op):
            key = access_key(op)
            earlier = pending.get(key)
            if earlier is not None:
                earlier.erase()
                removed += 1
            pending[key] = op
        else:
            # A load of the buffer makes every pending store to it observable.
            pending = {key: store for key, store in pending.items()
                       if key[0] != memref_id}
    return removed

"""The ``-simplify-memref-access`` pass.

Folds identical memory accesses when no dependency conflict exists:

* a load whose address matches an earlier load in the same block, with no
  potentially conflicting store in between, reuses the earlier result;
* a store that is overwritten by a later store to the same address, with no
  intervening load of the buffer, is removed as dead.
"""

from __future__ import annotations

from repro.dialects.affine_ops import access_is_write, access_memref
from repro.ir.block import Block
from repro.ir.operation import Operation
from repro.ir.pass_manager import FunctionPass
from repro.ir.pass_registry import register_pass
from repro.ir.rewrite import BlockScanPattern, GreedyRewriteDriver, PatternRewriter
from repro.transforms.cleanup.store_forward import ACCESS_OPS, access_key


class MemrefAccessScanPattern(BlockScanPattern):
    """Linear per-block load folding + dead-store removal."""

    op_names = ACCESS_OPS

    def scan_block(self, block: Block, rewriter: PatternRewriter) -> int:
        return _fold_loads(block) + _remove_dead_stores(block)


def simplify_memref_accesses(root: Operation) -> int:
    """Fold redundant accesses under ``root``.  Returns the number of ops removed."""
    driver = GreedyRewriteDriver([MemrefAccessScanPattern()])
    driver.rewrite(root)
    return driver.num_block_rewrites


@register_pass("simplify-memref-access")
class SimplifyMemrefAccessPass(FunctionPass):
    """Pass wrapper around :func:`simplify_memref_accesses`."""

    def run(self, op: Operation) -> None:
        simplify_memref_accesses(op)


def _touched_memrefs(op: Operation) -> set[int]:
    return {id(access_memref(inner)) for inner in op.walk() if inner.name in ACCESS_OPS}


def _fold_loads(block: Block) -> int:
    removed = 0
    # Available loads per exact address, bucketed by buffer: a store (or a
    # region op touching the buffer) invalidates its bucket with one O(1)
    # pop instead of rebuilding the whole map per write — the seed rebuild
    # was quadratic on exactly the unrolled load/store streams this pass
    # exists to clean up.
    available: dict[int, dict[tuple, Operation]] = {}
    for op in list(block.operations):
        if op.parent is not block:
            continue
        if op.name not in ACCESS_OPS:
            if op.regions:
                for memref_id in _touched_memrefs(op):
                    available.pop(memref_id, None)
            continue
        memref_id = id(access_memref(op))
        if access_is_write(op):
            available.pop(memref_id, None)
            continue
        key = access_key(op)
        loads = available.get(memref_id)
        if loads is None:
            loads = available[memref_id] = {}
        earlier = loads.get(key)
        if earlier is not None:
            op.result().replace_all_uses_with(earlier.result())
            op.erase()
            removed += 1
        else:
            loads[key] = op
    return removed


def _remove_dead_stores(block: Block) -> int:
    removed = 0
    # Pending (not-yet-observable) stores per exact address, bucketed by
    # buffer — same O(1) invalidation story as _fold_loads.
    pending: dict[int, dict[tuple, Operation]] = {}
    for op in list(block.operations):
        if op.parent is not block:
            continue
        if op.name not in ACCESS_OPS:
            if op.regions:
                for memref_id in _touched_memrefs(op):
                    pending.pop(memref_id, None)
            continue
        memref_id = id(access_memref(op))
        if access_is_write(op):
            key = access_key(op)
            stores = pending.get(memref_id)
            if stores is None:
                stores = pending[memref_id] = {}
            earlier = stores.get(key)
            if earlier is not None:
                earlier.erase()
                removed += 1
            stores[key] = op
        else:
            # A load of the buffer makes every pending store to it observable.
            pending.pop(memref_id, None)
    return removed

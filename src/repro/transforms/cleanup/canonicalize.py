"""The ``-canonicalize`` pass: constant folding, dead-code elimination and
trivial loop simplifications.

ScaleHLS leans on MLIR's canonicalizer between its own transforms to remove
the redundancies they leave behind; this pass plays that role for the
reproduction.  It iterates to a fixed point:

* fold arithmetic on constants and ``affine.apply`` of constants,
* erase side-effect-free operations whose results are unused,
* erase zero-trip loops and promote single-iteration loops,
* erase empty ``affine.if`` operations.
"""

from __future__ import annotations

from repro.dialects import arith
from repro.dialects.affine_ops import AffineForOp, AffineIfOp
from repro.ir.operation import Operation
from repro.ir.pass_manager import FunctionPass
from repro.ir.types import IndexType, IntegerType, index


def canonicalize(root: Operation, max_iterations: int = 64) -> bool:
    """Canonicalize everything nested under ``root``.  Returns True if changed."""
    changed_any = False
    for _ in range(max_iterations):
        changed = False
        changed |= _fold_constants(root)
        changed |= _simplify_loops(root)
        changed |= _erase_dead_ops(root)
        if not changed:
            return changed_any
        changed_any = True
    return changed_any


class CanonicalizePass(FunctionPass):
    """Pass wrapper around :func:`canonicalize`."""

    name = "canonicalize"

    def run(self, op: Operation) -> None:
        canonicalize(op)


# -- folding ---------------------------------------------------------------------------


_FOLDABLE_INT = {
    "arith.addi": lambda a, b: a + b,
    "arith.subi": lambda a, b: a - b,
    "arith.muli": lambda a, b: a * b,
    "arith.divsi": lambda a, b: int(a / b) if b != 0 else None,
    "arith.remsi": lambda a, b: a - b * int(a / b) if b != 0 else None,
}

_FOLDABLE_FLOAT = {
    "arith.addf": lambda a, b: a + b,
    "arith.subf": lambda a, b: a - b,
    "arith.mulf": lambda a, b: a * b,
    "arith.divf": lambda a, b: a / b if b != 0 else None,
    "arith.maxf": max,
}

_CMP_FUNCS = {
    "eq": lambda a, b: a == b, "ne": lambda a, b: a != b,
    "slt": lambda a, b: a < b, "sle": lambda a, b: a <= b,
    "sgt": lambda a, b: a > b, "sge": lambda a, b: a >= b,
    "olt": lambda a, b: a < b, "ole": lambda a, b: a <= b,
    "ogt": lambda a, b: a > b, "oge": lambda a, b: a >= b,
}


def _fold_constants(root: Operation) -> bool:
    changed = False
    for op in list(root.walk()):
        if op.parent is None or op is root:
            continue
        folded = _try_fold(op)
        if folded is None:
            continue
        constant = arith.ConstantOp(folded, op.result().type)
        op.parent.insert_before(op, constant)
        op.result().replace_all_uses_with(constant.result())
        op.erase()
        changed = True
    return changed


def _try_fold(op: Operation):
    if op.num_results != 1:
        return None
    if op.name in _FOLDABLE_INT or op.name in _FOLDABLE_FLOAT or op.name in (
            "arith.cmpi", "arith.cmpf"):
        values = [arith.constant_value(operand) for operand in op.operands]
        if any(value is None for value in values):
            return None
        if op.name in _FOLDABLE_INT:
            return _FOLDABLE_INT[op.name](int(values[0]), int(values[1]))
        if op.name in _FOLDABLE_FLOAT:
            return _FOLDABLE_FLOAT[op.name](float(values[0]), float(values[1]))
        predicate = op.get_attr("predicate")
        return 1 if _CMP_FUNCS[predicate](values[0], values[1]) else 0
    if op.name == "affine.apply":
        values = [arith.constant_value(operand) for operand in op.operands]
        if any(value is None for value in values):
            return None
        return op.get_attr("map").evaluate([int(v) for v in values])[0]
    if op.name == "arith.select":
        condition = arith.constant_value(op.operand(0))
        if condition is None:
            return None
        chosen = op.operand(1) if condition else op.operand(2)
        chosen_constant = arith.constant_value(chosen)
        return chosen_constant
    if op.name == "arith.index_cast":
        value = arith.constant_value(op.operand(0))
        return None if value is None else int(value)
    return None


# -- dead code ---------------------------------------------------------------------------


def _erase_dead_ops(root: Operation) -> bool:
    changed = False
    for op in list(root.walk_post_order()):
        if op is root or op.parent is None:
            continue
        if op.regions or op.has_side_effects():
            continue
        if op.num_results == 0:
            continue
        if any(result.has_uses() for result in op.results):
            continue
        op.erase()
        changed = True
    return changed


# -- loop simplifications --------------------------------------------------------------------


def _simplify_loops(root: Operation) -> bool:
    changed = False
    for op in list(root.walk_post_order()):
        if op.parent is None:
            continue
        if isinstance(op, AffineForOp):
            changed |= _simplify_for(op)
        elif isinstance(op, AffineIfOp):
            changed |= _erase_empty_if(op)
    return changed


def _simplify_for(loop: AffineForOp) -> bool:
    trip = loop.trip_count()
    if trip == 0:
        loop.drop_all_references()
        loop.parent.remove(loop)
        return True
    if trip == 1 and loop.has_constant_lower_bound():
        block = loop.parent
        constant = arith.ConstantOp(loop.constant_lower_bound, index)
        block.insert_before(loop, constant)
        loop.induction_variable.replace_all_uses_with(constant.result())
        anchor = loop
        for inner in list(loop.body.operations):
            if inner.name == "affine.yield":
                continue
            inner.detach()
            block.insert_after(anchor, inner)
            anchor = inner
        loop.erase()
        return True
    # Erase loops whose body is empty (e.g. after other simplifications).
    body_ops = [inner for inner in loop.body.operations if inner.name != "affine.yield"]
    if not body_ops:
        loop.erase()
        return True
    return False


def _erase_empty_if(if_op: AffineIfOp) -> bool:
    if if_op.results:
        return False
    then_empty = if_op.then_block.empty()
    else_empty = if_op.else_block is None or if_op.else_block.empty()
    if then_empty and else_empty:
        if_op.erase()
        return True
    return False

"""The ``-canonicalize`` pass: constant folding, dead-code elimination and
trivial loop simplifications.

ScaleHLS leans on MLIR's canonicalizer between its own transforms to remove
the redundancies they leave behind; this pass plays that role for the
reproduction.  The rewrites are expressed as :class:`RewritePattern` objects
applied by the greedy worklist driver, which — unlike the former full-module
fixpoint sweeps — only revisits operations whose operands actually changed:

* fold arithmetic on constants and ``affine.apply`` of constants,
* erase side-effect-free operations whose results are unused,
* erase zero-trip loops and promote single-iteration loops,
* erase empty ``affine.if`` operations.
"""

from __future__ import annotations

from typing import Optional

from repro.dialects import arith
from repro.dialects.affine_ops import AffineForOp, AffineIfOp
from repro.ir.operation import Operation
from repro.ir.pass_manager import FunctionPass
from repro.ir.pass_registry import register_pass
from repro.ir.rewrite import GreedyRewriteDriver, PatternRewriter, RewritePattern
from repro.ir.types import index


def canonicalize(root: Operation, max_iterations: int = 64,
                 strategy: Optional[str] = None) -> bool:
    """Canonicalize everything nested under ``root``.  Returns True if changed."""
    driver = GreedyRewriteDriver(canonicalization_patterns(),
                                 max_iterations=max_iterations, strategy=strategy)
    return driver.rewrite(root)


def canonicalization_patterns() -> list[RewritePattern]:
    """A fresh set of the canonicalization patterns (driver-agnostic).

    The fold pattern is instantiated once per foldable operation name so the
    driver's per-name dispatch skips it entirely on loads, stores and other
    never-foldable ops.
    """
    patterns: list[RewritePattern] = [
        FoldConstantsPattern(name) for name in _FOLDABLE_NAMES]
    patterns += [SimplifyAffineForPattern(), EraseEmptyAffineIfPattern(),
                 EraseDeadOpPattern()]
    return patterns


@register_pass("canonicalize")
class CanonicalizePass(FunctionPass):
    """Pass wrapper around :func:`canonicalize`."""

    def run(self, op: Operation) -> None:
        canonicalize(op)


# -- folding ---------------------------------------------------------------------------


_FOLDABLE_INT = {
    "arith.addi": lambda a, b: a + b,
    "arith.subi": lambda a, b: a - b,
    "arith.muli": lambda a, b: a * b,
    "arith.divsi": lambda a, b: int(a / b) if b != 0 else None,
    "arith.remsi": lambda a, b: a - b * int(a / b) if b != 0 else None,
}

_FOLDABLE_FLOAT = {
    "arith.addf": lambda a, b: a + b,
    "arith.subf": lambda a, b: a - b,
    "arith.mulf": lambda a, b: a * b,
    "arith.divf": lambda a, b: a / b if b != 0 else None,
    "arith.maxf": max,
}

_CMP_FUNCS = {
    "eq": lambda a, b: a == b, "ne": lambda a, b: a != b,
    "slt": lambda a, b: a < b, "sle": lambda a, b: a <= b,
    "sgt": lambda a, b: a > b, "sge": lambda a, b: a >= b,
    "olt": lambda a, b: a < b, "ole": lambda a, b: a <= b,
    "ogt": lambda a, b: a > b, "oge": lambda a, b: a >= b,
}

#: Every op name :func:`_try_fold` can possibly fold.
_FOLDABLE_NAMES = tuple(sorted(
    set(_FOLDABLE_INT) | set(_FOLDABLE_FLOAT)
    | {"arith.cmpi", "arith.cmpf", "affine.apply", "arith.select",
       "arith.index_cast"}))


class FoldConstantsPattern(RewritePattern):
    """Replace constant-operand arithmetic with a materialized constant."""

    benefit = 3

    def __init__(self, op_name: Optional[str] = None):
        self.op_name = op_name

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> bool:
        folded = _try_fold(op)
        if folded is None:
            return False
        constant = rewriter.insert(arith.ConstantOp(folded, op.result().type))
        rewriter.replace_op(op, constant.result())
        return True


def _try_fold(op: Operation):
    if op.num_results != 1:
        return None
    if op.name in _FOLDABLE_INT or op.name in _FOLDABLE_FLOAT or op.name in (
            "arith.cmpi", "arith.cmpf"):
        values = [arith.constant_value(operand) for operand in op.operands]
        if any(value is None for value in values):
            return None
        if op.name in _FOLDABLE_INT:
            return _FOLDABLE_INT[op.name](int(values[0]), int(values[1]))
        if op.name in _FOLDABLE_FLOAT:
            return _FOLDABLE_FLOAT[op.name](float(values[0]), float(values[1]))
        predicate = op.get_attr("predicate")
        return 1 if _CMP_FUNCS[predicate](values[0], values[1]) else 0
    if op.name == "affine.apply":
        values = [arith.constant_value(operand) for operand in op.operands]
        if any(value is None for value in values):
            return None
        return op.get_attr("map").evaluate([int(v) for v in values])[0]
    if op.name == "arith.select":
        condition = arith.constant_value(op.operand(0))
        if condition is None:
            return None
        chosen = op.operand(1) if condition else op.operand(2)
        chosen_constant = arith.constant_value(chosen)
        return chosen_constant
    if op.name == "arith.index_cast":
        value = arith.constant_value(op.operand(0))
        return None if value is None else int(value)
    return None


# -- dead code ---------------------------------------------------------------------------


class EraseDeadOpPattern(RewritePattern):
    """Erase side-effect-free, region-free operations with no used results."""

    benefit = 1

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> bool:
        if op.regions or op.has_side_effects():
            return False
        if op.num_results == 0:
            return False
        if any(result.has_uses() for result in op.results):
            return False
        rewriter.erase_op(op)
        return True


# -- loop simplifications --------------------------------------------------------------------


class SimplifyAffineForPattern(RewritePattern):
    """Erase zero-trip and empty loops; inline single-iteration loops."""

    op_name = "affine.for"
    benefit = 2

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> bool:
        if not isinstance(op, AffineForOp):
            return False
        loop = op
        trip = loop.trip_count()
        if trip == 0:
            rewriter.remove_op(loop)
            return True
        if trip == 1 and loop.has_constant_lower_bound():
            block = loop.parent
            constant = rewriter.insert(
                arith.ConstantOp(loop.constant_lower_bound, index))
            rewriter.replace_all_uses(loop.induction_variable, constant.result())
            anchor = loop
            for inner in list(loop.body.operations):
                if inner.name == "affine.yield":
                    continue
                inner.detach()
                block.insert_after(anchor, inner)
                anchor = inner
                rewriter.enqueue(inner)
            rewriter.erase_op(loop)
            return True
        # Erase loops whose body is empty (e.g. after other simplifications).
        body_ops = [inner for inner in loop.body.operations
                    if inner.name != "affine.yield"]
        if not body_ops:
            rewriter.erase_op(loop)
            return True
        return False


class EraseEmptyAffineIfPattern(RewritePattern):
    """Erase result-less ``affine.if`` ops whose branches are both empty."""

    op_name = "affine.if"
    benefit = 2

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> bool:
        if not isinstance(op, AffineIfOp) or op.results:
            return False
        then_empty = op.then_block.empty()
        else_empty = op.else_block is None or op.else_block.empty()
        if then_empty and else_empty:
            rewriter.erase_op(op)
            return True
        return False

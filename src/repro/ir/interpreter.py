"""A reference interpreter for loop-level IR.

The interpreter executes functions containing affine/scf control flow, memref
accesses and arith operations on NumPy arrays.  It exists for testing: a
transform is semantics-preserving exactly when the interpreted outputs before
and after the transform match.  (It is an executable specification, not a
fast simulator.)
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.ir.module import ModuleOp
from repro.ir.operation import Operation
from repro.ir.types import FloatType, IntegerType, MemRefType
from repro.ir.value import Value


class InterpreterError(Exception):
    """Raised when the interpreter meets an operation it cannot execute."""


class Interpreter:
    """Executes functions of a module on concrete NumPy values."""

    def __init__(self, module: Optional[ModuleOp] = None):
        self.module = module

    # -- public API ----------------------------------------------------------------------

    def run_function(self, func_op: Operation, arguments: Sequence) -> list:
        """Execute ``func_op`` with the given argument values.

        Array arguments are modified in place (matching HLS pointer
        semantics); the function's returned values are also returned.
        """
        block = func_op.region(0).front
        if len(arguments) != len(block.arguments):
            raise InterpreterError(
                f"expected {len(block.arguments)} arguments, got {len(arguments)}")
        environment: dict[Value, object] = {}
        for argument, value in zip(block.arguments, arguments):
            environment[argument] = value
        return self._run_block(block, environment)

    def run(self, func_name: str, arguments: Sequence) -> list:
        if self.module is None:
            raise InterpreterError("no module attached to the interpreter")
        func_op = self.module.lookup(func_name)
        if func_op is None:
            raise InterpreterError(f"function {func_name!r} not found")
        return self.run_function(func_op, arguments)

    # -- execution ------------------------------------------------------------------------

    def _run_block(self, block, environment: dict) -> list:
        for op in block.operations:
            result = self._run_op(op, environment)
            if op.name == "func.return":
                return result if result is not None else []
        return []

    def _run_op(self, op: Operation, environment: dict):
        name = op.name
        if name == "arith.constant":
            environment[op.result()] = op.get_attr("value")
        elif name in _BINARY_FUNCTIONS:
            lhs = environment[op.operand(0)]
            rhs = environment[op.operand(1)]
            environment[op.result()] = _BINARY_FUNCTIONS[name](lhs, rhs)
        elif name in ("arith.cmpi", "arith.cmpf"):
            lhs = environment[op.operand(0)]
            rhs = environment[op.operand(1)]
            environment[op.result()] = _CMP_FUNCTIONS[op.get_attr("predicate")](lhs, rhs)
        elif name == "arith.select":
            condition = environment[op.operand(0)]
            environment[op.result()] = (environment[op.operand(1)] if condition
                                        else environment[op.operand(2)])
        elif name in ("arith.index_cast",):
            environment[op.result()] = int(environment[op.operand(0)])
        elif name == "arith.sitofp":
            environment[op.result()] = float(environment[op.operand(0)])
        elif name == "memref.alloc":
            memref_type: MemRefType = op.result().type
            dtype = np.float32 if isinstance(memref_type.element_type, FloatType) else np.int64
            environment[op.result()] = np.zeros(memref_type.shape, dtype=dtype)
        elif name == "memref.dealloc":
            pass
        elif name == "memref.copy":
            environment[op.operand(1)][...] = environment[op.operand(0)]
        elif name in ("memref.load", "affine.load"):
            buffer, indices = self._resolve_access(op, environment)
            environment[op.result()] = buffer[indices]
        elif name in ("memref.store", "affine.store"):
            buffer, indices = self._resolve_access(op, environment)
            buffer[indices] = environment[op.operand(0)]
        elif name == "affine.apply":
            operands = [int(environment[v]) for v in op.operands]
            environment[op.result()] = op.get_attr("map").evaluate(operands)[0]
        elif name == "affine.for":
            self._run_affine_for(op, environment)
        elif name == "scf.for":
            self._run_scf_for(op, environment)
        elif name == "affine.if":
            self._run_affine_if(op, environment)
        elif name == "scf.if":
            branch = op.then_block if environment[op.operand(0)] else op.else_block
            if branch is not None:
                self._run_block(branch, environment)
        elif name == "func.call":
            self._run_call(op, environment)
        elif name == "func.return":
            return [environment[operand] for operand in op.operands]
        elif name in ("affine.yield", "scf.yield"):
            pass
        else:
            raise InterpreterError(f"cannot interpret operation {name!r}")
        return None

    def _resolve_access(self, op: Operation, environment: dict):
        if op.name in ("memref.load", "affine.load"):
            memref_value, index_values = op.operand(0), op.operands[1:]
        else:
            memref_value, index_values = op.operand(1), op.operands[2:]
        buffer = environment[memref_value]
        indices = [int(environment[value]) for value in index_values]
        access_map = op.get_attr("map")
        if access_map is not None:
            indices = list(access_map.evaluate(indices))
        memref_type: MemRefType = memref_value.type
        if access_map is not None and len(indices) != len(memref_type.shape):
            indices = indices[: len(memref_type.shape)]
        return buffer, tuple(indices)

    def _run_affine_for(self, op, environment: dict) -> None:
        lower_operands = [int(environment[v]) for v in op.lb_operands]
        upper_operands = [int(environment[v]) for v in op.ub_operands]
        lower = max(op.lower_map.evaluate(lower_operands))
        upper = min(op.upper_map.evaluate(upper_operands))
        for induction_value in range(lower, upper, op.step):
            environment[op.induction_variable] = induction_value
            self._run_block(op.body, environment)

    def _run_scf_for(self, op, environment: dict) -> None:
        lower = int(environment[op.operand(0)])
        upper = int(environment[op.operand(1)])
        step = int(environment[op.operand(2)])
        for induction_value in range(lower, upper, step):
            environment[op.induction_variable] = induction_value
            self._run_block(op.body, environment)

    def _run_affine_if(self, op, environment: dict) -> None:
        operands = [int(environment[v]) for v in op.operands]
        if op.condition.contains(operands):
            self._run_block(op.then_block, environment)
        elif op.else_block is not None:
            self._run_block(op.else_block, environment)

    def _run_call(self, op, environment: dict) -> None:
        if self.module is None:
            raise InterpreterError("cannot interpret func.call without a module")
        callee = self.module.lookup(op.get_attr("callee"))
        if callee is None:
            raise InterpreterError(f"callee {op.get_attr('callee')!r} not found")
        arguments = [environment[operand] for operand in op.operands]
        results = self.run_function(callee, arguments)
        for result_value, concrete in zip(op.results, results):
            environment[result_value] = concrete


_BINARY_FUNCTIONS = {
    "arith.addf": lambda a, b: a + b,
    "arith.subf": lambda a, b: a - b,
    "arith.mulf": lambda a, b: a * b,
    "arith.divf": lambda a, b: a / b,
    "arith.maxf": lambda a, b: max(a, b),
    "arith.addi": lambda a, b: a + b,
    "arith.subi": lambda a, b: a - b,
    "arith.muli": lambda a, b: a * b,
    "arith.divsi": lambda a, b: int(a / b),
    "arith.remsi": lambda a, b: a - b * int(a / b),
}

_CMP_FUNCTIONS = {
    "eq": lambda a, b: a == b, "ne": lambda a, b: a != b,
    "slt": lambda a, b: a < b, "sle": lambda a, b: a <= b,
    "sgt": lambda a, b: a > b, "sge": lambda a, b: a >= b,
    "olt": lambda a, b: a < b, "ole": lambda a, b: a <= b,
    "ogt": lambda a, b: a > b, "oge": lambda a, b: a >= b,
}


def interpret_kernel(module: ModuleOp, func_name: str, arrays: dict[str, np.ndarray],
                     scalars: Optional[dict[str, float]] = None) -> dict[str, np.ndarray]:
    """Convenience wrapper: run a C-front-end kernel on named arrays.

    ``arrays`` / ``scalars`` are keyed by the original C parameter names (the
    ``arg_names`` attribute recorded by the front-end).  Returns the array
    dictionary after execution (arrays are updated in place).
    """
    scalars = scalars or {}
    func_op = module.lookup(func_name)
    if func_op is None:
        raise InterpreterError(f"function {func_name!r} not found")
    names = func_op.get_attr("arg_names") or []
    arguments = []
    for position, argument in enumerate(func_op.region(0).front.arguments):
        name = names[position] if position < len(names) else f"arg{position}"
        if isinstance(argument.type, MemRefType):
            arguments.append(arrays[name])
        else:
            arguments.append(scalars.get(name, 0.0))
    Interpreter(module).run_function(func_op, arguments)
    return arrays

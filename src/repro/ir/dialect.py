"""Dialect registry.

A dialect is a namespace of operation names.  The registry is a light
bookkeeping layer: it lets the verifier and tests confirm that an operation
name belongs to a registered dialect and gives the printer/emitter a place to
look up per-op metadata.
"""

from __future__ import annotations

from typing import Callable, Optional


class Dialect:
    """A namespace of operations."""

    def __init__(self, namespace: str, description: str = ""):
        self.namespace = namespace
        self.description = description
        self.operations: dict[str, type] = {}

    def register_op(self, mnemonic: str, op_class: type) -> None:
        self.operations[mnemonic] = op_class

    def op_class(self, mnemonic: str) -> Optional[type]:
        return self.operations.get(mnemonic)

    def __repr__(self) -> str:
        return f"<Dialect {self.namespace} ({len(self.operations)} ops)>"


class DialectRegistry:
    """Global registry of dialects."""

    def __init__(self):
        self._dialects: dict[str, Dialect] = {}

    def register(self, dialect: Dialect) -> Dialect:
        self._dialects[dialect.namespace] = dialect
        return dialect

    def get_or_create(self, namespace: str, description: str = "") -> Dialect:
        if namespace not in self._dialects:
            self._dialects[namespace] = Dialect(namespace, description)
        return self._dialects[namespace]

    def get(self, namespace: str) -> Optional[Dialect]:
        return self._dialects.get(namespace)

    def is_registered_op(self, op_name: str) -> bool:
        if "." not in op_name:
            return False
        namespace, mnemonic = op_name.split(".", 1)
        dialect = self._dialects.get(namespace)
        return dialect is not None and mnemonic in dialect.operations

    @property
    def dialects(self) -> dict[str, Dialect]:
        return dict(self._dialects)


#: The process-wide dialect registry.
registry = DialectRegistry()


def register_operation(dialect_namespace: str, mnemonic: str) -> Callable[[type], type]:
    """Class decorator registering an operation class with a dialect."""

    def decorator(op_class: type) -> type:
        dialect = registry.get_or_create(dialect_namespace)
        dialect.register_op(mnemonic, op_class)
        op_class.OP_NAME = f"{dialect_namespace}.{mnemonic}"
        return op_class

    return decorator

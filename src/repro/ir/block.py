"""Blocks: sequential lists of operations with block arguments."""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Optional, Sequence

from repro.ir.value import BlockArgument

if TYPE_CHECKING:  # pragma: no cover
    from repro.ir.operation import Operation
    from repro.ir.region import Region
    from repro.ir.types import Type


class Block:
    """A straight-line sequence of operations.

    Blocks own their operations and may declare block arguments; loop bodies
    use a block argument for the induction variable.
    """

    def __init__(self, arg_types: Sequence["Type"] = ()):
        self.parent: Optional["Region"] = None
        self.arguments: list[BlockArgument] = []
        self.operations: list["Operation"] = []
        for arg_type in arg_types:
            self.add_argument(arg_type)

    # -- arguments ---------------------------------------------------------------

    def add_argument(self, type: "Type") -> BlockArgument:
        arg = BlockArgument(type, self, len(self.arguments))
        self.arguments.append(arg)
        return arg

    def erase_argument(self, index: int) -> None:
        arg = self.arguments[index]
        if arg.has_uses():
            raise ValueError("cannot erase a block argument that still has uses")
        del self.arguments[index]
        for i, remaining in enumerate(self.arguments):
            remaining.index = i

    # -- operation list management -------------------------------------------------

    def append(self, op: "Operation") -> "Operation":
        """Append an operation to the end of the block."""
        self._take(op)
        self.operations.append(op)
        return op

    def insert(self, index: int, op: "Operation") -> "Operation":
        self._take(op)
        self.operations.insert(index, op)
        return op

    def insert_all(self, index: int, ops: Sequence["Operation"]) -> None:
        """Insert many operations at ``index`` in one splice (O(n + k))."""
        ops = list(ops)
        for op in ops:
            self._take(op)
        self.operations[index:index] = ops

    def insert_before(self, anchor: "Operation", op: "Operation") -> "Operation":
        return self.insert(self.index_of(anchor), op)

    def insert_after(self, anchor: "Operation", op: "Operation") -> "Operation":
        return self.insert(self.index_of(anchor) + 1, op)

    def remove(self, op: "Operation") -> None:
        """Detach an operation from this block without erasing it."""
        self.operations.remove(op)
        op.parent = None

    def index_of(self, op: "Operation") -> int:
        for i, candidate in enumerate(self.operations):
            if candidate is op:
                return i
        raise ValueError(f"operation {op.name} is not in this block")

    def _take(self, op: "Operation") -> None:
        if op.parent is not None:
            op.parent.remove(op)
        op.parent = self

    # -- queries ------------------------------------------------------------------

    @property
    def terminator(self) -> Optional["Operation"]:
        """The last operation of the block if it is a terminator, else None."""
        if not self.operations:
            return None
        last = self.operations[-1]
        return last if last.is_terminator() else None

    @property
    def parent_op(self) -> Optional["Operation"]:
        return self.parent.parent if self.parent is not None else None

    def empty(self) -> bool:
        return not self.operations

    def __iter__(self) -> Iterator["Operation"]:
        return iter(list(self.operations))

    def __len__(self) -> int:
        return len(self.operations)

    def walk(self) -> Iterator["Operation"]:
        for op in list(self.operations):
            yield from op.walk()

    def __repr__(self) -> str:
        return f"Block({len(self.arguments)} args, {len(self.operations)} ops)"

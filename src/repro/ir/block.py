"""Blocks: intrusively linked sequences of operations with block arguments.

Operations are stored as an **intrusive doubly-linked list**: every
:class:`~repro.ir.operation.Operation` carries ``_prev``/``_next`` links and a
monotone integer order key, the representation production MLIR uses for its
op lists.  This makes the block mutations the transforms hammer in hot loops
constant time:

* ``append`` / ``prepend`` / ``insert_before`` / ``insert_after`` /
  ``remove`` are O(1) pointer splices,
* ``insert_all_after`` / ``insert_all_before`` splice k operations in O(k),
* ``Operation.is_before_in_block`` compares the two order keys in O(1).

Order keys are assigned with a large stride (so midpoint insertion almost
never collides) and lazily renumbered in O(n) when a gap is exhausted —
amortized O(1) per insertion.  Python integers are unbounded, so appends and
prepends can never exhaust a gap; only repeated insertion into the *same*
interior gap triggers a renumber.

``block.operations`` stays the public surface: it returns a lightweight
list-like view over the links (iteration, ``len``, indexing from either end,
slices, ``reversed``, membership), so read-only callers did not have to
churn.  ``index_of`` is also kept but is O(n) — mutating callers should use
the anchor-based primitives instead.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Optional, Sequence, Union

from repro.ir.value import BlockArgument

if TYPE_CHECKING:  # pragma: no cover
    from repro.ir.operation import Operation
    from repro.ir.region import Region
    from repro.ir.types import Type

#: Order-key distance between adjacent operations after (re)numbering.  A
#: fresh gap of 2**20 tolerates ~20 midpoint insertions at the same position
#: before the block's order index is invalidated; appends/prepends extend
#: past the ends and never invalidate (Python ints are unbounded).
_ORDER_STRIDE = 1 << 20


class OperationListView:
    """Read-only, list-like view over a block's linked operations.

    Supports the access patterns the old plain-list attribute served:
    iteration, ``len``, integer indexing (O(1) at either end, O(min(i, n-i))
    in the middle), slicing, ``reversed`` and identity membership.

    Iteration walks the links directly and pre-fetches the successor, so
    detaching or erasing the op *currently visited* is safe; any other
    mutation during iteration (like mutating a plain list mid-loop) needs a
    ``list(...)`` snapshot first — ``for op in block`` takes that snapshot
    automatically.
    """

    __slots__ = ("_block",)

    def __init__(self, block: "Block"):
        self._block = block

    def __iter__(self) -> Iterator["Operation"]:
        op = self._block._first
        while op is not None:
            # Fetch the successor before yielding so callers may detach or
            # erase the op they are currently visiting.
            successor = op._next
            yield op
            op = successor

    def __reversed__(self) -> Iterator["Operation"]:
        op = self._block._last
        while op is not None:
            predecessor = op._prev
            yield op
            op = predecessor

    def __len__(self) -> int:
        return self._block._num_ops

    def __bool__(self) -> bool:
        return self._block._num_ops > 0

    def __contains__(self, op) -> bool:
        return getattr(op, "parent", None) is self._block

    def __getitem__(self, key: Union[int, slice]):
        if isinstance(key, slice):
            return list(self)[key]
        return self._block._op_at(key)

    def index(self, op: "Operation") -> int:
        return self._block.index_of(op)

    def __eq__(self, other) -> bool:
        if isinstance(other, OperationListView):
            other = list(other)
        if isinstance(other, (list, tuple)):
            return len(other) == len(self) and all(
                mine is theirs for mine, theirs in zip(self, other))
        return NotImplemented

    def __repr__(self) -> str:
        return f"OperationListView({len(self)} ops)"


class Block:
    """A straight-line sequence of operations.

    Blocks own their operations and may declare block arguments; loop bodies
    use a block argument for the induction variable.
    """

    __slots__ = ("parent", "arguments", "_first", "_last", "_num_ops",
                 "_order_valid", "_view")

    def __init__(self, arg_types: Sequence["Type"] = ()):
        self.parent: Optional["Region"] = None
        self.arguments: list[BlockArgument] = []
        self._first: Optional["Operation"] = None
        self._last: Optional["Operation"] = None
        self._num_ops = 0
        #: False when an interior insertion exhausted its order-key gap; the
        #: next ordering query renumbers lazily (amortized O(1) per insert).
        self._order_valid = True
        self._view = OperationListView(self)
        for arg_type in arg_types:
            self.add_argument(arg_type)

    # -- arguments ---------------------------------------------------------------

    def add_argument(self, type: "Type") -> BlockArgument:
        arg = BlockArgument(type, self, len(self.arguments))
        self.arguments.append(arg)
        return arg

    def erase_argument(self, index: int) -> None:
        arg = self.arguments[index]
        if arg.has_uses():
            raise ValueError("cannot erase a block argument that still has uses")
        del self.arguments[index]
        for i, remaining in enumerate(self.arguments):
            remaining.index = i

    # -- operation list management -------------------------------------------------

    @property
    def operations(self) -> OperationListView:
        """List-like view of the operations, in block order."""
        return self._view

    @property
    def first_op(self) -> Optional["Operation"]:
        return self._first

    @property
    def last_op(self) -> Optional["Operation"]:
        return self._last

    def append(self, op: "Operation") -> "Operation":
        """Append an operation to the end of the block (O(1))."""
        self._take(op)
        self._link(op, self._last, None)
        return op

    def prepend(self, op: "Operation") -> "Operation":
        """Insert an operation at the start of the block (O(1))."""
        self._take(op)
        self._link(op, None, self._first)
        return op

    def insert(self, index: int, op: "Operation") -> "Operation":
        """Insert ``op`` at a positional ``index`` (O(min(i, n-i)) to locate).

        Kept for compatibility; prefer the anchor-based O(1) primitives
        (:meth:`insert_before` / :meth:`insert_after` / :meth:`prepend`).
        """
        # Detach first so the index refers to positions *after* removal,
        # matching the seed list semantics for moves within the same block.
        self._take(op)
        anchor = self._op_at(index) if index < self._num_ops else None
        self._link(op, self._last if anchor is None else anchor._prev, anchor)
        return op

    def insert_before(self, anchor: "Operation", op: "Operation") -> "Operation":
        """Insert ``op`` immediately before ``anchor`` (O(1))."""
        self._check_anchor(anchor)
        if op is anchor:
            raise ValueError("cannot insert an operation relative to itself")
        self._take(op)
        self._link(op, anchor._prev, anchor)
        return op

    def insert_after(self, anchor: "Operation", op: "Operation") -> "Operation":
        """Insert ``op`` immediately after ``anchor`` (O(1))."""
        self._check_anchor(anchor)
        if op is anchor:
            raise ValueError("cannot insert an operation relative to itself")
        self._take(op)
        self._link(op, anchor, anchor._next)
        return op

    def insert_all(self, index: int, ops: Sequence["Operation"]) -> None:
        """Insert many operations at ``index`` in one splice (O(i + k))."""
        ops = list(ops)
        for op in ops:  # detach first, as in insert()
            self._take(op)
        anchor = self._op_at(index) if index < self._num_ops else None
        self._splice_before(anchor, ops)

    def insert_all_before(self, anchor: "Operation", ops: Sequence["Operation"]) -> None:
        """Splice ``ops`` immediately before ``anchor`` (O(k))."""
        self._check_anchor(anchor)
        self._splice_before(anchor, self._take_all(anchor, ops))

    def insert_all_after(self, anchor: "Operation", ops: Sequence["Operation"]) -> None:
        """Splice ``ops`` immediately after ``anchor`` (O(k))."""
        self._check_anchor(anchor)
        ops = self._take_all(anchor, ops)
        # Resolve the successor after the takes so ops already following the
        # anchor in this block do not stand in for the splice position.
        self._splice_before(anchor._next, ops)

    def remove(self, op: "Operation") -> None:
        """Detach an operation from this block without erasing it (O(1))."""
        if op.parent is not self:
            raise ValueError(f"operation {op.name} is not in this block")
        self._unlink(op)
        op.parent = None

    def index_of(self, op: "Operation") -> int:
        """Positional index of ``op`` (O(n) — prefer the anchor primitives)."""
        if op.parent is not self:
            raise ValueError(f"operation {op.name} is not in this block")
        index = 0
        current = self._first
        while current is not None:
            if current is op:
                return index
            index += 1
            current = current._next
        raise ValueError(f"operation {op.name} is not in this block")

    def _take(self, op: "Operation") -> None:
        if op.parent is not None:
            op.parent.remove(op)
        op.parent = self

    def _check_anchor(self, anchor: "Operation") -> None:
        if anchor.parent is not self:
            raise ValueError(f"anchor operation {anchor.name} is not in this block")

    # -- linking internals ----------------------------------------------------------

    def _link(self, op: "Operation", prev_op: Optional["Operation"],
              next_op: Optional["Operation"]) -> None:
        """Splice ``op`` between ``prev_op`` and ``next_op`` and key its order."""
        op._prev = prev_op
        op._next = next_op
        if prev_op is not None:
            prev_op._next = op
        else:
            self._first = op
        if next_op is not None:
            next_op._prev = op
        else:
            self._last = op
        self._num_ops += 1
        self._assign_order(op, prev_op, next_op)

    def _unlink(self, op: "Operation") -> None:
        prev_op, next_op = op._prev, op._next
        if prev_op is not None:
            prev_op._next = next_op
        else:
            self._first = next_op
        if next_op is not None:
            next_op._prev = prev_op
        else:
            self._last = prev_op
        op._prev = op._next = None
        self._num_ops -= 1

    def _take_all(self, anchor: "Operation",
                  ops: Sequence["Operation"]) -> list["Operation"]:
        ops = list(ops)
        # Validate before detaching anything: a partial take would leave
        # earlier ops parented to this block but unlinked.
        if any(op is anchor for op in ops):
            raise ValueError("cannot splice an operation relative to itself")
        for op in ops:
            self._take(op)
        return ops

    def _splice_before(self, anchor: Optional["Operation"],
                       ops: Sequence["Operation"]) -> None:
        """Link already-taken ``ops`` before ``anchor`` (None = at the end)."""
        for op in ops:
            self._link(op, self._last if anchor is None else anchor._prev, anchor)

    def _assign_order(self, op: "Operation", prev_op: Optional["Operation"],
                      next_op: Optional["Operation"]) -> None:
        if prev_op is None and next_op is None:
            op._order = 0
            return
        if next_op is None:
            op._order = prev_op._order + _ORDER_STRIDE
            return
        if prev_op is None:
            op._order = next_op._order - _ORDER_STRIDE
            return
        midpoint = (prev_op._order + next_op._order) // 2
        if midpoint == prev_op._order:
            # Gap exhausted: take a (duplicate) key now and defer the O(n)
            # renumber to the next ordering query, so a burst of insertions
            # at one position stays O(1) each instead of renumbering every
            # ~20 inserts (O(n^2) in total).
            self._order_valid = False
        op._order = midpoint

    def ensure_order(self) -> None:
        """Make order keys strictly increasing, renumbering if stale (O(n))."""
        if not self._order_valid:
            self._renumber()

    def _renumber(self) -> None:
        """Re-key every operation with fresh gaps."""
        order = 0
        current = self._first
        while current is not None:
            current._order = order
            order += _ORDER_STRIDE
            current = current._next
        self._order_valid = True

    # -- pickling --------------------------------------------------------------------
    #
    # Operations strip their links when pickled (see Operation.__getstate__)
    # so serializing a block never recurses one stack frame per op; the block
    # persists its operations as a flat list and relinks them on load.

    def __getstate__(self) -> dict:
        return {"parent": self.parent, "arguments": self.arguments,
                "_op_list": list(self.operations)}

    def __setstate__(self, state: dict) -> None:
        ops = state.pop("_op_list")
        for key, value in state.items():
            setattr(self, key, value)
        self._first = self._last = None
        self._num_ops = 0
        self._order_valid = True
        self._view = OperationListView(self)
        order = 0
        previous = None
        for op in ops:  # parents were restored with the ops; only relink
            op._prev = previous
            op._next = None
            op._order = order
            if previous is None:
                self._first = op
            else:
                previous._next = op
            order += _ORDER_STRIDE
            previous = op
            self._num_ops += 1
        self._last = previous

    # -- queries ------------------------------------------------------------------

    @property
    def terminator(self) -> Optional["Operation"]:
        """The last operation of the block if it is a terminator, else None."""
        last = self._last
        return last if last is not None and last.is_terminator() else None

    @property
    def parent_op(self) -> Optional["Operation"]:
        return self.parent.parent if self.parent is not None else None

    def empty(self) -> bool:
        return self._num_ops == 0

    def __iter__(self) -> Iterator["Operation"]:
        # Snapshot semantics (like the seed's list copy): safe against any
        # mutation while iterating.  `block.operations` iterates the links
        # directly and only tolerates detaching the op being visited.
        return iter(list(self._view))

    def __len__(self) -> int:
        return self._num_ops

    def walk(self) -> Iterator["Operation"]:
        for op in list(self.operations):
            yield from op.walk()

    def __repr__(self) -> str:
        return f"Block({len(self.arguments)} args, {self._num_ops} ops)"

    def _op_at(self, index: int) -> "Operation":
        """The operation at positional ``index`` (negative indices supported)."""
        size = self._num_ops
        if index < 0:
            index += size
        if not 0 <= index < size:
            raise IndexError("operation index out of range")
        if index < size - index:
            current = self._first
            for _ in range(index):
                current = current._next
        else:
            current = self._last
            for _ in range(size - 1 - index):
                current = current._prev
        return current

"""Traversal and def-use utilities shared by passes."""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterator, Optional

from repro.ir.value import BlockArgument, OpResult, Value

if TYPE_CHECKING:  # pragma: no cover
    from repro.ir.block import Block
    from repro.ir.operation import Operation


def walk(op: "Operation", callback: Callable[["Operation"], None]) -> None:
    """Apply ``callback`` to ``op`` and every nested operation (pre-order)."""
    for nested in op.walk():
        callback(nested)


def collect(op: "Operation", predicate: Callable[["Operation"], bool]) -> list["Operation"]:
    """All nested operations (including ``op``) satisfying ``predicate``."""
    return [nested for nested in op.walk() if predicate(nested)]


def ops_with_name(op: "Operation", name: str) -> list["Operation"]:
    return collect(op, lambda candidate: candidate.name == name)


def defining_op(value: Value) -> Optional["Operation"]:
    """The operation defining ``value`` (None for block arguments)."""
    return value.owner if isinstance(value, OpResult) else None


def is_defined_by(value: Value, op_name: str) -> bool:
    op = defining_op(value)
    return op is not None and op.name == op_name


def enclosing_block_chain(op: "Operation") -> Iterator["Block"]:
    """Blocks enclosing ``op``, innermost first."""
    block = op.parent
    while block is not None:
        yield block
        parent_op = block.parent_op
        block = parent_op.parent if parent_op is not None else None


def values_defined_above(block: "Block") -> set[Value]:
    """Values visible inside ``block`` that are defined outside of it.

    Walks backwards from each enclosing anchor over the intrusive ``_prev``
    links, so exactly the operations *before* the anchor are visited — the
    seed implementation scanned every enclosing block from the front,
    identity-comparing its way to the anchor.  For membership tests of a few
    known values prefer :func:`is_defined_above`, which answers in
    O(nesting depth) without materializing this set at all.
    """
    visible: set[Value] = set()
    parent_op = block.parent_op
    while parent_op is not None:
        enclosing = parent_op.parent
        if enclosing is None:
            break
        visible.update(enclosing.arguments)
        op = parent_op.prev_op
        while op is not None:
            visible.update(op.results)
            op = op.prev_op
        parent_op = enclosing.parent_op
    return visible


def is_defined_above(value: Value, block: "Block") -> bool:
    """True when ``value`` is visible inside ``block`` but defined outside it.

    The order-key fast path of :func:`values_defined_above`: walk the
    enclosing blocks up to the value's defining block and make one O(1)
    ``is_before_in_block`` comparison there — O(nesting depth) total,
    independent of how many operations the enclosing blocks hold.
    """
    defining_block = value.owner if isinstance(value, BlockArgument) \
        else value.owner.parent
    if defining_block is None or defining_block is block:
        return False
    ancestor = block.parent_op
    current = ancestor.parent if ancestor is not None else None
    while current is not None:
        if current is defining_block:
            if isinstance(value, BlockArgument):
                return True
            definer = value.owner
            return definer is not ancestor and definer.is_before_in_block(ancestor)
        parent_op = current.parent_op
        if parent_op is None:
            return False
        ancestor = parent_op
        current = parent_op.parent
    return False


def uses_outside(op: "Operation") -> list[Value]:
    """Results of ``op`` (or of its nested ops) that are used outside ``op``."""
    inside = set(op.walk())
    escaping: list[Value] = []
    for nested in op.walk():
        for result in nested.results:
            if any(use.owner not in inside for use in result.uses):
                escaping.append(result)
    return escaping


def topological_order(ops: list["Operation"]) -> list["Operation"]:
    """Order ``ops`` so that defs come before uses (ops must share a block)."""
    index = {op: i for i, op in enumerate(ops)}
    produced = {result: op for op in ops for result in op.results}
    ordered: list["Operation"] = []
    visiting: set[int] = set()
    visited: set[int] = set()

    def visit(op: "Operation") -> None:
        key = index[op]
        if key in visited:
            return
        if key in visiting:
            raise ValueError("cycle detected in def-use graph")
        visiting.add(key)
        for operand in op.operands:
            producer = produced.get(operand)
            if producer is not None:
                visit(producer)
        visiting.discard(key)
        visited.add(key)
        ordered.append(op)

    for op in ops:
        visit(op)
    return ordered

"""Traversal and def-use utilities shared by passes."""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterator, Optional

from repro.ir.value import BlockArgument, OpResult, Value

if TYPE_CHECKING:  # pragma: no cover
    from repro.ir.block import Block
    from repro.ir.operation import Operation


def walk(op: "Operation", callback: Callable[["Operation"], None]) -> None:
    """Apply ``callback`` to ``op`` and every nested operation (pre-order)."""
    for nested in op.walk():
        callback(nested)


def collect(op: "Operation", predicate: Callable[["Operation"], bool]) -> list["Operation"]:
    """All nested operations (including ``op``) satisfying ``predicate``."""
    return [nested for nested in op.walk() if predicate(nested)]


def ops_with_name(op: "Operation", name: str) -> list["Operation"]:
    return collect(op, lambda candidate: candidate.name == name)


def defining_op(value: Value) -> Optional["Operation"]:
    """The operation defining ``value`` (None for block arguments)."""
    return value.owner if isinstance(value, OpResult) else None


def is_defined_by(value: Value, op_name: str) -> bool:
    op = defining_op(value)
    return op is not None and op.name == op_name


def enclosing_block_chain(op: "Operation") -> Iterator["Block"]:
    """Blocks enclosing ``op``, innermost first."""
    block = op.parent
    while block is not None:
        yield block
        parent_op = block.parent_op
        block = parent_op.parent if parent_op is not None else None


def values_defined_above(block: "Block") -> set[Value]:
    """Values visible inside ``block`` that are defined outside of it."""
    visible: set[Value] = set()
    parent_op = block.parent_op
    while parent_op is not None:
        enclosing = parent_op.parent
        if enclosing is None:
            break
        visible.update(enclosing.arguments)
        for op in enclosing.operations:
            if op is parent_op:
                break
            visible.update(op.results)
        parent_op = enclosing.parent_op
    return visible


def uses_outside(op: "Operation") -> list[Value]:
    """Results of ``op`` (or of its nested ops) that are used outside ``op``."""
    inside = set(op.walk())
    escaping: list[Value] = []
    for nested in op.walk():
        for result in nested.results:
            if any(use.owner not in inside for use in result.uses):
                escaping.append(result)
    return escaping


def topological_order(ops: list["Operation"]) -> list["Operation"]:
    """Order ``ops`` so that defs come before uses (ops must share a block)."""
    index = {op: i for i, op in enumerate(ops)}
    produced = {result: op for op in ops for result in op.results}
    ordered: list["Operation"] = []
    visiting: set[int] = set()
    visited: set[int] = set()

    def visit(op: "Operation") -> None:
        key = index[op]
        if key in visited:
            return
        if key in visiting:
            raise ValueError("cycle detected in def-use graph")
        visiting.add(key)
        for operand in op.operands:
            producer = produced.get(operand)
            if producer is not None:
                visit(producer)
        visiting.discard(key)
        visited.add(key)
        ordered.append(op)

    for op in ops:
        visit(op)
    return ordered

"""The top-level ``builtin.module`` operation."""

from __future__ import annotations

from typing import Optional

from repro.ir.block import Block
from repro.ir.operation import Operation


class ModuleOp(Operation):
    """A container for functions (and other top-level operations)."""

    __slots__ = ()

    OP_NAME = "builtin.module"

    def __init__(self, name: str = ""):
        super().__init__(self.OP_NAME, attributes={"sym_name": name} if name else {},
                         num_regions=1)
        self.region(0).add_block(Block())

    @property
    def body(self) -> Block:
        return self.region(0).front

    def functions(self) -> list[Operation]:
        """Every ``func.func`` directly contained in the module."""
        return [op for op in self.body.operations if op.name == "func.func"]

    def lookup(self, symbol_name: str) -> Optional[Operation]:
        """Find a function by its ``sym_name`` attribute."""
        for op in self.body.operations:
            if op.get_attr("sym_name") == symbol_name:
                return op
        return None

    def append(self, op: Operation) -> Operation:
        return self.body.append(op)

    def clone_module(self) -> "ModuleOp":
        """Deep-copy the whole module."""
        return self.clone()

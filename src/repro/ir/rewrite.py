"""A small greedy pattern-rewrite driver.

Canonicalization-style passes register :class:`RewritePattern` objects; the
driver repeatedly walks the IR applying patterns until a fixed point is
reached (or an iteration limit trips, which indicates a non-converging
pattern set).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional, Sequence

from repro.ir.builder import Builder, InsertionPoint
from repro.ir.value import Value

if TYPE_CHECKING:  # pragma: no cover
    from repro.ir.operation import Operation


class PatternRewriter(Builder):
    """Builder handed to patterns; records whether the IR changed."""

    def __init__(self):
        super().__init__()
        self.changed = False
        self._erased: set[int] = set()

    def replace_op(self, op: "Operation", new_values: Sequence[Value] | Value) -> None:
        """Replace all results of ``op`` with ``new_values`` and erase it."""
        if isinstance(new_values, Value):
            new_values = [new_values]
        if len(new_values) != len(op.results):
            raise ValueError("replacement value count mismatch")
        for result, new_value in zip(op.results, new_values):
            result.replace_all_uses_with(new_value)
        self.erase_op(op)

    def erase_op(self, op: "Operation") -> None:
        self._erased.add(id(op))
        op.erase()
        self.changed = True

    def was_erased(self, op: "Operation") -> bool:
        return id(op) in self._erased

    def notify_changed(self) -> None:
        self.changed = True


class RewritePattern:
    """Base class of rewrite patterns.

    Subclasses set :attr:`op_name` (or None to match every operation) and
    implement :meth:`match_and_rewrite`, returning True when they changed the
    IR.
    """

    op_name: Optional[str] = None
    benefit: int = 1

    def match_and_rewrite(self, op: "Operation", rewriter: PatternRewriter) -> bool:
        raise NotImplementedError


def apply_patterns_greedily(root: "Operation", patterns: Iterable[RewritePattern],
                            max_iterations: int = 32) -> bool:
    """Apply ``patterns`` to every op nested under ``root`` until fixpoint.

    Returns True if anything changed.  ``root`` itself is not rewritten.
    """
    patterns = sorted(patterns, key=lambda p: -p.benefit)
    changed_any = False
    for _ in range(max_iterations):
        rewriter = PatternRewriter()
        _apply_once(root, patterns, rewriter)
        if not rewriter.changed:
            return changed_any
        changed_any = True
    raise RuntimeError(
        f"pattern application did not converge after {max_iterations} iterations")


def _apply_once(root: "Operation", patterns: Sequence[RewritePattern],
                rewriter: PatternRewriter) -> None:
    # Walk a snapshot so erasures during iteration are safe; skip ops that
    # were erased by an earlier pattern in this sweep.
    for op in list(root.walk()):
        if op is root or rewriter.was_erased(op):
            continue
        if op.parent is None:
            continue
        for pattern in patterns:
            if pattern.op_name is not None and op.name != pattern.op_name:
                continue
            rewriter.insertion_point = InsertionPoint.before(op)
            if pattern.match_and_rewrite(op, rewriter):
                rewriter.notify_changed()
                break
            if rewriter.was_erased(op):
                break

"""The greedy pattern-rewrite driver.

Canonicalization-style passes register :class:`RewritePattern` objects; the
:class:`GreedyRewriteDriver` applies them until a fixed point is reached.
Two strategies are available:

* ``"worklist"`` (the default) seeds a worklist with every *matchable* op
  under the root once and afterwards only revisits operations whose
  operands, users or position actually changed — the hot-path friendly
  driver the cleanup passes run once per DSE evaluation.  The worklist is
  *deduplicating* and *program-ordered*: the seed pass is a plain pre-order
  list (no per-op cost beyond the walk), while revisits enter a heap keyed
  by the op's position (block order keys along the ancestor chain, from
  PR 3's intrusive links) and interleave with the seeds in program order.
  An op enqueued N times during a constant-folding storm is visited once,
  after every operation that precedes it — by the time it pops, its
  operands have already been folded; erasure-driven revisits of a value's
  definer are deferred to the next drain generation, so a many-user
  constant is visited once per generation, not once per erased user.
* ``"sweep"`` is the legacy full-module fixpoint: repeatedly walk *all* ops
  until one sweep makes no change.  It is kept for A/B benchmarking
  (``bench_fig7_scalability.py --pass-timing``) and as an oracle in the
  equivalence tests — both strategies converge to the same IR.

Pattern dispatch is *bucketed*: at construction the driver groups its
patterns into ``dict[op name -> tuple of patterns]`` (patterns with
``op_name = None`` are merged into every bucket, benefit order preserved),
so matching an op is a single dict lookup instead of a scan over the whole
pattern list.  Per-bucket hit/miss counts feed ``--print-pass-timing``.

Linear per-block analyses (CSE, store forwarding, ...) plug in as
:class:`BlockScanPattern` objects; the driver runs each scan exactly once
per block in walk order, matching the single-scan semantics those passes
always had.  Scans declare the op names they dispatch on (``op_names``) and
use the same bucket idea internally (per-name/per-buffer dict dispatch, see
``transforms/cleanup/``).
"""

from __future__ import annotations

import contextlib
import heapq
from typing import TYPE_CHECKING, Iterable, Optional, Sequence

from repro import obs
from repro.ir.builder import Builder, InsertionPoint
from repro.ir.value import OpResult, Value

if TYPE_CHECKING:  # pragma: no cover
    from repro.ir.block import Block
    from repro.ir.operation import Operation

#: The process-wide default rewrite strategy ("worklist" or "sweep").
_DEFAULT_STRATEGY = "worklist"

_STRATEGIES = ("worklist", "sweep")


def set_rewrite_strategy(strategy: str) -> str:
    """Set the default driver strategy; returns the previous one."""
    global _DEFAULT_STRATEGY
    if strategy not in _STRATEGIES:
        raise ValueError(f"unknown rewrite strategy {strategy!r}; "
                         f"choose from {_STRATEGIES}")
    previous = _DEFAULT_STRATEGY
    _DEFAULT_STRATEGY = strategy
    return previous


def get_rewrite_strategy() -> str:
    return _DEFAULT_STRATEGY


# -- pattern-level instrumentation ---------------------------------------------------------


class PatternStatsCollector:
    """Accumulates per-pattern hit/miss counts across driver runs in its scope.

    A *hit* is one successful ``match_and_rewrite`` application (or, for
    :class:`BlockScanPattern`, one applied rewrite); a *miss* is one attempt
    that matched nothing.  The driver reports into every active collector at
    the end of each ``rewrite()`` — the CLI's ``--print-pass-timing`` wraps
    whole flows in one collector to print a pattern table next to the pass
    timing table.

    ``bucket_stats`` aggregates the same counts per *dispatch bucket* (op
    name): how often ops of each name were offered to their bucket and how
    often one of its patterns applied.
    """

    def __init__(self):
        #: Pattern class name -> [hits, misses].
        self.stats: dict[str, list[int]] = {}
        #: Dispatch bucket (op name) -> [hits, misses].
        self.bucket_stats: dict[str, list[int]] = {}

    def add(self, pattern_name: str, hits: int, misses: int) -> None:
        entry = self.stats.setdefault(pattern_name, [0, 0])
        entry[0] += hits
        entry[1] += misses

    def add_bucket(self, op_name: str, hits: int, misses: int) -> None:
        entry = self.bucket_stats.setdefault(op_name, [0, 0])
        entry[0] += hits
        entry[1] += misses

    def total_hits(self) -> int:
        return sum(hits for hits, _ in self.stats.values())

    def report(self) -> str:
        from repro.obs.report import format_pattern_stats

        return format_pattern_stats(self.stats, self.bucket_stats)


#: Collectors currently receiving stats from every GreedyRewriteDriver run.
_ACTIVE_STATS_COLLECTORS: list[PatternStatsCollector] = []


@contextlib.contextmanager
def collect_pattern_stats():
    """Collect hit/miss counts of every pattern applied inside the block."""
    collector = PatternStatsCollector()
    _ACTIVE_STATS_COLLECTORS.append(collector)
    try:
        yield collector
    finally:
        _ACTIVE_STATS_COLLECTORS.remove(collector)


class PatternRewriter(Builder):
    """Builder handed to patterns; records changes and feeds the worklist.

    Every structured mutation (``insert``, ``replace_op``, ``erase_op``,
    ``replace_all_uses``, ``enqueue``) notifies the owning driver so only
    genuinely affected operations are revisited.
    """

    def __init__(self, driver: "Optional[GreedyRewriteDriver]" = None):
        super().__init__()
        self.changed = False
        #: Erased operations, held by (identity-hashed) object reference:
        #: storing bare id() ints would let CPython reuse a freed op's id for
        #: a newly created op, falsely marking it erased.
        self._erased: set = set()
        self._driver = driver

    # -- mutation API ----------------------------------------------------------------------

    def insert(self, op: "Operation") -> "Operation":
        inserted = super().insert(op)
        self.changed = True
        if self._driver is not None:
            self._driver.enqueue_tree(inserted)
        return inserted

    def replace_op(self, op: "Operation", new_values: Sequence[Value] | Value) -> None:
        """Replace all results of ``op`` with ``new_values`` and erase it."""
        if isinstance(new_values, Value):
            new_values = [new_values]
        if len(new_values) != len(op.results):
            raise ValueError("replacement value count mismatch")
        if self._driver is not None:
            for result in op.results:
                self._driver.enqueue_users(result)
        for result, new_value in zip(op.results, new_values):
            result.replace_all_uses_with(new_value)
        self.erase_op(op)

    def erase_op(self, op: "Operation") -> None:
        self._notify_erasure(op)
        self._mark_erased(op)
        op.erase()
        self.changed = True

    def remove_op(self, op: "Operation") -> None:
        """Remove ``op`` from its block without the no-uses check of ``erase``."""
        self._notify_erasure(op)
        self._mark_erased(op)
        op.drop_all_references()
        op.parent.remove(op)
        self.changed = True

    def _notify_erasure(self, op: "Operation") -> None:
        # Re-enqueue the defining ops of every operand referenced anywhere in
        # the erased subtree — a value whose only users lived inside the
        # subtree just became dead.  Definers inside the subtree are enqueued
        # too but skipped at pop (they are marked erased).
        if self._driver is None:
            return
        if op.regions:
            for nested in op.walk():
                self._driver.defer_operand_definers(nested)
        else:
            self._driver.defer_operand_definers(op)

    def _mark_erased(self, op: "Operation") -> None:
        # Mark the whole subtree: descendants of an erased region op keep
        # their parent links, so the driver relies on this to skip them in
        # O(1) instead of walking ancestor chains per popped op.
        if op.regions:
            for nested in op.walk():
                self._erased.add(nested)
        else:
            self._erased.add(op)

    def replace_all_uses(self, old: Value, new: Value) -> None:
        """RAUW that re-enqueues every (former) user of ``old``."""
        if self._driver is not None:
            self._driver.enqueue_users(old)
        old.replace_all_uses_with(new)
        self.changed = True

    def enqueue(self, op: "Operation") -> None:
        """Ask the driver to (re)visit ``op`` — e.g. after moving it."""
        if self._driver is not None:
            self._driver.enqueue(op)

    # -- bookkeeping -----------------------------------------------------------------------

    def was_erased(self, op: "Operation") -> bool:
        return op in self._erased

    def notify_changed(self) -> None:
        self.changed = True


class RewritePattern:
    """Base class of rewrite patterns.

    Subclasses set :attr:`op_name` (or None to match every operation) and
    implement :meth:`match_and_rewrite`, returning True when they changed the
    IR.
    """

    op_name: Optional[str] = None
    benefit: int = 1

    def match_and_rewrite(self, op: "Operation", rewriter: PatternRewriter) -> bool:
        raise NotImplementedError


class BlockScanPattern:
    """A linear per-block rewrite (CSE-style scoped analyses).

    The driver calls :meth:`scan_block` exactly once per block, in the same
    ``root.walk()`` order the standalone cleanup passes always used.
    Implementations return the number of rewrites applied.

    :attr:`op_names` declares the op names the scan dispatches on (None for
    "any"): subclasses point it at the very frozenset their scan loop tests
    membership against — the scan-internal analogue of the driver's
    per-name buckets, and the declarative surface the tests pin.
    """

    op_names: Optional[frozenset] = None

    def scan_block(self, block: "Block", rewriter: PatternRewriter) -> int:
        raise NotImplementedError


class GreedyRewriteDriver:
    """Applies op patterns to a fixed point and block scans once each."""

    def __init__(self, patterns: Iterable, max_iterations: int = 32,
                 strategy: Optional[str] = None):
        patterns = list(patterns)
        for pattern in patterns:
            if not isinstance(pattern, (RewritePattern, BlockScanPattern)):
                raise TypeError(
                    f"expected RewritePattern or BlockScanPattern instances, "
                    f"got {pattern!r} (did you pass the class instead of an "
                    f"instance?)")
        self.op_patterns: list[RewritePattern] = sorted(
            (p for p in patterns if isinstance(p, RewritePattern)),
            key=lambda p: -p.benefit)
        self.block_patterns: list[BlockScanPattern] = [
            p for p in patterns if isinstance(p, BlockScanPattern)]
        self.max_iterations = max_iterations
        self.strategy = strategy or _DEFAULT_STRATEGY
        self.num_block_rewrites = 0
        #: Pattern class name -> [hits, misses] accumulated over rewrite() calls.
        self.pattern_stats: dict[str, list[int]] = {}
        #: Dispatch bucket (op name) -> [hits, misses] accumulated likewise.
        self.bucket_stats: dict[str, list[int]] = {}
        #: Per-op visit counts of the last worklist run (op -> pops that
        #: reached pattern matching); pins revisit storms in tests.
        self.visit_counts: dict["Operation", int] = {}
        self._run_stats: dict[str, list[int]] = {}
        self._run_bucket_stats: dict[str, list[int]] = {}
        self._stats_entries: dict[int, list[int]] = {}
        #: The deduplicating worklist: a heap of (program-order key, seq, op)
        #: plus the id-set of pending ops (ids only of ops the heap or the
        #: deferred list strongly reference, so freed-id reuse cannot alias
        #: a pending entry).  ``_deferred`` holds erasure-driven definer
        #: revisits until the heap drains (see :meth:`defer_operand_definers`).
        self._heap: list = []
        self._pending: set[int] = set()
        self._deferred: list = []
        self._seq = 0
        #: Per-run cache of block-level order-key prefixes.
        self._block_prefix: dict = {}
        self._root: Optional[Operation] = None
        # -- bucketed dispatch, built once at construction ---------------------------------
        #: Patterns with op_name None, benefit-ordered (the bucket of any op
        #: name no pattern singled out).
        self._generic: tuple[RewritePattern, ...] = tuple(
            p for p in self.op_patterns if p.op_name is None)
        #: op name -> benefit-ordered patterns (generic patterns merged in).
        named = {p.op_name for p in self.op_patterns if p.op_name is not None}
        self._buckets: dict[str, tuple[RewritePattern, ...]] = {
            name: tuple(p for p in self.op_patterns
                        if p.op_name is None or p.op_name == name)
            for name in named}

    # -- worklist management ---------------------------------------------------------------

    def enqueue(self, op: "Operation") -> None:
        if id(op) in self._pending:
            return
        if not (op.name in self._buckets or self._generic):
            return  # no pattern could ever match: keep it out of the queue
        self._pending.add(id(op))
        self._seq += 1
        heapq.heappush(self._heap, (self._order_key(op), self._seq, op))

    def enqueue_tree(self, op: "Operation") -> None:
        for nested in op.walk():
            self.enqueue(nested)

    def enqueue_users(self, value: Value) -> None:
        uses = value._uses
        if len(uses) == 1:
            # Single-use fast path: skip the `users` dedup-list build — the
            # common case by far (SSA chains), and `enqueue` dedups via
            # `_pending` anyway, so the dedup list only ever saved re-checks.
            self.enqueue(next(iter(uses.values())).owner)
            return
        for use in uses.values():
            self.enqueue(use.owner)

    def defer_operand_definers(self, op: "Operation") -> None:
        """Defer the definers of ``op``'s operands to the next drain generation.

        Erasing an op may leave its operands' definers dead, so they must be
        revisited — but *immediately* re-enqueueing them is the revisit
        storm: a value with N users (a shared constant, a memref) sits
        earliest in program order, so it would pop and miss once per erased
        user.  Deferred definers only enter the heap when the current
        generation drains, deduplicating the whole storm into one visit.
        """
        pending = self._pending
        deferred = self._deferred
        buckets = self._buckets
        generic = self._generic
        for use in op._operands:
            value = use.value
            if isinstance(value, OpResult):
                definer = value.operation
                if id(definer) not in pending \
                        and (definer.name in buckets or generic):
                    pending.add(id(definer))
                    deferred.append(definer)

    def _order_key(self, op: "Operation") -> tuple:
        """The op's program-order position under the run root.

        ``key(op) = key(parent op) + (region index, block index, op order
        key)``, so an ancestor's key is a strict prefix of its descendants'
        and tuple comparison is pre-order program order.  Block-level
        prefixes are cached per run (every op of a block shares one); keys
        are captured at enqueue time — an op moved while pending keeps its
        old position in the queue (deterministic, and revisits re-key it).
        """
        block = op.parent
        if block is None:
            return ()  # detached: sorts first, skipped at processing
        if not block._order_valid:
            block._renumber()
        prefix = self._block_prefix.get(block)
        if prefix is None:
            prefix = self._compute_block_prefix(block)
            self._block_prefix[block] = prefix
        return prefix + (op._order,)

    def _compute_block_prefix(self, block: "Block") -> tuple:
        region = block.parent
        parent_op = region.parent if region is not None else None
        if parent_op is None or parent_op is self._root \
                or parent_op.parent is None:
            return ()
        region_index = 0 if len(parent_op.regions) == 1 \
            else parent_op.regions.index(region)
        block_index = 0 if len(region.blocks) == 1 \
            else region.blocks.index(block)
        return self._order_key(parent_op) + (region_index, block_index)

    # -- execution -------------------------------------------------------------------------

    def rewrite(self, root: "Operation") -> bool:
        """Apply every pattern under ``root`` to a fixed point.

        Returns True when anything changed.  Raises RuntimeError when the
        pattern set fails to converge (a pattern keeps reporting changes
        beyond the iteration budget).
        """
        self._root = root
        self._run_stats = {}
        self._run_bucket_stats = {}
        # Per-instance stat entries resolved once (id lookup in the hot loop
        # instead of type().__name__ hashing per attempt).
        self._stats_entries = {
            id(pattern): self._run_stats.setdefault(type(pattern).__name__, [0, 0])
            for pattern in (*self.op_patterns, *self.block_patterns)}
        changed = False
        for pattern in self.block_patterns:
            changed |= self._run_block_scans(root, pattern)
        if self.op_patterns:
            if self.strategy == "sweep":
                changed |= self._run_sweeps(root)
            else:
                changed |= self._run_worklist(root)
        for name, (hits, misses) in self._run_stats.items():
            entry = self.pattern_stats.setdefault(name, [0, 0])
            entry[0] += hits
            entry[1] += misses
            for collector in _ACTIVE_STATS_COLLECTORS:
                collector.add(name, hits, misses)
        for name, (hits, misses) in self._run_bucket_stats.items():
            entry = self.bucket_stats.setdefault(name, [0, 0])
            entry[0] += hits
            entry[1] += misses
            for collector in _ACTIVE_STATS_COLLECTORS:
                collector.add_bucket(name, hits, misses)
        # One registry merge per rewrite() run (no per-attempt overhead).
        if obs.active() is not None:
            obs.add_pattern_stats(self._run_stats, self._run_bucket_stats)
        return changed

    def _count(self, pattern, matched: bool) -> None:
        self._stats_entries[id(pattern)][0 if matched else 1] += 1

    def _bucket_entry(self, op_name: str) -> list[int]:
        entry = self._run_bucket_stats.get(op_name)
        if entry is None:
            entry = self._run_bucket_stats[op_name] = [0, 0]
        return entry

    def _matching_patterns(self, op: "Operation") -> tuple[RewritePattern, ...]:
        """The op's dispatch bucket: one dict lookup, built at construction."""
        return self._buckets.get(op.name, self._generic)

    # -- worklist strategy -----------------------------------------------------------------

    def _run_worklist(self, root: "Operation") -> bool:
        rewriter = PatternRewriter(driver=self)
        self._heap = []
        self._pending = set()
        self._deferred = []
        self._seq = 0
        self._block_prefix = {}
        self.visit_counts = {}
        buckets = self._buckets
        generic = self._generic
        # The seed pass: every matchable op once, in program (pre-)order —
        # a plain list advanced by index, no keys and no heap involved.
        # Only *revisits* pay for the priority structure.
        seeds = [op for op in root.walk()
                 if op is not root and (op.name in buckets or generic)]
        pending = self._pending = {id(op) for op in seeds}
        # Non-convergence guard: a healthy run applies at most a few rewrites
        # per op; max_iterations bounds the rewrites-per-op ratio like the
        # sweep count bounded full walks.
        budget = max(1, self.max_iterations) * max(1, len(seeds))
        rewrites = 0
        changed = False
        heap = self._heap
        deferred = self._deferred
        visits = self.visit_counts
        pop = heapq.heappop
        push = heapq.heappush
        index = 0
        num_seeds = len(seeds)
        next_seed_key = None  # computed only while revisits are queued
        while True:
            if heap:
                if index < num_seeds:
                    if next_seed_key is None:
                        next_seed_key = self._order_key(seeds[index])
                    if heap[0][0] <= next_seed_key:
                        op = pop(heap)[2]
                    else:
                        op = seeds[index]
                        index += 1
                        next_seed_key = None
                else:
                    op = pop(heap)[2]
            elif index < num_seeds:
                op = seeds[index]
                index += 1
                next_seed_key = None
            elif deferred:
                # Next generation: the deferred (erasure-driven) revisits,
                # re-keyed at their current positions, again program-ordered.
                for revisit in deferred:
                    self._seq += 1
                    push(heap, (self._order_key(revisit), self._seq, revisit))
                del deferred[:]
                continue
            else:
                break
            pending.discard(id(op))
            # Erased region ops have their whole subtree marked erased by the
            # rewriter, so attachment is the O(1) check — no ancestor walks.
            if op.parent is None or rewriter.was_erased(op):
                continue
            patterns = buckets.get(op.name, generic)
            if not patterns:
                continue
            visits[op] = visits.get(op, 0) + 1
            bucket_entry = self._bucket_entry(op.name)
            rewriter.insertion_point = InsertionPoint.before(op)
            for pattern in patterns:
                rewriter.changed = False
                if pattern.match_and_rewrite(op, rewriter) or rewriter.changed:
                    self._count(pattern, True)
                    bucket_entry[0] += 1
                    rewrites += 1
                    changed = True
                    if rewrites > budget:
                        raise RuntimeError(
                            f"pattern application did not converge after "
                            f"{rewrites} rewrites "
                            f"(budget {budget}, max_iterations={self.max_iterations})")
                    # Give other patterns (and this one again) a later shot
                    # at whatever the rewrite left behind.
                    if op.parent is not None and not rewriter.was_erased(op):
                        self.enqueue(op)
                    break
                self._count(pattern, False)
                if rewriter.was_erased(op):
                    break
            else:
                bucket_entry[1] += 1
        return changed

    def max_visits(self) -> int:
        """The most times any single op was visited in the last worklist run."""
        return max(self.visit_counts.values(), default=0)

    # -- legacy sweep strategy ---------------------------------------------------------------

    def _run_sweeps(self, root: "Operation") -> bool:
        changed_any = False
        for _ in range(self.max_iterations):
            rewriter = PatternRewriter(driver=None)
            self._sweep_once(root, rewriter)
            if not rewriter.changed:
                return changed_any
            changed_any = True
        raise RuntimeError(
            f"pattern application did not converge after "
            f"{self.max_iterations} iterations")

    def _sweep_once(self, root: "Operation", rewriter: PatternRewriter) -> None:
        # Walk a snapshot so erasures during iteration are safe; skip ops that
        # were erased by an earlier pattern in this sweep.
        for op in list(root.walk()):
            if op is root or rewriter.was_erased(op):
                continue
            if op.parent is None:
                continue
            patterns = self._matching_patterns(op)
            if not patterns:
                continue
            bucket_entry = self._bucket_entry(op.name)
            for pattern in patterns:
                rewriter.insertion_point = InsertionPoint.before(op)
                if pattern.match_and_rewrite(op, rewriter):
                    self._count(pattern, True)
                    bucket_entry[0] += 1
                    rewriter.notify_changed()
                    break
                self._count(pattern, False)
                if rewriter.was_erased(op):
                    break
            else:
                bucket_entry[1] += 1

    # -- block scans -------------------------------------------------------------------------

    def _run_block_scans(self, root: "Operation", pattern: BlockScanPattern) -> bool:
        rewriter = PatternRewriter(driver=None)
        total = 0
        # Hits are applied rewrites; misses are scanned blocks yielding none.
        entry = self._run_stats.setdefault(type(pattern).__name__, [0, 0])
        for op in list(root.walk()):
            for region in op.regions:
                for block in region.blocks:
                    applied = pattern.scan_block(block, rewriter)
                    total += applied
                    entry[0 if applied else 1] += applied or 1
        self.num_block_rewrites += total
        return total > 0


def apply_patterns_greedily(root: "Operation", patterns: Iterable,
                            max_iterations: int = 32,
                            strategy: Optional[str] = None) -> bool:
    """Apply ``patterns`` to every op nested under ``root`` until fixpoint.

    Returns True if anything changed.  ``root`` itself is not rewritten.
    ``strategy`` overrides the process default ("worklist" unless changed
    via :func:`set_rewrite_strategy`).
    """
    driver = GreedyRewriteDriver(patterns, max_iterations=max_iterations,
                                 strategy=strategy)
    return driver.rewrite(root)

"""Operations: the minimal unit of code in the IR.

An operation has a name (``dialect.mnemonic``), typed operands and results,
an attribute dictionary, and an ordered list of regions.  Dialect-specific
operation classes subclass :class:`Operation` and keep all of their state in
the base fields, which lets :meth:`Operation.clone` reproduce any operation
without knowing its concrete class.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator, Optional, Sequence

from repro.ir.region import Region
from repro.ir.value import OpResult, Value

if TYPE_CHECKING:  # pragma: no cover
    from repro.ir.block import Block
    from repro.ir.types import Type

#: Operation names that terminate a block.
TERMINATOR_OPS = {
    "func.return",
    "affine.yield",
    "scf.yield",
    "cf.br",
    "cf.cond_br",
}

#: Operation names with memory or other side effects (never dead-code eliminated).
SIDE_EFFECT_OPS = {
    "memref.store",
    "affine.store",
    "memref.copy",
    "memref.dealloc",
    "func.call",
    "func.return",
    "affine.yield",
    "scf.yield",
    "graph.output",
}


class Operation:
    """A generic operation."""

    def __init__(self, name: str, operands: Sequence[Value] = (),
                 result_types: Sequence["Type"] = (),
                 attributes: Optional[dict[str, Any]] = None,
                 num_regions: int = 0):
        self.name = name
        self.attributes: dict[str, Any] = dict(attributes or {})
        self.parent: Optional["Block"] = None
        #: Intrusive block-list links and order key, owned by the parent
        #: Block (see repro.ir.block): _prev/_next chain the ops of a block
        #: and _order is a monotone key making "is A before B" an O(1)
        #: integer comparison.
        self._prev: Optional["Operation"] = None
        self._next: Optional["Operation"] = None
        self._order = 0
        self._operands: list[Value] = []
        self.results: list[OpResult] = []
        self.regions: list[Region] = []
        for operand in operands:
            self.append_operand(operand)
        for i, result_type in enumerate(result_types):
            self.results.append(OpResult(result_type, self, i))
        for _ in range(num_regions):
            self.regions.append(Region(self))

    # -- operand management --------------------------------------------------------

    @property
    def operands(self) -> tuple[Value, ...]:
        return tuple(self._operands)

    @property
    def num_operands(self) -> int:
        return len(self._operands)

    def operand(self, index: int) -> Value:
        return self._operands[index]

    def append_operand(self, value: Value) -> None:
        if not isinstance(value, Value):
            raise TypeError(f"operand of {self.name} must be a Value, got {value!r}")
        index = len(self._operands)
        self._operands.append(value)
        value.add_use(self, index)

    def set_operand(self, index: int, value: Value) -> None:
        old = self._operands[index]
        old.remove_use(self, index)
        self._operands[index] = value
        value.add_use(self, index)

    def set_operands(self, values: Sequence[Value]) -> None:
        self.drop_operand_uses()
        self._operands = []
        for value in values:
            self.append_operand(value)

    def erase_operand(self, index: int) -> None:
        self._operands[index].remove_use(self, index)
        del self._operands[index]
        # Re-index the remaining uses.
        for i in range(index, len(self._operands)):
            value = self._operands[i]
            for use in value.uses:
                if use.owner is self and use.index == i + 1:
                    use.index = i
                    break

    def drop_operand_uses(self) -> None:
        for index, value in enumerate(self._operands):
            try:
                value.remove_use(self, index)
            except ValueError:
                pass

    def replaces_uses_of(self, old: Value, new: Value) -> None:
        for i, operand in enumerate(self._operands):
            if operand is old:
                self.set_operand(i, new)

    # -- results ---------------------------------------------------------------------

    @property
    def num_results(self) -> int:
        return len(self.results)

    def result(self, index: int = 0) -> OpResult:
        return self.results[index]

    # -- regions ---------------------------------------------------------------------

    def add_region(self) -> Region:
        region = Region(self)
        self.regions.append(region)
        return region

    def region(self, index: int = 0) -> Region:
        return self.regions[index]

    @property
    def num_regions(self) -> int:
        return len(self.regions)

    # -- structural properties ----------------------------------------------------------

    @property
    def dialect(self) -> str:
        return self.name.split(".", 1)[0] if "." in self.name else ""

    def is_terminator(self) -> bool:
        return self.name in TERMINATOR_OPS

    def has_side_effects(self) -> bool:
        if self.name in SIDE_EFFECT_OPS:
            return True
        # Conservatively treat region-holding ops as side-effecting containers.
        return bool(self.regions)

    @property
    def parent_block(self) -> Optional["Block"]:
        return self.parent

    @property
    def parent_region(self) -> Optional[Region]:
        return self.parent.parent if self.parent is not None else None

    @property
    def parent_op(self) -> Optional["Operation"]:
        region = self.parent_region
        return region.parent if region is not None else None

    def parent_of_type(self, op_name: str) -> Optional["Operation"]:
        """Closest ancestor operation with the given name (or None)."""
        current = self.parent_op
        while current is not None:
            if current.name == op_name:
                return current
            current = current.parent_op
        return None

    def ancestors(self) -> Iterator["Operation"]:
        current = self.parent_op
        while current is not None:
            yield current
            current = current.parent_op

    def is_ancestor_of(self, other: "Operation") -> bool:
        return any(ancestor is self for ancestor in other.ancestors())

    def is_before_in_block(self, other: "Operation") -> bool:
        if self.parent is None or self.parent is not other.parent:
            raise ValueError("operations are not in the same block")
        self.parent.ensure_order()
        return self._order < other._order

    @property
    def prev_op(self) -> Optional["Operation"]:
        """The operation immediately before this one in its block (O(1))."""
        return self._prev

    @property
    def next_op(self) -> Optional["Operation"]:
        """The operation immediately after this one in its block (O(1))."""
        return self._next

    # -- movement and deletion --------------------------------------------------------------

    def move_before(self, anchor: "Operation") -> None:
        block = anchor.parent
        if block is None:
            raise ValueError("anchor operation is not in a block")
        if self.parent is not None:
            self.parent.remove(self)
        block.insert_before(anchor, self)

    def move_after(self, anchor: "Operation") -> None:
        block = anchor.parent
        if block is None:
            raise ValueError("anchor operation is not in a block")
        if self.parent is not None:
            self.parent.remove(self)
        block.insert_after(anchor, self)

    def detach(self) -> "Operation":
        if self.parent is not None:
            self.parent.remove(self)
        return self

    def erase(self) -> None:
        """Remove the operation from its block and drop every reference it holds."""
        for result in self.results:
            if result.has_uses():
                raise ValueError(
                    f"cannot erase {self.name}: result still has "
                    f"{result.num_uses()} uses")
        self.drop_all_references()
        if self.parent is not None:
            self.parent.remove(self)

    def drop_all_references(self) -> None:
        """Drop operand uses of this op and of everything nested inside it."""
        self.drop_operand_uses()
        for region in self.regions:
            for block in region.blocks:
                for op in list(block.operations):
                    op.drop_all_references()

    # -- traversal ---------------------------------------------------------------------------

    def walk(self) -> Iterator["Operation"]:
        """Pre-order traversal of this operation and everything nested inside."""
        yield self
        for region in self.regions:
            for block in region.blocks:
                for op in list(block.operations):
                    yield from op.walk()

    def walk_post_order(self) -> Iterator["Operation"]:
        for region in self.regions:
            for block in region.blocks:
                for op in list(block.operations):
                    yield from op.walk_post_order()
        yield self

    def ops_of_name(self, name: str) -> list["Operation"]:
        return [op for op in self.walk() if op.name == name]

    # -- cloning ------------------------------------------------------------------------------

    def clone(self, value_map: Optional[dict[Value, Value]] = None) -> "Operation":
        """Deep-copy the operation (and its regions), remapping operands.

        ``value_map`` maps values defined outside the clone to their
        replacements; values defined inside the cloned region are remapped
        automatically.  The map is updated with the cloned results so that
        callers can chain clones.
        """
        if value_map is None:
            value_map = {}
        new_op = object.__new__(type(self))
        Operation.__init__(
            new_op,
            self.name,
            operands=[value_map.get(operand, operand) for operand in self._operands],
            result_types=[result.type for result in self.results],
            attributes=_clone_attributes(self.attributes),
            num_regions=0,
        )
        for old_result, new_result in zip(self.results, new_op.results):
            value_map[old_result] = new_result
        for region in self.regions:
            new_region = new_op.add_region()
            for block in region.blocks:
                from repro.ir.block import Block

                new_block = Block()
                new_region.add_block(new_block)
                for argument in block.arguments:
                    new_argument = new_block.add_argument(argument.type)
                    value_map[argument] = new_argument
                for op in block.operations:
                    new_block.append(op.clone(value_map))
        return new_op

    # -- attribute helpers -------------------------------------------------------------------------

    def get_attr(self, key: str, default: Any = None) -> Any:
        return self.attributes.get(key, default)

    def set_attr(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def remove_attr(self, key: str) -> None:
        self.attributes.pop(key, None)

    def has_attr(self, key: str) -> bool:
        return key in self.attributes

    # -- pickling ----------------------------------------------------------------------------------

    def __getstate__(self) -> dict:
        # Strip the intrusive links: pickling would otherwise recurse one
        # stack frame per _next hop (O(block length) deep).  The parent Block
        # persists its op order and relinks on load (Block.__setstate__).
        state = self.__dict__.copy()
        for key in ("_prev", "_next", "_order"):
            state.pop(key, None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        # In cyclic graphs pickle may apply the parent Block's state (which
        # relinks this op) before this op's own state — only default the
        # links when the block has not installed them yet.
        if "_prev" not in self.__dict__:
            self._prev = None
            self._next = None
            self._order = 0

    # -- misc ---------------------------------------------------------------------------------------

    def __repr__(self) -> str:
        results = ", ".join(str(r.type) for r in self.results)
        return f"<{self.name} -> ({results})>"


def _clone_attributes(attributes: dict[str, Any]) -> dict[str, Any]:
    cloned: dict[str, Any] = {}
    for key, value in attributes.items():
        if isinstance(value, list):
            cloned[key] = list(value)
        elif isinstance(value, dict):
            cloned[key] = dict(value)
        elif hasattr(value, "clone") and not isinstance(value, type):
            cloned[key] = value.clone() if callable(getattr(value, "clone")) else value
        else:
            cloned[key] = value
    return cloned

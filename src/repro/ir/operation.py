"""Operations: the minimal unit of code in the IR.

An operation has a name (``dialect.mnemonic``), typed operands and results,
an attribute dictionary, and an ordered list of regions.  Dialect-specific
operation classes subclass :class:`Operation` and keep all of their state in
the base fields, which lets :meth:`Operation.clone` reproduce any operation
without knowing its concrete class.

Two constant-factor decisions shape this module, both aimed at the DSE hot
loop (one evaluation of a fully-unrolled kernel materializes hundreds of
thousands of operations):

* every class carries ``__slots__`` (subclasses declare ``__slots__ = ()``
  and keep their state in the base fields), cutting per-op memory by the
  cost of an instance ``__dict__``;
* operands are stored as the :class:`~repro.ir.value.Use` objects
  themselves, so dropping an operand's use is an O(1) dict deletion on the
  value instead of a scan of its (possibly huge) use list;
* attribute dictionaries are interned across clones: when every attribute
  value is one clone would share anyway (no lists/dicts/clonables), the
  clone references the *same* dict, copy-on-write — mutate only through
  :meth:`set_attr` / :meth:`remove_attr`, never ``op.attributes[k] = v``.
"""

from __future__ import annotations

import sys
from types import MappingProxyType
from typing import TYPE_CHECKING, Any, Iterator, Optional, Sequence

from repro.ir.region import Region
from repro.ir.value import OpResult, Use, Value

if TYPE_CHECKING:  # pragma: no cover
    from repro.ir.block import Block
    from repro.ir.types import Type

#: Operation names that terminate a block.
TERMINATOR_OPS = {
    "func.return",
    "affine.yield",
    "scf.yield",
    "cf.br",
    "cf.cond_br",
}

#: Operation names with memory or other side effects (never dead-code eliminated).
SIDE_EFFECT_OPS = {
    "memref.store",
    "affine.store",
    "memref.copy",
    "memref.dealloc",
    "func.call",
    "func.return",
    "affine.yield",
    "scf.yield",
    "graph.output",
}

_intern = sys.intern

#: Slots persisted by pickling; the intrusive block links are stripped (see
#: :meth:`Operation.__getstate__`).
_PICKLE_SLOTS = ("name", "_attributes", "_attrs_shared", "parent",
                 "_operands", "results", "regions")


class Operation:
    """A generic operation."""

    __slots__ = ("name", "_attributes", "_attrs_shared", "parent",
                 "_prev", "_next", "_order", "_operands", "results", "regions")

    def __init__(self, name: str, operands: Sequence[Value] = (),
                 result_types: Sequence["Type"] = (),
                 attributes: Optional[dict[str, Any]] = None,
                 num_regions: int = 0):
        # Interned names make the rewrite driver's per-name dict dispatch a
        # pointer-hash lookup and deduplicate dynamically composed names.
        self.name = _intern(name)
        self._attributes: dict[str, Any] = dict(attributes) if attributes else {}
        #: True while ``_attributes`` may be referenced by another operation
        #: (clone interning); mutations copy first.
        self._attrs_shared = False
        self.parent: Optional["Block"] = None
        #: Intrusive block-list links and order key, owned by the parent
        #: Block (see repro.ir.block): _prev/_next chain the ops of a block
        #: and _order is a monotone key making "is A before B" an O(1)
        #: integer comparison.
        self._prev: Optional["Operation"] = None
        self._next: Optional["Operation"] = None
        self._order = 0
        #: The operand uses themselves, in operand order; ``use.value`` is
        #: the operand.  Holding the Use (not the Value) makes dropping it
        #: O(1) on the value's use dict.
        self._operands: list[Use] = []
        self.results: list[OpResult] = []
        self.regions: list[Region] = []
        for operand in operands:
            self.append_operand(operand)
        for i, result_type in enumerate(result_types):
            self.results.append(OpResult(result_type, self, i))
        for _ in range(num_regions):
            self.regions.append(Region(self))

    # -- operand management --------------------------------------------------------

    @property
    def operands(self) -> tuple[Value, ...]:
        # A list-comp feeding tuple() beats the genexpr form measurably;
        # this property alone shows up in DSE profiles (~180k calls/eval).
        return tuple([use.value for use in self._operands])

    @property
    def num_operands(self) -> int:
        return len(self._operands)

    def operand(self, index: int) -> Value:
        return self._operands[index].value

    def append_operand(self, value: Value) -> None:
        if not isinstance(value, Value):
            raise TypeError(f"operand of {self.name} must be a Value, got {value!r}")
        self._operands.append(value.add_use(self, len(self._operands)))

    def set_operand(self, index: int, value: Value) -> None:
        old = self._operands[index]
        old.value.drop_use(old)
        self._operands[index] = value.add_use(self, index)

    def set_operands(self, values: Sequence[Value]) -> None:
        self.drop_operand_uses()
        self._operands = []
        for value in values:
            self.append_operand(value)

    def erase_operand(self, index: int) -> None:
        use = self._operands[index]
        use.value.drop_use(use)
        del self._operands[index]
        # Re-index the remaining uses in place (their registration order on
        # the values is untouched).
        for i in range(index, len(self._operands)):
            self._operands[i].index = i

    def drop_operand_uses(self) -> None:
        for use in self._operands:
            try:
                use.value.drop_use(use)
            except KeyError:
                pass  # already dropped (e.g. erase after remove)

    def replaces_uses_of(self, old: Value, new: Value) -> None:
        for i, use in enumerate(self._operands):
            if use.value is old:
                self.set_operand(i, new)

    # -- results ---------------------------------------------------------------------

    @property
    def num_results(self) -> int:
        return len(self.results)

    def result(self, index: int = 0) -> OpResult:
        return self.results[index]

    # -- regions ---------------------------------------------------------------------

    def add_region(self) -> Region:
        region = Region(self)
        self.regions.append(region)
        return region

    def region(self, index: int = 0) -> Region:
        return self.regions[index]

    @property
    def num_regions(self) -> int:
        return len(self.regions)

    # -- structural properties ----------------------------------------------------------

    @property
    def dialect(self) -> str:
        return self.name.split(".", 1)[0] if "." in self.name else ""

    def is_terminator(self) -> bool:
        return self.name in TERMINATOR_OPS

    def has_side_effects(self) -> bool:
        if self.name in SIDE_EFFECT_OPS:
            return True
        # Conservatively treat region-holding ops as side-effecting containers.
        return bool(self.regions)

    @property
    def parent_block(self) -> Optional["Block"]:
        return self.parent

    @property
    def parent_region(self) -> Optional[Region]:
        return self.parent.parent if self.parent is not None else None

    @property
    def parent_op(self) -> Optional["Operation"]:
        region = self.parent_region
        return region.parent if region is not None else None

    def parent_of_type(self, op_name: str) -> Optional["Operation"]:
        """Closest ancestor operation with the given name (or None)."""
        current = self.parent_op
        while current is not None:
            if current.name == op_name:
                return current
            current = current.parent_op
        return None

    def ancestors(self) -> Iterator["Operation"]:
        current = self.parent_op
        while current is not None:
            yield current
            current = current.parent_op

    def is_ancestor_of(self, other: "Operation") -> bool:
        return any(ancestor is self for ancestor in other.ancestors())

    def is_before_in_block(self, other: "Operation") -> bool:
        if self.parent is None or self.parent is not other.parent:
            raise ValueError("operations are not in the same block")
        self.parent.ensure_order()
        return self._order < other._order

    @property
    def prev_op(self) -> Optional["Operation"]:
        """The operation immediately before this one in its block (O(1))."""
        return self._prev

    @property
    def next_op(self) -> Optional["Operation"]:
        """The operation immediately after this one in its block (O(1))."""
        return self._next

    # -- movement and deletion --------------------------------------------------------------

    def move_before(self, anchor: "Operation") -> None:
        block = anchor.parent
        if block is None:
            raise ValueError("anchor operation is not in a block")
        if self.parent is not None:
            self.parent.remove(self)
        block.insert_before(anchor, self)

    def move_after(self, anchor: "Operation") -> None:
        block = anchor.parent
        if block is None:
            raise ValueError("anchor operation is not in a block")
        if self.parent is not None:
            self.parent.remove(self)
        block.insert_after(anchor, self)

    def detach(self) -> "Operation":
        if self.parent is not None:
            self.parent.remove(self)
        return self

    def erase(self) -> None:
        """Remove the operation from its block and drop every reference it holds."""
        for result in self.results:
            if result.has_uses():
                raise ValueError(
                    f"cannot erase {self.name}: result still has "
                    f"{result.num_uses()} uses")
        self.drop_all_references()
        if self.parent is not None:
            self.parent.remove(self)

    def drop_all_references(self) -> None:
        """Drop operand uses of this op and of everything nested inside it."""
        self.drop_operand_uses()
        for region in self.regions:
            for block in region.blocks:
                for op in list(block.operations):
                    op.drop_all_references()

    # -- traversal ---------------------------------------------------------------------------

    def walk(self) -> Iterator["Operation"]:
        """Pre-order traversal of this operation and everything nested inside.

        Iterative (an explicit stack, not one generator frame per nesting
        level): the traversal is a hot path of the rewrite driver, the
        verifier and every ``run_on_module``.  Children are snapshotted when
        their parent is yielded, so erasing or moving already-yielded ops is
        safe; for heavier mutation take a ``list(...)`` first.
        """
        stack = [self]
        pop = stack.pop
        while stack:
            op = pop()
            yield op
            if op.regions:
                children = [nested for region in op.regions
                            for block in region.blocks
                            for nested in block.operations]
                children.reverse()
                stack.extend(children)

    def walk_post_order(self) -> Iterator["Operation"]:
        # Reversed pre-order with children pushed left-to-right == post-order.
        ordered = []
        append = ordered.append
        stack = [self]
        pop = stack.pop
        while stack:
            op = pop()
            append(op)
            for region in op.regions:
                for block in region.blocks:
                    stack.extend(block.operations)
        return reversed(ordered)

    def ops_of_name(self, name: str) -> list["Operation"]:
        return [op for op in self.walk() if op.name == name]

    # -- cloning ------------------------------------------------------------------------------

    def clone(self, value_map: Optional[dict[Value, Value]] = None) -> "Operation":
        """Deep-copy the operation (and its regions), remapping operands.

        ``value_map`` maps values defined outside the clone to their
        replacements; values defined inside the cloned region are remapped
        automatically.  The map is updated with the cloned results so that
        callers can chain clones.
        """
        if value_map is None:
            value_map = {}
        new_op = object.__new__(type(self))
        # Slot-by-slot construction instead of Operation.__init__: cloning
        # materializes hundreds of thousands of ops per unrolled evaluation,
        # and the per-operand isinstance check + add_use call were the
        # hottest leaves of the whole DSE profile.  self.name is interned
        # already and operand values are Values by construction, so the
        # checks __init__ performs cannot fire here.
        new_op.name = self.name
        new_op._attributes = {}
        new_op._attrs_shared = False
        new_op.parent = None
        new_op._prev = None
        new_op._next = None
        new_op._order = 0
        operands = self._operands
        if operands:
            get = value_map.get
            new_uses = []
            for index, use in enumerate(operands):
                value = get(use.value, use.value)
                new_use = Use(value, new_op, index)
                value._uses[id(new_use)] = new_use
                new_uses.append(new_use)
            new_op._operands = new_uses
        else:
            new_op._operands = []
        new_op.results = [OpResult(result.type, new_op, index)
                          for index, result in enumerate(self.results)]
        new_op.regions = []
        attrs = self._attributes
        if attrs:
            if self._attrs_shared or _attrs_shareable(attrs):
                # Intern the dict: mass cloning (loop_unroll) re-references
                # one attribute dict instead of copying it per clone.
                # set_attr/remove_attr copy-on-write, so sharing is safe.
                self._attrs_shared = True
                new_op._attributes = attrs
                new_op._attrs_shared = True
            else:
                new_op._attributes = _clone_attributes(attrs)
        for old_result, new_result in zip(self.results, new_op.results):
            value_map[old_result] = new_result
        for region in self.regions:
            new_region = new_op.add_region()
            for block in region.blocks:
                from repro.ir.block import Block

                new_block = Block()
                new_region.add_block(new_block)
                for argument in block.arguments:
                    new_argument = new_block.add_argument(argument.type)
                    value_map[argument] = new_argument
                for op in block.operations:
                    new_block.append(op.clone(value_map))
        return new_op

    # -- attribute helpers -------------------------------------------------------------------------

    @property
    def attributes(self):
        """The attribute mapping, as a read-only view.

        Always a proxy — the backing dict may be interned across clones (or
        become interned by a later ``clone()``), so a stray
        ``op.attributes[k] = v`` raises instead of silently editing every
        sharing clone.  Mutate via :meth:`set_attr` / :meth:`remove_attr`.
        """
        return MappingProxyType(self._attributes)

    def _own_attributes(self) -> dict[str, Any]:
        if self._attrs_shared:
            self._attributes = dict(self._attributes)
            self._attrs_shared = False
        return self._attributes

    def get_attr(self, key: str, default: Any = None) -> Any:
        return self._attributes.get(key, default)

    def set_attr(self, key: str, value: Any) -> None:
        self._own_attributes()[key] = value

    def remove_attr(self, key: str) -> None:
        self._own_attributes().pop(key, None)

    def has_attr(self, key: str) -> bool:
        return key in self._attributes

    # -- pickling ----------------------------------------------------------------------------------

    def __getstate__(self) -> dict:
        # Strip the intrusive links: pickling would otherwise recurse one
        # stack frame per _next hop (O(block length) deep).  The parent Block
        # persists its op order and relinks on load (Block.__setstate__).
        return {slot: getattr(self, slot) for slot in _PICKLE_SLOTS}

    def __setstate__(self, state: dict) -> None:
        state.pop("_order", None)  # legacy states carried link fields
        state.pop("_prev", None)
        state.pop("_next", None)
        for key, value in state.items():
            setattr(self, key, value)
        # In cyclic graphs pickle may apply the parent Block's state (which
        # relinks this op) before this op's own state — only default the
        # links when the block has not installed them yet.
        if not hasattr(self, "_prev"):
            self._prev = None
            self._next = None
            self._order = 0

    # -- misc ---------------------------------------------------------------------------------------

    def __repr__(self) -> str:
        results = ", ".join(str(r.type) for r in self.results)
        return f"<{self.name} -> ({results})>"


def _attrs_shareable(attributes: dict[str, Any]) -> bool:
    """True when :func:`_clone_attributes` would share every value anyway.

    Lists and dicts are copied per clone, and values exposing ``clone()``
    (the mutable hlscpp directives) are cloned — an attribute dict holding
    any of those cannot be interned.  Everything else (ints, strings,
    affine maps/sets, types) is shared by clones today, so sharing the dict
    itself only deduplicates the container.
    """
    for value in attributes.values():
        if isinstance(value, (list, dict)):
            return False
        if hasattr(value, "clone") and not isinstance(value, type):
            return False
    return True


def _clone_attributes(attributes: dict[str, Any]) -> dict[str, Any]:
    cloned: dict[str, Any] = {}
    for key, value in attributes.items():
        if isinstance(value, list):
            cloned[key] = list(value)
        elif isinstance(value, dict):
            cloned[key] = dict(value)
        elif hasattr(value, "clone") and not isinstance(value, type):
            cloned[key] = value.clone() if callable(getattr(value, "clone")) else value
        else:
            cloned[key] = value
    return cloned

"""Passes and the pass manager.

A :class:`Pass` transforms (or analyses) one operation — usually a
``builtin.module`` or a ``func.func``.  Passes declare typed options
(:class:`PassOption`) so they can be constructed from, and printed back to,
the textual pipeline syntax of :mod:`repro.ir.pass_registry`.

The :class:`PassManager` runs a pipeline — a sequence of passes and nested
:class:`AnchoredPipeline` groups — over a module, optionally verifying after
each pass (dumping the offending IR on failure) and collecting per-pass
timing statistics keyed by ``name{options}`` (the paper reports ScaleHLS
runtimes via MLIR's ``-pass-timing``; :attr:`PassManager.timings` and
:func:`collect_pass_timings` play that role here).
"""

from __future__ import annotations

import contextlib
import os
import tempfile
import time
from typing import TYPE_CHECKING, Any, Callable, Optional, Sequence, Union

from repro import obs
from repro.ir.verifier import VerificationError, verify
from repro.obs.report import format_timing_report

if TYPE_CHECKING:  # pragma: no cover
    from repro.ir.operation import Operation


class PassError(Exception):
    """Raised when a pass fails or its target is not legalizable."""


# -- typed pass options -------------------------------------------------------------------


class PassOption:
    """One declared, textually settable option of a pass.

    ``type`` is one of ``"int"``, ``"bool"``, ``"str"`` or ``"int-list"``;
    ``attr`` names the constructor keyword / instance attribute backing the
    option (defaults to the option name with dashes replaced by underscores).
    """

    TYPES = ("int", "bool", "str", "int-list")

    def __init__(self, name: str, type: str = "str", default: Any = None,
                 attr: Optional[str] = None, help: str = ""):
        if type not in self.TYPES:
            raise ValueError(f"unknown option type {type!r}; choose from {self.TYPES}")
        self.name = name
        self.type = type
        self.default = default
        self.attr = attr or name.replace("-", "_")
        self.help = help

    # -- parsing ---------------------------------------------------------------------------

    def parse(self, segments: Sequence[str], pass_name: str) -> Any:
        """Convert raw ``{key=value}`` segments to the option's python value."""
        if self.type == "int-list":
            try:
                return tuple(int(segment) for segment in segments)
            except ValueError:
                raise PassError(
                    f"option '{self.name}' of pass '{pass_name}' expects a "
                    f"comma-separated list of integers, got "
                    f"'{','.join(segments)}'") from None
        if self.type == "bool" and not segments:
            return True  # bare flag: {insert-copy}
        if len(segments) != 1:
            raise PassError(
                f"option '{self.name}' of pass '{pass_name}' expects a single "
                f"{self.type} value, got '{','.join(segments)}'")
        text = segments[0]
        if self.type == "int":
            try:
                return int(text)
            except ValueError:
                raise PassError(f"option '{self.name}' of pass '{pass_name}' "
                                f"expects an integer, got '{text}'") from None
        if self.type == "bool":
            lowered = text.lower()
            if lowered in ("true", "1", "yes"):
                return True
            if lowered in ("false", "0", "no"):
                return False
            raise PassError(f"option '{self.name}' of pass '{pass_name}' "
                            f"expects true/false, got '{text}'")
        return text

    def render(self, value: Any) -> str:
        """Canonical textual form of a value (inverse of :meth:`parse`)."""
        if self.type == "bool":
            return "true" if value else "false"
        if self.type == "int-list":
            return ",".join(str(int(v)) for v in value)
        return str(value)

    def is_default(self, value: Any) -> bool:
        if self.type == "int-list":
            mine = tuple(value) if value is not None else None
            them = tuple(self.default) if self.default is not None else None
            return mine == them
        return value == self.default

    def __repr__(self) -> str:
        return f"<PassOption {self.name}: {self.type} = {self.default!r}>"


# -- the pass base classes ----------------------------------------------------------------


class Pass:
    """Base class of transform and analysis passes."""

    #: Registered pass name (set by ``@register_pass``; defaults to the class name).
    name: str = ""

    #: Operation name this pass anchors on ("func.func", "builtin.module", ...).
    #: None means the pass is run directly on whatever op it is given.
    target_op: Optional[str] = "func.func"

    #: Declared textual options, in canonical print order.
    OPTIONS: tuple[PassOption, ...] = ()

    def run(self, op: "Operation") -> None:
        """Transform ``op`` in place.  Subclasses must override."""
        raise NotImplementedError

    def run_on_module(self, module: "Operation") -> None:
        """Run the pass on every matching op nested in ``module``."""
        if self.target_op is None or module.name == self.target_op:
            self.run(module)
            return
        for op in list(module.walk()):
            if op.name == self.target_op:
                self.run(op)

    # -- option plumbing -------------------------------------------------------------------

    @classmethod
    def from_option_strings(cls, options: dict[str, list[str]]) -> "Pass":
        """Construct the pass from raw textual option segments.

        Unknown options and malformed values raise :class:`PassError` with
        the pass and option named.
        """
        declared = {option.name: option for option in cls.OPTIONS}
        kwargs = {}
        for name, segments in options.items():
            option = declared.get(name)
            if option is None:
                known = ", ".join(sorted(declared)) or "none"
                raise PassError(
                    f"pass '{cls.name or cls.__name__}' has no option '{name}' "
                    f"(known options: {known})")
            kwargs[option.attr] = option.parse(segments, cls.name or cls.__name__)
        return cls(**kwargs)

    def option_values(self) -> dict[str, Any]:
        """Current option values, keyed by option name."""
        return {option.name: getattr(self, option.attr, option.default)
                for option in self.OPTIONS}

    def option_string(self) -> str:
        """Canonical ``key=value`` text of every non-default option."""
        parts = []
        for option in self.OPTIONS:
            value = getattr(self, option.attr, option.default)
            if option.is_default(value) or value is None:
                continue
            parts.append(f"{option.name}={option.render(value)}")
        return ",".join(parts)

    @property
    def display_name(self) -> str:
        """``name{options}`` — the canonical textual form of this instance.

        Timing buckets are keyed by this string, so two instances of the same
        pass with different options are reported separately.
        """
        base = self.name or type(self).__name__
        options = self.option_string()
        return f"{base}{{{options}}}" if options else base

    def __repr__(self) -> str:
        return f"<Pass {self.display_name}>"


class FunctionPass(Pass):
    """A pass anchored on ``func.func`` operations."""

    target_op = "func.func"


class ModulePass(Pass):
    """A pass anchored on the top-level ``builtin.module``."""

    target_op = "builtin.module"


class LambdaPass(Pass):
    """Wraps a plain callable as a pass (handy for tests and pipelines).

    Lambda passes hold arbitrary closures, so unlike registered passes they
    are neither picklable nor expressible in the textual pipeline syntax.
    """

    def __init__(self, fn: Callable[["Operation"], None], name: str = "",
                 target_op: Optional[str] = "func.func"):
        self._fn = fn
        self.name = name or getattr(fn, "__name__", "lambda")
        self.target_op = target_op

    def run(self, op: "Operation") -> None:
        self._fn(op)


# -- pass timing instrumentation ----------------------------------------------------------


class PassTimingCollector:
    """Accumulates pass timings across every PassManager run in its scope."""

    def __init__(self):
        self.timings: dict[str, float] = {}

    def add(self, display_name: str, seconds: float) -> None:
        self.timings[display_name] = self.timings.get(display_name, 0.0) + seconds

    def total_time(self) -> float:
        return sum(self.timings.values())

    def report(self) -> str:
        return format_timing_report(self.timings)


#: Collectors currently receiving timings from every PassManager run.
_ACTIVE_COLLECTORS: list[PassTimingCollector] = []

#: Active timing-scope names; timings recorded inside are keyed
#: ``<scope>/<display name>``.
_SCOPE_STACK: list[str] = []


@contextlib.contextmanager
def pass_timing_scope(name: str):
    """Report passes run inside the block under ``<name>/<display name>``.

    Lets a flow that runs the *same* pass in two roles — e.g. the
    canonicalization inside a prefix-snapshot build versus in a per-point
    evaluation — keep the two timing buckets apart, so a
    ``--print-pass-timing`` table never double-counts shared work as
    per-evaluation work.
    """
    _SCOPE_STACK.append(name)
    try:
        yield
    finally:
        _SCOPE_STACK.pop()


@contextlib.contextmanager
def collect_pass_timings():
    """Collect timings of every pass executed inside the ``with`` block.

    The driver wraps whole flows (``--print-pass-timing``) in this scope so
    nested PassManagers — one per DNN stage function, one per DSE
    evaluation — report into a single ``-pass-timing`` style table.
    """
    collector = PassTimingCollector()
    _ACTIVE_COLLECTORS.append(collector)
    try:
        yield collector
    finally:
        _ACTIVE_COLLECTORS.remove(collector)


# Report rendering lives in the observability layer now;
# ``format_timing_report`` is re-exported above for compatibility.


# -- IR snapshot dumps --------------------------------------------------------------------


class IRDumper:
    """Writes numbered IR snapshots after selected passes.

    ``pass_names`` holds canonical registry pass names (resolve aliases with
    :func:`repro.ir.pass_registry.pass_aliases` before constructing); an
    empty set dumps after *every* pass.  Snapshots are written to
    ``directory`` as ``NNNN-<pass-name>.mlir`` in execution order, dumping
    the whole run root so nested/anchored pipelines produce module-level
    snapshots (the MLIR ``--mlir-print-ir-after`` behavior the driver's
    ``--dump-ir-after`` mirrors).
    """

    def __init__(self, directory: str, pass_names: Sequence[str] = ()):
        self.directory = directory
        self.pass_names = frozenset(pass_names)
        self.counter = 0
        #: Paths written, in order.
        self.paths: list[str] = []

    def after_pass(self, pass_: Pass, root: "Operation") -> None:
        name = pass_.name or type(pass_).__name__
        if self.pass_names and name not in self.pass_names:
            return
        from repro.ir.printer import print_op

        os.makedirs(self.directory, exist_ok=True)
        self.counter += 1
        slug = name.replace("/", "-")
        path = os.path.join(self.directory, f"{self.counter:04d}-{slug}.mlir")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(print_op(root))
            handle.write("\n")
        self.paths.append(path)


#: Dumpers currently receiving snapshots from every PassManager run.
_ACTIVE_DUMPERS: list[IRDumper] = []


@contextlib.contextmanager
def dump_ir_after(directory: str, pass_names: Sequence[str] = ()):
    """Dump IR snapshots after matching passes executed inside the block."""
    dumper = IRDumper(directory, pass_names)
    _ACTIVE_DUMPERS.append(dumper)
    try:
        yield dumper
    finally:
        _ACTIVE_DUMPERS.remove(dumper)


# -- pipelines ---------------------------------------------------------------------------


class AnchoredPipeline:
    """A nested pipeline anchored on an operation name.

    ``func.func(canonicalize,cse)`` runs the inner pipeline once per
    ``func.func`` op nested under (or equal to) the root, mirroring MLIR's
    ``OpPassManager`` nesting.
    """

    def __init__(self, anchor: str, entries: Sequence["PipelineEntry"] = ()):
        self.anchor = anchor
        self.entries: list[PipelineEntry] = list(entries)

    def to_spec(self) -> str:
        inner = ",".join(_entry_spec(entry) for entry in self.entries)
        return f"{self.anchor}({inner})"

    def __repr__(self) -> str:
        return f"<AnchoredPipeline {self.to_spec()}>"


PipelineEntry = Union[Pass, AnchoredPipeline]


def _entry_spec(entry: PipelineEntry) -> str:
    return entry.to_spec() if isinstance(entry, AnchoredPipeline) else entry.display_name


class PassManager:
    """Runs a pipeline of passes (and nested anchored pipelines) over a module."""

    def __init__(self, passes: Sequence[PipelineEntry] = (), verify_each: bool = False,
                 failure_dump_dir: Optional[str] = None):
        self.passes: list[PipelineEntry] = list(passes)
        self.verify_each = verify_each
        #: Where verify-after-failure IR snapshots are written (a temp file
        #: in the system temp dir when None).
        self.failure_dump_dir = failure_dump_dir
        #: Pass ``name{options}`` -> accumulated wall-clock seconds.
        self.timings: dict[str, float] = {}
        #: The root of the in-flight run() (what verify_each checks).
        self._run_root: Optional["Operation"] = None

    def add(self, *passes: PipelineEntry) -> "PassManager":
        self.passes.extend(passes)
        return self

    def nest(self, anchor: str) -> AnchoredPipeline:
        """Append and return a nested pipeline anchored on ``anchor``."""
        nested = AnchoredPipeline(anchor)
        self.passes.append(nested)
        return nested

    # -- execution --------------------------------------------------------------------------

    def run(self, module: "Operation") -> "Operation":
        #: verify_each always checks the whole run root — an anchored pass
        #: that corrupts IR outside its anchor must not escape verification.
        self._run_root = module
        try:
            for entry in self.passes:
                self._run_entry(entry, module)
        finally:
            self._run_root = None
        return module

    def _run_entry(self, entry: PipelineEntry, root: "Operation") -> None:
        if isinstance(entry, AnchoredPipeline):
            if root.name == entry.anchor:
                targets = [root]
            else:
                targets = [op for op in root.walk() if op.name == entry.anchor]
            for target in targets:
                for sub_entry in entry.entries:
                    self._run_anchored(sub_entry, target)
            return
        self._run_pass(entry, root, anchored=False)

    def _run_anchored(self, entry: PipelineEntry, target: "Operation") -> None:
        if isinstance(entry, AnchoredPipeline):
            self._run_entry(entry, target)
            return
        self._run_pass(entry, target, anchored=True)

    def _run_pass(self, pass_: Pass, op: "Operation", anchored: bool) -> None:
        started = time.perf_counter()
        # Span names/args are only materialized when a session is active —
        # the disabled path must not even pay for the f-string.
        pass_span = obs.NULL_SPAN if obs.active() is None else obs.span(
            f"pass.{pass_.name or type(pass_).__name__}",
            pipeline=pass_.display_name, anchor=op.name)
        with pass_span:
            if anchored and pass_.target_op is not None \
                    and pass_.target_op == op.name:
                pass_.run(op)
            else:
                pass_.run_on_module(op)
        elapsed = time.perf_counter() - started
        self._record(pass_.display_name, elapsed)
        if _ACTIVE_DUMPERS:
            root = self._run_root if self._run_root is not None else op
            for dumper in _ACTIVE_DUMPERS:
                dumper.after_pass(pass_, root)
        if self.verify_each:
            self._verify_after(pass_, self._run_root if self._run_root is not None
                               else op)

    def _record(self, display_name: str, seconds: float) -> None:
        if _SCOPE_STACK:
            display_name = f"{_SCOPE_STACK[-1]}/{display_name}"
        self.timings[display_name] = self.timings.get(display_name, 0.0) + seconds
        for collector in _ACTIVE_COLLECTORS:
            collector.add(display_name, seconds)
        obs.add_pass_seconds(display_name, seconds)

    def _verify_after(self, pass_: Pass, op: "Operation") -> None:
        try:
            verify(op)
        except VerificationError as error:
            dump_path = self._dump_ir(pass_, op)
            raise PassError(
                f"IR verification failed after pass '{pass_.display_name}': "
                f"{error} (offending IR dumped to {dump_path})") from error

    def _dump_ir(self, pass_: Pass, op: "Operation") -> str:
        from repro.ir.printer import print_op

        directory = self.failure_dump_dir
        if directory:
            os.makedirs(directory, exist_ok=True)
        slug = (pass_.name or type(pass_).__name__).replace("/", "-")
        fd, path = tempfile.mkstemp(prefix=f"repro-after-{slug}-", suffix=".mlir",
                                    dir=directory or None)
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            try:
                handle.write(print_op(op))
            except Exception:  # printing must never mask the verification error
                handle.write("<IR unprintable>")
        return path

    # -- introspection ----------------------------------------------------------------------

    def to_spec(self) -> str:
        """The canonical textual pipeline this manager executes.

        Round-trips through :func:`repro.ir.pass_registry.parse_pipeline` as
        long as every pass is registered (LambdaPass is not).
        """
        return ",".join(_entry_spec(entry) for entry in self.passes)

    def total_time(self) -> float:
        return sum(self.timings.values())

    def timing_report(self) -> str:
        """A ``-pass-timing`` style report, slowest pass first."""
        return format_timing_report(self.timings)

"""Passes and the pass manager.

A :class:`Pass` transforms (or analyses) one operation — usually a
``builtin.module`` or a ``func.func``.  The :class:`PassManager` runs a
sequence of passes over a module, optionally verifying after each pass and
collecting per-pass timing statistics (the paper reports ScaleHLS runtimes
via MLIR's ``-pass-timing``; :attr:`PassManager.timings` plays that role
here).
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Callable, Optional, Sequence

from repro.ir.verifier import verify

if TYPE_CHECKING:  # pragma: no cover
    from repro.ir.operation import Operation


class PassError(Exception):
    """Raised when a pass fails or its target is not legalizable."""


class Pass:
    """Base class of transform and analysis passes."""

    #: Human-readable pass name (defaults to the class name).
    name: str = ""

    #: Operation name this pass anchors on ("func.func", "builtin.module", ...).
    #: None means the pass is run directly on whatever op it is given.
    target_op: Optional[str] = "func.func"

    def run(self, op: "Operation") -> None:
        """Transform ``op`` in place.  Subclasses must override."""
        raise NotImplementedError

    def run_on_module(self, module: "Operation") -> None:
        """Run the pass on every matching op nested in ``module``."""
        if self.target_op is None or module.name == self.target_op:
            self.run(module)
            return
        for op in list(module.walk()):
            if op.name == self.target_op:
                self.run(op)

    @property
    def display_name(self) -> str:
        return self.name or type(self).__name__

    def __repr__(self) -> str:
        return f"<Pass {self.display_name}>"


class FunctionPass(Pass):
    """A pass anchored on ``func.func`` operations."""

    target_op = "func.func"


class ModulePass(Pass):
    """A pass anchored on the top-level ``builtin.module``."""

    target_op = "builtin.module"


class LambdaPass(Pass):
    """Wraps a plain callable as a pass (handy for tests and pipelines)."""

    def __init__(self, fn: Callable[["Operation"], None], name: str = "",
                 target_op: Optional[str] = "func.func"):
        self._fn = fn
        self.name = name or getattr(fn, "__name__", "lambda")
        self.target_op = target_op

    def run(self, op: "Operation") -> None:
        self._fn(op)


class PassManager:
    """Runs a pipeline of passes over a module."""

    def __init__(self, passes: Sequence[Pass] = (), verify_each: bool = False):
        self.passes: list[Pass] = list(passes)
        self.verify_each = verify_each
        #: Pass display name -> accumulated wall-clock seconds.
        self.timings: dict[str, float] = {}

    def add(self, *passes: Pass) -> "PassManager":
        self.passes.extend(passes)
        return self

    def run(self, module: "Operation") -> "Operation":
        for pass_ in self.passes:
            started = time.perf_counter()
            pass_.run_on_module(module)
            elapsed = time.perf_counter() - started
            self.timings[pass_.display_name] = (
                self.timings.get(pass_.display_name, 0.0) + elapsed)
            if self.verify_each:
                verify(module)
        return module

    def total_time(self) -> float:
        return sum(self.timings.values())

    def timing_report(self) -> str:
        """A ``-pass-timing`` style report, slowest pass first."""
        lines = ["===-- Pass execution timing report --==="]
        for name, seconds in sorted(self.timings.items(), key=lambda kv: -kv[1]):
            lines.append(f"  {seconds * 1000.0:10.3f} ms  {name}")
        lines.append(f"  {self.total_time() * 1000.0:10.3f} ms  Total")
        return "\n".join(lines)

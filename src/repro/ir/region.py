"""Regions: ordered lists of blocks owned by an operation."""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover
    from repro.ir.block import Block
    from repro.ir.operation import Operation


class Region:
    """A region contains a control-flow graph of blocks and belongs to an operation."""

    __slots__ = ("parent", "blocks")

    def __init__(self, parent: "Operation" = None):
        self.parent: "Operation" = parent
        self.blocks: list["Block"] = []

    # -- block management --------------------------------------------------------

    def add_block(self, block: "Block" = None) -> "Block":
        """Append a block (creating an empty one if none is given)."""
        from repro.ir.block import Block

        if block is None:
            block = Block()
        block.parent = self
        self.blocks.append(block)
        return block

    def insert_block(self, index: int, block: "Block") -> "Block":
        block.parent = self
        self.blocks.insert(index, block)
        return block

    def remove_block(self, block: "Block") -> None:
        self.blocks.remove(block)
        block.parent = None

    @property
    def front(self) -> "Block":
        """The entry block of the region."""
        if not self.blocks:
            raise IndexError("region has no blocks")
        return self.blocks[0]

    @property
    def back(self) -> "Block":
        if not self.blocks:
            raise IndexError("region has no blocks")
        return self.blocks[-1]

    def empty(self) -> bool:
        return not self.blocks

    # -- traversal ----------------------------------------------------------------

    def walk(self) -> Iterator["Operation"]:
        """Pre-order traversal of every operation nested in this region."""
        for block in self.blocks:
            for op in list(block.operations):
                yield from op.walk()

    def ops(self) -> Iterator["Operation"]:
        """Operations directly contained in this region (all blocks, no nesting)."""
        for block in self.blocks:
            yield from list(block.operations)

    def __iter__(self) -> Iterator["Block"]:
        return iter(self.blocks)

    def __len__(self) -> int:
        return len(self.blocks)

    def __repr__(self) -> str:
        return f"Region({len(self.blocks)} blocks)"

"""The pass registry and the textual pipeline syntax.

Every transform in :mod:`repro.transforms` (and the frontend raising pass)
registers itself here with ``@register_pass("name")``, so pipelines can be
named, configured, hashed and timed uniformly — the way ScaleHLS drives one
transform library identically from hand-written pass pipelines and the DSE.

Pipeline grammar (a subset of MLIR's textual pipeline syntax)::

    pipeline  := element ("," element)*
    element   := anchor | pass
    anchor    := OP_NAME "(" pipeline ")"          # e.g. func.func(...)
    pass      := PASS_NAME [ "{" options "}" ]
    options   := option ("," option)*
    option    := KEY "=" VALUE ("," VALUE)*  | KEY # bare key = boolean flag

Examples::

    canonicalize,affine-loop-tile{sizes=4,4},loop-pipelining{ii=1}
    builtin.module(func.func(canonicalize,cse))

A comma inside ``{...}`` continues the previous option's value list when the
next segment carries no ``=`` (so ``{sizes=4,4}`` is one list-valued option).
Anchors are operation names (they contain a dot); passes inside an anchor
must target that operation (or the anchor must be ``builtin.module``, which
can reach any nested target).  All syntax and registry errors raise
:class:`~repro.ir.pass_manager.PassError` with an actionable message.
"""

from __future__ import annotations

import dataclasses
import functools as _functools
from typing import Iterator, Sequence, Union

from repro.ir.pass_manager import AnchoredPipeline, Pass, PassError, PassManager

# -- the registry -------------------------------------------------------------------------

_REGISTRY: dict[str, type] = {}
_ALIASES: dict[str, str] = {}
_LOADED = False


def register_pass(name: str, *, aliases: Sequence[str] = ()):
    """Class decorator registering a :class:`Pass` subclass under ``name``.

    The decorated class must be a module-level class (no closures) so that
    registered passes stay picklable — pipeline specs and pass instances are
    shipped to DSE worker processes.
    """

    def decorator(cls):
        if not (isinstance(cls, type) and issubclass(cls, Pass)):
            raise TypeError(f"@register_pass expects a Pass subclass, got {cls!r}")
        cls.name = name
        for key in (name, *aliases):
            existing = _REGISTRY.get(key)
            if existing is not None and existing is not cls:
                raise PassError(
                    f"pass name '{key}' is already registered by "
                    f"{existing.__module__}.{existing.__name__}")
            _REGISTRY[key] = cls
        for alias in aliases:
            _ALIASES[alias] = name
        return cls

    return decorator


def load_all_passes() -> None:
    """Import every package that registers passes (idempotent).

    The loaded flag is only set once the imports succeed: a transform
    package that fails to import must keep raising its real error on every
    lookup instead of leaving a silently partial registry.
    """
    global _LOADED
    if _LOADED:
        return
    import repro.frontend.raise_to_affine  # noqa: F401  (registers raise-scf-to-affine)
    import repro.transforms  # noqa: F401  (registers the transform library)
    _LOADED = True


def get_pass_class(name: str) -> type:
    """Resolve a registered pass name (or alias) to its class."""
    load_all_passes()
    cls = _REGISTRY.get(name)
    if cls is None:
        known = ", ".join(sorted(registered_passes()))
        raise PassError(f"unknown pass '{name}' (registered passes: {known})")
    return cls


def registered_passes() -> dict[str, type]:
    """Canonical name -> class for every registered pass (aliases excluded)."""
    load_all_passes()
    return {name: cls for name, cls in sorted(_REGISTRY.items())
            if name not in _ALIASES}


def pass_aliases() -> dict[str, str]:
    """Alias -> canonical name."""
    load_all_passes()
    return dict(_ALIASES)


# -- pipeline specs -----------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class PassSpec:
    """One parsed pass invocation: name + raw option segments."""

    name: str
    #: Ordered (option name, raw value segments) pairs, verbatim from the text.
    options: tuple[tuple[str, tuple[str, ...]], ...] = ()

    def __str__(self) -> str:
        if not self.options:
            return self.name
        rendered = ",".join(
            f"{key}={','.join(values)}" if values else key
            for key, values in self.options)
        return f"{self.name}{{{rendered}}}"


@dataclasses.dataclass(frozen=True)
class AnchorSpec:
    """A parsed ``op.name( ... )`` nesting."""

    anchor: str
    elements: tuple["SpecElement", ...] = ()

    def __str__(self) -> str:
        return f"{self.anchor}({','.join(str(e) for e in self.elements)})"


SpecElement = Union[PassSpec, AnchorSpec]


@dataclasses.dataclass(frozen=True)
class PipelineSpec:
    """A parsed textual pipeline, ready to build or print."""

    elements: tuple[SpecElement, ...] = ()

    def __str__(self) -> str:
        return ",".join(str(element) for element in self.elements)


# -- parsing ------------------------------------------------------------------------------


class _Cursor:
    """Character cursor over the pipeline text with error context."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def advance(self) -> str:
        char = self.peek()
        self.pos += 1
        return char

    def skip_spaces(self) -> None:
        while self.peek().isspace():
            self.pos += 1

    def error(self, message: str) -> PassError:
        return PassError(f"pipeline syntax error at position {self.pos}: {message} "
                         f"(in {self.text!r})")


_IDENT_CHARS = set("abcdefghijklmnopqrstuvwxyz"
                   "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_.-")


def parse_pipeline(text: str) -> PipelineSpec:
    """Parse a textual pipeline into a :class:`PipelineSpec`.

    Raises :class:`PassError` on malformed syntax.  Use
    :func:`build_pipeline` to also resolve names and options against the
    registry.
    """
    cursor = _Cursor(text)
    elements = tuple(_parse_elements(cursor))
    cursor.skip_spaces()
    if cursor.peek():
        raise cursor.error(f"unexpected character {cursor.peek()!r}")
    return PipelineSpec(elements)


def _parse_elements(cursor: _Cursor) -> Iterator[SpecElement]:
    first = True
    while True:
        cursor.skip_spaces()
        if not cursor.peek() or cursor.peek() == ")":
            if first:
                raise cursor.error("expected a pass or anchor name, got nothing")
            return
        if not first:
            if cursor.peek() != ",":
                raise cursor.error(f"expected ',' between pipeline elements, "
                                   f"got {cursor.peek()!r}")
            cursor.advance()
            cursor.skip_spaces()
        first = False
        yield _parse_element(cursor)


def _parse_element(cursor: _Cursor) -> SpecElement:
    name = _parse_ident(cursor)
    cursor.skip_spaces()
    if cursor.peek() == "(":
        if "." not in name:
            raise PassError(
                f"'{name}' cannot anchor a nested pipeline: anchors must be "
                f"operation names such as 'func.func' or 'builtin.module'")
        cursor.advance()
        elements = tuple(_parse_elements(cursor))
        cursor.skip_spaces()
        if cursor.peek() != ")":
            raise cursor.error(f"unbalanced '(' in anchor '{name}': expected ')'")
        cursor.advance()
        return AnchorSpec(name, elements)
    options = ()
    if cursor.peek() == "{":
        options = _parse_options(cursor, name)
    return PassSpec(name, options)


def _parse_ident(cursor: _Cursor) -> str:
    start = cursor.pos
    while cursor.peek() in _IDENT_CHARS and cursor.peek():
        cursor.advance()
    name = cursor.text[start:cursor.pos]
    if not name:
        raise cursor.error(f"expected a pass or anchor name, got {cursor.peek()!r}")
    return name


def _parse_options(cursor: _Cursor,
                   pass_name: str) -> tuple[tuple[str, tuple[str, ...]], ...]:
    cursor.advance()  # consume '{'
    start = cursor.pos
    depth = 1
    while depth:
        char = cursor.peek()
        if not char:
            raise cursor.error(f"unbalanced '{{' in options of pass '{pass_name}'")
        if char == "{":
            depth += 1
        elif char == "}":
            depth -= 1
        cursor.advance()
    body = cursor.text[start:cursor.pos - 1].strip()
    if not body:
        raise PassError(f"empty option braces on pass '{pass_name}': write "
                        f"'{pass_name}' or '{pass_name}{{key=value}}'")
    options: list[tuple[str, list[str]]] = []
    for segment in body.split(","):
        segment = segment.strip()
        if "=" in segment:
            key, _, value = segment.partition("=")
            key, value = key.strip(), value.strip()
            if not key:
                raise PassError(f"malformed option '{segment}' on pass "
                                f"'{pass_name}': missing option name before '='")
            options.append((key, [value] if value else []))
        elif options and options[-1][1]:
            # Continuation of the previous option's value list: {sizes=4,4}.
            options[-1][1].append(segment)
        elif segment:
            options.append((segment, []))  # bare boolean flag
        else:
            raise PassError(f"malformed options on pass '{pass_name}': "
                            f"empty segment in '{{{body}}}'")
    return tuple((key, tuple(values)) for key, values in options)


# -- building -----------------------------------------------------------------------------


def build_pipeline(spec: Union[str, PipelineSpec], verify_each: bool = False,
                   failure_dump_dir=None) -> PassManager:
    """Resolve a pipeline spec against the registry into a ready PassManager.

    Validates pass names, option names/values and anchor nesting; every
    failure raises :class:`PassError` naming the offending element.
    """
    if isinstance(spec, str):
        spec = parse_pipeline(spec)
    manager = PassManager(verify_each=verify_each, failure_dump_dir=failure_dump_dir)
    for element in spec.elements:
        manager.passes.append(_build_element(element, enclosing_anchor=None))
    return manager


def _build_element(element: SpecElement, enclosing_anchor):
    if isinstance(element, AnchorSpec):
        _check_anchor_nesting(element.anchor, enclosing_anchor)
        built = AnchoredPipeline(element.anchor)
        for child in element.elements:
            built.entries.append(_build_element(child, enclosing_anchor=element.anchor))
        return built
    cls = get_pass_class(element.name)
    pass_ = cls.from_option_strings(
        {key: list(values) for key, values in element.options})
    if enclosing_anchor is not None and enclosing_anchor != "builtin.module" \
            and pass_.target_op is not None and pass_.target_op != enclosing_anchor:
        raise PassError(
            f"pass '{cls.name}' anchors on '{pass_.target_op}' and cannot run "
            f"inside '{enclosing_anchor}(...)'; nest it under "
            f"'{pass_.target_op}(...)' or the top level instead")
    return pass_


def _check_anchor_nesting(anchor: str, enclosing_anchor) -> None:
    if enclosing_anchor is None:
        return
    if anchor == "builtin.module":
        raise PassError(
            f"cannot nest 'builtin.module(...)' inside '{enclosing_anchor}(...)': "
            f"the module is the outermost operation")
    if enclosing_anchor != "builtin.module":
        raise PassError(
            f"cannot nest '{anchor}(...)' inside '{enclosing_anchor}(...)': only "
            f"'builtin.module' can contain nested anchors")


@_functools.lru_cache(maxsize=256)
def build_pipeline_cached(spec: str) -> PassManager:
    """A memoized :func:`build_pipeline` for hot paths (one parse per spec).

    The returned manager is shared: registered passes hold only their option
    values (no per-run state), so re-running a cached manager is safe; its
    ``timings`` accumulate across uses — scope a
    :func:`~repro.ir.pass_manager.collect_pass_timings` block for per-run
    numbers.
    """
    return build_pipeline(spec)


def pipeline_signature(spec: Union[str, PipelineSpec]) -> str:
    """Canonical printed form of a pipeline — the hashable transform description.

    Parsing, building and re-printing normalizes aliases, option order and
    default values, so two equivalent spellings share one signature.  The
    DSE runtime embeds this in QoR-cache fingerprints and checkpoint
    configs: a changed transform pipeline can never silently reuse stale
    estimates.
    """
    return build_pipeline(spec).to_spec()

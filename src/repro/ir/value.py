"""SSA values.

A :class:`Value` is produced either as a block argument or as the result of
an operation.  Every value keeps a use list so transforms can perform
replace-all-uses-with and dead-code elimination efficiently.

The use list is stored as an insertion-ordered dict keyed by the identity of
each :class:`Use`, which makes the operations the rewrite driver hammers
O(1) *without* changing the observable order of ``value.uses``:

* registering a use (``Operation.append_operand``) appends to the dict,
* dropping a use (``erase``/``set_operand``/``drop_all_references``) deletes
  its key — the seed representation scanned a plain list per removal, which
  made erasing ops that touch a many-use value (a memref feeding thousands
  of unrolled accesses) quadratic in the use count,
* ``num_uses``/``has_uses`` read ``len()`` of the dict.

``value.uses`` stays the public read surface: it returns the uses in
registration order (a fresh snapshot list, safe to iterate while mutating).
Every class here carries ``__slots__`` — per-op memory is a first-order cost
for fully-unrolled kernels, where one DSE evaluation materializes hundreds
of thousands of values and uses.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.ir.block import Block
    from repro.ir.operation import Operation
    from repro.ir.types import Type


class Use:
    """One use of a value: operand ``index`` of operation ``owner``."""

    __slots__ = ("value", "owner", "index")

    def __init__(self, value: "Value", owner: "Operation", index: int):
        self.value = value
        self.owner = owner
        self.index = index

    def __repr__(self) -> str:
        return f"Use({self.owner.name}, operand {self.index})"

    # Uses are plain (value, owner, index) triples under pickle; the owning
    # value's dict is rebuilt (fresh ids) by Value.__setstate__.

    def __getstate__(self):
        return (self.value, self.owner, self.index)

    def __setstate__(self, state) -> None:
        self.value, self.owner, self.index = state


class Value:
    """Base class of SSA values."""

    __slots__ = ("type", "_uses")

    def __init__(self, type: "Type"):
        self.type = type
        #: id(Use) -> Use, in registration order (dicts preserve insertion
        #: order, and deleting a key keeps the order of the rest).
        self._uses: dict[int, Use] = {}

    # -- use-list management ----------------------------------------------------

    @property
    def uses(self) -> list[Use]:
        """The uses of this value, in registration order (fresh snapshot)."""
        return list(self._uses.values())

    def add_use(self, owner: "Operation", index: int) -> Use:
        use = Use(self, owner, index)
        self._uses[id(use)] = use
        return use

    def remove_use(self, owner: "Operation", index: int) -> None:
        """Drop the use at operand ``index`` of ``owner`` (O(uses) scan).

        Kept for compatibility; internal callers hold the :class:`Use` and
        drop it in O(1) via :meth:`drop_use`.
        """
        for key, use in self._uses.items():
            if use.owner is owner and use.index == index:
                del self._uses[key]
                return
        raise ValueError("use not found")

    def drop_use(self, use: Use) -> None:
        """Unregister ``use`` (O(1); it must belong to this value)."""
        del self._uses[id(use)]

    @property
    def users(self) -> list["Operation"]:
        """Operations that use this value (duplicates removed, first-use order)."""
        return list(dict.fromkeys(use.owner for use in self._uses.values()))

    def has_uses(self) -> bool:
        return bool(self._uses)

    def num_uses(self) -> int:
        return len(self._uses)

    def replace_all_uses_with(self, other: "Value") -> None:
        """Rewrite every use of this value to use ``other`` instead."""
        if other is self:
            return
        for use in list(self._uses.values()):
            use.owner.set_operand(use.index, other)

    def replace_uses_where(self, other: "Value", predicate) -> None:
        """Replace uses whose owning operation satisfies ``predicate``."""
        for use in list(self._uses.values()):
            if predicate(use.owner):
                use.owner.set_operand(use.index, other)

    # -- structural queries -------------------------------------------------------

    @property
    def owner(self):
        raise NotImplementedError

    def iter_uses(self) -> Iterator[Use]:
        return iter(list(self._uses.values()))

    # -- pickling -----------------------------------------------------------------
    #
    # The use dict is keyed by object ids, which do not survive pickling; it
    # is persisted as the ordered use list and re-keyed on load, preserving
    # registration order exactly (worker processes must observe the same use
    # order as the coordinator for bit-identical evaluation).

    def __getstate__(self) -> dict:
        state = {slot: getattr(self, slot) for slot in _state_slots(type(self))
                 if slot != "_uses" and hasattr(self, slot)}
        state["_use_list"] = list(self._uses.values())
        return state

    def __setstate__(self, state: dict) -> None:
        uses = state.pop("_use_list", ())
        for key, value in state.items():
            setattr(self, key, value)
        self._uses = {id(use): use for use in uses}


def _state_slots(cls) -> tuple[str, ...]:
    """Every ``__slots__`` entry of ``cls`` and its bases (cached per class)."""
    cached = _SLOT_CACHE.get(cls)
    if cached is None:
        cached = tuple(slot for klass in reversed(cls.__mro__)
                       for slot in getattr(klass, "__slots__", ()))
        _SLOT_CACHE[cls] = cached
    return cached


_SLOT_CACHE: dict[type, tuple[str, ...]] = {}


class BlockArgument(Value):
    """A value defined as an argument of a block (e.g. a loop induction variable)."""

    __slots__ = ("block", "index")

    def __init__(self, type: "Type", block: "Block", index: int):
        super().__init__(type)
        self.block = block
        self.index = index

    @property
    def owner(self) -> "Block":
        return self.block

    def __repr__(self) -> str:
        return f"BlockArgument({self.type}, index={self.index})"


class OpResult(Value):
    """A value produced as the ``index``-th result of an operation."""

    __slots__ = ("operation", "index")

    def __init__(self, type: "Type", operation: "Operation", index: int):
        super().__init__(type)
        self.operation = operation
        self.index = index

    @property
    def owner(self) -> "Operation":
        return self.operation

    def __repr__(self) -> str:
        return f"OpResult({self.operation.name}, {self.type}, index={self.index})"

"""SSA values.

A :class:`Value` is produced either as a block argument or as the result of
an operation.  Every value keeps a use list so transforms can perform
replace-all-uses-with and dead-code elimination efficiently.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.ir.block import Block
    from repro.ir.operation import Operation
    from repro.ir.types import Type


class Use:
    """One use of a value: operand ``index`` of operation ``owner``."""

    __slots__ = ("owner", "index")

    def __init__(self, owner: "Operation", index: int):
        self.owner = owner
        self.index = index

    def __repr__(self) -> str:
        return f"Use({self.owner.name}, operand {self.index})"


class Value:
    """Base class of SSA values."""

    def __init__(self, type: "Type"):
        self.type = type
        self.uses: list[Use] = []

    # -- use-list management ----------------------------------------------------

    def add_use(self, owner: "Operation", index: int) -> None:
        self.uses.append(Use(owner, index))

    def remove_use(self, owner: "Operation", index: int) -> None:
        for i, use in enumerate(self.uses):
            if use.owner is owner and use.index == index:
                del self.uses[i]
                return
        raise ValueError("use not found")

    @property
    def users(self) -> list["Operation"]:
        """Operations that use this value (may contain duplicates removed)."""
        seen: list[Operation] = []
        for use in self.uses:
            if use.owner not in seen:
                seen.append(use.owner)
        return seen

    def has_uses(self) -> bool:
        return bool(self.uses)

    def num_uses(self) -> int:
        return len(self.uses)

    def replace_all_uses_with(self, other: "Value") -> None:
        """Rewrite every use of this value to use ``other`` instead."""
        if other is self:
            return
        for use in list(self.uses):
            use.owner.set_operand(use.index, other)

    def replace_uses_where(self, other: "Value", predicate) -> None:
        """Replace uses whose owning operation satisfies ``predicate``."""
        for use in list(self.uses):
            if predicate(use.owner):
                use.owner.set_operand(use.index, other)

    # -- structural queries -------------------------------------------------------

    @property
    def owner(self):
        raise NotImplementedError

    def iter_uses(self) -> Iterator[Use]:
        return iter(list(self.uses))


class BlockArgument(Value):
    """A value defined as an argument of a block (e.g. a loop induction variable)."""

    def __init__(self, type: "Type", block: "Block", index: int):
        super().__init__(type)
        self.block = block
        self.index = index

    @property
    def owner(self) -> "Block":
        return self.block

    def __repr__(self) -> str:
        return f"BlockArgument({self.type}, index={self.index})"


class OpResult(Value):
    """A value produced as the ``index``-th result of an operation."""

    def __init__(self, type: "Type", operation: "Operation", index: int):
        super().__init__(type)
        self.operation = operation
        self.index = index

    @property
    def owner(self) -> "Operation":
        return self.operation

    def __repr__(self) -> str:
        return f"OpResult({self.operation.name}, {self.type}, index={self.index})"

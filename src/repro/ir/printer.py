"""Textual printing of the IR in an MLIR-like syntax.

The printed form is for humans, diagnostics and tests; the framework does not
round-trip text back into IR (the C front-end and the Python builders are the
ways in).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.ir.value import BlockArgument, Value

if TYPE_CHECKING:  # pragma: no cover
    from repro.ir.block import Block
    from repro.ir.operation import Operation
    from repro.ir.region import Region


class Printer:
    """Prints operations with stable, per-function SSA value numbering.

    With ``stable_ids=True`` block arguments are numbered by the encounter
    order of their blocks instead of by object identity, so two structurally
    identical IR trees print to byte-identical text (used by the DSE runtime
    to fingerprint kernels across processes and sessions).
    """

    def __init__(self, indent_width: int = 2, stable_ids: bool = False):
        self.indent_width = indent_width
        self.stable_ids = stable_ids
        self._names: dict[Value, str] = {}
        self._block_ids: dict[object, int] = {}
        self._next_id = 0
        self._lines: list[str] = []

    # -- public API -----------------------------------------------------------------

    def print(self, op: "Operation") -> str:
        self._names = {}
        self._block_ids = {}
        self._next_id = 0
        self._lines = []
        self._print_op(op, 0)
        return "\n".join(self._lines)

    # -- naming ----------------------------------------------------------------------

    def _block_scope(self, block) -> int:
        if self.stable_ids:
            return self._block_ids.setdefault(block, len(self._block_ids))
        return id(block) % 9973

    def _name_of(self, value: Value) -> str:
        if value not in self._names:
            if isinstance(value, BlockArgument):
                self._names[value] = f"%arg{value.index}_{self._block_scope(value.block)}"
            else:
                self._names[value] = f"%{self._next_id}"
                self._next_id += 1
        return self._names[value]

    def _assign_result_names(self, op: "Operation") -> list[str]:
        return [self._name_of(result) for result in op.results]

    # -- printing ---------------------------------------------------------------------

    def _print_op(self, op: "Operation", depth: int) -> None:
        indent = " " * (depth * self.indent_width)
        results = self._assign_result_names(op)
        prefix = f"{', '.join(results)} = " if results else ""
        operands = ", ".join(self._name_of(v) for v in op.operands)
        attrs = self._format_attributes(op)
        header = f"{indent}{prefix}\"{op.name}\"({operands})"
        if attrs:
            header += f" {attrs}"
        if op.results:
            header += " : " + ", ".join(str(r.type) for r in op.results)
        if not op.regions:
            self._lines.append(header)
            return
        self._lines.append(header + " {")
        for region in op.regions:
            self._print_region(region, depth + 1)
        self._lines.append(f"{indent}}}")

    def _print_region(self, region: "Region", depth: int) -> None:
        indent = " " * (depth * self.indent_width)
        for block_index, block in enumerate(region.blocks):
            if block.arguments or len(region.blocks) > 1:
                args = ", ".join(
                    f"{self._name_of(arg)}: {arg.type}" for arg in block.arguments)
                self._lines.append(f"{indent}^bb{block_index}({args}):")
            for op in block.operations:
                self._print_op(op, depth)

    def _format_attributes(self, op: "Operation") -> str:
        if not op.attributes:
            return ""
        parts = []
        for key in sorted(op.attributes):
            value = op.attributes[key]
            parts.append(f"{key} = {self._format_attr_value(value)}")
        return "{" + ", ".join(parts) + "}"

    def _format_attr_value(self, value) -> str:
        if isinstance(value, bool):
            return "true" if value else "false"
        if isinstance(value, str):
            return f'"{value}"'
        if isinstance(value, (list, tuple)):
            return "[" + ", ".join(self._format_attr_value(v) for v in value) + "]"
        if isinstance(value, dict):
            inner = ", ".join(f"{k} = {self._format_attr_value(v)}" for k, v in value.items())
            return "{" + inner + "}"
        return str(value)


def print_op(op: "Operation", stable_ids: bool = False) -> str:
    """Convenience wrapper: print a single operation tree."""
    return Printer(stable_ids=stable_ids).print(op)

"""The IR core: values, operations, blocks, regions, types and passes.

This package is a compact, pure-Python analogue of the slice of MLIR that
ScaleHLS builds upon.  Dialect-specific operations live in
:mod:`repro.dialects`; this package provides the dialect-agnostic machinery.
"""

from repro.ir.types import (
    Type,
    NoneType,
    IndexType,
    IntegerType,
    FloatType,
    FunctionType,
    TensorType,
    MemRefType,
    PartitionKind,
    build_partition_map,
    MEMORY_SPACE_DEFAULT,
    MEMORY_SPACE_DRAM,
    MEMORY_SPACE_BRAM_1P,
    MEMORY_SPACE_BRAM_S2P,
    MEMORY_SPACE_BRAM_T2P,
    f32,
    f64,
    i1,
    i32,
    i64,
    index,
)
from repro.ir.value import Value, BlockArgument, OpResult, Use
from repro.ir.operation import Operation
from repro.ir.block import Block
from repro.ir.region import Region
from repro.ir.module import ModuleOp
from repro.ir.builder import Builder, InsertionPoint
from repro.ir.printer import Printer, print_op
from repro.ir.verifier import verify, VerificationError
from repro.ir.pass_manager import (
    AnchoredPipeline,
    FunctionPass,
    LambdaPass,
    ModulePass,
    Pass,
    PassError,
    PassManager,
    PassOption,
    PassTimingCollector,
    collect_pass_timings,
)
from repro.ir.pass_registry import (
    build_pipeline,
    get_pass_class,
    parse_pipeline,
    pipeline_signature,
    register_pass,
    registered_passes,
)
from repro.ir.rewrite import (
    BlockScanPattern,
    GreedyRewriteDriver,
    PatternRewriter,
    RewritePattern,
    apply_patterns_greedily,
    get_rewrite_strategy,
    set_rewrite_strategy,
)
from repro.ir.dialect import Dialect, DialectRegistry, registry, register_operation

__all__ = [
    "Type",
    "NoneType",
    "IndexType",
    "IntegerType",
    "FloatType",
    "FunctionType",
    "TensorType",
    "MemRefType",
    "PartitionKind",
    "build_partition_map",
    "MEMORY_SPACE_DEFAULT",
    "MEMORY_SPACE_DRAM",
    "MEMORY_SPACE_BRAM_1P",
    "MEMORY_SPACE_BRAM_S2P",
    "MEMORY_SPACE_BRAM_T2P",
    "f32",
    "f64",
    "i1",
    "i32",
    "i64",
    "index",
    "Value",
    "BlockArgument",
    "OpResult",
    "Use",
    "Operation",
    "Block",
    "Region",
    "ModuleOp",
    "Builder",
    "InsertionPoint",
    "Printer",
    "print_op",
    "verify",
    "VerificationError",
    "Pass",
    "FunctionPass",
    "ModulePass",
    "LambdaPass",
    "PassManager",
    "PassError",
    "PassOption",
    "PassTimingCollector",
    "AnchoredPipeline",
    "collect_pass_timings",
    "build_pipeline",
    "get_pass_class",
    "parse_pipeline",
    "pipeline_signature",
    "register_pass",
    "registered_passes",
    "RewritePattern",
    "PatternRewriter",
    "BlockScanPattern",
    "GreedyRewriteDriver",
    "apply_patterns_greedily",
    "get_rewrite_strategy",
    "set_rewrite_strategy",
    "Dialect",
    "DialectRegistry",
    "registry",
    "register_operation",
]

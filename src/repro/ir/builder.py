"""Operation builders and insertion points."""

from __future__ import annotations

import contextlib
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.ir.block import Block
    from repro.ir.operation import Operation


class InsertionPoint:
    """A position inside a block where new operations are inserted."""

    def __init__(self, block: "Block", index: Optional[int] = None):
        self.block = block
        #: None means "at the end of the block".
        self.index = index

    @staticmethod
    def at_end(block: "Block") -> "InsertionPoint":
        return InsertionPoint(block, None)

    @staticmethod
    def at_start(block: "Block") -> "InsertionPoint":
        return InsertionPoint(block, 0)

    @staticmethod
    def before(op: "Operation") -> "InsertionPoint":
        return InsertionPoint(op.parent, op.parent.index_of(op))

    @staticmethod
    def after(op: "Operation") -> "InsertionPoint":
        return InsertionPoint(op.parent, op.parent.index_of(op) + 1)

    def insert(self, op: "Operation") -> "Operation":
        if self.index is None:
            return self.block.append(op)
        inserted = self.block.insert(self.index, op)
        self.index += 1
        return inserted


class Builder:
    """Creates operations at a movable insertion point.

    The builder is deliberately dialect-agnostic: dialect modules provide
    functions taking a builder and returning the created operation, e.g.
    ``arith.constant(builder, 1.0, f32)``.
    """

    def __init__(self, insertion_point: Optional[InsertionPoint] = None):
        self.insertion_point = insertion_point

    # -- insertion point management --------------------------------------------------

    def set_insertion_point_to_end(self, block: "Block") -> None:
        self.insertion_point = InsertionPoint.at_end(block)

    def set_insertion_point_to_start(self, block: "Block") -> None:
        self.insertion_point = InsertionPoint.at_start(block)

    def set_insertion_point_before(self, op: "Operation") -> None:
        self.insertion_point = InsertionPoint.before(op)

    def set_insertion_point_after(self, op: "Operation") -> None:
        self.insertion_point = InsertionPoint.after(op)

    @contextlib.contextmanager
    def at_end(self, block: "Block"):
        """Temporarily move the insertion point to the end of ``block``."""
        saved = self.insertion_point
        self.set_insertion_point_to_end(block)
        try:
            yield self
        finally:
            self.insertion_point = saved

    @contextlib.contextmanager
    def at_start(self, block: "Block"):
        saved = self.insertion_point
        self.set_insertion_point_to_start(block)
        try:
            yield self
        finally:
            self.insertion_point = saved

    @contextlib.contextmanager
    def before(self, op: "Operation"):
        saved = self.insertion_point
        self.set_insertion_point_before(op)
        try:
            yield self
        finally:
            self.insertion_point = saved

    # -- op creation ---------------------------------------------------------------------

    def insert(self, op: "Operation") -> "Operation":
        """Insert an already constructed operation at the insertion point."""
        if self.insertion_point is None:
            raise RuntimeError("builder has no insertion point")
        return self.insertion_point.insert(op)

    def create(self, op_class, *args, **kwargs) -> "Operation":
        """Construct ``op_class(*args, **kwargs)`` and insert it."""
        op = op_class(*args, **kwargs)
        return self.insert(op)

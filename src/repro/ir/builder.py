"""Operation builders and insertion points."""

from __future__ import annotations

import contextlib
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.ir.block import Block
    from repro.ir.operation import Operation


class InsertionPoint:
    """A position inside a block where new operations are inserted.

    The position is anchored on an operation — "immediately before
    ``anchor``" (``None`` anchors at the end of the block), "directly after"
    for :meth:`after`, or "the start of the block" for :meth:`at_start` —
    which makes creating and using an insertion point O(1): no positional
    index is ever computed.  Consecutive inserts keep their creation order,
    exactly like the old index-advancing behavior.

    Anchored points resolve their block at insert time, so they stay valid
    when the anchor operation is moved to another block in between.
    """

    def __init__(self, block: Optional["Block"], anchor: "Optional[Operation]" = None,
                 at_start: bool = False, after: "Optional[Operation]" = None):
        self.block = block
        #: Insert before this operation; None means "at the end of block".
        self.anchor = anchor
        #: True while the point means "the start of the block": the anchor is
        #: resolved to the block's first op at first insert, so ops appended
        #: or prepended between creation and use cannot displace it.
        self._at_start = at_start
        #: "Directly after this op" mode: advances to each inserted op so
        #: consecutive inserts keep their order, and ops appended behind the
        #: anchor by other code cannot displace the point.
        self._after = after

    @staticmethod
    def at_end(block: "Block") -> "InsertionPoint":
        return InsertionPoint(block, None)

    @staticmethod
    def at_start(block: "Block") -> "InsertionPoint":
        return InsertionPoint(block, None, at_start=True)

    @staticmethod
    def before(op: "Operation") -> "InsertionPoint":
        return InsertionPoint(op.parent, op)

    @staticmethod
    def after(op: "Operation") -> "InsertionPoint":
        return InsertionPoint(op.parent, after=op)

    def insert(self, op: "Operation") -> "Operation":
        if self._after is not None:
            block = self._after.parent
            if block is None:
                raise ValueError("insertion anchor is no longer in a block")
            self.block = block
            inserted = block.insert_after(self._after, op)
            self._after = inserted
            return inserted
        if self._at_start:
            self.anchor = self.block.first_op
            self._at_start = False
            if self.anchor is None:
                # First insert into an empty block: append, then keep
                # tracking the front by advancing behind what we inserted
                # (old index semantics), not by degrading to "at end".
                inserted = self.block.append(op)
                self._after = inserted
                return inserted
        if self.anchor is None:
            return self.block.append(op)
        block = self.anchor.parent
        if block is None:
            raise ValueError("insertion anchor is no longer in a block")
        self.block = block
        return block.insert_before(self.anchor, op)


class Builder:
    """Creates operations at a movable insertion point.

    The builder is deliberately dialect-agnostic: dialect modules provide
    functions taking a builder and returning the created operation, e.g.
    ``arith.constant(builder, 1.0, f32)``.
    """

    def __init__(self, insertion_point: Optional[InsertionPoint] = None):
        self.insertion_point = insertion_point

    # -- insertion point management --------------------------------------------------

    def set_insertion_point_to_end(self, block: "Block") -> None:
        self.insertion_point = InsertionPoint.at_end(block)

    def set_insertion_point_to_start(self, block: "Block") -> None:
        self.insertion_point = InsertionPoint.at_start(block)

    def set_insertion_point_before(self, op: "Operation") -> None:
        self.insertion_point = InsertionPoint.before(op)

    def set_insertion_point_after(self, op: "Operation") -> None:
        self.insertion_point = InsertionPoint.after(op)

    @contextlib.contextmanager
    def at_end(self, block: "Block"):
        """Temporarily move the insertion point to the end of ``block``."""
        saved = self.insertion_point
        self.set_insertion_point_to_end(block)
        try:
            yield self
        finally:
            self.insertion_point = saved

    @contextlib.contextmanager
    def at_start(self, block: "Block"):
        saved = self.insertion_point
        self.set_insertion_point_to_start(block)
        try:
            yield self
        finally:
            self.insertion_point = saved

    @contextlib.contextmanager
    def before(self, op: "Operation"):
        saved = self.insertion_point
        self.set_insertion_point_before(op)
        try:
            yield self
        finally:
            self.insertion_point = saved

    # -- op creation ---------------------------------------------------------------------

    def insert(self, op: "Operation") -> "Operation":
        """Insert an already constructed operation at the insertion point."""
        if self.insertion_point is None:
            raise RuntimeError("builder has no insertion point")
        return self.insertion_point.insert(op)

    def create(self, op_class, *args, **kwargs) -> "Operation":
        """Construct ``op_class(*args, **kwargs)`` and insert it."""
        op = op_class(*args, **kwargs)
        return self.insert(op)

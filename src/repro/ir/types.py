"""The type system of the IR.

Types are immutable and compared structurally.  The set mirrors the MLIR
types ScaleHLS relies on: integers, floats, index, function types, ranked
tensors (graph level) and memrefs (loop/directive level).  A
:class:`MemRefType` additionally carries the affine *layout map* and the
*memory space* integer that ScaleHLS uses to encode array partitioning and
the resource/interface directives (paper Section IV-C).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.affine.map import AffineMap


class Type:
    """Base class for all types."""

    def _key(self):
        raise NotImplementedError

    def __eq__(self, other) -> bool:
        if not isinstance(other, Type):
            return NotImplemented
        return type(self) is type(other) and self._key() == other._key()

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def __repr__(self) -> str:
        return str(self)


class NoneType(Type):
    """The unit type (no value)."""

    def _key(self):
        return ()

    def __str__(self) -> str:
        return "none"


class IndexType(Type):
    """The type of loop induction variables and memory indices."""

    def _key(self):
        return ()

    def __str__(self) -> str:
        return "index"


class IntegerType(Type):
    """A fixed-width integer type, e.g. ``i1`` or ``i32``."""

    def __init__(self, width: int, signed: bool = True):
        if width <= 0:
            raise ValueError("integer width must be positive")
        self.width = int(width)
        self.signed = bool(signed)

    def _key(self):
        return (self.width, self.signed)

    def __str__(self) -> str:
        prefix = "i" if self.signed else "ui"
        return f"{prefix}{self.width}"


class FloatType(Type):
    """An IEEE float type, e.g. ``f32`` or ``f64``."""

    def __init__(self, width: int = 32):
        if width not in (16, 32, 64):
            raise ValueError("float width must be 16, 32 or 64")
        self.width = int(width)

    def _key(self):
        return (self.width,)

    def __str__(self) -> str:
        return f"f{self.width}"


class FunctionType(Type):
    """A function type ``(inputs) -> (results)``."""

    def __init__(self, inputs: Sequence[Type], results: Sequence[Type]):
        self.inputs: tuple[Type, ...] = tuple(inputs)
        self.results: tuple[Type, ...] = tuple(results)

    def _key(self):
        return (self.inputs, self.results)

    def __str__(self) -> str:
        inputs = ", ".join(str(t) for t in self.inputs)
        results = ", ".join(str(t) for t in self.results)
        return f"({inputs}) -> ({results})"


class ShapedType(Type):
    """Common base of tensor and memref types."""

    def __init__(self, shape: Sequence[int], element_type: Type):
        self.shape: tuple[int, ...] = tuple(int(d) for d in shape)
        if any(d <= 0 for d in self.shape):
            raise ValueError("only statically sized, positive dimensions are supported")
        self.element_type = element_type

    @property
    def rank(self) -> int:
        return len(self.shape)

    @property
    def num_elements(self) -> int:
        total = 1
        for d in self.shape:
            total *= d
        return total


class TensorType(ShapedType):
    """A ranked tensor type used at the graph level, e.g. ``tensor<1x3x32x32xf32>``."""

    def _key(self):
        return (self.shape, self.element_type)

    def __str__(self) -> str:
        dims = "x".join(str(d) for d in self.shape)
        return f"tensor<{dims}x{self.element_type}>"


#: Memory spaces used by ScaleHLS to encode the resource directive.
MEMORY_SPACE_DEFAULT = 0
MEMORY_SPACE_DRAM = 1
MEMORY_SPACE_BRAM_1P = 2
MEMORY_SPACE_BRAM_S2P = 3
MEMORY_SPACE_BRAM_T2P = 4

MEMORY_SPACE_NAMES = {
    MEMORY_SPACE_DEFAULT: "default",
    MEMORY_SPACE_DRAM: "dram",
    MEMORY_SPACE_BRAM_1P: "ram_1p_bram",
    MEMORY_SPACE_BRAM_S2P: "ram_s2p_bram",
    MEMORY_SPACE_BRAM_T2P: "ram_t2p_bram",
}

#: Read/write ports available per physical bank, by memory space.
MEMORY_SPACE_PORTS = {
    MEMORY_SPACE_DEFAULT: 2,
    MEMORY_SPACE_DRAM: 1,
    MEMORY_SPACE_BRAM_1P: 1,
    MEMORY_SPACE_BRAM_S2P: 2,
    MEMORY_SPACE_BRAM_T2P: 2,
}


class PartitionKind:
    """Array partition fashions supported by downstream HLS tools."""

    NONE = "none"
    CYCLIC = "cyclic"
    BLOCK = "block"
    COMPLETE = "complete"


class MemRefType(ShapedType):
    """A memref type with an optional layout map, partition info and memory space.

    ``partition`` is a per-dimension tuple of ``(kind, factor)`` pairs that is
    kept in sync with the layout map: a partitioned memref's layout map has N
    inputs and 2N results (partition indices followed by physical indices).
    """

    def __init__(self, shape: Sequence[int], element_type: Type,
                 layout_map: Optional[AffineMap] = None,
                 memory_space: int = MEMORY_SPACE_BRAM_S2P,
                 partition: Optional[Sequence[tuple[str, int]]] = None):
        super().__init__(shape, element_type)
        self.memory_space = int(memory_space)
        if partition is None:
            partition = tuple((PartitionKind.NONE, 1) for _ in self.shape)
        self.partition: tuple[tuple[str, int], ...] = tuple(
            (str(kind), int(factor)) for kind, factor in partition)
        if len(self.partition) != len(self.shape):
            raise ValueError("partition info must cover every dimension")
        if layout_map is None:
            layout_map = build_partition_map(self.shape, self.partition)
        self.layout_map = layout_map

    def _key(self):
        return (self.shape, self.element_type, self.layout_map,
                self.memory_space, self.partition)

    def __str__(self) -> str:
        dims = "x".join(str(d) for d in self.shape)
        parts = [f"{dims}x{self.element_type}"]
        if not self.layout_map.is_identity() or self.num_partitions > 1:
            parts.append(str(self.layout_map))
        if self.memory_space != MEMORY_SPACE_DEFAULT:
            parts.append(str(self.memory_space))
        return f"memref<{', '.join(parts)}>"

    # -- partition helpers ------------------------------------------------------

    @property
    def num_partitions(self) -> int:
        """Total number of physical banks after partitioning."""
        total = 1
        for _, factor in self.partition:
            total *= max(1, factor)
        return total

    @property
    def ports_per_bank(self) -> int:
        return MEMORY_SPACE_PORTS.get(self.memory_space, 2)

    def with_partition(self, partition: Sequence[tuple[str, int]]) -> "MemRefType":
        """Return a copy with a new partition scheme (layout map rebuilt)."""
        return MemRefType(self.shape, self.element_type, None,
                          self.memory_space, partition)

    def with_memory_space(self, memory_space: int) -> "MemRefType":
        return MemRefType(self.shape, self.element_type, self.layout_map,
                          memory_space, self.partition)

    def bank_of(self, indices: Sequence[int]) -> tuple[int, ...]:
        """Physical bank (partition index per dim) of a logical element."""
        results = self.layout_map.evaluate(list(indices))
        return tuple(results[: self.rank])


def build_partition_map(shape: Sequence[int], partition: Sequence[tuple[str, int]]) -> AffineMap:
    """Build the ScaleHLS layout map encoding an array-partition scheme.

    For an N-dimensional array the map has N inputs and 2N results; result
    ``i`` is the partition index of dim ``i`` and result ``N + i`` the
    physical index inside the bank (paper Fig. 3).
    """
    from repro.affine.expr import constant, dim as dim_expr

    rank = len(shape)
    partition_exprs = []
    physical_exprs = []
    for i, ((kind, factor), size) in enumerate(zip(partition, shape)):
        d = dim_expr(i)
        factor = max(1, int(factor))
        if kind == PartitionKind.NONE or factor == 1:
            partition_exprs.append(constant(0))
            physical_exprs.append(d)
        elif kind == PartitionKind.CYCLIC:
            partition_exprs.append(d % factor)
            physical_exprs.append(d.floordiv(factor))
        elif kind == PartitionKind.BLOCK:
            block = max(1, -(-size // factor))  # ceil(size / factor)
            partition_exprs.append(d.floordiv(block))
            physical_exprs.append(d % block)
        elif kind == PartitionKind.COMPLETE:
            partition_exprs.append(d)
            physical_exprs.append(constant(0))
        else:
            raise ValueError(f"unknown partition kind {kind!r}")
    return AffineMap(rank, 0, partition_exprs + physical_exprs)


# Convenient singletons.
f32 = FloatType(32)
f64 = FloatType(64)
i1 = IntegerType(1)
i32 = IntegerType(32)
i64 = IntegerType(64)
index = IndexType()
none = NoneType()

"""Structural IR verification.

The verifier catches the mistakes transforms are most likely to introduce:
dangling operand uses, results used before they are defined, broken
parent/child links, blocks without terminators inside region-holding ops, and
type mismatches on common dialect operations.

Dominance is checked per operand with the intrusive op list's O(1) order
keys: walk the use's enclosing blocks up to the definition's block, then
compare two order keys.  The seed implementation instead accumulated a
"values available so far" set per block — copying the whole visible set once
per nested block, which is quadratic on the region-heavy IR full unrolling
produces (one nested block per unrolled body).  The order-key walk is
O(nesting depth) per operand, and the nesting depth of real HLS IR is small.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.ir.value import BlockArgument, OpResult

if TYPE_CHECKING:  # pragma: no cover
    from repro.ir.operation import Operation


class VerificationError(Exception):
    """Raised when the IR is structurally invalid."""


def verify(op: "Operation", *, require_terminators: bool = True) -> None:
    """Verify ``op`` and everything nested inside it.

    Raises :class:`VerificationError` on the first problem found.
    """
    _verify_op(op, require_terminators=require_terminators)


def _verify_op(op: "Operation", require_terminators: bool) -> None:
    for index, operand in enumerate(op.operands):
        if isinstance(operand, (OpResult, BlockArgument)) and op.parent is not None:
            _check_dominance(op, operand, index)
        if not any(use.owner is op and use.index == index for use in operand.uses):
            raise VerificationError(
                f"operand {index} of {op.name} is missing its use-list entry")

    for region in op.regions:
        for block in region.blocks:
            block.ensure_order()
            previous = None
            for inner in block.operations:
                if inner.parent is not block:
                    raise VerificationError(
                        f"operation {inner.name} has a stale parent pointer")
                if previous is not None and previous._order >= inner._order:
                    raise VerificationError(
                        f"operation {inner.name} has a non-increasing block "
                        f"order key (broken intrusive list invariant)")
                previous = inner
                _verify_op(inner, require_terminators)
            if require_terminators:
                # The last op may or may not be a terminator depending on
                # dialect, but a terminator anywhere else is always invalid.
                for inner in block.operations:
                    if inner.is_terminator() and inner is not block.last_op:
                        raise VerificationError(
                            f"terminator {inner.name} is not the last operation "
                            f"of its block (inside {op.name})")


def _check_dominance(op: "Operation", operand, index: int) -> None:
    """Check that ``operand`` dominates ``op``.

    Walk ``op``'s enclosing blocks outward until the operand's defining
    block is found, tracking the ancestor operation at each level; the
    definition must then come strictly before that ancestor (one O(1)
    order-key comparison).  Block arguments only need their block to enclose
    the use.
    """
    defining_block = operand.owner if isinstance(operand, BlockArgument) else operand.owner.parent
    ancestor = op
    current = op.parent
    while current is not None:
        if current is defining_block:
            if isinstance(operand, BlockArgument):
                return
            definer = operand.owner
            if definer is ancestor or not definer.is_before_in_block(ancestor):
                raise VerificationError(
                    f"operand {index} of {op.name} is used before its definition")
            return
        parent_op = current.parent_op
        if parent_op is None:
            break
        ancestor = parent_op
        current = parent_op.parent
    raise VerificationError(
        f"operand {index} of {op.name} ({operand!r}) is not visible from the "
        f"operation's position")

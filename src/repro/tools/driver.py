"""A command-line driver for the compilation flows.

The original ScaleHLS ships three binaries — ``scalehls-clang`` (the C
front-end), ``scalehls-opt`` (conversion/transform passes) and
``scalehls-translate`` (the C++ emitter).  This driver packages the same
functionality behind one entry point with sub-commands:

``compile``
    Parse an HLS C file (or a named PolyBench kernel), raise it to the affine
    level and print the IR.

``estimate``
    Estimate latency / resources of a kernel, optionally after applying an
    explicit design point.

``dse``
    Run the automated DSE engine on a kernel and print the Pareto frontier
    plus the finalized design.

``emit``
    Apply a design point (or the DSE result) and emit synthesizable HLS C++.

``dnn``
    Compile one of the bundled DNN models with the multi-level optimization
    and report its QoR — or, with ``--dse``, sweep every dataflow node's
    design space through the multi-kernel scheduler and compose the
    model-level Pareto frontier (``--jobs/--cache/--checkpoint/--resume``
    parity with ``dse``, plus ``--smoke`` for a CI-sized sweep).

``list-passes``
    Print every registered pass with its anchor and options, and self-check
    the registry (constructibility, picklability, spec round-trip).

Pass pipelines are first-class: ``compile --pipeline SPEC`` runs a textual
pipeline (e.g. ``"func.func(raise-scf-to-affine,canonicalize)"``) instead of
the default flow, and every sub-command accepts ``--print-pass-timing`` to
emit an MLIR ``-pass-timing`` style report of all passes the flow executed.

Run ``python -m repro.tools.driver <command> --help`` for the options.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import sys
import time
from typing import Optional, Sequence

from repro import obs
from repro.dse import DesignSpaceExplorer
from repro.dse.apply import apply_design_point, estimate_baseline
from repro.dse.space import KernelDesignPoint
from repro.emit import emit_hlscpp
from repro.estimation import PLATFORMS, XC7Z020
from repro.estimation.platform import Platform, PlatformError, load_platform_config
from repro.ir import print_op, verify
from repro.ir.pass_manager import PassError, dump_ir_after
from repro.kernels import KERNEL_NAMES
from repro.obs.export import write_chrome_trace, write_metrics_json
from repro.obs.report import (
    format_pattern_stats,
    format_timing_report,
    pass_timings_of,
    pattern_stats_of,
    render_run_summary,
)
from repro.pipeline import compile_c, compile_dnn, compile_kernel, dnn_baseline


def _resolve_platforms(args, default_name: str) -> list[Platform]:
    """Resolve ``--platform`` / ``--platform-config`` to an ordered target list.

    ``--platform-config`` entries extend (and, on a name collision, override)
    the bundled targets.  Explicit ``--platform`` names select from that
    combined catalog; with none given, a config file's platforms become the
    sweep, and without either the command uses its historical default.
    Duplicates are dropped while preserving first-mention order, so the list
    is a stable part of the design-space fingerprint.
    """
    available = dict(PLATFORMS)
    configured: list[Platform] = []
    config_path = getattr(args, "platform_config", None)
    if config_path:
        try:
            configured = load_platform_config(config_path)
        except PlatformError as error:
            raise SystemExit(f"--platform-config: {error}") from error
        for platform in configured:
            available[platform.name] = platform
    names = list(getattr(args, "platform", None) or [])
    if not names:
        names = [platform.name for platform in configured] or [default_name]
    resolved: list[Platform] = []
    seen: set[str] = set()
    for name in names:
        if name not in available:
            raise SystemExit(f"unknown platform {name!r}; choose from "
                             f"{sorted(available)}")
        if name not in seen:
            seen.add(name)
            resolved.append(available[name])
    return resolved


def _single_platform(args, default_name: str) -> Platform:
    """The one target of a non-sweep command (estimate/emit/dnn compile)."""
    platforms = _resolve_platforms(args, default_name)
    if len(platforms) > 1:
        raise SystemExit(f"{args.command} targets a single platform; got "
                         f"{[platform.name for platform in platforms]} "
                         "(multi-platform sweeps are a dse / dnn --dse feature)")
    return platforms[0]


def _load_module(args) -> "ModuleOp":
    pipeline = getattr(args, "pipeline", None)
    if args.kernel:
        return compile_kernel(args.kernel, args.size, pipeline=pipeline)
    if args.input:
        with open(args.input, "r", encoding="utf-8") as handle:
            return compile_c(handle.read(), pipeline=pipeline)
    raise SystemExit("either --kernel or an input C file is required")


def _design_point(args, num_loops: int = 3) -> Optional[KernelDesignPoint]:
    if not (args.tiles or args.perm or args.ii != 1 or args.perfectize or args.rvb):
        return None
    tiles = tuple(int(v) for v in args.tiles.split(",")) if args.tiles else (1,) * num_loops
    perm = tuple(int(v) for v in args.perm.split(",")) if args.perm \
        else tuple(range(num_loops))
    return KernelDesignPoint(
        loop_perfectization=args.perfectize,
        remove_variable_bound=args.rvb,
        perm_map=perm,
        tile_sizes=tiles,
        target_ii=args.ii,
    )


def _add_kernel_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("input", nargs="?", help="HLS C source file")
    parser.add_argument("--kernel", choices=KERNEL_NAMES,
                        help="use a bundled PolyBench kernel instead of a C file")
    parser.add_argument("--size", type=int, default=256,
                        help="problem size of the bundled kernel (default 256)")
    _add_platform_arguments(parser, default_name="xc7z020")
    _add_instrumentation_arguments(parser)


def _add_platform_arguments(parser: argparse.ArgumentParser,
                            default_name: str) -> None:
    parser.add_argument("--platform", action="append", default=None,
                        metavar="NAME",
                        help="target platform name (repeatable for a "
                             "multi-platform dse sweep; default: "
                             f"{default_name})")
    parser.add_argument("--platform-config", metavar="PATH",
                        help="load additional platform definitions from a "
                             "JSON (or YAML, when PyYAML is installed) "
                             "config file; without --platform the file's "
                             "platforms become the target list")


def _add_instrumentation_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--print-pass-timing", action="store_true",
                        help="print an MLIR -pass-timing style report of every "
                             "pass the flow executed, plus per-RewritePattern "
                             "hit/miss statistics")
    parser.add_argument("--dump-ir-after", metavar="PASS", action="append",
                        default=[],
                        help="write a numbered IR snapshot after every "
                             "execution of the named registry pass (repeat "
                             "for several passes; 'all' dumps after every "
                             "pass)")
    parser.add_argument("--dump-ir-dir", metavar="DIR", default="ir-dumps",
                        help="directory receiving --dump-ir-after snapshots "
                             "(default: ir-dumps)")
    parser.add_argument("--trace-out", metavar="PATH",
                        help="write a Chrome trace-event JSON of the run's "
                             "hierarchical spans (load in Perfetto or "
                             "chrome://tracing)")
    parser.add_argument("--metrics-out", metavar="PATH",
                        help="write the run's metrics (pass timings, pattern "
                             "stats, cache stats, DSE series) as JSON; render "
                             "later with the 'report' sub-command")


def _add_fault_arguments(parser: argparse.ArgumentParser) -> None:
    """Supervision knobs shared by the ``dse`` and ``dnn`` sweeps."""
    parser.add_argument("--task-timeout", type=float, metavar="SECONDS",
                        help="wall-clock budget per evaluation; a task over "
                             "budget has its worker killed and is retried "
                             "(default: no timeout)")
    parser.add_argument("--max-retries", type=int, default=2, metavar="N",
                        help="retries per design point after a fault (worker "
                             "crash, timeout, evaluation error) before the "
                             "point is quarantined (default: 2)")
    parser.add_argument("--on-fault", choices=("quarantine", "fail"),
                        default="quarantine",
                        help="after retries are exhausted: 'quarantine' "
                             "records the point as failed and continues "
                             "(deterministic at any --jobs), 'fail' aborts "
                             "the run (default: quarantine)")
    # Chaos-testing hook for CI and tests; deliberately undocumented.
    parser.add_argument("--inject-faults", metavar="SPEC",
                        help=argparse.SUPPRESS)


def _fault_plan(args):
    """The parsed ``--inject-faults`` plan, or None."""
    if not getattr(args, "inject_faults", None):
        return None
    from repro.dse.runtime import FaultPlan

    try:
        return FaultPlan.parse(args.inject_faults)
    except ValueError as error:
        raise SystemExit(f"--inject-faults: {error}") from error


def _validate_supervision(args) -> None:
    """Reject nonsensical supervision flags before the sweep starts.

    The policy object validates too, but from deep inside the runtime; the
    driver catches the obvious cases up front with flag-named messages.
    """
    timeout = getattr(args, "task_timeout", None)
    if timeout is not None and timeout <= 0:
        raise SystemExit(f"--task-timeout must be a positive number of "
                         f"seconds, got {timeout:g} (drop the flag to "
                         f"disable per-task timeouts)")
    retries = getattr(args, "max_retries", 0)
    if retries < 0:
        raise SystemExit(f"--max-retries must be >= 0, got {retries} "
                         f"(0 quarantines a point on its first fault)")


def _add_transport_arguments(parser: argparse.ArgumentParser) -> None:
    """Distributed-evaluation knobs shared by the ``dse``/``dnn`` sweeps."""
    parser.add_argument("--listen", metavar="HOST:PORT",
                        help="accept remote worker agents on HOST:PORT and "
                             "evaluate over the socket transport (start "
                             "agents with 'repro-hls worker-agent --connect "
                             "HOST:PORT'; combine with --workers to mix in "
                             "local slots)")
    parser.add_argument("--workers", type=int, default=0, metavar="N",
                        help="spawn N local worker-agent subprocesses "
                             "connected over loopback (implies the socket "
                             "transport even without --listen)")


def _parse_address(value: str, flag: str) -> "tuple[str, int]":
    """Parse a HOST:PORT flag value with an actionable error."""
    host, separator, port_text = value.rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        port = -1
    if not separator or not host or not 0 <= port <= 65535:
        raise SystemExit(f"{flag} expects HOST:PORT (e.g. 127.0.0.1:7870), "
                         f"got {value!r}")
    return host, port


def _transport_config(args):
    """The :class:`TransportConfig` implied by --listen/--workers, or None."""
    listen = getattr(args, "listen", None)
    workers = getattr(args, "workers", 0) or 0
    if workers < 0:
        raise SystemExit(f"--workers must be >= 0, got {workers}")
    if not listen and not workers:
        return None
    from repro.dse.runtime import TransportConfig

    host, port = ("127.0.0.1", 0)
    if listen:
        host, port = _parse_address(listen, "--listen")
    return TransportConfig(host=host, port=port, spawn_workers=workers)


def _add_pipeline_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--pipeline", metavar="SPEC",
        help="textual pass pipeline run after parsing, replacing the default "
             "'func.func(raise-scf-to-affine,canonicalize)' "
             "(e.g. 'func.func(raise-scf-to-affine,canonicalize,cse)')")


def _add_point_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--perfectize", action="store_true", help="run loop perfectization")
    parser.add_argument("--rvb", action="store_true", help="remove variable loop bounds")
    parser.add_argument("--perm", help="comma-separated permutation map, e.g. 1,2,0")
    parser.add_argument("--tiles", help="comma-separated tile sizes, e.g. 8,1,16")
    parser.add_argument("--ii", type=int, default=1, help="pipeline target II")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro-hls",
                                     description="ScaleHLS reproduction driver")
    commands = parser.add_subparsers(dest="command", required=True)

    compile_parser = commands.add_parser("compile", help="parse C and print affine-level IR")
    _add_kernel_arguments(compile_parser)
    _add_pipeline_argument(compile_parser)

    estimate_parser = commands.add_parser("estimate", help="estimate latency and resources")
    _add_kernel_arguments(estimate_parser)
    _add_pipeline_argument(estimate_parser)
    _add_point_arguments(estimate_parser)

    dse_parser = commands.add_parser("dse", help="run the automated DSE engine")
    _add_kernel_arguments(dse_parser)
    dse_parser.add_argument("--samples", type=int, default=16)
    dse_parser.add_argument("--iterations", type=int, default=24)
    dse_parser.add_argument("--seed", type=int, default=2022)
    dse_parser.add_argument("--jobs", type=int, default=1,
                            help="number of parallel evaluation workers")
    dse_parser.add_argument("--batch-size", type=int, default=8,
                            help="proposals evaluated per exploration round "
                                 "(part of the trajectory, independent of --jobs)")
    dse_parser.add_argument("--cache", metavar="PATH",
                            help="persistent QoR estimate cache (JSONL)")
    dse_parser.add_argument("--cache-max-entries", type=int, metavar="N",
                            help="bound the in-memory estimate cache to N "
                                 "entries with LRU eviction (default: "
                                 "unbounded)")
    dse_parser.add_argument("--cache-max-bytes", type=int, metavar="BYTES",
                            help="bound the estimate cache (and its JSONL "
                                 "file, via load-time compaction) to roughly "
                                 "BYTES of serialized entries with LRU "
                                 "eviction (default: unbounded)")
    dse_parser.add_argument("--no-incremental", action="store_true",
                            help="disable prefix-snapshot caching in the "
                                 "evaluation workers (A/B switch: results "
                                 "are byte-identical either way)")
    dse_parser.add_argument("--register-pipeline", metavar="NAME=SPEC",
                            action="append", default=[],
                            help="register a named cleanup pipeline before "
                                 "the sweep (repeatable); design points can "
                                 "then select NAME and the kernel pipeline "
                                 "signature covers SPEC")
    dse_parser.add_argument("--checkpoint", metavar="PATH",
                            help="checkpoint file (single kernel) or directory "
                                 "(--all-functions)")
    dse_parser.add_argument("--checkpoint-every", type=int, default=32,
                            help="snapshot state every N evaluations")
    dse_parser.add_argument("--resume", action="store_true",
                            help="resume from the checkpoint if present")
    dse_parser.add_argument("--all-functions", action="store_true",
                            help="explore every function of the module concurrently")
    dse_parser.add_argument("--frontier-out", metavar="PATH",
                            help="write the frontier (per-platform frontiers "
                                 "for a multi-platform sweep) as byte-stable "
                                 "JSON — identical across --jobs and --resume")
    _add_fault_arguments(dse_parser)
    _add_transport_arguments(dse_parser)

    emit_parser = commands.add_parser("emit", help="emit synthesizable HLS C++")
    _add_kernel_arguments(emit_parser)
    _add_pipeline_argument(emit_parser)
    _add_point_arguments(emit_parser)
    emit_parser.add_argument("--dse", action="store_true",
                             help="pick the design point with the DSE engine")
    emit_parser.add_argument("-o", "--output", help="write the C++ to a file")

    dnn_parser = commands.add_parser("dnn", help="compile or explore a DNN model")
    dnn_parser.add_argument("model", nargs="?", default="mobilenet",
                            choices=("resnet18", "vgg16", "mobilenet"),
                            help="bundled model (default: mobilenet)")
    dnn_parser.add_argument("--graph-level", type=int, default=4)
    dnn_parser.add_argument("--loop-level", type=int, default=3)
    _add_platform_arguments(dnn_parser, default_name="vu9p-slr")
    dnn_parser.add_argument("--dse", action="store_true",
                            help="sweep every dataflow node's design space "
                                 "through the multi-kernel scheduler and "
                                 "compose the model-level Pareto frontier")
    dnn_parser.add_argument("--samples", type=int, default=8,
                            help="initial samples per node (scaled down for "
                                 "light stages unless --budget uniform)")
    dnn_parser.add_argument("--iterations", type=int, default=12,
                            help="frontier-evolution budget per node")
    dnn_parser.add_argument("--seed", type=int, default=2022)
    dnn_parser.add_argument("--jobs", type=int, default=1,
                            help="number of parallel evaluation workers")
    dnn_parser.add_argument("--batch-size", type=int, default=4,
                            help="proposals evaluated per exploration round "
                                 "(part of the trajectory, independent of --jobs)")
    dnn_parser.add_argument("--budget", choices=("flops", "uniform"),
                            default="flops",
                            help="per-node budget policy: scale budgets by "
                                 "node work share, or give every node the "
                                 "full budget")
    dnn_parser.add_argument("--cache", metavar="PATH",
                            help="persistent QoR estimate cache (a JSONL "
                                 "file, or a directory receiving "
                                 "estimates.jsonl)")
    dnn_parser.add_argument("--cache-max-entries", type=int, metavar="N",
                            help="bound the in-memory estimate cache to N "
                                 "entries with LRU eviction (default: "
                                 "unbounded)")
    dnn_parser.add_argument("--cache-max-bytes", type=int, metavar="BYTES",
                            help="bound the estimate cache (and its JSONL "
                                 "file, via load-time compaction) to roughly "
                                 "BYTES of serialized entries with LRU "
                                 "eviction (default: unbounded)")
    dnn_parser.add_argument("--no-incremental", action="store_true",
                            help="disable prefix-snapshot caching in the "
                                 "evaluation workers (A/B switch: results "
                                 "are byte-identical either way)")
    dnn_parser.add_argument("--register-pipeline", metavar="NAME=SPEC",
                            action="append", default=[],
                            help="register a named cleanup pipeline before "
                                 "the sweep (repeatable); design points can "
                                 "then select NAME and the kernel pipeline "
                                 "signature covers SPEC")
    dnn_parser.add_argument("--checkpoint", metavar="DIR",
                            help="checkpoint directory (one snapshot file "
                                 "per dataflow node)")
    dnn_parser.add_argument("--checkpoint-every", type=int, default=16,
                            help="snapshot a node's state every N evaluations")
    dnn_parser.add_argument("--resume", action="store_true",
                            help="resume every node from its checkpoint if present")
    dnn_parser.add_argument("--smoke", action="store_true",
                            help="tiny sweep for CI: 3 samples, 4 iterations, "
                                 "3 heaviest nodes")
    dnn_parser.add_argument("--frontier-out", metavar="PATH",
                            default="dnn-dse-frontier.json",
                            help="where --dse writes the model frontier JSON "
                                 "(default: dnn-dse-frontier.json)")
    _add_fault_arguments(dnn_parser)
    _add_transport_arguments(dnn_parser)
    _add_instrumentation_arguments(dnn_parser)

    list_parser = commands.add_parser(
        "list-passes",
        help="list registered passes and self-check the registry")
    list_parser.add_argument("--verbose", action="store_true",
                             help="also print option types, defaults and help")

    report_parser = commands.add_parser(
        "report", help="render a --metrics-out JSON document as a human "
                       "report (optionally validating a --trace-out trace)")
    report_parser.add_argument("metrics",
                               help="metrics JSON written by --metrics-out")
    report_parser.add_argument("--trace", metavar="PATH",
                               help="also validate a Chrome trace written by "
                                    "--trace-out (exit 1 when invalid)")

    agent_parser = commands.add_parser(
        "worker-agent",
        help="serve DSE evaluations to a coordinator over the socket "
             "transport (see dse/dnn --listen)")
    agent_parser.add_argument("--connect", required=True, metavar="HOST:PORT",
                              help="coordinator address (its --listen value)")
    agent_parser.add_argument("--agent-id", default="", metavar="NAME",
                              help="name reported to the coordinator "
                                   "(default: agent-<pid>)")
    agent_parser.add_argument("--reconnect-base", type=float, default=0.25,
                              metavar="SECONDS",
                              help="base of the deterministic exponential "
                                   "reconnect backoff (default: 0.25)")
    agent_parser.add_argument("--max-reconnects", type=int, default=30,
                              metavar="N",
                              help="failed connection attempts before the "
                                   "agent gives up (default: 30)")
    return parser


def run_compile(args) -> int:
    module = _load_module(args)
    verify(module)
    print(print_op(module))
    return 0


def run_estimate(args) -> int:
    module = _load_module(args)
    platform = _single_platform(args, "xc7z020")
    baseline = estimate_baseline(module, platform)
    print(f"baseline: latency={baseline.latency:,} cycles dsp={baseline.dsp} "
          f"lut={baseline.lut}")
    point = _design_point(args)
    if point is not None:
        design = apply_design_point(module, point, platform)
        print(f"design point {point.describe()}")
        print(f"optimized: latency={design.qor.latency:,} cycles dsp={design.qor.dsp} "
              f"lut={design.qor.lut} II={design.achieved_ii}")
        print(f"speedup: {baseline.latency / design.qor.latency:.1f}x")
    return 0


def _register_pipelines(specs: Sequence[str]) -> None:
    """Apply every ``--register-pipeline NAME=SPEC`` before the sweep runs.

    Registration must precede any pipeline-signature computation (worker
    contexts, cache fingerprints), so the DSE entry points call this first.
    """
    from repro.dse.apply import register_cleanup_pipeline

    for item in specs:
        name, separator, spec = item.partition("=")
        if not separator:
            raise SystemExit(f"--register-pipeline expects NAME=SPEC, "
                             f"got {item!r}")
        try:
            register_cleanup_pipeline(name.strip(), spec.strip())
        except PassError as error:
            raise SystemExit(f"--register-pipeline {item!r}: {error}") \
                from error


def _note_dse_wall(started: float, jobs: int) -> None:
    """Record the run-level gauges the end-of-run summary reads."""
    if obs.active() is not None:
        obs.gauge("dse.wall_seconds", time.perf_counter() - started)
        obs.gauge("dse.jobs", max(1, int(jobs)))


def run_dse(args) -> int:
    from repro.pipeline import explore_kernel, explore_module_kernels

    if args.resume and not args.checkpoint:
        raise SystemExit("--resume requires --checkpoint PATH (otherwise the "
                         "exploration would silently restart from scratch)")
    _validate_supervision(args)
    _register_pipelines(args.register_pipeline)
    started = time.perf_counter()
    module = _load_module(args)
    platforms = _resolve_platforms(args, "xc7z020")
    platform = platforms[0]
    common = dict(jobs=args.jobs, num_samples=args.samples,
                  max_iterations=args.iterations, seed=args.seed,
                  batch_size=args.batch_size, cache_path=args.cache,
                  cache_max_entries=args.cache_max_entries,
                  cache_max_bytes=args.cache_max_bytes,
                  checkpoint_every=args.checkpoint_every, resume=args.resume,
                  incremental=not args.no_incremental,
                  task_timeout=args.task_timeout,
                  max_retries=args.max_retries, on_fault=args.on_fault,
                  faults=_fault_plan(args),
                  platforms=platforms if len(platforms) > 1 else None,
                  transport=_transport_config(args))

    if args.all_functions:
        if args.frontier_out:
            raise SystemExit("--frontier-out requires a single-kernel run "
                             "(drop --all-functions)")
        if args.checkpoint and os.path.exists(args.checkpoint) \
                and not os.path.isdir(args.checkpoint):
            raise SystemExit("--checkpoint must name a directory when used "
                             f"with --all-functions: {args.checkpoint!r} is a file")
        results = explore_module_kernels(module, platform,
                                         checkpoint_dir=args.checkpoint, **common)
        if not results:
            raise SystemExit("no explorable functions: the module contains "
                             "no affine loop nests")
        _note_dse_wall(started, max(args.jobs, args.workers))
        for name in sorted(results):
            baselines = None
            if len(platforms) > 1:
                baselines = {target.name: estimate_baseline(module, target,
                                                            func_name=name)
                             for target in platforms}
            _print_dse_result(f"{name}: ", results[name],
                              estimate_baseline(module, platform, func_name=name),
                              baselines=baselines)
        return 0

    if args.checkpoint and os.path.isdir(args.checkpoint):
        raise SystemExit("--checkpoint must name a file for a single-kernel "
                         f"run: {args.checkpoint!r} is a directory "
                         "(did you mean --all-functions?)")
    baseline = estimate_baseline(module, platform)
    baselines = None
    if len(platforms) > 1:
        baselines = {target.name: estimate_baseline(module, target)
                     for target in platforms}
    result = explore_kernel(module, platform, checkpoint_path=args.checkpoint,
                            **common)
    _note_dse_wall(started, max(args.jobs, args.workers))
    _print_dse_result("", result, baseline, baselines=baselines)
    if args.frontier_out:
        with open(args.frontier_out, "w", encoding="utf-8") as handle:
            handle.write(_dse_frontier_json(result))
        print(f"wrote {args.frontier_out}")
    return 0


def _dse_frontier_json(result) -> str:
    """Byte-stable JSON of a kernel sweep's frontier(s).

    Deliberately excludes wall-clock and cache statistics so the artifact is
    identical across ``--jobs`` counts and ``--resume`` — CI byte-compares it.
    """
    def entry(record):
        return {
            "encoded": list(record.encoded),
            "point": record.point.describe(),
            "latency": record.qor.latency,
            "interval": record.qor.interval,
            "dsp": record.qor.dsp,
            "lut": record.qor.lut,
        }

    document = {
        "fingerprint": result.fingerprint,
        "num_evaluations": result.num_evaluations,
    }
    names = result.platform_names()
    if names:
        document["platform_frontiers"] = {
            name: [entry(record) for record in result.frontier_records_for(name)]
            for name in names
        }
    else:
        document["frontier"] = [entry(record)
                                for record in result.frontier_records()]
    return json.dumps(document, sort_keys=True, indent=2) + "\n"


def _print_dse_result(prefix: str, result, baseline, baselines=None) -> None:
    cache_note = ""
    if result.cache_hits or result.cache_misses:
        cache_note = (f" (cache: {result.cache_hits} hits, "
                      f"{result.cache_misses} misses)")
    platform_names = result.platform_names()
    frontier_note = ("per-platform Pareto frontiers" if platform_names
                     else "Pareto frontier")
    print(f"{prefix}evaluated {result.num_evaluations} points in "
          f"{result.wall_seconds:.2f}s{cache_note}; {frontier_note}:")
    if result.num_quarantined:
        print(f"{prefix}quarantined {result.num_quarantined} point(s) after "
              f"exhausted retries (excluded from the frontier)")
    if platform_names:
        for name in platform_names:
            records = result.frontier_records_for(name)
            print(f"{prefix}[{name}] frontier ({len(records)} points):")
            for record in records:
                print(f"  latency={record.qor.latency:<14,} "
                      f"dsp={record.qor.dsp:<5} {record.point.describe()}")
            best = result.best_record_for(name)
            if best is None:
                print(f"{prefix}[{name}] no design evaluated")
                continue
            base = (baselines or {}).get(name, baseline)
            print(f"{prefix}[{name}] finalized: latency={best.qor.latency:,} "
                  f"dsp={best.qor.dsp} "
                  f"speedup={base.latency / best.qor.latency:.1f}x")
        return
    for point in result.frontier:
        record = result.records[point.encoded]
        print(f"  latency={record.qor.latency:<14,} dsp={record.qor.dsp:<5} "
              f"{record.point.describe()}")
    best = result.best_record
    if best is None:
        print(f"{prefix}no design evaluated (empty design space or zero budget)")
        return
    print(f"{prefix}finalized: latency={best.qor.latency:,} dsp={best.qor.dsp} "
          f"speedup={baseline.latency / best.qor.latency:.1f}x")


def run_emit(args) -> int:
    module = _load_module(args)
    platform = _single_platform(args, "xc7z020")
    if args.dse:
        result = DesignSpaceExplorer(platform).explore(module)
        design = result.best
    else:
        point = _design_point(args) or KernelDesignPoint(
            True, True, (0, 1, 2), (1, 1, 1), 1)
        design = apply_design_point(module, point, platform)
    code = emit_hlscpp(design.module)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(code)
        print(f"wrote {args.output}")
    else:
        print(code)
    return 0


def _estimate_cache_path(path: str) -> str:
    """Resolve ``--cache`` to a JSONL file (directories get estimates.jsonl)."""
    if os.path.isdir(path) or path.endswith(os.sep):
        return os.path.join(path, "estimates.jsonl")
    return path


def run_dnn_dse(args) -> int:
    from repro.pipeline import explore_dnn

    if args.resume and not args.checkpoint:
        raise SystemExit("--resume requires --checkpoint DIR (otherwise the "
                         "sweep would silently restart from scratch)")
    if args.checkpoint and os.path.exists(args.checkpoint) \
            and not os.path.isdir(args.checkpoint):
        raise SystemExit("--checkpoint must name a directory for a model "
                         f"sweep: {args.checkpoint!r} is a file")
    _validate_supervision(args)
    _register_pipelines(args.register_pipeline)
    platforms = _resolve_platforms(args, "vu9p-slr")
    platform = platforms[0]
    samples, iterations, max_nodes = args.samples, args.iterations, None
    if args.smoke:
        samples, iterations, max_nodes = 3, 4, 3
    result = explore_dnn(
        args.model, platform, graph_level=args.graph_level, jobs=args.jobs,
        num_samples=samples, max_iterations=iterations, seed=args.seed,
        batch_size=args.batch_size,
        cache_path=_estimate_cache_path(args.cache) if args.cache else None,
        cache_max_entries=args.cache_max_entries,
        cache_max_bytes=args.cache_max_bytes,
        checkpoint_dir=args.checkpoint,
        checkpoint_every=args.checkpoint_every, resume=args.resume,
        incremental=not args.no_incremental,
        task_timeout=args.task_timeout, max_retries=args.max_retries,
        on_fault=args.on_fault, faults=_fault_plan(args),
        budget_mode=args.budget, max_nodes=max_nodes,
        platforms=platforms if len(platforms) > 1 else None,
        transport=_transport_config(args))

    cache_parts = []
    if result.cache_hits:
        cache_parts.append(f"{result.cache_hits} sweep hits")
    if result.cache_misses:
        cache_parts.append(f"{result.cache_misses} misses")
    if result.frontier_cache_hits:
        cache_parts.append(f"{result.frontier_cache_hits} frontier "
                           f"revalidation hits")
    cache_note = f" (cache: {', '.join(cache_parts)})" if cache_parts else ""
    print(f"{result.model}: explored {len(result.node_order)} dataflow nodes, "
          f"{result.num_evaluations} evaluations in "
          f"{result.wall_seconds:.2f}s{cache_note}")
    if result.skipped:
        print(f"  skipped nodes: {', '.join(result.skipped)}")
    quarantined = sum(node.num_quarantined
                      for node in result.node_results.values())
    if quarantined:
        print(f"  quarantined {quarantined} point(s) after exhausted retries "
              f"(excluded from every frontier)")
    if not result.node_order:
        print("  no explorable dataflow nodes (no affine loop nests); "
              "no frontier to report")
    if result.truncated:
        print(f"  frontier cap dropped {result.truncated} composition points")
    print(f"  model frontier ({len(result.frontier)} points, latency = sum of "
          f"stage latencies, resources = sum over stages):")
    for point in result.frontier:
        print(f"    latency={point.latency:<14,} interval={point.interval:<12,} "
              f"dsp={point.resources.dsp:<6} lut={point.resources.lut}")
    for name, frontier in result.platform_frontiers.items():
        print(f"  [{name}] model frontier ({len(frontier)} points):")
        for point in frontier:
            print(f"    latency={point.latency:<14,} "
                  f"interval={point.interval:<12,} "
                  f"dsp={point.resources.dsp:<6} lut={point.resources.lut}")
    best = result.best_point()
    if best is not None:
        utilization = platform.utilization(best.resources)
        print(f"  selected: latency={best.latency:,} dsp={best.resources.dsp} "
              f"({utilization['dsp'] * 100:.1f}%) "
              f"memory={best.resources.memory_bits / 1e6:.1f}Mb")
    with open(args.frontier_out, "w", encoding="utf-8") as handle:
        handle.write(result.frontier_json())
    print(f"wrote {args.frontier_out}")
    return 0


def run_dnn(args) -> int:
    if args.dse:
        return run_dnn_dse(args)
    platform = _single_platform(args, "vu9p-slr")
    baseline = dnn_baseline(args.model, platform=platform)
    result = compile_dnn(args.model, graph_level=args.graph_level,
                         loop_level=args.loop_level, directive_level=True,
                         platform=platform)
    speedup = baseline.qor.interval / result.qor.interval
    utilization = platform.utilization(result.qor.resources)
    print(f"{args.model}: speedup={speedup:.1f}x interval={result.qor.interval:,} cycles")
    print(f"  dsp={result.qor.dsp} ({utilization['dsp'] * 100:.1f}%) "
          f"memory={result.qor.memory_bits / 1e6:.1f}Mb lut={result.qor.lut}")
    print(f"  dsp efficiency={result.dsp_efficiency:.3f} OP/cycle/DSP "
          f"stages={result.num_dataflow_stages} runtime={result.runtime_seconds:.1f}s")
    return 0


def run_list_passes(args) -> int:
    """Print the registry and self-check every registered pass.

    The self-check fails (exit 1) when a pass cannot be default-constructed,
    does not survive a pickle round-trip (the DSE workers require it), or
    does not round-trip through the textual pipeline syntax — so a transform
    added without proper registration fails fast in CI.
    """
    import pickle

    from repro.ir.pass_registry import (build_pipeline, pass_aliases,
                                        registered_passes)

    failures = []
    aliases_by_canonical: dict[str, list[str]] = {}
    for alias, canonical in pass_aliases().items():
        aliases_by_canonical.setdefault(canonical, []).append(alias)

    passes = registered_passes()
    for name, cls in passes.items():
        try:
            instance = cls()
            if instance.name != name:
                raise PassError(f"instance name {instance.name!r} != registry "
                                f"key {name!r}")
            restored = pickle.loads(pickle.dumps(instance))
            if restored.display_name != instance.display_name:
                raise PassError("pickle round-trip changed the display name")
            if build_pipeline(instance.display_name).to_spec() \
                    != instance.display_name:
                raise PassError("textual spec round-trip diverged")
        except Exception as error:  # noqa: BLE001 — report, don't crash the listing
            failures.append((name, error))
            status = f"SELF-CHECK FAILED: {error}"
        else:
            status = ""
        anchor = cls.target_op or "any"
        alias_note = ""
        if name in aliases_by_canonical:
            alias_note = f" (aliases: {', '.join(sorted(aliases_by_canonical[name]))})"
        doc = (cls.__doc__ or "").strip().splitlines()
        summary = doc[0] if doc else ""
        print(f"{name:28s} [{anchor}]{alias_note} {summary} {status}".rstrip())
        if args.verbose:
            for option in cls.OPTIONS:
                print(f"    {option.name}={option.type} "
                      f"(default {option.default!r}) {option.help}".rstrip())
    print(f"{len(passes)} passes registered, "
          f"{len(pass_aliases())} aliases, {len(failures)} self-check failures")
    return 1 if failures else 0


def run_report(args) -> int:
    """Render a metrics document; optionally validate a trace file."""
    from repro.obs.export import load_metrics, load_trace, validate_chrome_trace
    from repro.obs.report import render_metrics_report

    print(render_metrics_report(load_metrics(args.metrics)))
    if args.trace:
        document = load_trace(args.trace)
        problems = validate_chrome_trace(document)
        if problems:
            for problem in problems:
                print(f"trace problem: {problem}", file=sys.stderr)
            return 1
        events = document.get("traceEvents", [])
        spans = sum(1 for event in events if event.get("ph") == "X")
        tracks = sum(1 for event in events
                     if event.get("ph") == "M"
                     and event.get("name") == "thread_name")
        print(f"trace OK: {spans} spans on {tracks} track(s)")
    return 0


def run_worker_agent_cmd(args) -> int:
    from repro.dse.runtime import run_worker_agent

    host, port = _parse_address(args.connect, "--connect")
    if args.reconnect_base <= 0:
        raise SystemExit(f"--reconnect-base must be positive, "
                         f"got {args.reconnect_base:g}")
    if args.max_reconnects < 0:
        raise SystemExit(f"--max-reconnects must be >= 0, "
                         f"got {args.max_reconnects}")
    return run_worker_agent(host, port, agent_id=args.agent_id,
                            reconnect_base=args.reconnect_base,
                            max_reconnects=args.max_reconnects)


_COMMANDS = {
    "compile": run_compile,
    "estimate": run_estimate,
    "dse": run_dse,
    "emit": run_emit,
    "dnn": run_dnn,
    "list-passes": run_list_passes,
    "report": run_report,
    "worker-agent": run_worker_agent_cmd,
}


def _resolve_dump_passes(names: Sequence[str]) -> list[str]:
    """Resolve ``--dump-ir-after`` names to canonical registry pass names.

    ``all`` (alone or among other names) selects every pass.  Unknown names
    fail fast with the registry's actionable error instead of silently
    producing no snapshots.
    """
    from repro.ir.pass_registry import get_pass_class, pass_aliases

    if any(name == "all" for name in names):
        return []
    aliases = pass_aliases()
    resolved = []
    for name in names:
        get_pass_class(name)  # raises PassError for unknown names
        resolved.append(aliases.get(name, name))
    return resolved


def _finish_session(session: "obs.ObsSession", args, timing: bool,
                    is_dse_run: bool) -> None:
    """Render/export one finished observability session (driver epilogue)."""
    counters = dict(session.metrics.counters)
    if timing:
        print(format_timing_report(pass_timings_of(counters)))
        patterns, buckets = pattern_stats_of(counters)
        if patterns:
            print(format_pattern_stats(patterns, buckets))
    if is_dse_run:
        summary = render_run_summary(session.metrics.to_json_dict())
        if summary:
            print(summary)
    trace_out = getattr(args, "trace_out", None)
    if trace_out:
        write_chrome_trace(trace_out, session.tracer)
        print(f"wrote {trace_out} ({session.tracer.num_spans()} spans)",
              file=sys.stderr)
    metrics_out = getattr(args, "metrics_out", None)
    if metrics_out:
        write_metrics_json(metrics_out, session.metrics)
        print(f"wrote {metrics_out}", file=sys.stderr)


def _interrupt_hint(args) -> int:
    """One actionable line instead of a KeyboardInterrupt traceback."""
    hint = ""
    if getattr(args, "checkpoint", None):
        hint = (" — progress up to the last batch boundary is checkpointed; "
                "re-run the same command with --resume to continue")
    elif args.command == "dse" or (args.command == "dnn"
                                   and getattr(args, "dse", False)):
        hint = (" — add --checkpoint (and --resume on the next run) to make "
                "interrupted sweeps resumable")
    print(f"interrupted{hint}", file=sys.stderr)
    return 130


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handler = _COMMANDS[args.command]
    dump_passes = getattr(args, "dump_ir_after", None)
    timing = getattr(args, "print_pass_timing", False)
    is_dse_run = args.command == "dse" or (args.command == "dnn"
                                           and getattr(args, "dse", False))
    # DSE runs always get a session (the end-of-run summary reads it); other
    # commands only pay for one when instrumentation output was requested.
    want_obs = bool(timing or getattr(args, "trace_out", None)
                    or getattr(args, "metrics_out", None) or is_dse_run)
    try:
        if not dump_passes and not want_obs:
            return handler(args)

        session = None
        with contextlib.ExitStack() as stack:
            if want_obs:
                session = stack.enter_context(obs.session())
            if dump_passes:
                try:
                    resolved = _resolve_dump_passes(dump_passes)
                except PassError as error:
                    raise SystemExit(str(error)) from error
                dumper = stack.enter_context(
                    dump_ir_after(args.dump_ir_dir, resolved))
            with obs.span(f"cli.{args.command}"):
                status = handler(args)
        if session is not None:
            _finish_session(session, args, timing, is_dse_run)
        if dump_passes:
            print(f"wrote {dumper.counter} IR snapshot(s) to {args.dump_ir_dir}",
                  file=sys.stderr)
        return status
    except KeyboardInterrupt:
        return _interrupt_hint(args)


if __name__ == "__main__":
    sys.exit(main())

"""Command-line tools (the reproduction's ``scalehls-opt`` / ``scalehls-translate``)."""

from repro.tools.driver import main

__all__ = ["main"]

"""Shared kernel sources, reference implementations and helpers.

Both the test suite (``tests/conftest.py``) and the benchmark harness
(``benchmarks/conftest.py``) re-export these names.  Keeping them in the
package has two benefits: the definitions exist exactly once, and the two
``conftest.py`` files stay interchangeable — pytest inserts whichever
directory it collects first onto ``sys.path``, so a plain
``from conftest import ...`` in a test module may resolve to either file.
"""

from __future__ import annotations

import numpy as np

from repro.frontend.c_to_mlir import parse_c_to_module
from repro.frontend.raise_to_affine import RaiseSCFToAffinePass
from repro.transforms import canonicalize

SYRK_SOURCE = """
void syrk(float alpha, float beta, float C[16][16], float A[16][8]) {
  for (int i = 0; i < 16; i++) {
    for (int j = 0; j <= i; j++) {
      C[i][j] *= beta;
      for (int k = 0; k < 8; k++) {
        C[i][j] += alpha * A[i][k] * A[j][k];
      }
    }
  }
}
"""

GEMM_SOURCE = """
void gemm(float alpha, float beta, float C[8][8], float A[8][8], float B[8][8]) {
  for (int i = 0; i < 8; i++) {
    for (int j = 0; j < 8; j++) {
      C[i][j] *= beta;
      for (int k = 0; k < 8; k++) {
        C[i][j] += alpha * A[i][k] * B[k][j];
      }
    }
  }
}
"""


def compile_source(source: str, name: str = "kernel"):
    """Parse C, raise to affine, and clean up — the standard front-end path."""
    module = parse_c_to_module(source, name)
    RaiseSCFToAffinePass().run_on_module(module)
    for func_op in module.functions():
        canonicalize(func_op)
    return module


def reference_syrk(alpha, beta, C, A):
    """NumPy reference of the SYRK kernel (lower triangle update)."""
    n, k = A.shape
    result = C.copy()
    for i in range(n):
        for j in range(i + 1):
            result[i, j] *= beta
            for kk in range(k):
                result[i, j] += alpha * A[i, kk] * A[j, kk]
    return result


def reference_gemm(alpha, beta, C, A, B):
    """NumPy reference of the GEMM kernel."""
    return beta * C + alpha * (A @ B)


def random_array(shape, seed=0):
    rng = np.random.default_rng(seed)
    return rng.uniform(-1.0, 1.0, size=shape).astype(np.float32)

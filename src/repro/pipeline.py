"""End-to-end compilation flows.

This module packages the front-ends, the transform library, the estimator and
the emitter into the flows the paper evaluates:

* :func:`compile_kernel` — HLS C in, affine-level kernel module out (the
  ``scalehls-clang`` + ``-raise-scf-to-affine`` part of Fig. 5).
* :func:`optimize_kernel` / the DSE engine in :mod:`repro.dse` — the
  computation-kernel flow of Section VII-A.
* :func:`explore_kernel` / :func:`explore_module_kernels` — the parallel DSE
  runtime flows: multi-worker exploration with a persistent QoR estimate
  cache and resumable checkpoints (single kernel or every function of a
  module concurrently).
* :func:`compile_dnn` — the DNN flow of Section VII-B: graph-level dataflow
  optimization, graph-to-loop lowering, loop/directive optimization and QoR
  estimation, parameterized by the graph and loop optimization levels of the
  paper's Fig. 8 ablation.
* :func:`explore_dnn` — the whole-model DSE: the same graph staging
  (:func:`prepare_dnn_stages`) followed by a budgeted multi-kernel sweep of
  every dataflow node and model-level frontier composition.
"""

from __future__ import annotations

import dataclasses
import math
import time
from typing import Optional

from repro import obs
from repro.dse.apply import AppliedDesign, apply_design_point, estimate_baseline
from repro.dse.space import KernelDesignPoint
from repro.emit.hlscpp_emitter import emit_hlscpp
from repro.estimation.estimator import QoREstimator, QoRResult
from repro.estimation.platform import Platform, VU9P_SLR, XC7Z020
from repro.frontend.c_to_mlir import parse_c_to_module
from repro.frontend.models import build_model
from repro.frontend.pytorch_like import model_flops
from repro.ir.module import ModuleOp
from repro.ir.operation import Operation
from repro.ir.pass_registry import build_pipeline_cached
from repro.kernels import kernel_source
from repro.transforms import legalize_dataflow, lower_graph_to_loops, split_function


# -- computation kernels -----------------------------------------------------------------------------

#: The frontend pipeline every C-level module goes through after parsing.
FRONTEND_PIPELINE = "func.func(raise-scf-to-affine,canonicalize)"


def compile_kernel(name: str, problem_size: int,
                   pipeline: Optional[str] = None) -> ModuleOp:
    """Parse a PolyBench kernel and raise it to the affine level.

    ``pipeline`` overrides the default :data:`FRONTEND_PIPELINE` spec.
    """
    module = parse_c_to_module(kernel_source(name, problem_size), name)
    build_pipeline_cached(pipeline if pipeline is not None else FRONTEND_PIPELINE).run(module)
    return module


def compile_c(source: str, module_name: str = "c_module",
              pipeline: Optional[str] = None) -> ModuleOp:
    """Parse arbitrary HLS C source and raise it to the affine level."""
    module = parse_c_to_module(source, module_name)
    build_pipeline_cached(pipeline if pipeline is not None else FRONTEND_PIPELINE).run(module)
    return module


def optimize_kernel(module: ModuleOp, point: KernelDesignPoint,
                    platform: Platform = XC7Z020) -> AppliedDesign:
    """Apply one explicit design point to a kernel (see also the DSE engine)."""
    return apply_design_point(module, point, platform)


def kernel_baseline(module: ModuleOp, platform: Platform = XC7Z020) -> QoRResult:
    """Estimate the unoptimized kernel (Vivado HLS with no directives)."""
    return estimate_baseline(module, platform)


def emit_kernel_cpp(design: AppliedDesign) -> str:
    """Emit the optimized kernel as synthesizable HLS C++."""
    return emit_hlscpp(design.module)


# -- parallel DSE runtime flows ----------------------------------------------------------------


def explore_kernel(module: ModuleOp, platform: Platform = XC7Z020, *,
                   jobs: int = 1, num_samples: int = 16, max_iterations: int = 24,
                   seed: int = 2022, batch_size: int = 8,
                   cache: "Optional[EstimateCache]" = None,
                   cache_path: Optional[str] = None,
                   cache_max_entries: Optional[int] = None,
                   cache_max_bytes: Optional[int] = None,
                   checkpoint_path: Optional[str] = None,
                   checkpoint_every: int = 32,
                   resume: bool = False,
                   incremental: bool = True,
                   task_timeout: Optional[float] = None,
                   max_retries: int = 2,
                   on_fault: str = "quarantine",
                   faults=None,
                   func_name: Optional[str] = None,
                   platforms: "Optional[list[Platform]]" = None,
                   transport=None) -> "ParallelDSEResult":
    """Run the parallel DSE runtime on one kernel.

    ``cache_path`` creates (or warms from) a persistent JSONL estimate cache
    (``cache_max_entries`` / ``cache_max_bytes`` bound it with LRU eviction);
    ``checkpoint_path`` + ``resume`` continue an interrupted exploration.
    ``incremental=False`` disables prefix-snapshot caching in the evaluation
    backends (results are identical either way).  ``task_timeout`` /
    ``max_retries`` / ``on_fault`` configure the supervision layer (see
    :class:`repro.dse.runtime.SupervisionPolicy`); ``faults`` injects a
    :class:`repro.dse.runtime.FaultPlan` for chaos testing.  ``transport``
    (a :class:`repro.dse.runtime.TransportConfig`) evaluates on
    socket-connected worker agents instead of local processes.  ``platforms``
    turns the run into one sweep over design points × hardware targets (the
    platform becomes a design-space dimension; see
    :class:`repro.dse.space.KernelDesignSpace`).
    """
    from repro.dse.runtime import (
        EstimateCache,
        ParallelExplorer,
        SupervisionPolicy,
    )

    if cache is None and cache_path:
        cache = EstimateCache(cache_path, max_entries=cache_max_entries,
                              max_bytes=cache_max_bytes)
    explorer = ParallelExplorer(
        platform, num_samples=num_samples, max_iterations=max_iterations,
        seed=seed, jobs=jobs, batch_size=batch_size, cache=cache,
        checkpoint_path=checkpoint_path, checkpoint_every=checkpoint_every,
        incremental=incremental,
        supervision=SupervisionPolicy(task_timeout=task_timeout,
                                      max_retries=max_retries,
                                      on_fault=on_fault),
        faults=faults,
        platforms=platforms,
        transport=transport)
    return explorer.explore(module, func_name=func_name, resume=resume)


def explore_module_kernels(module: ModuleOp, platform: Platform = XC7Z020, *,
                           jobs: int = 1, num_samples: int = 16,
                           max_iterations: int = 24, seed: int = 2022,
                           batch_size: int = 8,
                           cache: "Optional[EstimateCache]" = None,
                           cache_path: Optional[str] = None,
                           cache_max_entries: Optional[int] = None,
                           cache_max_bytes: Optional[int] = None,
                           checkpoint_dir: Optional[str] = None,
                           checkpoint_every: int = 32,
                           resume: bool = False,
                           incremental: bool = True,
                           task_timeout: Optional[float] = None,
                           max_retries: int = 2,
                           on_fault: str = "quarantine",
                           faults=None,
                           func_names: Optional[list[str]] = None,
                           platforms: "Optional[list[Platform]]" = None,
                           transport=None
                           ) -> "dict[str, ParallelDSEResult]":
    """Run DSE for every explorable function of ``module`` concurrently."""
    from repro.dse.runtime import (
        EstimateCache,
        MultiKernelScheduler,
        SupervisionPolicy,
    )

    if cache is None and cache_path:
        cache = EstimateCache(cache_path, max_entries=cache_max_entries,
                              max_bytes=cache_max_bytes)
    scheduler = MultiKernelScheduler(
        platform, jobs=jobs, num_samples=num_samples,
        max_iterations=max_iterations, seed=seed, batch_size=batch_size,
        cache=cache, checkpoint_dir=checkpoint_dir,
        checkpoint_every=checkpoint_every, incremental=incremental,
        supervision=SupervisionPolicy(task_timeout=task_timeout,
                                      max_retries=max_retries,
                                      on_fault=on_fault),
        faults=faults,
        platforms=platforms,
        transport=transport)
    return scheduler.explore_module(module, func_names=func_names, resume=resume)


# -- DNN models --------------------------------------------------------------------------------------


def prepare_dnn_stages(module: ModuleOp, graph_level: int) -> int:
    """The graph-level stage of the DNN flow, shared by every driver.

    Runs dataflow legalization and function splitting on the module's top
    function in place (``graph_level`` 0 leaves the module monolithic) and
    returns the number of dataflow stages.  Both :func:`compile_dnn` and the
    whole-model DSE (:class:`repro.dse.runtime.ModelScheduler`) stage models
    through this function, so their per-node kernels are identical.
    """
    if graph_level <= 0:
        return 1
    top = module.functions()[0]
    num_stages = legalize_dataflow(top, insert_copy=graph_level >= 6)
    min_granularity = max(1, math.ceil(num_stages / 2 ** (graph_level - 1)))
    split_function(module, top, min_granularity)
    return math.ceil(num_stages / min_granularity)


def explore_dnn(model_name: str, platform: Platform = VU9P_SLR, *,
                graph_level: int = 4, jobs: int = 1,
                num_samples: int = 8, max_iterations: int = 12,
                seed: int = 2022, batch_size: int = 4,
                cache: "Optional[EstimateCache]" = None,
                cache_path: Optional[str] = None,
                cache_max_entries: Optional[int] = None,
                cache_max_bytes: Optional[int] = None,
                checkpoint_dir: Optional[str] = None,
                checkpoint_every: int = 16,
                resume: bool = False,
                incremental: bool = True,
                task_timeout: Optional[float] = None,
                max_retries: int = 2,
                on_fault: str = "quarantine",
                faults=None,
                budget_mode: str = "flops",
                frontier_cap: int = 64,
                max_nodes: Optional[int] = None,
                platforms: "Optional[list[Platform]]" = None,
                transport=None) -> "ModelDSEResult":
    """Run the whole-model DSE on a bundled DNN model.

    Mirrors :func:`explore_kernel` / :func:`explore_module_kernels` for the
    model flow: one shared worker pool sweeps every dataflow node of the
    staged model, and the per-node frontiers compose into the model-level
    latency/resource frontier.
    """
    from repro.dse.runtime import (
        EstimateCache,
        ModelScheduler,
        NodeBudgetPolicy,
        SupervisionPolicy,
    )

    if cache is None and cache_path:
        cache = EstimateCache(cache_path, max_entries=cache_max_entries,
                              max_bytes=cache_max_bytes)
    scheduler = ModelScheduler(
        platform, jobs=jobs, seed=seed, batch_size=batch_size,
        budget=NodeBudgetPolicy(num_samples=num_samples,
                                max_iterations=max_iterations,
                                mode=budget_mode),
        cache=cache, checkpoint_dir=checkpoint_dir,
        checkpoint_every=checkpoint_every, frontier_cap=frontier_cap,
        incremental=incremental,
        supervision=SupervisionPolicy(task_timeout=task_timeout,
                                      max_retries=max_retries,
                                      on_fault=on_fault),
        faults=faults,
        platforms=platforms,
        transport=transport)
    return scheduler.explore(model_name, graph_level=graph_level,
                             resume=resume, max_nodes=max_nodes)


@dataclasses.dataclass
class DNNCompilationResult:
    """Outcome of one DNN compilation configuration."""

    module: ModuleOp
    qor: QoRResult
    flops: int
    runtime_seconds: float
    num_dataflow_stages: int

    @property
    def dsp_efficiency(self) -> float:
        """Operations per cycle per DSP (the paper's Table V metric)."""
        if self.qor.interval <= 0 or self.qor.dsp <= 0:
            return 0.0
        return self.flops / self.qor.interval / self.qor.dsp


def compile_dnn(model_name: str, graph_level: int = 0, loop_level: int = 0,
                directive_level: bool = False, platform: Platform = VU9P_SLR,
                model_module: Optional[ModuleOp] = None) -> DNNCompilationResult:
    """Compile a DNN model with the requested optimization levels.

    * ``graph_level`` 0 disables the graph optimizations (no dataflow, single
      function); levels 1..7 enable dataflow legalization and function
      splitting with progressively finer granularity (paper Fig. 8, G1..G7).
    * ``loop_level`` 0 disables loop optimization; levels 1..7 unroll the
      lowered loop nests by ``2**level`` before pipelining (L1..L7).
    * ``directive_level`` enables loop pipelining and array partitioning (D).
    """
    started = time.perf_counter()
    compile_span = obs.NULL_SPAN if obs.active() is None else obs.span(
        "compile.dnn", model=model_name, graph_level=graph_level,
        loop_level=loop_level, directive_level=directive_level)
    with compile_span:
        module = model_module.clone() if model_module is not None else build_model(model_name)
        flops = model_flops(module)
        top = module.functions()[0]

        with obs.span("compile.stage_graph", graph_level=graph_level):
            num_stages = prepare_dnn_stages(module, graph_level)

            # Per-stage work estimate (used to balance unroll factors across
            # stages).
            stage_flops = {
                func_op.get_attr("sym_name"): function_flops(func_op)
                for func_op in module.functions()
            }
            lower_graph_to_loops(module)

        if directive_level or loop_level > 0:
            with obs.span("compile.loop_opt", loop_level=loop_level):
                unroll_factor = 2 ** loop_level if loop_level > 0 else 1
                heaviest = max(stage_flops.values()) if stage_flops else 1
                for func_op in module.functions():
                    if func_op is top and graph_level > 0:
                        continue  # the dataflow top only contains calls
                    function_factor = unroll_factor
                    if graph_level > 0 and heaviest > 0:
                        # Balance the dataflow: lighter stages need
                        # proportionally less parallelism to keep up with the
                        # heaviest stage, which saves DSPs without increasing
                        # the dataflow interval.
                        share = stage_flops.get(func_op.get_attr("sym_name"), heaviest) / heaviest
                        function_factor = max(1, _round_power_of_two(unroll_factor * share))
                    _optimize_lowered_function(func_op, function_factor)

        estimator = QoREstimator(platform)
        qor = estimator.estimate_module(module)
    runtime = time.perf_counter() - started
    return DNNCompilationResult(module=module, qor=qor, flops=flops,
                                runtime_seconds=runtime, num_dataflow_stages=num_stages)


def dnn_baseline(model_name: str, platform: Platform = VU9P_SLR,
                 model_module: Optional[ModuleOp] = None) -> DNNCompilationResult:
    """The Table V baseline: lowered from the graph with no optimization."""
    return compile_dnn(model_name, graph_level=0, loop_level=0, directive_level=False,
                       platform=platform, model_module=model_module)


# -- internals ----------------------------------------------------------------------------------------


def dnn_function_pipeline_spec(unroll_factor: int) -> str:
    """The per-stage loop/directive pipeline of the DNN flow as a spec."""
    from repro.dse.apply import CLEANUP_PIPELINE

    factor = f"{{factor={int(unroll_factor)}}}" if unroll_factor != 1 else ""
    return f"dnn-loop-opt{factor},{CLEANUP_PIPELINE},array-partition"


def _optimize_lowered_function(func_op: Operation, unroll_factor: int) -> None:
    """Loop + directive optimization of one lowered (loop-level) function.

    Runs the registry pipeline of :func:`dnn_function_pipeline_spec`: the
    ``dnn-loop-opt`` pass (loop-order optimization, unrolling towards the
    factor, pipelining), the shared redundancy-elimination tail and array
    partitioning.
    """
    build_pipeline_cached(dnn_function_pipeline_spec(unroll_factor)).run(func_op)


def function_flops(func_op: Operation) -> int:
    """Multiply-accumulate style work of the graph ops contained in a function."""
    from repro.dialects.graph import GraphOp

    total = 0
    for op in func_op.walk():
        if isinstance(op, GraphOp):
            total += op.flops()
    return total


def _round_power_of_two(value: float) -> int:
    """Round to the nearest power of two (at least 1)."""
    if value <= 1:
        return 1
    return 2 ** int(round(math.log2(value)))

"""FPGA platform resource budgets.

Two platforms appear in the paper's evaluation:

* **XC7Z020** — the edge device used for the computation-kernel experiments
  (Table III / IV, Fig. 6 / 7): 4.9 Mb of on-chip memory, 220 DSPs and
  53,200 LUTs.
* **One SLR of a VU9P** — used for the DNN experiments (Table V, Fig. 8):
  115.3 Mb of memory, 2,280 DSPs and 394,080 LUTs per SLR.
"""

from __future__ import annotations

import dataclasses

from repro.estimation.resources import ResourceUsage


@dataclasses.dataclass(frozen=True)
class Platform:
    """Resource budget of a target FPGA (or a partition of one)."""

    name: str
    memory_bits: int
    dsp: int
    lut: int
    ff: int = 0
    clock_mhz: float = 100.0

    def fits(self, usage: ResourceUsage,
             dsp_margin: float = 1.0, memory_margin: float = 1.0,
             lut_margin: float = 1.0) -> bool:
        """True when a design's resource usage fits the budget (with margins)."""
        return (usage.dsp <= self.dsp * dsp_margin
                and usage.memory_bits <= self.memory_bits * memory_margin
                and usage.lut <= self.lut * lut_margin)

    def utilization(self, usage: ResourceUsage) -> dict[str, float]:
        """Per-resource utilization fractions (1.0 == 100%)."""
        return {
            "dsp": usage.dsp / self.dsp if self.dsp else 0.0,
            "memory": usage.memory_bits / self.memory_bits if self.memory_bits else 0.0,
            "lut": usage.lut / self.lut if self.lut else 0.0,
        }


#: Xilinx Zynq XC7Z020 (PYNQ-Z1 class edge device).
XC7Z020 = Platform(
    name="xc7z020",
    memory_bits=int(4.9e6),
    dsp=220,
    lut=53200,
    ff=106400,
    clock_mhz=100.0,
)

#: One super logic region (SLR) of a Xilinx VU9P.
VU9P_SLR = Platform(
    name="vu9p-slr",
    memory_bits=int(115.3e6),
    dsp=2280,
    lut=394080,
    ff=788160,
    clock_mhz=200.0,
)

PLATFORMS = {platform.name: platform for platform in (XC7Z020, VU9P_SLR)}

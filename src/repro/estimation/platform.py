"""Declarative FPGA platform models.

A :class:`Platform` describes a target device (or a partition of one) as
*data*: resource budgets (DSP / LUT / FF / BRAM18K / URAM / on-chip memory
bits), the memory subsystem (ports per physical bank) and the off-chip link
(bytes per cycle), plus the clock target.  Platforms are validated from
plain dictionaries (:meth:`Platform.from_dict`), loadable from JSON or YAML
config files (:func:`load_platform_config`), and carry a canonical
:meth:`Platform.config_hash` that the DSE runtime folds into its cache and
checkpoint fingerprints — an estimate produced under one hardware model can
never be silently reused under another.

Two platforms appear in the paper's evaluation:

* **XC7Z020** — the edge device used for the computation-kernel experiments
  (Table III / IV, Fig. 6 / 7): 4.9 Mb of on-chip memory, 220 DSPs and
  53,200 LUTs.
* **One SLR of a VU9P** — used for the DNN experiments (Table V, Fig. 8):
  115.3 Mb of memory, 2,280 DSPs and 394,080 LUTs per SLR.

Both paper targets keep ``memory_ports_per_bank=1`` and an unmodeled
off-chip link (``offchip_bandwidth_bytes_per_cycle=0``) so their QoR
estimates are bit-for-bit what the paper reproduction always produced; the
additional bundled targets below exercise the richer model.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from typing import Optional, Union

from repro.estimation.resources import BRAM18K_BITS, ResourceUsage

#: One UltraRAM block holds 288 Kb — 16 BRAM18Ks' worth of bits.
URAM_BITS = 288 * 1024


class PlatformError(ValueError):
    """A platform definition (inline dict or config file) is invalid."""


#: Schema of a platform definition: field name -> (type, default, minimum).
#: ``None`` as default marks the field required.
_SCHEMA: dict[str, tuple[type, Optional[object], object]] = {
    "name": (str, None, None),
    "memory_bits": (int, None, 0),
    "dsp": (int, None, 0),
    "lut": (int, None, 0),
    "ff": (int, 0, 0),
    "bram18k": (int, 0, 0),
    "uram": (int, 0, 0),
    "memory_ports_per_bank": (int, 1, 1),
    "offchip_bandwidth_bytes_per_cycle": (float, 0.0, 0.0),
    "clock_mhz": (float, 100.0, 1e-9),
}


@dataclasses.dataclass(frozen=True)
class Platform:
    """Resource budget and memory model of a target FPGA (or a partition).

    A budget of 0 for ``ff``, ``bram18k`` or ``uram`` means "unspecified" —
    the corresponding feasibility check is skipped, which is how platform
    definitions written before those budgets existed keep their behavior.
    ``offchip_bandwidth_bytes_per_cycle`` of 0 leaves off-chip traffic
    unmodeled (the paper targets' setting); a positive value lets the
    estimator bound a top function's interval by ``bytes moved / bandwidth``.
    """

    name: str
    memory_bits: int
    dsp: int
    lut: int
    ff: int = 0
    clock_mhz: float = 100.0
    bram18k: int = 0
    uram: int = 0
    memory_ports_per_bank: int = 1
    offchip_bandwidth_bytes_per_cycle: float = 0.0

    # -- validated construction from data ---------------------------------------------------

    @classmethod
    def from_dict(cls, data: dict) -> "Platform":
        """Build a validated platform from a plain dictionary.

        Unknown keys, wrong types and out-of-range values raise
        :class:`PlatformError` with the offending field named — a config
        typo fails fast instead of silently falling back to a default.
        """
        if not isinstance(data, dict):
            raise PlatformError(f"platform definition must be a mapping, "
                                f"got {type(data).__name__}")
        unknown = sorted(set(data) - set(_SCHEMA))
        if unknown:
            raise PlatformError(
                f"unknown platform field(s) {', '.join(map(repr, unknown))}; "
                f"known fields: {', '.join(sorted(_SCHEMA))}")
        values: dict[str, object] = {}
        for field, (kind, default, minimum) in _SCHEMA.items():
            if field not in data:
                if default is None:
                    raise PlatformError(f"platform definition is missing the "
                                        f"required field {field!r}")
                values[field] = default
                continue
            raw = data[field]
            if kind is str:
                if not isinstance(raw, str) or not raw:
                    raise PlatformError(f"platform field {field!r} must be a "
                                        f"non-empty string, got {raw!r}")
                values[field] = raw
                continue
            if isinstance(raw, bool) or not isinstance(raw, (int, float)):
                raise PlatformError(f"platform field {field!r} must be a "
                                    f"number, got {raw!r}")
            if kind is int and float(raw) != int(raw):
                raise PlatformError(f"platform field {field!r} must be an "
                                    f"integer, got {raw!r}")
            value = kind(raw)
            if minimum is not None and value < minimum:
                raise PlatformError(f"platform field {field!r} must be "
                                    f">= {minimum}, got {raw!r}")
            values[field] = value
        return cls(**values)

    def to_dict(self) -> dict:
        """The canonical data form of this platform (inverse of from_dict)."""
        return {field: getattr(self, field) for field in _SCHEMA}

    def config_hash(self) -> str:
        """Stable identity of the full hardware model.

        Any field change — a budget, the port count, the bandwidth, the
        clock — produces a different hash, so cache entries, checkpoints and
        design-space fingerprints keyed on it can never conflate two
        hardware models that merely share a name.
        """
        payload = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    # -- feasibility -------------------------------------------------------------------------

    def memory_blocks(self) -> int:
        """Total on-chip block budget in BRAM18K equivalents.

        The resource model places every buffer in BRAM18K-sized banks, but
        devices with URAM spill large buffers there (one 288Kb URAM holds 16
        BRAM18Ks' worth of bits), so the block check counts both pools —
        otherwise a URAM-heavy part like the VU9P would reject designs its
        ``memory_bits`` budget was sized to accept.
        """
        return self.bram18k + self.uram * (URAM_BITS // BRAM18K_BITS)

    def fits(self, usage: ResourceUsage,
             dsp_margin: float = 1.0, memory_margin: float = 1.0,
             lut_margin: float = 1.0, ff_margin: float = 1.0) -> bool:
        """True when a design's resource usage fits the budget (with margins).

        ``memory_margin`` covers both memory views — raw bits and memory
        blocks — so ``memory_margin=float("inf")`` still means "ignore
        memory entirely".  FF and block budgets of 0 are unspecified and
        never constrain.
        """
        blocks = self.memory_blocks()
        return (usage.dsp <= self.dsp * dsp_margin
                and usage.memory_bits <= self.memory_bits * memory_margin
                and (blocks <= 0
                     or usage.bram18k <= blocks * memory_margin)
                and usage.lut <= self.lut * lut_margin
                and (self.ff <= 0 or usage.ff <= self.ff * ff_margin))

    def utilization(self, usage: ResourceUsage) -> dict[str, float]:
        """Per-resource utilization fractions (1.0 == 100%)."""
        blocks = self.memory_blocks()
        return {
            "dsp": usage.dsp / self.dsp if self.dsp else 0.0,
            "memory": usage.memory_bits / self.memory_bits if self.memory_bits else 0.0,
            "lut": usage.lut / self.lut if self.lut else 0.0,
            "ff": usage.ff / self.ff if self.ff else 0.0,
            "bram18k": usage.bram18k / blocks if blocks else 0.0,
        }


#: The bundled targets, expressed as data (exactly what a --platform-config
#: file contains).  The two paper targets keep single-ported banks and an
#: unmodeled off-chip link so their estimates match the paper reproduction
#: bit for bit; the other targets carry true dual-ported BRAM and a real
#: off-chip budget (DDR/HBM bytes per cycle at the platform's clock).
BUILTIN_PLATFORM_CONFIGS: tuple[dict, ...] = (
    # Xilinx Zynq XC7Z020 (PYNQ-Z1 class edge device) — paper Tables III/IV.
    {
        "name": "xc7z020",
        "memory_bits": int(4.9e6),
        "dsp": 220,
        "lut": 53200,
        "ff": 106400,
        "bram18k": 280,
        "clock_mhz": 100.0,
    },
    # One super logic region (SLR) of a Xilinx VU9P — paper Table V.
    {
        "name": "vu9p-slr",
        "memory_bits": int(115.3e6),
        "dsp": 2280,
        "lut": 394080,
        "ff": 788160,
        "bram18k": 1440,
        "uram": 320,
        "clock_mhz": 200.0,
    },
    # Xilinx Zynq XC7Z045 (ZC706): dual-ported BRAM, DDR3 at 12.8 GB/s
    # = 128 bytes/cycle at the 100 MHz clock target.
    {
        "name": "xc7z045",
        "memory_bits": int(19.1e6),
        "dsp": 900,
        "lut": 218600,
        "ff": 437200,
        "bram18k": 1090,
        "memory_ports_per_bank": 2,
        "offchip_bandwidth_bytes_per_cycle": 128.0,
        "clock_mhz": 100.0,
    },
    # Xilinx ZCU102 (ZU9EG): dual-ported BRAM, DDR4 at 19.2 GB/s
    # = 96 bytes/cycle at the 200 MHz clock target.
    {
        "name": "zcu102",
        "memory_bits": int(32.1e6),
        "dsp": 2520,
        "lut": 274080,
        "ff": 548160,
        "bram18k": 1824,
        "memory_ports_per_bank": 2,
        "offchip_bandwidth_bytes_per_cycle": 96.0,
        "clock_mhz": 200.0,
    },
    # One SLR of an Alveo U280: dual-ported BRAM + URAM, HBM2 at ~460 GB/s
    # = 1536 bytes/cycle at the 300 MHz clock target.
    {
        "name": "u280-slr",
        "memory_bits": int(129.0e6),
        "dsp": 3008,
        "lut": 435840,
        "ff": 871680,
        "bram18k": 2016,
        "uram": 320,
        "memory_ports_per_bank": 2,
        "offchip_bandwidth_bytes_per_cycle": 1536.0,
        "clock_mhz": 300.0,
    },
)

PLATFORMS: dict[str, Platform] = {
    platform.name: platform
    for platform in (Platform.from_dict(config)
                     for config in BUILTIN_PLATFORM_CONFIGS)
}

#: Xilinx Zynq XC7Z020 (PYNQ-Z1 class edge device).
XC7Z020 = PLATFORMS["xc7z020"]

#: One super logic region (SLR) of a Xilinx VU9P.
VU9P_SLR = PLATFORMS["vu9p-slr"]


# -- config files ---------------------------------------------------------------------------


def load_platform_config(path: Union[str, os.PathLike]) -> list[Platform]:
    """Load validated platforms from a JSON or YAML config file.

    Accepted document shapes: a single platform mapping, a list of platform
    mappings, or ``{"platforms": [...]}``.  JSON always works; ``.yaml`` /
    ``.yml`` files additionally require PyYAML (a clear
    :class:`PlatformError` is raised when it is unavailable, with JSON as
    the dependency-free fallback).
    """
    path = os.fspath(path)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as error:
        raise PlatformError(f"cannot read platform config {path!r}: "
                            f"{error}") from error
    document = _parse_config_text(path, text)
    if isinstance(document, dict) and "platforms" in document:
        extra = sorted(set(document) - {"platforms"})
        if extra:
            raise PlatformError(
                f"{path}: unknown top-level key(s) "
                f"{', '.join(map(repr, extra))} next to 'platforms'")
        entries = document["platforms"]
    elif isinstance(document, dict):
        entries = [document]
    else:
        entries = document
    if not isinstance(entries, list) or not entries:
        raise PlatformError(f"{path}: expected a platform mapping, a list of "
                            f"them, or {{'platforms': [...]}} (non-empty)")
    platforms: list[Platform] = []
    seen: set[str] = set()
    for index, entry in enumerate(entries):
        try:
            platform = Platform.from_dict(entry)
        except PlatformError as error:
            raise PlatformError(f"{path}: platform #{index + 1}: "
                                f"{error}") from error
        if platform.name in seen:
            raise PlatformError(f"{path}: duplicate platform name "
                                f"{platform.name!r}")
        seen.add(platform.name)
        platforms.append(platform)
    return platforms


def _parse_config_text(path: str, text: str):
    if path.endswith((".yaml", ".yml")):
        try:
            import yaml
        except ImportError:
            raise PlatformError(
                f"{path}: YAML platform configs require PyYAML, which is not "
                f"installed — use a JSON config instead") from None
        try:
            return yaml.safe_load(text)
        except yaml.YAMLError as error:
            raise PlatformError(f"{path}: invalid YAML: {error}") from error
    try:
        return json.loads(text)
    except ValueError as error:
        raise PlatformError(f"{path}: invalid JSON: {error}") from error

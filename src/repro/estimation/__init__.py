"""QoR estimation: the analytical latency / resource model (paper Section V-E1)."""

from repro.estimation.resources import OpCharacteristics, ResourceUsage, op_characteristics
from repro.estimation.platform import PLATFORMS, Platform, XC7Z020, VU9P_SLR
from repro.estimation.scheduler import ALAPScheduler, ScheduleResult
from repro.estimation.estimator import QoREstimator, QoRResult

__all__ = [
    "OpCharacteristics",
    "ResourceUsage",
    "op_characteristics",
    "PLATFORMS",
    "Platform",
    "XC7Z020",
    "VU9P_SLR",
    "ALAPScheduler",
    "ScheduleResult",
    "QoREstimator",
    "QoRResult",
]

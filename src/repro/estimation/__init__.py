"""QoR estimation: the analytical latency / resource model (paper Section V-E1)."""

from repro.estimation.resources import OpCharacteristics, ResourceUsage, op_characteristics
from repro.estimation.platform import (
    BUILTIN_PLATFORM_CONFIGS,
    PLATFORMS,
    Platform,
    PlatformError,
    VU9P_SLR,
    XC7Z020,
    load_platform_config,
)
from repro.estimation.scheduler import ALAPScheduler, ScheduleResult
from repro.estimation.estimator import QoREstimator, QoRResult

__all__ = [
    "OpCharacteristics",
    "ResourceUsage",
    "op_characteristics",
    "BUILTIN_PLATFORM_CONFIGS",
    "PLATFORMS",
    "Platform",
    "PlatformError",
    "load_platform_config",
    "XC7Z020",
    "VU9P_SLR",
    "ALAPScheduler",
    "ScheduleResult",
    "QoREstimator",
    "QoRResult",
]

"""The analytical QoR estimator (paper Section V-E1).

Estimates the latency (cycles), initiation interval / throughput interval,
and resource utilization of a directive-level design without invoking a
downstream HLS tool.  The model follows the paper's description:

* every block is scheduled with an ALAP list scheduler under data and memory
  order dependences,
* memory ports are non-shareable resources — the number of physical banks of
  a partitioned array bounds how many accesses per cycle it can serve (reads
  with identical addresses share a port),
* pipelined loops get ``II = max(target II, resource II, recurrence II)`` and
  a latency of ``II * (trip - 1) + depth``,
* perfectly nested loops annotated with ``flatten`` multiply into the trip
  count of the pipelined loop they wrap,
* dataflow functions overlap their stages: the interval is the maximum stage
  latency while the single-frame latency is the sum.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional, Sequence

from repro import obs
from repro.affine.analysis import linearize
from repro.dialects.affine_ops import (
    AffineForOp,
    AffineIfOp,
    access_expressions,
    access_is_write,
    access_memref,
    is_affine_access,
)
from repro.dialects.hlscpp import get_func_directive, get_loop_directive
from repro.estimation.platform import Platform, XC7Z020
from repro.estimation.resources import (
    ResourceUsage,
    SHAREABLE_OPS,
    element_bits,
    memory_resource,
    op_characteristics,
    op_latency,
)
from repro.estimation.scheduler import ALAPScheduler
from repro.ir.module import ModuleOp
from repro.ir.operation import Operation
from repro.ir.types import MemRefType
from repro.ir.value import OpResult, Value

#: Version of the analytical QoR model.  Bump whenever a change makes
#: previously estimated numbers stale (latency formulas, recurrence/resource
#: II rules, operator tables) — persisted estimate caches key on it so old
#: entries are discarded instead of silently poisoning new runs.
#: Version 3: scf.if branches overlap (max instead of sum), pipelined loops
#: report their achieved II through the result instead of writing it into
#: the IR, and the platform's memory ports per bank enter the resource II.
QOR_MODEL_VERSION = 3


@dataclasses.dataclass
class QoRResult:
    """Estimated quality of result of a function or module.

    ``achieved_ii`` is diagnostic metadata (the II of the outermost pipelined
    loop actually reached under resource/recurrence constraints), not part of
    the QoR value: it is excluded from equality so results that round-trip
    through JSON caches — which drop it — still compare equal to fresh ones.
    """

    latency: int
    interval: int
    resources: ResourceUsage
    achieved_ii: Optional[int] = dataclasses.field(default=None, compare=False)

    @property
    def dsp(self) -> int:
        return self.resources.dsp

    @property
    def memory_bits(self) -> int:
        return self.resources.memory_bits

    @property
    def lut(self) -> int:
        return self.resources.lut

    def __repr__(self) -> str:
        return (f"QoRResult(latency={self.latency}, interval={self.interval}, "
                f"dsp={self.resources.dsp}, lut={self.resources.lut}, "
                f"memory_bits={self.resources.memory_bits})")


#: Structured description of a pipelined (possibly flattened) loop nest.
@dataclasses.dataclass
class _PipelineInfo:
    ii: int
    depth: int
    total_trip: int


@dataclasses.dataclass
class _AccessRecord:
    """One memory access of a pipelined body, with precomputed index analysis."""

    op: Operation
    memref: Value
    exprs: Optional[list]
    linear: Optional[tuple]
    is_write: bool
    address_key: tuple


class QoREstimator:
    """Estimates latency, interval and resources of functions and modules.

    The estimator is a pure function of its inputs: the public entry points
    set up per-call state (the module used for callee resolution and a
    per-call function cache) and tear it down before returning, so instances
    carry no state between calls, can be shared across kernels, and remain
    picklable for shipment to DSE worker processes.
    """

    def __init__(self, platform: Platform = XC7Z020):
        self.platform = platform
        self._module: Optional[ModuleOp] = None
        self._function_cache: dict[str, QoRResult] = {}
        self._achieved_ii: Optional[int] = None

    # -- public API --------------------------------------------------------------------------

    def estimate_module(self, module: ModuleOp, top_name: Optional[str] = None) -> QoRResult:
        """Estimate the top function of ``module`` (callees are resolved and cached)."""
        from repro.dialects.hlscpp import find_top_function

        top = module.lookup(top_name) if top_name else find_top_function(module)
        if top is None:
            raise ValueError("could not determine the top function of the module")
        return self._run(top, module)

    def estimate_function(self, func_op: Operation, module: Optional[ModuleOp] = None) -> QoRResult:
        """Estimate a single function (recursively resolving its callees)."""
        return self._run(func_op, module)

    def _run(self, func_op: Operation, module: Optional[ModuleOp]) -> QoRResult:
        estimate_span = obs.NULL_SPAN if obs.active() is None else obs.span(
            "estimate", func=func_op.get_attr("sym_name", ""))
        self._module = module
        self._function_cache = {}
        self._achieved_ii = None
        try:
            with estimate_span:
                obs.counter("estimate.calls")
                result = self._estimate_function(func_op)
                result.achieved_ii = self._achieved_ii
                self._apply_bandwidth_bound(func_op, result)
                return result
        finally:
            self._module = None
            self._function_cache = {}
            self._achieved_ii = None

    def _apply_bandwidth_bound(self, func_op: Operation, result: QoRResult) -> None:
        """Bound the top function's throughput by the off-chip link.

        Every array argument of the top function crosses the off-chip
        boundary once per invocation; with a modeled link of B bytes/cycle,
        no overlap of compute and transfer can push the invocation interval
        (or latency) below ``ceil(total bytes / B)``.  Platforms with an
        unmodeled link (bandwidth 0, the paper targets) are unaffected.
        """
        bandwidth = self.platform.offchip_bandwidth_bytes_per_cycle
        if bandwidth <= 0:
            return
        total_bytes = 0
        for argument in func_op.region(0).front.arguments:
            arg_type = argument.type
            if isinstance(arg_type, MemRefType):
                total_bytes += (arg_type.num_elements
                                * element_bits(arg_type.element_type) + 7) // 8
        if total_bytes <= 0:
            return
        bound = math.ceil(total_bytes / bandwidth)
        result.interval = max(result.interval, bound)
        result.latency = max(result.latency, bound)

    # -- per-call estimation -----------------------------------------------------------------

    def _estimate_function(self, func_op: Operation) -> QoRResult:
        name = func_op.get_attr("sym_name", "")
        if name and name in self._function_cache:
            return self._function_cache[name]

        directive = get_func_directive(func_op)
        body = func_op.region(0).front

        if directive is not None and directive.dataflow:
            result = self._estimate_dataflow_function(func_op)
        elif directive is not None and directive.pipeline:
            latency, resources, info = self._estimate_pipelined_ops(
                self._gather_straightline_ops(body), directive.target_ii, trip=1,
                enclosing_loops=[])
            if self._achieved_ii is None:
                self._achieved_ii = info.ii
            result = QoRResult(latency=latency, interval=info.ii, resources=resources)
        else:
            latency, resources = self._estimate_block(body)
            result = QoRResult(latency=latency, interval=latency, resources=resources)

        if name:
            self._function_cache[name] = result
        return result

    # -- dataflow functions --------------------------------------------------------------------

    def _estimate_dataflow_function(self, func_op: Operation) -> QoRResult:
        body = func_op.region(0).front
        stage_latencies: list[int] = []
        total_latency = 0
        resources = ResourceUsage()
        for op in body.operations:
            if op.name == "func.call":
                callee_result = self._estimate_callee(op)
                if callee_result is None:
                    continue
                stage_latencies.append(max(callee_result.latency, callee_result.interval))
                total_latency += callee_result.latency
                resources = resources + callee_result.resources
                resources = resources + self._double_buffer_memory(op)
            elif isinstance(op, AffineForOp):
                latency, loop_resources, _ = self._estimate_loop(op)
                stage_latencies.append(latency)
                total_latency += latency
                resources = resources + loop_resources
            elif op.name == "memref.alloc":
                resources = resources + self._buffer_memory(op)
        interval = max(stage_latencies) if stage_latencies else total_latency
        return QoRResult(latency=max(total_latency, 1), interval=max(interval, 1),
                         resources=resources)

    def _estimate_callee(self, call_op: Operation) -> Optional[QoRResult]:
        if self._module is None:
            return None
        callee = self._module.lookup(call_op.get_attr("callee"))
        if callee is None:
            return None
        return self._estimate_function(callee)

    def _double_buffer_memory(self, call_op: Operation) -> ResourceUsage:
        """Dataflow channels between stages are ping-pong buffered: count the
        callee's returned buffers a second time."""
        if self._module is None:
            return ResourceUsage()
        callee = self._module.lookup(call_op.get_attr("callee"))
        if callee is None:
            return ResourceUsage()
        return_op = None
        for op in reversed(callee.region(0).front.operations):
            if op.name == "func.return":
                return_op = op
                break
        if return_op is None:
            return ResourceUsage()
        extra = ResourceUsage()
        for operand in return_op.operands:
            if isinstance(operand, OpResult) and operand.owner.name == "memref.alloc":
                extra = extra + self._buffer_memory(operand.owner)
        return extra

    # -- blocks -----------------------------------------------------------------------------------

    def _estimate_block(self, block) -> tuple[int, ResourceUsage]:
        latency = 0
        resources = ResourceUsage()
        scalar_ops: list[Operation] = []
        for op in block.operations:
            if isinstance(op, AffineForOp):
                loop_latency, loop_resources, _ = self._estimate_loop(op)
                latency += loop_latency
                resources = resources + loop_resources
            elif isinstance(op, AffineIfOp):
                then_latency, then_resources = self._estimate_block(op.then_block)
                else_latency, else_resources = (0, ResourceUsage())
                if op.else_block is not None:
                    else_latency, else_resources = self._estimate_block(op.else_block)
                latency += max(then_latency, else_latency) + 1
                resources = resources + then_resources + else_resources
            elif op.name == "scf.for":
                body_latency, body_resources = self._estimate_block(op.body)
                trip = self._scf_trip_count(op)
                latency += trip * (body_latency + 1) + 2
                resources = resources + body_resources
            elif op.name == "scf.if":
                then_latency, then_resources = self._estimate_block(op.then_block)
                else_latency, else_resources = (0, ResourceUsage())
                if op.else_block is not None:
                    else_latency, else_resources = self._estimate_block(op.else_block)
                latency += max(then_latency, else_latency) + 1
                resources = resources + then_resources + else_resources
            elif op.name == "func.call":
                callee_result = self._estimate_callee(op)
                if callee_result is not None:
                    latency += callee_result.latency
                    resources = resources + callee_result.resources
            elif op.name == "memref.alloc":
                resources = resources + self._buffer_memory(op)
            elif op.name in ("func.return", "affine.yield", "scf.yield"):
                continue
            else:
                scalar_ops.append(op)

        if scalar_ops:
            scalar_records = self._access_records(scalar_ops, self._enclosing_loops(scalar_ops[0]))
            schedule = ALAPScheduler(
                self._memory_edges(scalar_records, 0)).schedule(scalar_ops)
            latency += schedule.depth
            resources = resources + self._shared_scalar_resources(scalar_ops)
        return latency, resources

    @staticmethod
    def _scf_trip_count(op: Operation) -> int:
        from repro.dialects import arith

        lower = arith.constant_value(op.operand(0))
        upper = arith.constant_value(op.operand(1))
        step = arith.constant_value(op.operand(2))
        if lower is None or upper is None or step is None or step == 0:
            return 1
        return max(0, -(-(int(upper) - int(lower)) // int(step)))

    @staticmethod
    def _shared_scalar_resources(ops: Sequence[Operation]) -> ResourceUsage:
        """Resources of straight-line code outside pipelined loops.

        Operators are reused over time, so each operation *kind* contributes a
        single hardware unit.
        """
        resources = ResourceUsage()
        seen_kinds: set[str] = set()
        for op in ops:
            characteristics = op_characteristics(op.name)
            if op.name in SHAREABLE_OPS:
                if op.name in seen_kinds:
                    continue
                seen_kinds.add(op.name)
            resources = resources + ResourceUsage(
                dsp=characteristics.dsp, lut=characteristics.lut, ff=characteristics.ff)
        return resources

    def _buffer_memory(self, alloc_op: Operation) -> ResourceUsage:
        memref_type: MemRefType = alloc_op.result().type
        return memory_resource(memref_type.num_elements,
                               element_bits(memref_type.element_type),
                               memref_type.num_partitions)

    # -- loops -------------------------------------------------------------------------------------

    def _estimate_loop(self, loop: AffineForOp) -> tuple[int, ResourceUsage, Optional[_PipelineInfo]]:
        directive = get_loop_directive(loop)
        trip = self._loop_trip(loop)

        if directive is not None and directive.pipeline:
            ops = self._gather_straightline_ops(loop.body)
            latency, resources, info = self._estimate_pipelined_ops(
                ops, directive.target_ii, trip, self._enclosing_loops(loop) + [loop])
            if self._achieved_ii is None:
                self._achieved_ii = info.ii
            return latency, resources, info

        body_ops = [op for op in loop.body.operations if op.name != "affine.yield"]
        single_child = len(body_ops) == 1 and isinstance(body_ops[0], AffineForOp)
        if single_child:
            child_latency, child_resources, child_info = self._estimate_loop(body_ops[0])
            if child_info is not None and directive is not None and directive.flatten:
                total_trip = child_info.total_trip * trip
                latency = child_info.ii * max(0, total_trip - 1) + child_info.depth + 1
                info = _PipelineInfo(child_info.ii, child_info.depth, total_trip)
                return latency, child_resources, info
            latency = trip * (child_latency + 1) + 2
            return latency, child_resources, None

        body_latency, body_resources = self._estimate_block(loop.body)
        latency = trip * (body_latency + 1) + 2
        return latency, body_resources, None

    def _loop_trip(self, loop: AffineForOp) -> int:
        trip = loop.trip_count()
        if trip is not None:
            return max(trip, 0)
        # Variable bounds: use the average extent over the outer iteration domain
        # (triangular loops like SYRK's j-loop average to roughly half the range).
        bounds = self._variable_bound_extent(loop)
        return max(1, bounds)

    def _variable_bound_extent(self, loop: AffineForOp) -> int:
        from repro.affine.analysis import expr_min_max
        from repro.transforms.loop.remove_variable_bound import _operand_range

        try:
            lower = (loop.constant_lower_bound if loop.has_constant_lower_bound()
                     else None)
            upper_expr = loop.upper_map.results[0]
            ranges = []
            for operand in loop.ub_operands:
                operand_range = _operand_range(operand)
                if operand_range is None:
                    obs.counter("estimate.variable_bound_fallbacks")
                    return 1
                ranges.append(operand_range)
            if ranges:
                low, high = expr_min_max(upper_expr, ranges)
            else:
                low = high = upper_expr.evaluate([])
            average_upper = (low + high) / 2.0
            lower = lower if lower is not None else 0
            return int(max(1, round((average_upper - lower) / max(1, loop.step))))
        except (ValueError, TypeError, KeyError, IndexError, AttributeError,
                ArithmeticError):
            # The bound analysis hit a shape it cannot reason about — fall
            # back to a trip estimate of 1, but leave a visible trail.
            obs.counter("estimate.variable_bound_fallbacks")
            return 1

    # -- pipelined regions ----------------------------------------------------------------------------

    def _gather_straightline_ops(self, block) -> list[Operation]:
        """All computational ops of a pipelined body, flattening affine.if regions."""
        ops: list[Operation] = []
        for op in block.operations:
            if op.name in ("affine.yield", "scf.yield", "func.return"):
                continue
            if isinstance(op, AffineIfOp):
                ops.extend(self._gather_straightline_ops(op.then_block))
                if op.else_block is not None:
                    ops.extend(self._gather_straightline_ops(op.else_block))
                continue
            if op.regions:
                for region in op.regions:
                    for nested_block in region.blocks:
                        ops.extend(self._gather_straightline_ops(nested_block))
                continue
            ops.append(op)
        return ops

    def _estimate_pipelined_ops(self, ops: list[Operation], target_ii: int, trip: int,
                                enclosing_loops: list[AffineForOp]
                                ) -> tuple[int, ResourceUsage, _PipelineInfo]:
        records = self._access_records(ops, enclosing_loops)
        edges = self._memory_edges(records, len(enclosing_loops))
        schedule = ALAPScheduler(edges).schedule(ops)
        depth = max(1, schedule.depth)

        resource_ii = self._resource_ii(records)
        recurrence_ii = self._recurrence_ii(records, schedule, enclosing_loops)
        ii = max(1, int(target_ii), resource_ii, recurrence_ii)

        latency = ii * max(0, trip - 1) + depth + 1
        resources = self._pipelined_resources(ops, ii)
        return latency, resources, _PipelineInfo(ii=ii, depth=depth, total_trip=trip)

    @staticmethod
    def _enclosing_loops(op: Operation) -> list[AffineForOp]:
        loops = [ancestor for ancestor in op.ancestors() if isinstance(ancestor, AffineForOp)]
        loops.reverse()
        return loops

    # -- memory modelling -------------------------------------------------------------------------------

    def _access_records(self, ops: Sequence[Operation],
                        enclosing_loops: list[AffineForOp]) -> list[_AccessRecord]:
        """One :class:`_AccessRecord` per memory access in ``ops``.

        Index expressions are linearized once here so that the alias, port
        and recurrence analyses below are cheap pairwise comparisons.
        """
        dim_map = {loop.induction_variable: position
                   for position, loop in enumerate(enclosing_loops)}
        num_dims = len(enclosing_loops)
        records: list[_AccessRecord] = []
        for op in ops:
            if not is_affine_access(op) and op.name not in ("memref.load", "memref.store"):
                continue
            exprs = access_expressions(op, dim_map)
            linear = None
            key: tuple
            if exprs is not None:
                linear = []
                for expr in exprs:
                    decomposed = linearize(expr, num_dims)
                    if decomposed is None:
                        linear = None
                        break
                    linear.append((tuple(decomposed[0]), decomposed[1]))
                key = tuple(linear) if linear is not None else ("op", id(op))
            else:
                key = ("op", id(op))
            records.append(_AccessRecord(op=op, memref=access_memref(op), exprs=exprs,
                                         linear=tuple(linear) if linear else None,
                                         is_write=access_is_write(op), address_key=key))
        return records

    @staticmethod
    def _group_by_memref(records: Sequence["_AccessRecord"]) -> dict[int, list]:
        groups: dict[int, list] = {}
        for record in records:
            groups.setdefault(id(record.memref), []).append(record)
        return groups

    def _memory_edges(self, records: Sequence["_AccessRecord"],
                      num_dims: int) -> list[tuple[Operation, Operation]]:
        """Ordering edges between accesses that may touch the same address.

        Accesses are bucketed by their (linearized) address: accesses in the
        same bucket are chained in program order whenever a write is involved,
        which captures accumulation chains without the quadratic cross-check
        of provably distinct addresses.  Accesses whose address could not be
        linearized are conservatively ordered against every other access of
        the same buffer.
        """
        edges: list[tuple[Operation, Operation]] = []
        for group in self._group_by_memref(records).values():
            buckets: dict[tuple, list[_AccessRecord]] = {}
            unknown: list[_AccessRecord] = []
            for record in group:
                if record.linear is None:
                    unknown.append(record)
                else:
                    buckets.setdefault(record.address_key, []).append(record)
            for bucket in buckets.values():
                previous_write = None
                previous_reads: list[_AccessRecord] = []
                for record in bucket:
                    if record.is_write:
                        if previous_write is not None:
                            edges.append((previous_write.op, record.op))
                        for read in previous_reads:
                            edges.append((read.op, record.op))
                        previous_write = record
                        previous_reads = []
                    else:
                        if previous_write is not None:
                            edges.append((previous_write.op, record.op))
                        previous_reads.append(record)
            if unknown:
                for record in unknown:
                    for other in group:
                        if other is record or (not record.is_write and not other.is_write):
                            continue
                        source, target = (other, record)
                        edges.append((source.op, target.op))
        return edges

    @staticmethod
    def _may_alias_same_iteration(a: "_AccessRecord", b: "_AccessRecord") -> bool:
        if a.linear is None or b.linear is None:
            return True
        if len(a.linear) != len(b.linear):
            return True
        for (coeffs_a, const_a), (coeffs_b, const_b) in zip(a.linear, b.linear):
            if coeffs_a != coeffs_b:
                return True
            if const_a != const_b:
                return False
        return True

    def _resource_ii(self, records: Sequence["_AccessRecord"]) -> int:
        """Port-limited II: unique access addresses per cycle per memory port.

        Each physical bank serves ``memory_ports_per_bank`` accesses per
        cycle (1 on the paper targets; 2 on platforms modeling the second
        BRAM port).
        """
        ports_per_bank = max(1, self.platform.memory_ports_per_bank)
        worst = 1
        for group in self._group_by_memref(records).values():
            memref_type = group[0].memref.type
            banks = memref_type.num_partitions if isinstance(memref_type, MemRefType) else 1
            lanes = banks * ports_per_bank
            unique_reads = {record.address_key for record in group if not record.is_write}
            unique_writes = {record.address_key for record in group if record.is_write}
            read_ii = -(-len(unique_reads) // lanes) if unique_reads else 1
            write_ii = -(-len(unique_writes) // lanes) if unique_writes else 1
            worst = max(worst, read_ii, write_ii)
        return worst

    def _recurrence_ii(self, records: Sequence["_AccessRecord"], schedule,
                       enclosing_loops: list[AffineForOp]) -> int:
        """Recurrence-constrained II of a pipelined (possibly flattened) nest."""
        if not enclosing_loops:
            return 1
        num_dims = len(enclosing_loops)

        # Pipeline dims: the pipelined loop itself plus flatten-marked perfect parents.
        pipeline_dims = []
        for position in range(num_dims - 1, -1, -1):
            loop = enclosing_loops[position]
            directive = get_loop_directive(loop)
            if position == num_dims - 1:
                pipeline_dims.append(position)
            elif directive is not None and directive.flatten:
                pipeline_dims.append(position)
            else:
                break
        pipeline_dims = sorted(pipeline_dims)

        strides = self._flattened_strides(enclosing_loops, pipeline_dims)
        steps = [max(1, loop.step) for loop in enclosing_loops]

        worst = 1
        for group in self._group_by_memref(records).values():
            # Collapse accesses with identical addresses: the recurrence chain of a
            # (write address, read address) pair is bounded by the latest write and
            # the earliest read of those addresses.
            writes: dict[tuple, tuple] = {}
            reads: dict[tuple, tuple] = {}
            for record in group:
                if record.is_write:
                    finish = schedule.asap.get(record.op, 0) + op_latency(record.op.name)
                    current = writes.get(record.address_key)
                    if current is None or finish > current[1]:
                        writes[record.address_key] = (record, finish)
                else:
                    start = schedule.asap.get(record.op, 0)
                    current = reads.get(record.address_key)
                    if current is None or start < current[1]:
                        reads[record.address_key] = (record, start)
            for write, write_finish in writes.values():
                for read, read_start in reads.values():
                    if write.address_key == read.address_key:
                        # Same-address read-modify-write (an accumulation): the
                        # model assumes the HLS tool forwards the stored value
                        # through a register and rewrites the reduction into
                        # partial sums, so the chain does not constrain the II.
                        # For floating point this needs unsafe-math-style
                        # reassociation — an optimistic assumption this
                        # estimator makes deliberately (its tests specify that
                        # unrolling a reduction must pay off in latency and
                        # that the target II must remain controllable).  Only
                        # genuinely different addresses (e.g. stencil
                        # neighbors) carry a recurrence.
                        continue
                    distance = self._carried_distance(
                        write, read, num_dims, pipeline_dims, strides, steps)
                    if distance is None or distance <= 0:
                        continue
                    chain = max(1, write_finish - read_start)
                    worst = max(worst, math.ceil(chain / distance))
        return worst

    @staticmethod
    def _flattened_strides(enclosing_loops: list[AffineForOp],
                           pipeline_dims: list[int]) -> dict[int, int]:
        """Iteration-space stride of each pipeline dim in the flattened nest."""
        strides: dict[int, int] = {}
        stride = 1
        for position in sorted(pipeline_dims, reverse=True):
            strides[position] = stride
            trip = enclosing_loops[position].trip_count() or 1
            stride *= max(1, trip)
        return strides

    def _carried_distance(self, write: "_AccessRecord", read: "_AccessRecord",
                          num_dims: int, pipeline_dims: list[int],
                          strides: dict[int, int], steps: list[int]) -> Optional[int]:
        """Flattened iteration distance of the dependence, if carried by the pipeline.

        Distances are measured in loop *iterations*, so index offsets are
        divided by ``coefficient * step`` of the loop they vary with; a
        non-integral quotient means the two accesses never touch the same
        address across iterations of that loop.
        """
        if write.linear is None or read.linear is None:
            return 1
        if len(write.linear) != len(read.linear):
            return 1
        per_dim: dict[int, object] = {d: "free" for d in range(num_dims)}
        referenced: set[int] = set()
        for (coeffs_w, const_w), (coeffs_r, const_r) in zip(write.linear, read.linear):
            if coeffs_w != coeffs_r:
                return 1
            offset = const_w - const_r
            nonzero = [d for d, c in enumerate(coeffs_w) if c != 0]
            referenced.update(nonzero)
            if not nonzero:
                if offset != 0:
                    return None
                continue
            if len(nonzero) == 1:
                d = nonzero[0]
                per_iteration = coeffs_w[d] * steps[d]
                if offset % per_iteration != 0:
                    return None
                distance = abs(offset // per_iteration)
                current = per_dim[d]
                per_dim[d] = distance if current == "free" else max(current, distance)

        # Find the innermost pipeline dim that carries the dependence.
        for position in sorted(pipeline_dims, reverse=True):
            value = per_dim[position]
            if value == "free" and position not in referenced:
                return strides[position]  # same address regardless of this dim
            if value != "free" and value not in (0,):
                return strides[position] * int(value)
        return None

    # -- resources of pipelined bodies ------------------------------------------------------------------

    @staticmethod
    def _pipelined_resources(ops: Sequence[Operation], ii: int) -> ResourceUsage:
        counts: dict[str, int] = {}
        for op in ops:
            counts[op.name] = counts.get(op.name, 0) + 1
        resources = ResourceUsage(lut=32)  # loop control overhead
        for name, count in counts.items():
            characteristics = op_characteristics(name)
            if name in SHAREABLE_OPS:
                units = -(-count // max(1, ii))
            else:
                units = count
            resources = resources + ResourceUsage(
                dsp=units * characteristics.dsp,
                lut=units * characteristics.lut,
                ff=units * characteristics.ff,
            )
        return resources

"""ALAP scheduling of straight-line operation lists.

The QoR estimator schedules the operations of each block to obtain the block
latency (critical path under data and memory-order dependences) and the
operation start times used for recurrence-II computation.  Following the
paper, the schedule is computed as-late-as-possible (ALAP); the ASAP times
are computed as well since the difference (the slack) is occasionally useful
to tests and diagnostics.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

from repro.estimation.resources import op_latency
from repro.ir.operation import Operation
from repro.ir.value import OpResult


@dataclasses.dataclass
class ScheduleResult:
    """Start times (ASAP and ALAP) and the overall schedule depth."""

    asap: dict[Operation, int]
    alap: dict[Operation, int]
    depth: int

    def start_time(self, op: Operation) -> int:
        return self.alap.get(op, 0)

    def finish_time(self, op: Operation) -> int:
        return self.alap.get(op, 0) + op_latency(op.name)

    def slack(self, op: Operation) -> int:
        return self.alap.get(op, 0) - self.asap.get(op, 0)


class ALAPScheduler:
    """Schedules a list of operations with data and extra (memory) edges."""

    def __init__(self, extra_edges: Optional[Sequence[tuple[Operation, Operation]]] = None):
        self.extra_edges = list(extra_edges or [])

    def schedule(self, ops: Sequence[Operation]) -> ScheduleResult:
        ops = list(ops)
        op_set = set(ops)
        predecessors: dict[Operation, list[Operation]] = {op: [] for op in ops}
        successors: dict[Operation, list[Operation]] = {op: [] for op in ops}

        for op in ops:
            for operand in op.operands:
                if isinstance(operand, OpResult) and operand.owner in op_set:
                    predecessors[op].append(operand.owner)
                    successors[operand.owner].append(op)
        for source, target in self.extra_edges:
            if source in op_set and target in op_set:
                predecessors[target].append(source)
                successors[source].append(target)

        asap = self._asap(ops, predecessors)
        depth = max((asap[op] + op_latency(op.name) for op in ops), default=0)
        alap = self._alap(ops, successors, depth)
        return ScheduleResult(asap=asap, alap=alap, depth=depth)

    # -- internals ----------------------------------------------------------------------

    @staticmethod
    def _asap(ops: Sequence[Operation],
              predecessors: dict[Operation, list[Operation]]) -> dict[Operation, int]:
        times: dict[Operation, int] = {}
        for op in ops:  # ops are in program order, so defs precede uses
            earliest = 0
            for pred in predecessors[op]:
                earliest = max(earliest, times.get(pred, 0) + op_latency(pred.name))
            times[op] = earliest
        return times

    @staticmethod
    def _alap(ops: Sequence[Operation], successors: dict[Operation, list[Operation]],
              depth: int) -> dict[Operation, int]:
        times: dict[Operation, int] = {}
        for op in reversed(list(ops)):
            latest = depth - op_latency(op.name)
            for succ in successors[op]:
                latest = min(latest, times.get(succ, depth) - op_latency(op.name))
            times[op] = max(0, latest)
        return times

"""ALAP scheduling of straight-line operation lists.

The QoR estimator schedules the operations of each block to obtain the block
latency (critical path under data and memory-order dependences) and the
operation start times used for recurrence-II computation.  Following the
paper, the schedule is computed as-late-as-possible (ALAP); the ASAP times
are computed as well since the difference (the slack) is occasionally useful
to tests and diagnostics.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

from repro.estimation.resources import op_latency
from repro.ir.operation import Operation
from repro.ir.value import OpResult


@dataclasses.dataclass
class ScheduleResult:
    """Start times (ASAP and ALAP) and the overall schedule depth."""

    asap: dict[Operation, int]
    alap: dict[Operation, int]
    depth: int

    def start_time(self, op: Operation) -> int:
        return self.alap.get(op, 0)

    def finish_time(self, op: Operation) -> int:
        return self.alap.get(op, 0) + op_latency(op.name)

    def slack(self, op: Operation) -> int:
        return self.alap.get(op, 0) - self.asap.get(op, 0)


class ALAPScheduler:
    """Schedules a list of operations with data and extra (memory) edges."""

    def __init__(self, extra_edges: Optional[Sequence[tuple[Operation, Operation]]] = None):
        self.extra_edges = list(extra_edges or [])

    def schedule(self, ops: Sequence[Operation]) -> ScheduleResult:
        ops = list(ops)
        op_set = set(ops)
        predecessors: dict[Operation, list[Operation]] = {op: [] for op in ops}
        successors: dict[Operation, list[Operation]] = {op: [] for op in ops}

        # The edge/latency loops run over every operand of a fully-unrolled
        # pipelined block (hundreds of thousands of edges per estimate), so
        # they read op._operands directly and memoize latency per interned
        # op name instead of calling the property/table helpers per edge.
        for op in ops:
            preds = predecessors[op]
            for use in op._operands:
                operand = use.value
                if isinstance(operand, OpResult):
                    owner = operand.operation
                    if owner in op_set:
                        preds.append(owner)
                        successors[owner].append(op)
        for source, target in self.extra_edges:
            if source in op_set and target in op_set:
                predecessors[target].append(source)
                successors[source].append(target)

        latency = _LatencyMemo()
        asap = self._asap(ops, predecessors, latency)
        depth = 0
        for op in ops:
            finish = asap[op] + latency[op.name]
            if finish > depth:
                depth = finish
        alap = self._alap(ops, successors, depth, latency)
        return ScheduleResult(asap=asap, alap=alap, depth=depth)

    # -- internals ----------------------------------------------------------------------

    @staticmethod
    def _asap(ops: Sequence[Operation],
              predecessors: dict[Operation, list[Operation]],
              latency: Optional["_LatencyMemo"] = None) -> dict[Operation, int]:
        latency = latency if latency is not None else _LatencyMemo()
        times: dict[Operation, int] = {}
        for op in ops:  # ops are in program order, so defs precede uses
            earliest = 0
            for pred in predecessors[op]:
                start = times.get(pred, 0) + latency[pred.name]
                if start > earliest:
                    earliest = start
            times[op] = earliest
        return times

    @staticmethod
    def _alap(ops: Sequence[Operation], successors: dict[Operation, list[Operation]],
              depth: int,
              latency: Optional["_LatencyMemo"] = None) -> dict[Operation, int]:
        latency = latency if latency is not None else _LatencyMemo()
        times: dict[Operation, int] = {}
        for op in reversed(list(ops)):
            own_latency = latency[op.name]
            latest = depth - own_latency
            for succ in successors[op]:
                bound = times.get(succ, depth) - own_latency
                if bound < latest:
                    latest = bound
            times[op] = max(0, latest)
        return times


class _LatencyMemo(dict):
    """Per-schedule ``{op name: latency}`` memo (missing names fill themselves)."""

    def __missing__(self, op_name: str) -> int:
        result = self[op_name] = op_latency(op_name)
        return result

"""The metrics registry: counters, gauges, histograms and series.

One :class:`MetricsRegistry` per observability session unifies what used to
be three ad-hoc stat paths — pass timings (``PassManager.timings``),
rewrite-pattern hit/miss counts (``GreedyRewriteDriver.pattern_stats``) and
estimate-cache accounting (``CacheStats``) — plus the DSE runtime metrics
(evaluations per batch, worker busy time, budget consumption,
frontier-evolution series).  Uniform naming makes the union exportable as
one JSON document and renderable as one report:

========================  =========  ==============================================
name                      kind       meaning
========================  =========  ==============================================
``pass.seconds.<pass>``   counter    accumulated wall-clock of one pass bucket
``pattern.<name>.hits``   counter    successful pattern applications
``pattern.<name>.misses`` counter    match attempts that applied nothing
``bucket.<op>.hits``      counter    dispatch-bucket applications per op name
``cache.hits`` etc.       counter    estimate-cache hits/misses/stores/evictions
``dse.evaluations``       counter    design points actually evaluated
``dse.points``            counter    design points processed (incl. cache hits)
``dse.worker.busy_seconds``  counter    summed per-evaluation worker wall-clock
``dse.batch.points``      histogram  batch-size distribution
``dse.frontier.size.<k>`` series     (iteration, frontier size) per kernel
``dse.frontier.hv.<k>``   series     (iteration, frontier hypervolume) per kernel
``dse.node.<k>.*``        gauge      per-node budget grants and consumption
========================  =========  ==============================================

Counters hold floats (pass timings are fractional seconds); every structure
is guarded by one lock so per-kernel coordinator threads can report into a
shared registry.  Exports sort keys, so two registries holding the same
values render byte-identically regardless of insertion order.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Iterable, Mapping, Optional, Union

Number = Union[int, float]


def _jsonable(value: Number) -> Number:
    """Ints stay ints so deterministic counters export without float jitter."""
    if isinstance(value, float) and value.is_integer():
        return int(value)
    return value


@dataclasses.dataclass
class Histogram:
    """Summary statistics of one observed distribution."""

    count: int = 0
    total: float = 0.0
    min: Optional[float] = None
    max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_json_dict(self) -> dict:
        return {"count": self.count, "total": _jsonable(self.total),
                "min": _jsonable(self.min) if self.min is not None else None,
                "max": _jsonable(self.max) if self.max is not None else None}


class MetricsRegistry:
    """Thread-safe counters, gauges, histograms and (step, value) series."""

    def __init__(self):
        self._lock = threading.Lock()
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}
        self.series: dict[str, list[tuple[Number, Number]]] = {}

    # -- recording --------------------------------------------------------------------------

    def counter_add(self, name: str, value: Number = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + value

    def gauge_set(self, name: str, value: Number) -> None:
        with self._lock:
            self.gauges[name] = value

    def observe(self, name: str, value: Number) -> None:
        with self._lock:
            histogram = self.histograms.get(name)
            if histogram is None:
                histogram = self.histograms[name] = Histogram()
            histogram.observe(value)

    def series_append(self, name: str, step: Number, value: Number) -> None:
        with self._lock:
            self.series.setdefault(name, []).append((step, value))

    def merge_counters(self, counters: Mapping[str, Number]) -> None:
        """Fold a batch of counter deltas in (one lock acquisition)."""
        with self._lock:
            for name, value in counters.items():
                self.counters[name] = self.counters.get(name, 0) + value

    # -- reading ----------------------------------------------------------------------------

    def counter(self, name: str) -> Number:
        with self._lock:
            return self.counters.get(name, 0)

    def counters_with_prefix(self, prefix: str) -> dict[str, Number]:
        """``{suffix: value}`` of every counter under ``prefix`` (stripped)."""
        with self._lock:
            return {name[len(prefix):]: value
                    for name, value in self.counters.items()
                    if name.startswith(prefix)}

    def to_json_dict(self) -> dict:
        """A plain-data snapshot, stable under key sorting."""
        with self._lock:
            return {
                "counters": {name: _jsonable(value)
                             for name, value in self.counters.items()},
                "gauges": {name: _jsonable(value)
                           for name, value in self.gauges.items()},
                "histograms": {name: histogram.to_json_dict()
                               for name, histogram in self.histograms.items()},
                "series": {name: [[_jsonable(step), _jsonable(value)]
                                  for step, value in points]
                           for name, points in self.series.items()},
            }


def pattern_counter_deltas(stats: Mapping[str, Iterable[int]],
                           bucket_stats: Mapping[str, Iterable[int]]
                           ) -> dict[str, int]:
    """Rewrite-driver ``pattern_stats``/``bucket_stats`` as counter deltas."""
    deltas: dict[str, int] = {}
    for name, (hits, misses) in stats.items():
        deltas[f"pattern.{name}.hits"] = hits
        deltas[f"pattern.{name}.misses"] = misses
    for name, (hits, misses) in bucket_stats.items():
        deltas[f"bucket.{name}.hits"] = hits
        deltas[f"bucket.{name}.misses"] = misses
    return deltas

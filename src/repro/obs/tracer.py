"""Hierarchical spans and the process-local tracer.

A *span* is one named, timed interval with arbitrary JSON-able arguments.
Spans nest: the tracer keeps one open-span stack per thread, so an enclosing
``with span(...)`` frame is the parent of every span opened inside it, and a
span closes even when the traced code raises (the exception is recorded as
the ``error`` argument and re-raised).

Finished spans land on a logical **track** — a named timeline that maps to
one Chrome-trace thread row.  Tracks are semantic, not physical: a DSE
kernel's coordinator work goes to ``dse:<kernel>`` and its worker-side
evaluations to ``worker:<kernel>`` regardless of which OS thread or worker
process did the work, which is what keeps trace output deterministic
(modulo timestamps) across ``--jobs``.

Worker processes do not share the coordinator's tracer.  They record into a
throwaway local session per evaluation (:func:`capture_task`), return the
result as a picklable :class:`TaskTelemetry`, and the coordinator merges it
with :meth:`Tracer.absorb` — appending span groups in submission order onto
a per-track logical-time cursor, so merge order never depends on pool
scheduling.  The worker's real wall-clock start lives only in the span
arguments (``wall``), never in the merge key.
"""

from __future__ import annotations

import dataclasses
import os
import threading
import time
from typing import Any, Optional

#: The default logical track of a thread that never selected one.
MAIN_TRACK = "main"


@dataclasses.dataclass
class Span:
    """One finished span on a logical track (times in seconds)."""

    name: str
    start: float
    duration: float
    depth: int
    args: dict

    def to_tuple(self) -> tuple:
        """Picklable plain-data form, for :class:`TaskTelemetry`."""
        return (self.name, self.start, self.duration, self.depth, self.args)


@dataclasses.dataclass
class TaskTelemetry:
    """Spans + metric deltas of one worker-side evaluation (picklable)."""

    #: ``Span.to_tuple()`` rows, child-before-parent (close order).
    spans: list
    #: Counter name -> delta, folded into the coordinator registry.
    counters: dict
    #: Total wall-clock of the task (advances the track cursor on absorb).
    duration: float


class _ActiveSpan:
    """Context manager for one in-flight span."""

    __slots__ = ("_tracer", "name", "args", "_start", "_depth", "_track")

    def __init__(self, tracer: "Tracer", name: str, args: dict):
        self._tracer = tracer
        self.name = name
        self.args = args

    def set(self, **args) -> "_ActiveSpan":
        """Attach (or override) span arguments mid-flight."""
        self.args.update(args)
        return self

    def __enter__(self) -> "_ActiveSpan":
        state = self._tracer._thread_state()
        self._track = state.track
        # Depth is track-local: a thread that switches tracks mid-span must
        # open the new track's spans at depth 0 (the Chrome-trace exporter
        # rebuilds each track's nesting tree from close order + depth).
        self._depth = sum(1 for open_span in state.stack
                          if open_span._track == self._track)
        state.stack.append(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.perf_counter() - self._start
        state = self._tracer._thread_state()
        state.stack.pop()
        if exc is not None:
            self.args["error"] = f"{type(exc).__name__}: {exc}"
        self._tracer._record(self._track, Span(
            name=self.name, start=self._start - self._tracer.t0,
            duration=duration, depth=self._depth, args=self.args))
        return False  # never swallow the exception


class _NullSpan:
    """The zero-overhead span of a disabled tracer: a shared, inert object."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **args) -> "_NullSpan":
        return self


#: The one null span every disabled ``span()`` call returns (no allocation).
NULL_SPAN = _NullSpan()


class _ThreadState(threading.local):
    def __init__(self):
        self.stack: list = []
        self.track: str = MAIN_TRACK


class Tracer:
    """Records spans onto logical tracks; merges worker telemetry."""

    def __init__(self):
        self.t0 = time.perf_counter()
        self._lock = threading.Lock()
        #: track name -> finished spans, in close order (children first).
        self._tracks: dict[str, list[Span]] = {}
        #: Logical-time cursor per track absorbed worker groups append at.
        self._cursors: dict[str, float] = {}
        self._state = _ThreadState()

    # -- recording --------------------------------------------------------------------------

    def span(self, name: str, **args) -> _ActiveSpan:
        return _ActiveSpan(self, name, args)

    def use_track(self, track: str) -> "_TrackScope":
        """Route this thread's spans to ``track`` inside the ``with`` block."""
        return _TrackScope(self, track)

    def _thread_state(self) -> _ThreadState:
        return self._state

    def _record(self, track: str, span: Span) -> None:
        with self._lock:
            self._tracks.setdefault(track, []).append(span)

    # -- worker-telemetry merge -------------------------------------------------------------

    def absorb(self, track: str, telemetry: TaskTelemetry) -> None:
        """Append one task's span group at the track's logical-time cursor.

        Called in submission order by the coordinator, so the merged
        timeline is deterministic for any worker count: group *order* comes
        from the coordinator's deterministic dispatch sequence and the
        in-group span times are the worker's own relative clock.
        """
        with self._lock:
            cursor = self._cursors.get(track, 0.0)
            spans = self._tracks.setdefault(track, [])
            for name, start, duration, depth, args in telemetry.spans:
                spans.append(Span(name=name, start=cursor + start,
                                  duration=duration, depth=depth, args=args))
            self._cursors[track] = cursor + max(0.0, telemetry.duration)

    # -- reading ----------------------------------------------------------------------------

    def tracks(self) -> dict[str, list[Span]]:
        """Snapshot of every track's finished spans (close order)."""
        with self._lock:
            return {name: list(spans) for name, spans in self._tracks.items()}

    def num_spans(self) -> int:
        with self._lock:
            return sum(len(spans) for spans in self._tracks.values())


class _TrackScope:
    __slots__ = ("_tracer", "_track", "_previous")

    def __init__(self, tracer: Tracer, track: str):
        self._tracer = tracer
        self._track = track

    def __enter__(self):
        state = self._tracer._thread_state()
        self._previous = state.track
        state.track = self._track
        return self

    def __exit__(self, *exc) -> bool:
        self._tracer._thread_state().track = self._previous
        return False


def task_root_args(**extra: Any) -> dict:
    """Standard payload of a worker task's root span.

    ``pid`` and ``wall`` identify where and when the work physically ran;
    they are payload only — the merged trace's timeline and ordering never
    depend on them (the determinism contract).
    """
    return {"pid": os.getpid(), "wall": time.time(), **extra}

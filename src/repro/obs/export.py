"""Exporters: Chrome trace-event JSON and the metrics JSON document.

The trace export follows the Chrome trace-event format (the JSON flavor
Perfetto and ``chrome://tracing`` load): one complete ``"ph": "X"`` event
per finished span with microsecond ``ts``/``dur``, plus ``"M"`` metadata
events naming the process and one thread row per logical track.

Determinism: ``pid``/``tid`` are assigned from the *sorted* track names and
events are emitted track by track in recorded order, so two runs that
traced the same logical work produce the same event sequence — only the
``ts``/``dur``/``wall``/``pid-payload`` numbers differ.  That is the
"deterministic modulo timestamps" contract the tests pin across
``--jobs 1/2/4``.

:func:`validate_chrome_trace` is the import-side check (used by tests and
the CI smoke job): structural validity plus proper span nesting per thread
row — on one row, two spans either nest or are disjoint.
"""

from __future__ import annotations

import json
from typing import Mapping, Optional

import math

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Span, Tracer

#: pid of every event (single logical process; workers are merged tracks).
TRACE_PID = 1


class _SpanNode:
    """One span with its children, rebuilt from close order + depth."""

    __slots__ = ("span", "children", "ts", "dur")

    def __init__(self, span: Span, children: list):
        self.span = span
        self.children = children


def _build_span_forest(spans: list[Span]) -> list[_SpanNode]:
    """Rebuild the span tree of one track.

    Tracks record spans in close order (children before parents) with their
    track-local nesting depth, so a span at depth ``d`` adopts every
    unclaimed span at depth ``d + 1`` — those can only have closed while it
    was open.
    """
    pending: dict[int, list[_SpanNode]] = {}
    roots: list[_SpanNode] = []
    for span in spans:
        node = _SpanNode(span, pending.pop(span.depth + 1, []))
        if span.depth == 0:
            roots.append(node)
        else:
            pending.setdefault(span.depth, []).append(node)
    # Orphans (spans still open at export time never closed their parents):
    # surface them as roots rather than silently dropping them.
    for depth in sorted(pending):
        roots.extend(pending[depth])
    return roots


def _layout(node: _SpanNode, t_min: int) -> int:
    """Assign integer microsecond ``ts``/``dur`` preserving proper nesting.

    Independent rounding of float times can make a child's integer interval
    leak out of its parent's (or siblings graze each other) by a
    microsecond; laying out the reconstructed tree instead guarantees the
    exported trace nests by construction while staying within a microsecond
    of the measured times.
    """
    ts = max(int(math.floor(node.span.start * 1e6)), t_min)
    cursor = ts
    for child in node.children:
        cursor = _layout(child, cursor)
    end = max(int(math.ceil((node.span.start + node.span.duration) * 1e6)),
              cursor, ts + 1)
    node.ts = ts
    node.dur = end - ts
    return end


def chrome_trace_events(tracer: Tracer) -> list[dict]:
    """The tracer's finished spans as a Chrome trace-event list."""
    events: list[dict] = [{
        "ph": "M", "name": "process_name", "pid": TRACE_PID, "tid": 0,
        "args": {"name": "repro-hls"},
    }]
    tracks = tracer.tracks()
    tids = {name: index + 1 for index, name in enumerate(sorted(tracks))}
    for name, tid in tids.items():
        events.append({"ph": "M", "name": "thread_name", "pid": TRACE_PID,
                       "tid": tid, "args": {"name": name}})
    for name in sorted(tracks):
        tid = tids[name]
        cursor = 0
        for root in _build_span_forest(tracks[name]):
            cursor = _layout(root, cursor)
            _emit_preorder(root, tid, events)
    return events


def _emit_preorder(node: _SpanNode, tid: int, events: list[dict]) -> None:
    events.append(_span_event(node, tid))
    for child in node.children:
        _emit_preorder(child, tid, events)


def _span_event(node: _SpanNode, tid: int) -> dict:
    span = node.span
    event = {
        "ph": "X",
        "name": span.name,
        "cat": span.name.split(".", 1)[0],
        "ts": node.ts,
        "dur": node.dur,
        "pid": TRACE_PID,
        "tid": tid,
    }
    if span.args:
        event["args"] = span.args
    return event


def chrome_trace_document(tracer: Tracer) -> dict:
    return {"traceEvents": chrome_trace_events(tracer),
            "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, tracer: Tracer) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace_document(tracer), handle, indent=1)
        handle.write("\n")


# -- metrics ------------------------------------------------------------------------------


def metrics_document(registry: MetricsRegistry,
                     extra: Optional[Mapping] = None) -> dict:
    """The metrics JSON document (sorted on write → byte-stable)."""
    document = registry.to_json_dict()
    if extra:
        document.update(extra)
    return document


def write_metrics_json(path: str, registry: MetricsRegistry,
                       extra: Optional[Mapping] = None) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(metrics_document(registry, extra), handle,
                  sort_keys=True, indent=2)
        handle.write("\n")


# -- validation ---------------------------------------------------------------------------


def validate_chrome_trace(document) -> list[str]:
    """Structural + nesting problems of a Chrome trace document.

    Returns an empty list for a valid trace.  Checks: the ``traceEvents``
    envelope, per-event required fields, non-negative integer ``ts``/
    ``dur``, and — per ``(pid, tid)`` row — that complete spans properly
    nest (any two either disjoint or one containing the other).
    """
    problems: list[str] = []
    if not isinstance(document, dict) or "traceEvents" not in document:
        return ["not a trace document: missing 'traceEvents'"]
    events = document["traceEvents"]
    if not isinstance(events, list):
        return ["'traceEvents' is not a list"]
    rows: dict[tuple, list[tuple[int, int, str]]] = {}
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event #{index} is not an object")
            continue
        phase = event.get("ph")
        if phase not in ("X", "M"):
            problems.append(f"event #{index}: unsupported phase {phase!r}")
            continue
        if not isinstance(event.get("name"), str) or not event.get("name"):
            problems.append(f"event #{index}: missing name")
        if phase != "X":
            continue
        ts, dur = event.get("ts"), event.get("dur")
        if not isinstance(ts, int) or ts < 0:
            problems.append(f"event #{index} ({event.get('name')}): "
                            f"bad ts {ts!r}")
            continue
        if not isinstance(dur, int) or dur < 0:
            problems.append(f"event #{index} ({event.get('name')}): "
                            f"bad dur {dur!r}")
            continue
        rows.setdefault((event.get("pid"), event.get("tid")), []).append(
            (ts, dur, event.get("name", "")))
    for (pid, tid), spans in rows.items():
        problems.extend(
            f"row pid={pid} tid={tid}: {problem}"
            for problem in _nesting_problems(spans))
    return problems


def _nesting_problems(spans: list[tuple[int, int, str]]) -> list[str]:
    """Overlap-without-containment violations on one thread row."""
    problems = []
    # Sort by start ascending, longest-first on ties: parents precede
    # children, so a simple open-span stack detects partial overlap.
    ordered = sorted(spans, key=lambda s: (s[0], -s[1]))
    stack: list[tuple[int, int, str]] = []
    for ts, dur, name in ordered:
        end = ts + dur
        while stack and stack[-1][0] + stack[-1][1] <= ts:
            stack.pop()
        if stack:
            parent_ts, parent_dur, parent_name = stack[-1]
            if end > parent_ts + parent_dur:
                problems.append(
                    f"span '{name}' [{ts}, {end}) partially overlaps "
                    f"'{parent_name}' [{parent_ts}, {parent_ts + parent_dur})")
                continue
        stack.append((ts, dur, name))
    return problems


def load_trace(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def load_metrics(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)

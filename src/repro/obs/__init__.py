"""Unified tracing + metrics: the observability substrate of the compiler.

One process-local :class:`ObsSession` (a :class:`~repro.obs.tracer.Tracer`
plus a :class:`~repro.obs.metrics.MetricsRegistry`) receives everything the
instrumented flows report: hierarchical spans (``span("dse.batch", ...)``),
counters/gauges/histograms/series, and worker-side telemetry merged back by
the evaluation backends.  Exporters under :mod:`repro.obs.export` turn a
finished session into a Chrome trace (``--trace-out``) and a metrics JSON
document (``--metrics-out``); :mod:`repro.obs.report` renders the same data
as human-readable tables.

Design rules:

* **Null by default.**  With no session installed every hook is a handful
  of loads and a ``None`` check: ``span()`` returns one shared inert
  object, ``counter()``/``gauge()``/``series()`` return immediately.  Hot
  paths (the rewrite driver, pass execution) stay unmeasurably close to
  uninstrumented speed.
* **Observe, never steer.**  Instrumentation must not touch RNG streams,
  iteration order or any exported artifact — frontier JSON is byte-
  identical with tracing on or off, at any worker count.
* **Deterministic merge.**  Worker telemetry is captured locally
  (:func:`capture_task`), shipped back with each result, and absorbed in
  the coordinator's deterministic submission order; real wall-clock and pid
  ride along as span payload only.
"""

from __future__ import annotations

import contextlib
import dataclasses
import time
from typing import Callable, Optional, Union

from repro.obs.metrics import MetricsRegistry, pattern_counter_deltas
from repro.obs.tracer import (
    NULL_SPAN,
    Span,
    TaskTelemetry,
    Tracer,
    task_root_args,
)

__all__ = [
    "MetricsRegistry",
    "NULL_SPAN",
    "ObsSession",
    "Span",
    "TaskTelemetry",
    "Tracer",
    "absorb_task",
    "active",
    "add_pass_seconds",
    "add_pattern_stats",
    "capture_task",
    "counter",
    "gauge",
    "merge_counters",
    "observe",
    "series",
    "session",
    "span",
    "start",
    "stop",
    "suspended",
    "task_root_args",
    "track",
]


@dataclasses.dataclass
class ObsSession:
    """One observability scope: a tracer and a metrics registry."""

    tracer: Tracer
    metrics: MetricsRegistry

    def to_telemetry(self) -> TaskTelemetry:
        """Flatten a *local* (single-track) session for shipping to the
        coordinator; used by worker-side capture only."""
        spans = []
        for track_spans in self.tracer.tracks().values():
            spans.extend(span.to_tuple() for span in track_spans)
        return TaskTelemetry(
            spans=spans,
            counters=dict(self.metrics.counters),
            duration=time.perf_counter() - self.tracer.t0)


#: The installed process-local session (None = observability disabled).
_SESSION: Optional[ObsSession] = None


def active() -> Optional[ObsSession]:
    """The installed session, or None when observability is off."""
    return _SESSION


def start() -> ObsSession:
    """Install a fresh process-local session (replacing any previous one)."""
    global _SESSION
    _SESSION = ObsSession(tracer=Tracer(), metrics=MetricsRegistry())
    return _SESSION


def stop() -> Optional[ObsSession]:
    """Uninstall and return the current session."""
    global _SESSION
    previous, _SESSION = _SESSION, None
    return previous


@contextlib.contextmanager
def session():
    """``with obs.session() as s:`` — scoped install/uninstall."""
    installed = start()
    try:
        yield installed
    finally:
        global _SESSION
        if _SESSION is installed:
            _SESSION = None


@contextlib.contextmanager
def suspended():
    """Temporarily uninstall the active session (restored on exit).

    For work whose *occurrence* is execution-detail rather than trajectory —
    e.g. a prefix-snapshot build that happens only on a cache miss.  Spans
    and counters emitted inside would make the trace skeleton depend on
    cache warmth and worker count; callers account for the suspended work
    explicitly afterwards (e.g. re-injecting measured pass seconds).
    """
    global _SESSION
    previous, _SESSION = _SESSION, None
    try:
        yield
    finally:
        _SESSION = previous


# -- fast-path hooks ----------------------------------------------------------------------
#
# Every helper below is safe (and nearly free) to call with no session
# installed; instrumented code never needs its own enabled-check.


def span(name: str, **args):
    """Open a span on the active tracer (an inert no-op when disabled)."""
    current = _SESSION
    if current is None:
        return NULL_SPAN
    return current.tracer.span(name, **args)


def track(name: str):
    """Route the calling thread's spans to logical track ``name``."""
    current = _SESSION
    if current is None:
        return contextlib.nullcontext()
    return current.tracer.use_track(name)


def counter(name: str, value: Union[int, float] = 1) -> None:
    current = _SESSION
    if current is not None:
        current.metrics.counter_add(name, value)


def gauge(name: str, value: Union[int, float]) -> None:
    current = _SESSION
    if current is not None:
        current.metrics.gauge_set(name, value)


def observe(name: str, value: Union[int, float]) -> None:
    current = _SESSION
    if current is not None:
        current.metrics.observe(name, value)


def series(name: str, step: Union[int, float],
           value: Union[int, float]) -> None:
    current = _SESSION
    if current is not None:
        current.metrics.series_append(name, step, value)


def merge_counters(counters: dict) -> None:
    current = _SESSION
    if current is not None:
        current.metrics.merge_counters(counters)


def add_pass_seconds(display_name: str, seconds: float) -> None:
    """Pass-timing hook of :class:`~repro.ir.pass_manager.PassManager`."""
    current = _SESSION
    if current is not None:
        current.metrics.counter_add(f"pass.seconds.{display_name}", seconds)


def add_pattern_stats(stats: dict, bucket_stats: dict) -> None:
    """Rewrite-driver hook: fold one ``rewrite()`` run's hit/miss deltas."""
    current = _SESSION
    if current is not None:
        current.metrics.merge_counters(
            pattern_counter_deltas(stats, bucket_stats))


# -- worker-side capture ------------------------------------------------------------------


def capture_task(fn: Callable, *args, span_name: str = "dse.evaluate",
                 span_args: Optional[dict] = None):
    """Run ``fn(*args)`` under a throwaway local session; return telemetry.

    The worker side of the telemetry protocol: installs a fresh session (so
    every hook in the evaluation path records locally), wraps the call in a
    root span carrying :func:`task_root_args`, and restores whatever session
    was installed before — in a worker process that is None; in the serial
    (``--jobs 1``) backend it is the coordinator session, which makes the
    serial path produce byte-for-byte the same telemetry shape as a worker.

    Returns ``(result, TaskTelemetry)``.  When ``fn`` raises, the root span
    still closes (with the error recorded) and the previous session is
    restored before the exception propagates.
    """
    global _SESSION
    previous = _SESSION
    local = _SESSION = ObsSession(tracer=Tracer(), metrics=MetricsRegistry())
    try:
        with local.tracer.span(span_name,
                               **task_root_args(**(span_args or {}))):
            result = fn(*args)
    finally:
        _SESSION = previous
    return result, local.to_telemetry()


def absorb_task(track_name: str, telemetry: Optional[TaskTelemetry]) -> None:
    """Coordinator side: merge one captured task into the active session."""
    current = _SESSION
    if current is None or telemetry is None:
        return
    current.tracer.absorb(track_name, telemetry)
    current.metrics.merge_counters(telemetry.counters)
    current.metrics.counter_add("dse.worker.busy_seconds", telemetry.duration)

"""Human-readable rendering of timings, pattern stats and run metrics.

This module owns every textual report the instrumentation produces: the
MLIR ``-pass-timing`` style table, the rewrite-pattern hit/miss table (both
previously assembled ad-hoc inside ``pass_manager.py`` / ``rewrite.py``)
and the end-of-run summary the driver prints after ``dse`` / ``dnn --dse``.
:func:`render_metrics_report` renders the same sections from a metrics JSON
document, so ``tools/driver.py report <metrics.json>`` reproduces the
end-of-run summary offline.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional


# -- pass timings -------------------------------------------------------------------------


def format_timing_report(timings: Mapping[str, float]) -> str:
    """A ``-pass-timing`` style report, slowest pass first.

    Equal times order by pass name, so the report is fully deterministic
    (dict insertion order never decides the table).
    """
    lines = ["===-- Pass execution timing report --==="]
    for name, seconds in sorted(timings.items(), key=lambda kv: (-kv[1], kv[0])):
        lines.append(f"  {seconds * 1000.0:10.3f} ms  {name}")
    total = sum(timings.values())
    lines.append(f"  {total * 1000.0:10.3f} ms  Total")
    return "\n".join(lines)


# -- rewrite pattern stats ----------------------------------------------------------------


def format_pattern_stats(stats: Mapping[str, Iterable[int]],
                         bucket_stats: Mapping[str, Iterable[int]] = ()) -> str:
    """The rewrite-pattern hit/miss table (plus dispatch buckets if any)."""
    stats = {name: tuple(counts) for name, counts in stats.items()}
    lines = ["===-- Rewrite pattern statistics --==="]
    lines.append(f"  {'hits':>8}  {'misses':>8}  pattern")
    for name in sorted(stats, key=lambda n: (-stats[n][0], n)):
        hits, misses = stats[name]
        lines.append(f"  {hits:>8}  {misses:>8}  {name}")
    lines.append(f"  {sum(h for h, _ in stats.values()):>8}  "
                 f"{sum(m for _, m in stats.values()):>8}  Total")
    bucket_stats = {name: tuple(counts)
                    for name, counts in dict(bucket_stats).items()}
    if bucket_stats:
        lines.append("===-- Pattern dispatch buckets (per op name) --===")
        lines.append(f"  {'hits':>8}  {'misses':>8}  bucket")
        for name in sorted(bucket_stats,
                           key=lambda n: (-sum(bucket_stats[n]), n)):
            hits, misses = bucket_stats[name]
            lines.append(f"  {hits:>8}  {misses:>8}  {name}")
    return "\n".join(lines)


# -- metrics-document sections ------------------------------------------------------------


def _grouped_hit_miss(counters: Mapping[str, float],
                      prefix: str) -> dict[str, tuple[int, int]]:
    """``prefix.<name>.hits/misses`` counters as ``{name: (hits, misses)}``."""
    grouped: dict[str, list[int]] = {}
    for name, value in counters.items():
        if not name.startswith(prefix + "."):
            continue
        stem, _, kind = name.rpartition(".")
        if kind not in ("hits", "misses"):
            continue
        entry = grouped.setdefault(stem[len(prefix) + 1:], [0, 0])
        entry[0 if kind == "hits" else 1] += int(value)
    return {name: (hits, misses) for name, (hits, misses) in grouped.items()}


def pass_timings_of(counters: Mapping[str, float]) -> dict[str, float]:
    """The ``pass.seconds.*`` counters as a plain timings dict."""
    prefix = "pass.seconds."
    return {name[len(prefix):]: value for name, value in counters.items()
            if name.startswith(prefix)}


def pattern_stats_of(counters: Mapping[str, float]
                     ) -> tuple[dict[str, tuple[int, int]],
                                dict[str, tuple[int, int]]]:
    """The ``pattern.*``/``bucket.*`` counters as (stats, bucket_stats)."""
    return (_grouped_hit_miss(counters, "pattern"),
            _grouped_hit_miss(counters, "bucket"))


def render_metrics_report(metrics: Mapping) -> str:
    """The end-of-run summary of one metrics document (see ``--metrics-out``).

    Sections render only when their metrics are present, so the same
    function serves a bare ``compile --print-pass-timing`` run and a full
    ``dnn --dse`` sweep.
    """
    counters = metrics.get("counters", {})
    gauges = metrics.get("gauges", {})
    series = metrics.get("series", {})
    sections: list[str] = []

    timings = pass_timings_of(counters)
    if timings:
        sections.append(format_timing_report(timings))

    patterns, buckets = pattern_stats_of(counters)
    if patterns:
        sections.append(format_pattern_stats(patterns, buckets))

    cache = cache_summary_lines(counters)
    if cache:
        sections.append("\n".join(["===-- Estimate cache --==="] + cache))

    dse = dse_summary_lines(counters, gauges, series)
    if dse:
        sections.append("\n".join(["===-- DSE run summary --==="] + dse))

    if not sections:
        return "(no metrics recorded)"
    return "\n".join(sections)


def cache_summary_lines(counters: Mapping[str, float]) -> list[str]:
    """Hit-rate / eviction lines of the estimate cache (empty if unused)."""
    hits = int(counters.get("cache.hits", 0))
    misses = int(counters.get("cache.misses", 0))
    lookups = hits + misses
    if not lookups and not counters.get("cache.stores"):
        return []
    lines = []
    rate = hits / lookups if lookups else 0.0
    lines.append(f"  lookups={lookups} hits={hits} misses={misses} "
                 f"hit rate={rate * 100.0:.1f}%")
    stores = int(counters.get("cache.stores", 0))
    loaded = int(counters.get("cache.loaded", 0))
    evictions = int(counters.get("cache.evictions", 0))
    compacted = int(counters.get("cache.compacted", 0))
    line = f"  stores={stores} warm-loaded={loaded} evictions={evictions}"
    if compacted:
        line += f" compacted={compacted}"
    recovered = int(counters.get("cache.recovered_lines", 0))
    if recovered:
        line += f" recovered-torn-lines={recovered}"
    lines.append(line)
    return lines


def dse_summary_lines(counters: Mapping[str, float],
                      gauges: Mapping[str, float],
                      series: Mapping[str, list]) -> list[str]:
    """Evaluation throughput, worker utilization and budget consumption."""
    evaluations = int(counters.get("dse.evaluations", 0))
    points = int(counters.get("dse.points", 0))
    if not points:
        return []
    lines = [f"  design points processed={points} evaluated={evaluations} "
             f"(rest cache-served)"]
    wall = gauges.get("dse.wall_seconds")
    if wall:
        lines.append(f"  evaluations/sec={evaluations / wall:.2f} "
                     f"(wall {wall:.2f}s)")
        jobs = int(gauges.get("dse.jobs", 1))
        busy = counters.get("dse.worker.busy_seconds", 0.0)
        if busy:
            utilization = busy / (wall * max(1, jobs))
            lines.append(f"  worker utilization={utilization * 100.0:.1f}% "
                         f"({jobs} worker(s), {busy:.2f}s busy)")
    faults = {name: int(counters.get(f"dse.faults.{name}", 0))
              for name in ("timeouts", "crashes", "retries", "quarantined")}
    if any(faults.values()):
        respawns = int(counters.get("dse.pool.respawns", 0))
        lines.append(f"  faults: timeouts={faults['timeouts']} "
                     f"crashes={faults['crashes']} "
                     f"retries={faults['retries']} "
                     f"quarantined={faults['quarantined']} "
                     f"(pool respawns={respawns})")
    transport = {name: int(counters.get(f"dse.transport.{name}", 0))
                 for name in ("connects", "disconnects", "requeues",
                              "heartbeat_misses")}
    if any(transport.values()):
        lines.append(f"  transport: connects={transport['connects']} "
                     f"disconnects={transport['disconnects']} "
                     f"requeues={transport['requeues']} "
                     f"heartbeat misses={transport['heartbeat_misses']}")
    prefix_hits = int(counters.get("dse.prefix.hits", 0))
    prefix_misses = int(counters.get("dse.prefix.misses", 0))
    prefix_checkouts = prefix_hits + prefix_misses
    if prefix_checkouts:
        prefix_rate = prefix_hits / prefix_checkouts
        clones = int(counters.get("dse.prefix.clones", 0))
        lines.append(f"  prefix snapshots: checkouts={prefix_checkouts} "
                     f"hits={prefix_hits} misses={prefix_misses} "
                     f"clones={clones} hit rate={prefix_rate * 100.0:.1f}%")
    for name, value in sorted(gauges.items()):
        if name.startswith("dse.node.") and name.endswith(".iterations_done"):
            node = name[len("dse.node."):-len(".iterations_done")]
            granted = gauges.get(f"dse.node.{node}.iterations_budget", 0)
            samples = gauges.get(f"dse.node.{node}.samples_budget", 0)
            lines.append(f"  node {node}: iterations {int(value)}/{int(granted)}"
                         f" (samples budget {int(samples)})")
    for name in sorted(series):
        if name.startswith("dse.frontier.size."):
            node = name[len("dse.frontier.size."):]
            points_series = series[name]
            if points_series:
                final = points_series[-1]
                lines.append(f"  frontier[{node}]: {int(final[1])} points "
                             f"after {int(final[0])} iterations "
                             f"({len(points_series)} snapshots)")
    return lines


def render_run_summary(metrics: Mapping,
                       title: Optional[str] = None) -> str:
    """The cache + DSE sections only (what ``dse``/``dnn`` print at exit)."""
    counters = metrics.get("counters", {})
    sections = []
    cache = cache_summary_lines(counters)
    if cache:
        sections.append("\n".join(["===-- Estimate cache --==="] + cache))
    dse = dse_summary_lines(counters, metrics.get("gauges", {}),
                            metrics.get("series", {}))
    if dse:
        sections.append("\n".join(["===-- DSE run summary --==="] + dse))
    body = "\n".join(sections)
    if title and body:
        return f"{title}\n{body}"
    return body

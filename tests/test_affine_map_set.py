"""Tests for affine maps, integer sets and the partition layout encoding."""

import pytest
from hypothesis import given, strategies as st

from repro.affine import AffineMap, Constraint, IntegerSet, constant, dim
from repro.ir.types import MemRefType, PartitionKind, build_partition_map, f32


class TestAffineMap:
    def test_identity(self):
        identity = AffineMap.identity(3)
        assert identity.is_identity()
        assert identity.evaluate([4, 5, 6]) == (4, 5, 6)

    def test_constant_map(self):
        assert AffineMap.constant_map(16).single_constant_result() == 16

    def test_is_constant(self):
        assert AffineMap(0, 0, [constant(1), constant(2)]).constant_results() == (1, 2)

    def test_non_constant_raises_on_constant_results(self):
        with pytest.raises(ValueError):
            AffineMap.identity(1).constant_results()

    def test_out_of_range_dim_rejected(self):
        with pytest.raises(ValueError):
            AffineMap(1, 0, [dim(3)])

    def test_evaluate_checks_arity(self):
        with pytest.raises(ValueError):
            AffineMap.identity(2).evaluate([1])

    def test_compose_with_identity(self):
        affine_map = AffineMap(2, 0, [dim(0) + dim(1), dim(0) * 2])
        composed = affine_map.compose(AffineMap.identity(2))
        assert composed.evaluate([3, 4]) == affine_map.evaluate([3, 4])

    def test_compose_substitutes_results(self):
        outer = AffineMap(1, 0, [dim(0) * 2])
        inner = AffineMap(2, 0, [dim(0) + dim(1)])
        composed = outer.compose(inner)
        assert composed.evaluate([3, 4]) == (14,)

    def test_compose_arity_mismatch(self):
        with pytest.raises(ValueError):
            AffineMap.identity(2).compose(AffineMap.identity(3))

    def test_used_dims(self):
        affine_map = AffineMap(3, 0, [dim(0), dim(2)])
        assert affine_map.used_dims() == {0, 2}

    def test_sub_map(self):
        affine_map = AffineMap(2, 0, [dim(0), dim(1), dim(0) + dim(1)])
        assert affine_map.get_sub_map([2]).evaluate([2, 3]) == (5,)

    def test_equality_and_hash(self):
        assert AffineMap.identity(2) == AffineMap.identity(2)
        assert hash(AffineMap.identity(2)) == hash(AffineMap.identity(2))

    def test_str_contains_arrow(self):
        assert "->" in str(AffineMap.identity(1))


class TestIntegerSet:
    def test_equality_constraint(self):
        condition = IntegerSet.equality(1, dim(0) - 3)
        assert condition.contains([3])
        assert not condition.contains([4])

    def test_inequality_constraint(self):
        condition = IntegerSet.non_negative(1, dim(0) - 2)
        assert condition.contains([2])
        assert not condition.contains([1])

    def test_conjunction(self):
        box = IntegerSet(2, 0, [
            Constraint(dim(0), False),
            Constraint(constant(4) - dim(0), False),
            Constraint(dim(1) - dim(0), False),
        ])
        assert box.contains([2, 3])
        assert not box.contains([2, 1])

    def test_empty_constraints_rejected(self):
        with pytest.raises(ValueError):
            IntegerSet(1, 0, [])

    def test_from_constraints_length_mismatch(self):
        with pytest.raises(ValueError):
            IntegerSet.from_constraints(1, [dim(0)], [])

    def test_trivially_true_over_domain(self):
        condition = IntegerSet.non_negative(1, dim(0))
        assert condition.is_trivially_true_over([(0, 8)])

    def test_trivially_false_over_domain(self):
        condition = IntegerSet.non_negative(1, dim(0) - 100)
        assert condition.is_trivially_false_over([(0, 8)])

    def test_replace_dims(self):
        condition = IntegerSet.equality(2, dim(0) - dim(1))
        replaced = condition.replace_dims({1: constant(5)})
        assert replaced.contains([5, 0])

    def test_used_dims(self):
        condition = IntegerSet.equality(3, dim(2) - 1)
        assert condition.used_dims() == {2}


class TestPartitionLayout:
    def test_default_partition_is_none(self):
        memref = MemRefType((16, 8), f32)
        assert memref.num_partitions == 1
        assert all(kind == PartitionKind.NONE for kind, _ in memref.partition)

    def test_cyclic_partition_map_matches_paper_figure3b(self):
        """Fig. 3(b): cyclic factor 2 along dim 0 -> (d0 mod 2, 0, d0 floordiv 2, d1)."""
        layout = build_partition_map((16, 8), [(PartitionKind.CYCLIC, 2),
                                               (PartitionKind.NONE, 1)])
        assert layout.evaluate([5, 3]) == (1, 0, 2, 3)

    def test_block_partition_map_matches_paper_figure3c_dim1(self):
        layout = build_partition_map((16, 8), [(PartitionKind.NONE, 1),
                                               (PartitionKind.BLOCK, 4)])
        # Block partition with 8/4 = 2 elements per bank.
        assert layout.evaluate([0, 5]) == (0, 2, 0, 1)

    def test_with_partition_updates_banks(self):
        memref = MemRefType((16, 16), f32)
        partitioned = memref.with_partition([(PartitionKind.CYCLIC, 2),
                                             (PartitionKind.CYCLIC, 4)])
        assert partitioned.num_partitions == 8

    def test_bank_of_cyclic(self):
        memref = MemRefType((16,), f32).with_partition([(PartitionKind.CYCLIC, 4)])
        assert memref.bank_of([6]) == (2,)

    def test_complete_partition(self):
        memref = MemRefType((4,), f32).with_partition([(PartitionKind.COMPLETE, 4)])
        assert memref.num_partitions == 4
        assert memref.bank_of([3]) == (3,)

    def test_unknown_partition_kind_rejected(self):
        with pytest.raises(ValueError):
            build_partition_map((4,), [("diagonal", 2)])


@given(st.integers(0, 255), st.integers(1, 16))
def test_cyclic_partition_covers_all_elements(index, factor):
    """Every logical index maps to a unique (bank, offset) pair."""
    layout = build_partition_map((256,), [(PartitionKind.CYCLIC, factor)])
    bank, offset = layout.evaluate([index])
    assert 0 <= bank < factor
    assert bank + offset * factor == index


@given(st.integers(0, 255), st.integers(1, 16))
def test_block_partition_covers_all_elements(index, factor):
    layout = build_partition_map((256,), [(PartitionKind.BLOCK, factor)])
    bank, offset = layout.evaluate([index])
    block = -(-256 // factor)
    assert bank == index // block
    assert offset == index % block

"""Tests for the QoR estimator, scheduler, resource model and platforms."""

import pytest

from repro.dialects import arith
from repro.dialects.affine_ops import outermost_loops, perfect_loop_band
from repro.dialects.hlscpp import get_loop_directive
from repro.estimation import (
    ALAPScheduler,
    QoREstimator,
    VU9P_SLR,
    XC7Z020,
    op_characteristics,
)
from repro.estimation.resources import ResourceUsage, memory_resource
from repro.ir import Block, f32
from repro.transforms import (
    canonicalize,
    partition_arrays,
    perfectize_band,
    pipeline_loop,
    tile_loop_band,
)

from conftest import GEMM_SOURCE, compile_source


class TestResourceModel:
    def test_float_ops_use_dsp(self):
        assert op_characteristics("arith.mulf").dsp == 3
        assert op_characteristics("arith.addf").dsp == 2
        assert op_characteristics("arith.addf").latency >= 3

    def test_unknown_op_is_cheap(self):
        assert op_characteristics("weird.op").dsp == 0

    def test_resource_usage_addition(self):
        total = ResourceUsage(dsp=2, lut=100) + ResourceUsage(dsp=3, lut=50)
        assert total.dsp == 5 and total.lut == 150

    def test_memory_resource_scales_with_banks(self):
        single = memory_resource(1024, 32, banks=1)
        banked = memory_resource(1024, 32, banks=8)
        assert single.memory_bits == banked.memory_bits == 1024 * 32
        assert banked.bram18k >= single.bram18k

    def test_platform_budgets(self):
        assert XC7Z020.dsp == 220
        assert VU9P_SLR.dsp == 2280
        assert VU9P_SLR.memory_bits > XC7Z020.memory_bits

    def test_platform_fits(self):
        assert XC7Z020.fits(ResourceUsage(dsp=100, lut=1000, memory_bits=1000))
        assert not XC7Z020.fits(ResourceUsage(dsp=500))

    def test_platform_utilization(self):
        utilization = XC7Z020.utilization(ResourceUsage(dsp=110))
        assert utilization["dsp"] == pytest.approx(0.5)


class TestScheduler:
    def test_dependent_ops_serialize(self):
        block = Block()
        a = block.append(arith.ConstantOp(1.0, f32))
        b = block.append(arith.AddFOp(a.result(), a.result()))
        c = block.append(arith.MulFOp(b.result(), b.result()))
        schedule = ALAPScheduler().schedule(list(block.operations))
        assert schedule.depth == 4 + 3  # addf latency then mulf latency
        assert schedule.asap[c] >= schedule.asap[b]

    def test_independent_ops_parallel(self):
        block = Block()
        a = block.append(arith.ConstantOp(1.0, f32))
        adds = [block.append(arith.AddFOp(a.result(), a.result())) for _ in range(4)]
        schedule = ALAPScheduler().schedule(list(block.operations))
        assert schedule.depth == 4
        assert all(schedule.asap[add] == 0 for add in adds)

    def test_extra_edges_respected(self):
        block = Block()
        a = block.append(arith.ConstantOp(1.0, f32))
        first = block.append(arith.AddFOp(a.result(), a.result()))
        second = block.append(arith.AddFOp(a.result(), a.result()))
        schedule = ALAPScheduler([(first, second)]).schedule(list(block.operations))
        assert schedule.asap[second] >= schedule.asap[first] + 4

    def test_alap_not_before_asap(self):
        block = Block()
        a = block.append(arith.ConstantOp(1.0, f32))
        b = block.append(arith.AddFOp(a.result(), a.result()))
        block.append(arith.MulFOp(b.result(), a.result()))
        schedule = ALAPScheduler().schedule(list(block.operations))
        for op in block.operations:
            assert schedule.slack(op) >= 0

    def test_empty_schedule(self):
        schedule = ALAPScheduler().schedule([])
        assert schedule.depth == 0


def optimized_gemm(tile_sizes, target_ii=1):
    module = compile_source(GEMM_SOURCE, "gemm")
    f = module.functions()[0]
    perfectize_band(outermost_loops(f)[0])
    band = perfect_loop_band(outermost_loops(f)[0])
    tile_loops, _ = tile_loop_band(band, tile_sizes)
    pipeline_loop(tile_loops[-1], target_ii)
    canonicalize(f)
    partition_arrays(f)
    return module, f


class TestEstimator:
    def test_baseline_latency_scales_with_trip_count(self):
        small = compile_source(GEMM_SOURCE.replace("8", "4"), "gemm")
        large = compile_source(GEMM_SOURCE, "gemm")
        estimator = QoREstimator(XC7Z020)
        small_latency = estimator.estimate_function(small.functions()[0]).latency
        large_latency = estimator.estimate_function(large.functions()[0]).latency
        assert large_latency > small_latency * 4

    def test_baseline_dsp_is_shared(self, gemm_module):
        qor = QoREstimator(XC7Z020).estimate_function(gemm_module.functions()[0])
        assert qor.dsp <= 12  # roughly one shared multiplier + adder

    def test_pipelining_reduces_latency(self, gemm_module):
        baseline = QoREstimator(XC7Z020).estimate_function(gemm_module.functions()[0])
        module, f = optimized_gemm([1, 1, 1])
        optimized = QoREstimator(XC7Z020).estimate_function(f)
        assert optimized.latency < baseline.latency

    def test_unrolling_trades_dsp_for_latency(self):
        _, narrow_func = optimized_gemm([1, 1, 1])
        _, wide_func = optimized_gemm([1, 1, 4])
        narrow = QoREstimator(XC7Z020).estimate_function(narrow_func)
        wide = QoREstimator(XC7Z020).estimate_function(wide_func)
        assert wide.latency < narrow.latency
        assert wide.dsp > narrow.dsp

    def test_higher_target_ii_saves_dsp(self):
        _, fast_func = optimized_gemm([1, 1, 4], target_ii=1)
        _, slow_func = optimized_gemm([1, 1, 4], target_ii=4)
        fast = QoREstimator(XC7Z020).estimate_function(fast_func)
        slow = QoREstimator(XC7Z020).estimate_function(slow_func)
        assert slow.latency > fast.latency
        assert slow.dsp <= fast.dsp

    def test_achieved_ii_reported_without_touching_ir(self):
        from repro.dse.space import ir_digest

        module, f = optimized_gemm([1, 1, 2], target_ii=1)
        digest_before = ir_digest(f)
        qor = QoREstimator(XC7Z020).estimate_function(f)
        # The achieved II travels through the result, not the IR: estimation
        # is a pure function and must leave the module byte-identical.
        assert qor.achieved_ii is not None and qor.achieved_ii >= 1
        assert ir_digest(f) == digest_before
        pipelined = [get_loop_directive(op) for op in f.walk()
                     if get_loop_directive(op) is not None and get_loop_directive(op).pipeline]
        assert pipelined and all(d.achieved_ii is None for d in pipelined)

    def test_flattened_latency_uses_total_trip_count(self):
        module, f = optimized_gemm([1, 1, 1], target_ii=1)
        qor = QoREstimator(XC7Z020).estimate_function(f)
        # 8*8*8 iterations at II >= 1 plus pipeline depth.
        assert qor.latency >= 8 * 8 * 8

    def test_partitioning_lowers_ii(self):
        module_partitioned, f_partitioned = optimized_gemm([1, 1, 8])
        module_plain = compile_source(GEMM_SOURCE, "gemm")
        f_plain = module_plain.functions()[0]
        perfectize_band(outermost_loops(f_plain)[0])
        band = perfect_loop_band(outermost_loops(f_plain)[0])
        tile_loops, _ = tile_loop_band(band, [1, 1, 8])
        pipeline_loop(tile_loops[-1], 1)
        canonicalize(f_plain)  # note: no array partitioning here
        with_partition = QoREstimator(XC7Z020).estimate_function(f_partitioned)
        without_partition = QoREstimator(XC7Z020).estimate_function(f_plain)
        assert with_partition.latency <= without_partition.latency

    def test_interval_equals_latency_without_dataflow(self, gemm_module):
        qor = QoREstimator(XC7Z020).estimate_function(gemm_module.functions()[0])
        assert qor.interval == qor.latency

    def test_dataflow_interval_is_max_stage(self):
        from repro.frontend.pytorch_like import GraphBuilder
        from repro.transforms import legalize_dataflow, lower_graph_to_loops, split_function

        builder = GraphBuilder("chain", (1, 4, 8, 8))
        x = builder.relu(builder.input)
        x = builder.conv2d(x, 4, 3, padding=1)
        x = builder.relu(x)
        module = builder.finish(x)
        top = module.functions()[0]
        legalize_dataflow(top)
        split_function(module, top)
        lower_graph_to_loops(module)
        qor = QoREstimator(VU9P_SLR).estimate_module(module)
        assert qor.interval < qor.latency

    def test_memory_counted_for_local_buffers_only(self, gemm_module):
        qor = QoREstimator(XC7Z020).estimate_function(gemm_module.functions()[0])
        # Kernel arrays are interface memories (function arguments): no on-chip count.
        assert qor.memory_bits == 0

    def test_estimate_module_requires_top(self):
        from repro.ir import ModuleOp

        with pytest.raises(ValueError):
            QoREstimator(XC7Z020).estimate_module(ModuleOp("empty"))

"""Tests for affine expressions."""

import pytest
from hypothesis import given, strategies as st

from repro.affine import (
    AffineBinaryExpr,
    AffineConstantExpr,
    AffineDimExpr,
    AffineExprKind,
    constant,
    dim,
    symbol,
)


class TestConstruction:
    def test_dim_position(self):
        assert dim(3).position == 3

    def test_dim_negative_position_rejected(self):
        with pytest.raises(ValueError):
            dim(-1)

    def test_symbol_position(self):
        assert symbol(2).position == 2

    def test_symbol_negative_position_rejected(self):
        with pytest.raises(ValueError):
            symbol(-1)

    def test_constant_value(self):
        assert constant(7).value == 7

    def test_add_builds_binary(self):
        expr = dim(0) + dim(1)
        assert isinstance(expr, AffineBinaryExpr)
        assert expr.kind is AffineExprKind.ADD

    def test_int_operands_are_wrapped(self):
        expr = dim(0) + 5
        assert isinstance(expr.rhs, AffineConstantExpr)

    def test_radd(self):
        expr = 5 + dim(0)
        assert expr.evaluate([2]) == 7

    def test_invalid_operand_type_rejected(self):
        with pytest.raises(TypeError):
            dim(0) + "nope"


class TestSimplification:
    def test_constant_folding_add(self):
        assert (constant(2) + constant(3)) == constant(5)

    def test_constant_folding_mul(self):
        assert (constant(4) * constant(5)) == constant(20)

    def test_add_zero_is_identity(self):
        assert (dim(0) + 0) == dim(0)

    def test_mul_one_is_identity(self):
        assert (dim(0) * 1) == dim(0)

    def test_mul_zero_is_zero(self):
        assert (dim(0) * 0) == constant(0)

    def test_mod_one_is_zero(self):
        assert (dim(0) % 1) == constant(0)

    def test_floordiv_one_is_identity(self):
        assert dim(0).floordiv(1) == dim(0)

    def test_constant_mod(self):
        assert (constant(7) % 3) == constant(1)

    def test_constant_floordiv(self):
        assert constant(7).floordiv(2) == constant(3)

    def test_constant_ceildiv(self):
        assert constant(7).ceildiv(2) == constant(4)

    def test_mod_nonpositive_divisor_rejected(self):
        with pytest.raises(ValueError):
            dim(0) % 0


class TestEvaluate:
    def test_dim(self):
        assert dim(1).evaluate([5, 9]) == 9

    def test_symbol(self):
        assert symbol(0).evaluate([], [42]) == 42

    def test_linear_combination(self):
        expr = dim(0) * 3 + dim(1) - 2
        assert expr.evaluate([4, 7]) == 12 + 7 - 2

    def test_mod_floordiv(self):
        expr = (dim(0) % 4) + dim(0).floordiv(4)
        assert expr.evaluate([10]) == 2 + 2

    def test_negation(self):
        assert (-dim(0)).evaluate([3]) == -3

    def test_subtraction(self):
        assert (dim(0) - dim(1)).evaluate([10, 4]) == 6


class TestStructure:
    def test_equality_is_structural(self):
        assert (dim(0) + 1) == (dim(0) + 1)

    def test_hash_consistent_with_equality(self):
        assert hash(dim(2) * 3) == hash(dim(2) * 3)

    def test_inequality(self):
        assert (dim(0) + 1) != (dim(0) + 2)

    def test_used_dims(self):
        expr = dim(0) * 2 + dim(3)
        assert expr.used_dims() == {0, 3}

    def test_used_symbols(self):
        expr = symbol(1) + dim(0)
        assert expr.used_symbols() == {1}

    def test_replace_dims(self):
        expr = dim(0) + dim(1)
        replaced = expr.replace({0: constant(5)})
        assert replaced.evaluate([0, 7]) == 12

    def test_replace_with_sequence(self):
        expr = dim(0) * 2
        assert expr.replace([dim(1)]).used_dims() == {1}

    def test_shift_dims(self):
        expr = dim(0) + dim(2)
        assert expr.shift_dims(3).used_dims() == {3, 5}

    def test_is_pure_affine_linear(self):
        assert (dim(0) * 4 + symbol(0)).is_pure_affine()

    def test_is_pure_affine_mod_by_constant(self):
        assert (dim(0) % 8).is_pure_affine()

    def test_product_of_dims_not_pure_affine(self):
        product = AffineBinaryExpr(AffineExprKind.MUL, dim(0), dim(1))
        assert not product.is_pure_affine()

    def test_str_forms(self):
        assert str(dim(0)) == "d0"
        assert str(symbol(1)) == "s1"
        assert "mod" in str(dim(0) % 4)


@given(st.integers(-100, 100), st.integers(-100, 100), st.integers(-50, 50))
def test_add_evaluation_matches_python(a, b, c):
    expr = dim(0) + dim(1) * c
    assert expr.evaluate([a, b]) == a + b * c


@given(st.integers(0, 1000), st.integers(1, 64))
def test_mod_floordiv_decomposition(value, divisor):
    """floor(v / d) * d + v mod d == v for every non-negative v."""
    expr = dim(0).floordiv(divisor) * divisor + (dim(0) % divisor)
    assert expr.evaluate([value]) == value


@given(st.integers(-20, 20), st.integers(-20, 20))
def test_structural_equality_implies_equal_evaluation(a, b):
    first = dim(0) * 3 + dim(1) - 7
    second = dim(0) * 3 + dim(1) - 7
    assert first == second
    assert first.evaluate([a, b]) == second.evaluate([a, b])


@given(st.integers(1, 63), st.integers(0, 200))
def test_ceildiv_vs_floordiv(divisor, value):
    ceil_expr = dim(0).ceildiv(divisor)
    floor_expr = dim(0).floordiv(divisor)
    ceil_value = ceil_expr.evaluate([value])
    floor_value = floor_expr.evaluate([value])
    assert floor_value <= ceil_value <= floor_value + 1
    assert ceil_value == -((-value) // divisor)

"""Tests for the directive-level passes: pipelining and array partitioning."""

import numpy as np
import pytest

from repro import ir
from repro.dialects.affine_ops import AffineForOp, outermost_loops, perfect_loop_band
from repro.dialects.hlscpp import get_func_directive, get_loop_directive
from repro.ir.interpreter import interpret_kernel
from repro.ir.pass_manager import PassError
from repro.ir.types import MemRefType, PartitionKind
from repro.transforms import (
    canonicalize,
    partition_arrays,
    perfectize_band,
    pipeline_function,
    pipeline_loop,
    remove_variable_bounds,
    tile_loop_band,
)
from repro.transforms.directive.pipelining import LoopPipeliningPass

from conftest import GEMM_SOURCE, compile_source, random_array, reference_gemm


class TestLoopPipelining:
    def test_innermost_pipelining_sets_directive(self, gemm_module):
        f = gemm_module.functions()[0]
        band = perfect_loop_band(outermost_loops(f)[0])
        innermost = [op for op in f.walk() if isinstance(op, AffineForOp)][-1]
        pipeline_loop(innermost, target_ii=2)
        directive = get_loop_directive(innermost)
        assert directive.pipeline
        assert directive.target_ii == 2

    def test_nested_loops_fully_unrolled(self, gemm_module):
        f = gemm_module.functions()[0]
        perfectize_band(outermost_loops(f)[0])
        band = perfect_loop_band(outermost_loops(f)[0])
        middle = band[1]
        unrolled = pipeline_loop(middle, target_ii=1)
        assert unrolled == 1
        assert not any(isinstance(op, AffineForOp) for op in middle.walk() if op is not middle)

    def test_perfect_parents_marked_flatten(self, gemm_module):
        f = gemm_module.functions()[0]
        perfectize_band(outermost_loops(f)[0])
        band = perfect_loop_band(outermost_loops(f)[0])
        pipeline_loop(band[-1], target_ii=1)
        for loop in band[:-1]:
            directive = get_loop_directive(loop)
            assert directive is not None and directive.flatten

    def test_variable_bound_nested_loop_rejected(self, syrk_module):
        f = syrk_module.functions()[0]
        outer = outermost_loops(f)[0]
        with pytest.raises(PassError):
            pipeline_loop(outer, target_ii=1)

    def test_pipelining_preserves_semantics(self, gemm_module):
        f = gemm_module.functions()[0]
        perfectize_band(outermost_loops(f)[0])
        band = perfect_loop_band(outermost_loops(f)[0])
        pipeline_loop(band[-1], target_ii=1)
        canonicalize(f)
        ir.verify(gemm_module)
        C = random_array((8, 8), seed=1)
        A = random_array((8, 8), seed=2)
        B = random_array((8, 8), seed=3)
        expected = reference_gemm(1.0, 1.0, C, A, B)
        interpret_kernel(gemm_module, "gemm", {"C": C, "A": A, "B": B},
                         {"alpha": 1.0, "beta": 1.0})
        np.testing.assert_allclose(C, expected, rtol=1e-4)

    def test_pipelining_pass_targets_innermost(self, gemm_module):
        LoopPipeliningPass(target_ii=1).run_on_module(gemm_module)
        pipelined = [op for op in gemm_module.walk()
                     if isinstance(op, AffineForOp) and get_loop_directive(op)
                     and get_loop_directive(op).pipeline]
        assert len(pipelined) >= 1

    def test_function_pipelining(self):
        module = compile_source("""
        void small(float A[4]) {
          for (int i = 0; i < 4; i++) { A[i] *= 2.0; }
        }""", "small")
        f = module.functions()[0]
        pipeline_function(f, target_ii=1)
        directive = get_func_directive(f)
        assert directive.pipeline
        assert not any(isinstance(op, AffineForOp) for op in f.walk())


class TestArrayPartition:
    def optimized_gemm(self, tile_sizes):
        module = compile_source(GEMM_SOURCE, "gemm")
        f = module.functions()[0]
        perfectize_band(outermost_loops(f)[0])
        band = perfect_loop_band(outermost_loops(f)[0])
        tile_loops, _ = tile_loop_band(band, tile_sizes)
        pipeline_loop(tile_loops[-1], 1)
        canonicalize(f)
        return module, f

    def test_unrolled_accesses_drive_partition_factors(self):
        module, f = self.optimized_gemm([1, 1, 4])
        plans = partition_arrays(f)
        by_name = {self._arg_name(f, plan.memref): plan for plan in plans}
        # Unrolling k by 4: A's column dim and B's row dim need 4 banks.
        assert by_name["A"].factors[1] == 4
        assert by_name["B"].factors[0] == 4

    def test_partition_encoded_into_type(self):
        module, f = self.optimized_gemm([1, 1, 4])
        partition_arrays(f)
        a_type: MemRefType = f.arguments[3].type
        assert a_type.num_partitions >= 4
        assert a_type.layout_map.num_results == 2 * a_type.rank

    def test_function_type_updated(self):
        module, f = self.optimized_gemm([1, 1, 4])
        partition_arrays(f)
        assert f.get_attr("function_type").inputs[3] == f.arguments[3].type

    def test_no_partition_without_parallel_accesses(self, gemm_module):
        f = gemm_module.functions()[0]
        plans = partition_arrays(f)
        assert all(all(factor <= 1 for factor in plan.factors) for plan in plans) or not plans

    def test_explicit_factors_override(self):
        module, f = self.optimized_gemm([1, 1, 4])
        plans = partition_arrays(f, part_factors={"arg2": [2, 8]})
        by_arg = {self._arg_index(f, plan.memref): plan for plan in plans}
        assert by_arg[2].factors == (2, 8)

    def test_cyclic_fashion_for_dense_unrolled_accesses(self):
        module, f = self.optimized_gemm([1, 1, 4])
        plans = partition_arrays(f)
        for plan in plans:
            for kind, factor in plan.partition:
                if factor > 1:
                    assert kind in (PartitionKind.CYCLIC, PartitionKind.BLOCK)

    def test_max_factor_cap(self):
        module, f = self.optimized_gemm([1, 1, 8])
        plans = partition_arrays(f, max_factor=2)
        assert all(factor <= 2 for plan in plans for factor in plan.factors)

    @staticmethod
    def _arg_index(func_op, value):
        for position, argument in enumerate(func_op.region(0).front.arguments):
            if argument is value:
                return position
        return -1

    def _arg_name(self, func_op, value):
        names = func_op.get_attr("arg_names") or []
        position = self._arg_index(func_op, value)
        return names[position] if 0 <= position < len(names) else f"arg{position}"

"""Tests for the whole-model DSE: determinism across worker counts and
resumes, per-node budget policy, frontier composition, pipeline-dimension
cache correctness, and the ``dnn --dse`` driver mode."""

import json

import pytest

from repro.dse.runtime import (
    EstimateCache,
    ModelScheduler,
    NodeBudgetPolicy,
    compose_model_frontier,
)
from repro.dse.space import KernelDesignSpace
from repro.estimation import VU9P_SLR
from repro.frontend.pytorch_like import GraphBuilder


def tiny_model():
    """A 3-stage CNN small enough for sub-second node evaluations."""
    builder = GraphBuilder("tinynet", (1, 3, 8, 8))
    x = builder.conv_bn_relu(builder.input, 8, 3, stride=1, padding=1)
    x = builder.maxpool2d(x, 2)
    x = builder.conv_bn_relu(x, 16, 3, stride=1, padding=1)
    x = builder.global_avgpool2d(x)
    x = builder.flatten(x)
    x = builder.dense(x, 10)
    return builder.finish(x)


def scheduler(jobs=1, **overrides):
    config = dict(platform=VU9P_SLR, jobs=jobs, seed=7, batch_size=2,
                  budget=NodeBudgetPolicy(num_samples=3, max_iterations=4))
    config.update(overrides)
    return ModelScheduler(**config)


class TestModelSweep:
    def test_sweep_produces_a_nonempty_composed_frontier(self):
        result = scheduler().explore(tiny_model(), graph_level=3)
        assert result.node_order
        assert result.frontier
        assert result.num_evaluations > 0
        # Every frontier point carries one choice per explored node.
        for point in result.frontier:
            assert [name for name, _ in point.choices] == result.node_order

    def test_composition_rule_sums_latency_and_resources(self):
        result = scheduler().explore(tiny_model(), graph_level=3)
        for point in result.frontier:
            latency = dsp = 0
            for name, encoded in point.choices:
                record = result.node_results[name].records[encoded]
                latency += record.qor.latency
                dsp += record.qor.dsp
            assert point.latency == latency
            assert point.resources.dsp == dsp
            assert point.interval == max(
                result.node_results[name].records[encoded].qor.latency
                for name, encoded in point.choices)

    def test_frontier_is_pareto_sorted(self):
        result = scheduler().explore(tiny_model(), graph_level=3)
        latencies = [point.latency for point in result.frontier]
        dsps = [point.resources.dsp for point in result.frontier]
        assert latencies == sorted(latencies)
        # Along ascending latency the DSP cost must strictly improve.
        assert all(a > b for a, b in zip(dsps, dsps[1:]))


class TestModelDeterminism:
    @pytest.mark.parametrize("jobs", [2, 4])
    def test_frontier_json_is_byte_identical_across_jobs(self, jobs):
        serial = scheduler(jobs=1).explore(tiny_model(), graph_level=3)
        parallel = scheduler(jobs=jobs).explore(tiny_model(), graph_level=3)
        assert serial.frontier_json() == parallel.frontier_json()

    def test_resume_from_mid_sweep_checkpoint_is_identical(self, tmp_path):
        full = scheduler().explore(tiny_model(), graph_level=3)

        # Interrupt every node after 2 evaluations (at a batch boundary),
        # then resume with the full budget on a different worker count.
        ckpt = str(tmp_path / "ckpt")
        partial = scheduler(checkpoint_dir=ckpt, checkpoint_every=1,
                            max_evaluations_per_node=2) \
            .explore(tiny_model(), graph_level=3)
        assert partial.num_evaluations < full.num_evaluations

        resumed = scheduler(jobs=2, checkpoint_dir=ckpt) \
            .explore(tiny_model(), graph_level=3, resume=True)
        assert resumed.frontier_json() == full.frontier_json()

    def test_rerun_with_resume_hits_cache_and_matches(self, tmp_path):
        ckpt, cache_path = str(tmp_path / "ckpt"), str(tmp_path / "cache.jsonl")
        first = scheduler(checkpoint_dir=ckpt,
                          cache=EstimateCache(cache_path)) \
            .explore(tiny_model(), graph_level=3)
        # A cold run stores its records but must not claim warm reuse.
        assert first.frontier_cache_hits == 0
        rerun = scheduler(checkpoint_dir=ckpt,
                          cache=EstimateCache(cache_path)) \
            .explore(tiny_model(), graph_level=3, resume=True)
        assert rerun.evaluated_this_run == 0
        # The composed frontier is revalidated against the estimates the
        # persistent cache held *before* the run, so the warm cache is
        # visible even though checkpoints restored the whole trajectory.
        assert rerun.frontier_cache_hits >= 1
        assert rerun.frontier_json() == first.frontier_json()


class TestNodeBudgetPolicy:
    def test_flops_mode_scales_down_light_nodes(self):
        policy = NodeBudgetPolicy(num_samples=16, max_iterations=32)
        heavy = policy.budget_for(1000, 1000)
        light = policy.budget_for(10, 1000)
        assert heavy == (16, 32)
        assert light < heavy
        assert light[0] >= policy.min_samples
        assert light[1] >= policy.min_iterations

    def test_uniform_mode_ignores_flops(self):
        policy = NodeBudgetPolicy(num_samples=16, max_iterations=32,
                                  mode="uniform")
        assert policy.budget_for(10, 1000) == (16, 32)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown budget mode"):
            NodeBudgetPolicy(mode="bogus").budget_for(1, 1)


class TestFrontierComposition:
    class FakeResult:
        def __init__(self, records):
            self._records = records

        def frontier_records(self):
            return self._records

    @staticmethod
    def record(latency, dsp, encoded):
        from repro.dse.runtime.records import EvaluationRecord
        from repro.dse.space import KernelDesignPoint
        from repro.estimation.estimator import QoRResult
        from repro.estimation.resources import ResourceUsage

        return EvaluationRecord(
            encoded=encoded,
            point=KernelDesignPoint(False, False, (0,), (1,), 1),
            qor=QoRResult(latency=latency, interval=latency,
                          resources=ResourceUsage(dsp=dsp)))

    def test_two_node_composition(self):
        results = {
            "a": self.FakeResult([self.record(100, 8, (0,)),
                                  self.record(50, 16, (1,))]),
            "b": self.FakeResult([self.record(30, 4, (0,))]),
        }
        frontier, truncated = compose_model_frontier(["a", "b"], results)
        assert truncated == 0
        assert [(p.latency, p.resources.dsp) for p in frontier] \
            == [(80, 20), (130, 12)]
        assert frontier[0].interval == 50  # slowest chosen stage
        assert frontier[0].choices == (("a", (1,)), ("b", (0,)))

    def test_empty_node_order_yields_empty_frontier(self):
        frontier, truncated = compose_model_frontier([], {})
        assert frontier == []  # no phantom zero-latency point
        assert truncated == 0

    def test_dominated_combinations_are_pruned(self):
        results = {
            "a": self.FakeResult([self.record(100, 8, (0,)),
                                  self.record(100, 10, (1,))]),
        }
        frontier, _ = compose_model_frontier(["a"], results)
        assert len(frontier) == 1
        assert frontier[0].resources.dsp == 8

    def test_cap_reports_truncation_and_keeps_both_extremes(self):
        records = [self.record(100 + i, 100 - i, (i,)) for i in range(8)]
        results = {"a": self.FakeResult(records)}
        frontier, truncated = compose_model_frontier(["a"], results,
                                                     frontier_cap=3)
        assert len(frontier) == 3
        assert truncated == 5
        # The fastest and the cheapest design both survive the cap, so a
        # tight resource budget can still be satisfied after truncation.
        assert frontier[0].latency == 100
        assert frontier[-1].resources.dsp == 93


class TestPipelineDimensionCache:
    """The cleanup-pipeline dimension must be cache-correct: estimates taken
    under one pipeline registry can never serve a different one."""

    def kernel(self):
        from conftest import GEMM_SOURCE, compile_source

        return compile_source(GEMM_SOURCE, "gemm")

    def test_unregistered_pipeline_name_fails_at_construction(self):
        from repro.ir.pass_manager import PassError

        with pytest.raises(PassError, match="unknown cleanup pipeline"):
            KernelDesignSpace([8, 8], False, False,
                              pipeline_names=["not-registered"])

    def test_pipeline_choices_are_distinct_cache_keys(self):
        from repro.dse.apply import apply_design_point
        from repro.dse.runtime.records import EvaluationRecord
        from repro.estimation import XC7Z020

        module = self.kernel()
        space = KernelDesignSpace.from_function(module.functions()[0])
        assert len(space.pipeline_options) >= 2
        pipe_dim = space.num_dimensions - 1
        base = [0] * space.num_dimensions
        variant = list(base)
        variant[pipe_dim] = 1
        assert space.decode(base).pipeline != space.decode(variant).pipeline

        cache = EstimateCache()
        design = apply_design_point(module, space.decode(base), XC7Z020)
        cache.put("fp", EvaluationRecord.from_design(tuple(base), design))
        assert cache.get("fp", tuple(base)) is not None
        assert cache.get("fp", tuple(variant)) is None  # distinct key

    def test_editing_a_named_pipeline_changes_the_fingerprint(self, monkeypatch):
        import repro.dse.apply as apply_mod

        def clear_signature_caches():
            apply_mod.cleanup_pipeline_signature.cache_clear()
            apply_mod.kernel_pipeline_signature.cache_clear()

        module = self.kernel()
        space_a = KernelDesignSpace.from_function(module.functions()[0])
        fingerprint_a = space_a.fingerprint()

        monkeypatch.setitem(apply_mod.CLEANUP_PIPELINES, "light",
                            "canonicalize")
        clear_signature_caches()
        try:
            space_b = KernelDesignSpace.from_function(module.functions()[0])
            # Same kernel, same dimension names — but the canonical spec of
            # one named pipeline changed, so the fingerprint must change.
            assert space_b.fingerprint() != fingerprint_a
        finally:
            monkeypatch.undo()
            clear_signature_caches()

    def test_estimates_under_edited_pipeline_miss_the_cache(self, monkeypatch):
        from repro.dse.runtime import ParallelExplorer
        from repro.estimation import XC7Z020

        import repro.dse.apply as apply_mod

        def clear_signature_caches():
            apply_mod.cleanup_pipeline_signature.cache_clear()
            apply_mod.kernel_pipeline_signature.cache_clear()

        cache = EstimateCache()
        explorer_config = dict(platform=XC7Z020, num_samples=4,
                               max_iterations=4, seed=3, batch_size=2)
        cold = ParallelExplorer(cache=cache, **explorer_config) \
            .explore(self.kernel())
        assert cold.cache_misses == cold.num_evaluations

        monkeypatch.setitem(apply_mod.CLEANUP_PIPELINES, "light",
                            "canonicalize")
        clear_signature_caches()
        try:
            edited = ParallelExplorer(cache=cache, **explorer_config) \
                .explore(self.kernel())
            # A registry whose pipelines mean something else gets no reuse.
            assert edited.cache_hits == 0
        finally:
            monkeypatch.undo()
            clear_signature_caches()

    def test_stale_fingerprint_cache_file_is_rejected(self, tmp_path):
        from repro.dse.runtime import ParallelExplorer
        from repro.estimation import XC7Z020

        path = str(tmp_path / "cache.jsonl")
        explorer_config = dict(platform=XC7Z020, num_samples=4,
                               max_iterations=4, seed=3, batch_size=2)
        ParallelExplorer(cache=EstimateCache(path), **explorer_config) \
            .explore(self.kernel())

        # Rewrite every line as if estimated under a different fingerprint
        # (e.g. an edited pipeline registry).  The entries load, but no
        # lookup may be served from them.
        lines = []
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                data = json.loads(line)
                data["fingerprint"] = "0" * 20
                lines.append(json.dumps(data))
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")

        revived = EstimateCache(path)
        assert revived.stats.loaded > 0
        warm = ParallelExplorer(cache=revived, **explorer_config) \
            .explore(self.kernel())
        assert warm.cache_hits == 0
        assert warm.evaluated_this_run == warm.num_evaluations


class TestDnnDseDriver:
    def test_smoke_sweep_writes_deterministic_frontier_json(self, tmp_path):
        from repro.tools.driver import main

        out_1 = str(tmp_path / "frontier1.json")
        out_2 = str(tmp_path / "frontier2.json")
        base = ["dnn", "mobilenet", "--dse", "--smoke", "--seed", "5",
                "--cache", str(tmp_path / "cache"), "--checkpoint",
                str(tmp_path / "ckpt")]
        assert main(base + ["--jobs", "2", "--frontier-out", out_1]) == 0
        assert main(base + ["--jobs", "1", "--resume",
                            "--frontier-out", out_2]) == 0
        with open(out_1, encoding="utf-8") as handle:
            first = handle.read()
        with open(out_2, encoding="utf-8") as handle:
            second = handle.read()
        assert first == second
        payload = json.loads(first)
        assert payload["model"] == "mobilenet"
        assert payload["frontier"]
        assert payload["node_order"]

    def test_resume_without_checkpoint_rejected(self):
        from repro.tools.driver import main

        with pytest.raises(SystemExit, match="--resume requires"):
            main(["dnn", "--dse", "--resume"])

    def test_checkpoint_file_rejected(self, tmp_path):
        from repro.tools.driver import main

        target = tmp_path / "ckpt-file"
        target.write_text("not a directory")
        with pytest.raises(SystemExit, match="must name a directory"):
            main(["dnn", "--dse", "--checkpoint", str(target)])

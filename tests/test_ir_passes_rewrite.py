"""Tests for the pass manager, rewrite driver and dialect registry."""

import pytest

from repro.dialects import arith, func
from repro.ir import (
    Builder,
    InsertionPoint,
    LambdaPass,
    ModuleOp,
    Pass,
    PassManager,
    PatternRewriter,
    RewritePattern,
    f32,
    registry,
)
from repro.ir.pass_manager import FunctionPass, ModulePass
from repro.ir.rewrite import apply_patterns_greedily


def build_simple_module():
    module = ModuleOp("m")
    f = func.build_function(module, "f", [f32])
    builder = Builder(InsertionPoint.at_end(f.body))
    a = builder.insert(arith.ConstantOp(1.0, f32))
    b = builder.insert(arith.ConstantOp(2.0, f32))
    builder.insert(arith.AddFOp(a.result(), b.result()))
    builder.insert(func.ReturnOp())
    return module, f


class TestPassManager:
    def test_function_pass_visits_functions(self):
        module, _ = build_simple_module()
        visited = []
        pm = PassManager([LambdaPass(lambda op: visited.append(op.get_attr("sym_name")),
                                     name="collect")])
        pm.run(module)
        assert visited == ["f"]

    def test_module_pass_runs_once(self):
        module, _ = build_simple_module()
        counter = []

        class CountModules(ModulePass):
            def run(self, op):
                counter.append(op.name)

        PassManager([CountModules()]).run(module)
        assert counter == ["builtin.module"]

    def test_timings_collected(self):
        module, _ = build_simple_module()
        pm = PassManager([LambdaPass(lambda op: None, name="noop")])
        pm.run(module)
        assert "noop" in pm.timings
        assert pm.total_time() >= 0.0
        assert "noop" in pm.timing_report()

    def test_verify_each(self):
        module, _ = build_simple_module()
        PassManager([LambdaPass(lambda op: None)], verify_each=True).run(module)

    def test_base_pass_requires_run(self):
        with pytest.raises(NotImplementedError):
            Pass().run(ModuleOp("m"))

    def test_add_chains(self):
        pm = PassManager()
        assert pm.add(LambdaPass(lambda op: None)) is pm


class TestRewriteDriver:
    def test_fold_add_of_constants(self):
        module, f = build_simple_module()

        class FoldAdd(RewritePattern):
            op_name = "arith.addf"

            def match_and_rewrite(self, op, rewriter: PatternRewriter) -> bool:
                lhs = arith.constant_value(op.operand(0))
                rhs = arith.constant_value(op.operand(1))
                if lhs is None or rhs is None:
                    return False
                folded = rewriter.insert(arith.ConstantOp(lhs + rhs, f32))
                rewriter.replace_op(op, folded.result())
                return True

        changed = apply_patterns_greedily(f, [FoldAdd()])
        assert changed
        assert not [op for op in f.walk() if op.name == "arith.addf"]

    def test_pattern_filtering_by_name(self):
        module, f = build_simple_module()

        class NeverMatches(RewritePattern):
            op_name = "arith.mulf"

            def match_and_rewrite(self, op, rewriter):
                raise AssertionError("should not be called")

        assert not apply_patterns_greedily(f, [NeverMatches()])

    def test_non_converging_patterns_detected(self):
        module, f = build_simple_module()

        class AlwaysChanges(RewritePattern):
            op_name = "arith.constant"

            def match_and_rewrite(self, op, rewriter):
                rewriter.notify_changed()
                return True

        with pytest.raises(RuntimeError):
            apply_patterns_greedily(f, [AlwaysChanges()], max_iterations=4)

    def test_replace_op_count_mismatch(self):
        module, f = build_simple_module()
        add = [op for op in f.walk() if op.name == "arith.addf"][0]
        rewriter = PatternRewriter()
        with pytest.raises(ValueError):
            rewriter.replace_op(add, [])


class TestPatternStats:
    class _FoldAdd(RewritePattern):
        op_name = "arith.addf"

        def match_and_rewrite(self, op, rewriter: PatternRewriter) -> bool:
            lhs = arith.constant_value(op.operand(0))
            rhs = arith.constant_value(op.operand(1))
            if lhs is None or rhs is None:
                return False
            folded = rewriter.insert(arith.ConstantOp(lhs + rhs, f32))
            rewriter.replace_op(op, folded.result())
            return True

    class _NeverMatches(RewritePattern):
        op_name = "arith.constant"

        def match_and_rewrite(self, op, rewriter) -> bool:
            return False

    def test_driver_counts_hits_and_misses(self):
        from repro.ir import GreedyRewriteDriver

        module, f = build_simple_module()
        driver = GreedyRewriteDriver([self._FoldAdd(), self._NeverMatches()])
        assert driver.rewrite(f)
        assert driver.pattern_stats["_FoldAdd"][0] == 1  # one fold applied
        assert driver.pattern_stats["_NeverMatches"][0] == 0
        assert driver.pattern_stats["_NeverMatches"][1] >= 3  # the constants

    def test_collector_aggregates_and_reports(self):
        from repro.ir import collect_pattern_stats

        module, f = build_simple_module()
        with collect_pattern_stats() as collector:
            apply_patterns_greedily(f, [self._FoldAdd()])
        assert collector.stats["_FoldAdd"][0] == 1
        assert collector.total_hits() == 1
        report = collector.report()
        assert "Rewrite pattern statistics" in report
        assert "_FoldAdd" in report

    def test_sweep_strategy_counts_too(self):
        from repro.ir import collect_pattern_stats

        module, f = build_simple_module()
        with collect_pattern_stats() as collector:
            apply_patterns_greedily(f, [self._FoldAdd()], strategy="sweep")
        assert collector.stats["_FoldAdd"][0] == 1


class TestDialectRegistry:
    def test_core_dialects_registered(self):
        for namespace in ("arith", "func", "memref", "affine", "scf", "graph"):
            assert registry.get(namespace) is not None

    def test_registered_op_lookup(self):
        assert registry.is_registered_op("arith.addf")
        assert registry.is_registered_op("affine.for")
        assert not registry.is_registered_op("arith.not_an_op")
        assert not registry.is_registered_op("plainname")

    def test_op_class_attribute_set_by_decorator(self):
        assert arith.AddFOp.OP_NAME == "arith.addf"

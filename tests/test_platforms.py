"""Tests for the declarative platform layer and platform-aware estimation.

Covers the platform config schema (loading, validation errors, hashing),
the widened resource checks (``ff`` / ``bram18k``), the bandwidth-aware and
ports-aware estimator behavior, and the multi-platform DSE sweeps
(per-platform frontiers byte-identical across worker counts and resumes,
cache rejection across differing platform hashes).
"""

import dataclasses
import json

import pytest

from repro import obs
from repro.dse import KernelDesignSpace
from repro.dse.runtime import ParallelExplorer
from repro.estimation import (
    BUILTIN_PLATFORM_CONFIGS,
    PLATFORMS,
    QoREstimator,
    VU9P_SLR,
    XC7Z020,
    PlatformError,
    load_platform_config,
)
from repro.estimation.platform import Platform
from repro.estimation.resources import ResourceUsage

from conftest import GEMM_SOURCE, SYRK_SOURCE, compile_source


@pytest.fixture
def gemm_module():
    return compile_source(GEMM_SOURCE, "gemm")


def frontier_signature(records):
    """Byte-comparable rendering of a frontier record list."""
    return repr([(record.encoded, record.qor.latency, record.qor.dsp,
                  record.point.platform)
                 for record in records])


def write_config(tmp_path, document, name="platforms.json"):
    path = tmp_path / name
    path.write_text(json.dumps(document), encoding="utf-8")
    return str(path)


SMALL = {"name": "small", "memory_bits": 1_000_000, "dsp": 100, "lut": 20_000,
         "ff": 40_000, "bram18k": 60, "clock_mhz": 100.0}
BIG = {"name": "big", "memory_bits": 100_000_000, "dsp": 4000, "lut": 500_000,
       "ff": 1_000_000, "bram18k": 2000, "uram": 400, "clock_mhz": 250.0,
       "memory_ports_per_bank": 2,
       "offchip_bandwidth_bytes_per_cycle": 512.0}


class TestPlatformSchema:
    def test_builtin_catalog_is_validated_data(self):
        # Every bundled target round-trips through the schema validator.
        for config in BUILTIN_PLATFORM_CONFIGS:
            platform = Platform.from_dict(config)
            assert PLATFORMS[platform.name] == platform
            assert platform.to_dict() == Platform.from_dict(
                platform.to_dict()).to_dict()

    def test_paper_targets_present(self):
        assert PLATFORMS["xc7z020"] is XC7Z020
        assert PLATFORMS["vu9p-slr"] is VU9P_SLR
        # The paper targets predate the bandwidth model; their QoR must stay
        # bit-for-bit with the goldens, so the bound must be disabled.
        assert XC7Z020.offchip_bandwidth_bytes_per_cycle == 0
        assert VU9P_SLR.offchip_bandwidth_bytes_per_cycle == 0
        assert len(PLATFORMS) >= 5  # paper targets plus new bundled ones

    def test_unknown_field_rejected(self):
        with pytest.raises(PlatformError, match="unknown"):
            Platform.from_dict({**SMALL, "sram_kb": 64})

    def test_missing_required_field_rejected(self):
        config = dict(SMALL)
        del config["dsp"]
        with pytest.raises(PlatformError, match="dsp"):
            Platform.from_dict(config)

    def test_bad_type_rejected(self):
        with pytest.raises(PlatformError, match="lut"):
            Platform.from_dict({**SMALL, "lut": "lots"})
        with pytest.raises(PlatformError, match="dsp"):
            Platform.from_dict({**SMALL, "dsp": True})

    def test_negative_budget_rejected(self):
        with pytest.raises(PlatformError, match="dsp"):
            Platform.from_dict({**SMALL, "dsp": -1})
        with pytest.raises(PlatformError, match="memory_ports_per_bank"):
            Platform.from_dict({**SMALL, "memory_ports_per_bank": 0})

    def test_config_hash_stable_and_sensitive(self):
        first = Platform.from_dict(SMALL)
        second = Platform.from_dict(dict(SMALL))
        assert first.config_hash() == second.config_hash()
        changed = Platform.from_dict({**SMALL, "dsp": 101})
        assert changed.config_hash() != first.config_hash()
        renamed = Platform.from_dict({**SMALL, "name": "other"})
        assert renamed.config_hash() != first.config_hash()


class TestPlatformConfigFiles:
    def test_load_platforms_document(self, tmp_path):
        path = write_config(tmp_path, {"platforms": [SMALL, BIG]})
        platforms = load_platform_config(path)
        assert [platform.name for platform in platforms] == ["small", "big"]
        assert platforms[1].memory_ports_per_bank == 2

    def test_load_single_mapping_and_list(self, tmp_path):
        single = load_platform_config(write_config(tmp_path, SMALL, "s.json"))
        assert [platform.name for platform in single] == ["small"]
        listed = load_platform_config(
            write_config(tmp_path, [SMALL, BIG], "l.json"))
        assert [platform.name for platform in listed] == ["small", "big"]

    def test_missing_file_is_platform_error(self, tmp_path):
        with pytest.raises(PlatformError, match="cannot read"):
            load_platform_config(str(tmp_path / "absent.json"))

    def test_invalid_json_is_platform_error(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(PlatformError):
            load_platform_config(str(path))

    def test_duplicate_names_rejected(self, tmp_path):
        path = write_config(tmp_path, [SMALL, SMALL], "dup.json")
        with pytest.raises(PlatformError, match="duplicate"):
            load_platform_config(path)

    def test_entry_errors_name_the_offender(self, tmp_path):
        path = write_config(tmp_path, [SMALL, {"name": "broken"}], "e.json")
        with pytest.raises(PlatformError, match="platform #2"):
            load_platform_config(path)

    def test_unknown_top_level_key_rejected(self, tmp_path):
        path = write_config(tmp_path, {"platforms": [SMALL], "version": 1})
        with pytest.raises(PlatformError, match="version"):
            load_platform_config(path)

    def test_yaml_requires_pyyaml_or_parses(self, tmp_path):
        path = tmp_path / "p.yaml"
        path.write_text("name: y\nmemory_bits: 1000\ndsp: 1\nlut: 1\n",
                        encoding="utf-8")
        try:
            import yaml  # noqa: F401
        except ImportError:
            with pytest.raises(PlatformError, match="PyYAML"):
                load_platform_config(str(path))
        else:
            assert load_platform_config(str(path))[0].name == "y"


class TestResourceChecks:
    def test_ff_and_bram_enforced(self):
        platform = Platform.from_dict(SMALL)
        fits = ResourceUsage(dsp=1, lut=1, ff=1, bram18k=1)
        assert platform.fits(fits)
        assert not platform.fits(dataclasses.replace(fits, ff=40_001))
        assert not platform.fits(dataclasses.replace(fits, bram18k=61))

    def test_zero_budgets_skip_the_check(self):
        # Hand-built platforms without ff/bram budgets keep the old behavior.
        platform = Platform("legacy", 1_000_000, 100, 20_000)
        assert platform.fits(ResourceUsage(dsp=1, lut=1, ff=10**9,
                                           bram18k=10**9))

    def test_uram_extends_the_block_budget(self):
        # The resource model counts every buffer in BRAM18K blocks; a part
        # with URAM holds 16 BRAM18K equivalents per URAM, so designs the
        # memory_bits budget was sized for must not fail the block check.
        without_uram = Platform.from_dict(SMALL)
        with_uram = Platform.from_dict({**SMALL, "uram": 10})
        assert with_uram.memory_blocks() == without_uram.memory_blocks() + 160
        usage = ResourceUsage(dsp=1, lut=1, bram18k=200)
        assert not without_uram.fits(usage)
        assert with_uram.fits(usage)

    def test_infinite_memory_margin_ignores_bram_too(self):
        # engine.py finalization passes memory_margin=inf to mean "ignore
        # memory"; that must cover bram18k as well as memory_bits.
        platform = Platform.from_dict(SMALL)
        usage = ResourceUsage(dsp=1, lut=1, memory_bits=10**9, bram18k=10**6)
        assert platform.fits(usage, memory_margin=float("inf"))

    def test_utilization_reports_all_budgets(self):
        platform = Platform.from_dict(SMALL)
        usage = ResourceUsage(dsp=50, lut=10_000, ff=20_000,
                              memory_bits=500_000, bram18k=30)
        utilization = platform.utilization(usage)
        assert utilization["dsp"] == pytest.approx(0.5)
        assert utilization["ff"] == pytest.approx(0.5)
        assert utilization["bram18k"] == pytest.approx(0.5)
        assert utilization["memory"] == pytest.approx(0.5)


class TestEstimatorPlatformAwareness:
    def test_scf_if_branches_overlap(self):
        from repro.dialects import arith, scf
        from repro.ir import Block, f32

        def build(with_else):
            block = Block()
            c = block.append(arith.ConstantOp(1.0, f32))
            flag = block.append(arith.CmpIOp("eq", c.result(), c.result()))
            if_op = block.append(scf.SCFIfOp(flag.result(),
                                             with_else=with_else))
            a = if_op.then_block.append(arith.AddFOp(c.result(), c.result()))
            if_op.then_block.append(arith.MulFOp(a.result(), a.result()))
            if with_else:
                if_op.else_block.append(arith.AddFOp(c.result(), c.result()))
            return block

        estimator = QoREstimator(XC7Z020)
        then_only, _ = estimator._estimate_block(build(with_else=False))
        both, _ = estimator._estimate_block(build(with_else=True))
        # Only one branch executes: a shorter else under a longer then must
        # not add to the latency (max of branches, not their sum).
        assert both == then_only

    def test_bandwidth_bound_raises_interval(self, gemm_module):
        func_op = gemm_module.functions()[0]
        unbound = QoREstimator(VU9P_SLR).estimate_function(func_op)
        starved_platform = dataclasses.replace(
            VU9P_SLR, offchip_bandwidth_bytes_per_cycle=0.001)
        starved = QoREstimator(starved_platform).estimate_function(func_op)
        assert starved.interval > unbound.interval
        assert starved.latency >= starved.interval
        # Ample bandwidth leaves the compute-bound estimate untouched.
        ample_platform = dataclasses.replace(
            VU9P_SLR, offchip_bandwidth_bytes_per_cycle=1e9)
        ample = QoREstimator(ample_platform).estimate_function(func_op)
        assert ample.latency == unbound.latency

    def test_more_memory_ports_never_hurt(self):
        from test_estimation import optimized_gemm

        _, func_op = optimized_gemm([1, 1, 2], target_ii=1)
        one_port = QoREstimator(XC7Z020).estimate_function(func_op)
        two_ports = QoREstimator(dataclasses.replace(
            XC7Z020, memory_ports_per_bank=2)).estimate_function(func_op)
        assert two_ports.latency <= one_port.latency

    def test_variable_bound_fallback_counter(self):
        class HostileLoop:
            def has_constant_lower_bound(self):
                raise AttributeError("not a real loop")

        with obs.session() as session:
            extent = QoREstimator(XC7Z020)._variable_bound_extent(HostileLoop())
        assert extent == 1
        assert session.metrics.counters[
            "estimate.variable_bound_fallbacks"] == 1

    def test_syrk_triangular_bound_needs_no_fallback(self):
        module = compile_source(SYRK_SOURCE, "syrk")
        with obs.session() as session:
            QoREstimator(XC7Z020).estimate_function(module.functions()[0])
        assert "estimate.variable_bound_fallbacks" \
            not in session.metrics.counters


def sweep_explorer(platforms, **overrides):
    config = dict(platform=platforms[0], platforms=platforms, num_samples=6,
                  max_iterations=8, seed=11, jobs=1, batch_size=4)
    config.update(overrides)
    return ParallelExplorer(**config)


class TestMultiPlatformSweeps:
    def test_platform_dimension_only_when_requested(self, gemm_module):
        func_op = gemm_module.functions()[0]
        plain = KernelDesignSpace.from_function(func_op)
        swept = KernelDesignSpace.from_function(
            func_op, platforms=[XC7Z020, VU9P_SLR])
        assert plain.platform_options == []
        assert swept.platform_options == ["xc7z020", "vu9p-slr"]
        assert swept.num_dimensions == plain.num_dimensions + 1
        assert plain.fingerprint() != swept.fingerprint()

    def test_fingerprint_tracks_platform_config(self, gemm_module):
        func_op = gemm_module.functions()[0]
        tweaked = dataclasses.replace(
            VU9P_SLR, offchip_bandwidth_bytes_per_cycle=64.0)
        first = KernelDesignSpace.from_function(
            func_op, platforms=[XC7Z020, VU9P_SLR])
        second = KernelDesignSpace.from_function(
            func_op, platforms=[XC7Z020, tweaked])
        assert first.fingerprint() != second.fingerprint()

    def test_sweep_covers_every_platform(self, gemm_module):
        result = sweep_explorer([XC7Z020, VU9P_SLR]).explore(gemm_module)
        assert result.platform_names() == ["xc7z020", "vu9p-slr"]
        for name in result.platform_names():
            assert result.frontier_records_for(name), name
            assert all(record.point.platform == name
                       for record in result.frontier_records_for(name))
            best = result.best_record_for(name)
            assert best is not None and best.point.platform == name

    def test_jobs_do_not_change_per_platform_frontiers(self, gemm_module):
        platforms = [XC7Z020, VU9P_SLR]
        serial = sweep_explorer(platforms).explore(gemm_module)
        threaded = sweep_explorer(platforms, jobs=2).explore(
            compile_source(GEMM_SOURCE, "gemm"))
        for name in serial.platform_names():
            assert frontier_signature(serial.frontier_records_for(name)) \
                == frontier_signature(threaded.frontier_records_for(name))

    def test_resume_reproduces_per_platform_frontiers(self, gemm_module,
                                                      tmp_path):
        platforms = [XC7Z020, VU9P_SLR]
        checkpoint = str(tmp_path / "sweep.ckpt.json")
        full = sweep_explorer(platforms,
                              checkpoint_path=checkpoint).explore(gemm_module)
        resumed = sweep_explorer(platforms, checkpoint_path=checkpoint) \
            .explore(compile_source(GEMM_SOURCE, "gemm"), resume=True)
        assert resumed.evaluated_this_run == 0
        for name in full.platform_names():
            assert frontier_signature(full.frontier_records_for(name)) \
                == frontier_signature(resumed.frontier_records_for(name))

    def test_records_carry_platform_hash(self, gemm_module):
        result = sweep_explorer([XC7Z020, VU9P_SLR]).explore(gemm_module)
        hashes = {XC7Z020.name: XC7Z020.config_hash(),
                  VU9P_SLR.name: VU9P_SLR.config_hash()}
        for record in result.records.values():
            assert record.platform_hash == hashes[record.point.platform]

    def test_cache_rejected_across_platform_hashes(self, gemm_module,
                                                   tmp_path):
        cache_path = str(tmp_path / "estimates.jsonl")
        from repro.pipeline import explore_kernel

        common = dict(num_samples=6, max_iterations=8, seed=11, batch_size=4,
                      cache_path=cache_path)
        warm = explore_kernel(gemm_module, XC7Z020, **common)
        assert warm.cache_misses > 0
        replay = explore_kernel(compile_source(GEMM_SOURCE, "gemm"),
                                XC7Z020, **common)
        assert replay.cache_hits == replay.num_evaluations
        # The same sweep against a tweaked platform fingerprints differently:
        # every stale entry is rejected, nothing is served across hashes.
        tweaked = dataclasses.replace(XC7Z020, memory_ports_per_bank=2)
        cross = explore_kernel(compile_source(GEMM_SOURCE, "gemm"),
                               tweaked, **common)
        assert cross.cache_hits == 0

"""Tests for the dialect operation classes."""

import pytest

from repro.affine import AffineMap, dim
from repro.affine.set import Constraint, IntegerSet
from repro.dialects import arith, func, graph, hlscpp, memref, scf
from repro.dialects.affine_ops import (
    AffineApplyOp,
    AffineForOp,
    AffineIfOp,
    AffineLoadOp,
    AffineStoreOp,
    access_expressions,
    access_indices,
    access_is_write,
    access_memref,
    band_dim_map,
    band_dim_ranges,
    perfect_loop_band,
    value_to_affine_expr,
)
from repro.ir import Block, Builder, FunctionType, MemRefType, ModuleOp, TensorType, f32, i32, index


class TestArith:
    def test_constant_coerces_value(self):
        assert arith.ConstantOp(3, f32).value == 3.0
        assert arith.ConstantOp(3.7, i32).value == 3

    def test_binary_result_type_follows_lhs(self):
        a = arith.ConstantOp(1.0, f32)
        add = arith.AddFOp(a.result(), a.result())
        assert add.result().type == f32
        assert add.lhs is a.result()

    def test_cmp_produces_i1(self):
        a = arith.ConstantOp(1, index)
        cmp = arith.CmpIOp("slt", a.result(), a.result())
        assert cmp.result().type.width == 1

    def test_invalid_predicate_rejected(self):
        a = arith.ConstantOp(1, index)
        with pytest.raises(ValueError):
            arith.CmpIOp("bogus", a.result(), a.result())

    def test_select_accessors(self):
        c = arith.ConstantOp(1, index)
        cmp = arith.CmpIOp("eq", c.result(), c.result())
        select = arith.SelectOp(cmp.result(), c.result(), c.result())
        assert select.condition is cmp.result()

    def test_constant_helpers(self):
        c = arith.ConstantOp(5, index)
        assert arith.is_constant(c.result())
        assert arith.constant_value(c.result()) == 5
        block = Block([index])
        assert arith.constant_value(block.arguments[0]) is None


class TestFunc:
    def test_function_structure(self):
        module = ModuleOp("m")
        f = func.build_function(module, "foo", [f32, MemRefType((4,), f32)], [])
        assert f.sym_name == "foo"
        assert len(f.arguments) == 2
        assert f.function_type.inputs[0] == f32

    def test_add_argument_updates_type(self):
        module = ModuleOp("m")
        f = func.build_function(module, "foo", [f32])
        f.add_argument(i32)
        assert f.function_type.inputs == (f32, i32)

    def test_set_result_types(self):
        module = ModuleOp("m")
        f = func.build_function(module, "foo", [])
        f.set_result_types([f32])
        assert f.function_type.results == (f32,)

    def test_call_op(self):
        call = func.CallOp("callee", [], [f32])
        assert call.callee == "callee"
        assert call.result().type == f32

    def test_return_op_is_terminator(self):
        assert func.ReturnOp().is_terminator()


class TestMemref:
    def test_load_store_accessors(self):
        alloc = memref.AllocOp(MemRefType((4, 4), f32), name="buf")
        c = arith.ConstantOp(0, index)
        load = memref.LoadOp(alloc.result(), [c.result(), c.result()])
        store = memref.StoreOp(load.result(), alloc.result(), [c.result(), c.result()])
        assert load.memref is alloc.result()
        assert store.value is load.result()
        assert len(store.indices) == 2

    def test_load_rank_mismatch(self):
        alloc = memref.AllocOp(MemRefType((4, 4), f32))
        c = arith.ConstantOp(0, index)
        with pytest.raises(ValueError):
            memref.LoadOp(alloc.result(), [c.result()])

    def test_load_requires_memref(self):
        c = arith.ConstantOp(0.0, f32)
        with pytest.raises(TypeError):
            memref.LoadOp(c.result(), [])


class TestAffineOps:
    def test_constant_bounds_and_trip_count(self):
        loop = AffineForOp.constant_bounds(0, 16, 2)
        assert loop.has_constant_bounds()
        assert loop.trip_count() == 8

    def test_variable_bound_trip_count_none(self):
        outer = AffineForOp.constant_bounds(0, 8)
        inner = AffineForOp(AffineMap.constant_map(0), AffineMap(1, 0, [dim(0) + 1]), 1,
                            ub_operands=[outer.induction_variable])
        assert inner.trip_count() is None
        assert not inner.has_constant_upper_bound()

    def test_set_constant_bounds_clears_operands(self):
        outer = AffineForOp.constant_bounds(0, 8)
        inner = AffineForOp(AffineMap.constant_map(0), AffineMap(1, 0, [dim(0) + 1]), 1,
                            ub_operands=[outer.induction_variable])
        inner.set_constant_bounds(0, 8)
        assert inner.has_constant_bounds()
        assert inner.num_operands == 0

    def test_affine_if_blocks(self):
        condition = IntegerSet(1, 0, [Constraint(dim(0), False)])
        if_op = AffineIfOp(condition, [], with_else=True)
        assert if_op.then_block is not None
        assert if_op.else_block is not None

    def test_apply_requires_single_result(self):
        with pytest.raises(ValueError):
            AffineApplyOp(AffineMap.identity(2), [])

    def test_load_store_with_access_map(self):
        buffer_block = Block([MemRefType((8, 8), f32)])
        loop = AffineForOp.constant_bounds(0, 8)
        access_map = AffineMap(1, 0, [dim(0), dim(0) + 1])
        load = AffineLoadOp(buffer_block.arguments[0], [loop.induction_variable], access_map)
        assert access_memref(load) is buffer_block.arguments[0]
        assert not access_is_write(load)
        store = AffineStoreOp(load.result(), buffer_block.arguments[0],
                              [loop.induction_variable], access_map)
        assert access_is_write(store)
        assert access_indices(store) == (loop.induction_variable,)

    def test_access_map_rank_check(self):
        buffer_block = Block([MemRefType((8, 8), f32)])
        loop = AffineForOp.constant_bounds(0, 8)
        with pytest.raises(ValueError):
            AffineLoadOp(buffer_block.arguments[0], [loop.induction_variable],
                         AffineMap(1, 0, [dim(0)]))

    def test_value_to_affine_expr_chases_apply_and_arith(self):
        loop = AffineForOp.constant_bounds(0, 8)
        builder = Builder()
        builder.set_insertion_point_to_end(loop.body)
        c2 = builder.insert(arith.ConstantOp(2, index))
        mul = builder.insert(arith.MulIOp(loop.induction_variable, c2.result()))
        apply_op = builder.insert(AffineApplyOp(AffineMap(1, 0, [dim(0) + 3]), [mul.result()]))
        expr = value_to_affine_expr(apply_op.result(), {loop.induction_variable: 0})
        assert expr.evaluate([5]) == 13

    def test_value_to_affine_expr_unknown_value(self):
        block = Block([index])
        assert value_to_affine_expr(block.arguments[0], {}) is None

    def test_perfect_band_and_dim_helpers(self):
        outer = AffineForOp.constant_bounds(0, 4)
        inner = AffineForOp.constant_bounds(0, 8)
        outer.body.append(inner)
        band = perfect_loop_band(outer)
        assert band == [outer, inner]
        assert band_dim_map(band)[inner.induction_variable] == 1
        assert band_dim_ranges(band) == [(0, 4), (0, 8)]

    def test_access_expressions_through_band(self):
        outer = AffineForOp.constant_bounds(0, 4)
        inner = AffineForOp.constant_bounds(0, 8)
        outer.body.append(inner)
        buffer_block = Block([MemRefType((4, 8), f32)])
        builder = Builder()
        builder.set_insertion_point_to_end(inner.body)
        load = builder.insert(AffineLoadOp(
            buffer_block.arguments[0],
            [outer.induction_variable, inner.induction_variable]))
        exprs = access_expressions(load, band_dim_map([outer, inner]))
        assert [str(e) for e in exprs] == ["d0", "d1"]


class TestSCF:
    def test_scf_for_structure(self):
        c0 = arith.ConstantOp(0, index)
        c8 = arith.ConstantOp(8, index)
        c1 = arith.ConstantOp(1, index)
        loop = scf.SCFForOp(c0.result(), c8.result(), c1.result())
        assert loop.lower is c0.result()
        assert loop.induction_variable.type == index

    def test_scf_if_blocks(self):
        c = arith.ConstantOp(1, index)
        cmp = arith.CmpIOp("eq", c.result(), c.result())
        if_op = scf.SCFIfOp(cmp.result(), with_else=True)
        assert if_op.else_block is not None


class TestHlscpp:
    def test_loop_directive_roundtrip(self):
        loop = AffineForOp.constant_bounds(0, 8)
        directive = hlscpp.LoopDirective(pipeline=True, target_ii=4)
        hlscpp.set_loop_directive(loop, directive)
        assert hlscpp.get_loop_directive(loop).target_ii == 4
        assert hlscpp.is_pipelined(loop)
        assert not hlscpp.is_flattened(loop)

    def test_func_directive_defaults(self):
        module = ModuleOp("m")
        f = func.build_function(module, "f", [])
        directive = hlscpp.ensure_func_directive(f)
        assert not directive.dataflow
        directive.dataflow = True
        assert hlscpp.get_func_directive(f).dataflow

    def test_directive_clone_is_independent(self):
        directive = hlscpp.LoopDirective(pipeline=True, target_ii=2)
        clone = directive.clone()
        clone.target_ii = 8
        assert directive.target_ii == 2

    def test_top_function_marker(self):
        module = ModuleOp("m")
        f = func.build_function(module, "top", [])
        func.build_function(module, "other", [])
        hlscpp.set_top_function(f)
        assert hlscpp.find_top_function(module) is f

    def test_find_top_function_single(self):
        module = ModuleOp("m")
        f = func.build_function(module, "only", [])
        assert hlscpp.find_top_function(module) is f

    def test_dataflow_stage_attr(self):
        loop = AffineForOp.constant_bounds(0, 4)
        hlscpp.set_dataflow_stage(loop, 3)
        assert hlscpp.get_dataflow_stage(loop) == 3

    def test_directive_str_forms(self):
        assert "dataflow" in str(hlscpp.FuncDirective(dataflow=True))
        assert "pipeline" in str(hlscpp.LoopDirective(pipeline=True))


class TestGraph:
    def make_input(self, shape=(1, 3, 32, 32)):
        block = Block([TensorType(shape, f32)])
        return block.arguments[0]

    def test_conv2d_shape_inference(self):
        conv = graph.Conv2DOp(self.make_input(), 64, 3, stride=1, padding=1)
        assert conv.output_type().shape == (1, 64, 32, 32)

    def test_conv2d_stride_and_padding(self):
        conv = graph.Conv2DOp(self.make_input(), 16, 3, stride=2, padding=1)
        assert conv.output_type().shape == (1, 16, 16, 16)

    def test_conv2d_group_validation(self):
        with pytest.raises(ValueError):
            graph.Conv2DOp(self.make_input(), 64, 3, groups=5)

    def test_depthwise_weight_shape(self):
        conv = graph.Conv2DOp(self.make_input((1, 32, 16, 16)), 32, 3, padding=1, groups=32)
        assert conv.get_attr("weight_shape") == (32, 1, 3, 3)

    def test_conv2d_flops(self):
        conv = graph.Conv2DOp(self.make_input(), 64, 3, padding=1)
        assert conv.flops() == 2 * 64 * 32 * 32 * 3 * 3 * 3

    def test_dense_shapes_and_flops(self):
        dense = graph.DenseOp(self.make_input((1, 512)), 10)
        assert dense.output_type().shape == (1, 10)
        assert dense.flops() == 2 * 512 * 10

    def test_pooling_shapes(self):
        pool = graph.MaxPool2DOp(self.make_input((1, 64, 32, 32)), 2)
        assert pool.output_type().shape == (1, 64, 16, 16)
        avg = graph.AvgPool2DOp(self.make_input((1, 64, 8, 8)), 8)
        assert avg.output_type().shape == (1, 64, 1, 1)

    def test_add_requires_matching_shapes(self):
        a = self.make_input((1, 8, 4, 4))
        b = self.make_input((1, 8, 4, 4))
        assert graph.AddOp(a, b).output_type().shape == (1, 8, 4, 4)
        with pytest.raises(ValueError):
            graph.AddOp(a, self.make_input((1, 4, 4, 4)))

    def test_flatten(self):
        flat = graph.FlattenOp(self.make_input((1, 64, 2, 2)))
        assert flat.output_type().shape == (1, 256)

    def test_weight_elements(self):
        conv = graph.Conv2DOp(self.make_input(), 64, 3, padding=1)
        assert conv.weight_elements() == 64 * 3 * 3 * 3 + 64

    def test_graph_nodes_collects_in_order(self):
        module = ModuleOp("m")
        f = func.FuncOp("forward", FunctionType([TensorType((1, 3, 8, 8), f32)], []))
        module.append(f)
        builder = Builder()
        builder.set_insertion_point_to_end(f.body)
        conv = builder.insert(graph.Conv2DOp(f.arguments[0], 8, 3, padding=1))
        relu = builder.insert(graph.ReLUOp(conv.result()))
        names = [op.name for op in graph.graph_nodes(f)]
        assert names == ["graph.conv2d", "graph.relu"]

"""Tests for the fault-tolerant DSE runtime: fault-plan parsing, supervised
retries, deterministic quarantine, crash/hang/flaky/poison recovery at
several worker counts, crash-consistent persistence, and graceful
interruption with ``--resume``."""

import os
import random
import signal
import subprocess
import sys
import time
import warnings

import pytest

import repro
from repro.dse import KernelDesignSpace
from repro.dse.apply import apply_design_point
from repro.dse.engine import ExplorationPolicy
from repro.dse.runtime import (
    CheckpointStore,
    EstimateCache,
    EvaluationFailure,
    EvaluationRecord,
    FaultPlan,
    InjectedFault,
    KernelContext,
    ParallelExplorer,
    ProcessPoolBackend,
    SerialBackend,
    SupervisionPolicy,
    create_backend,
)
from repro.dse.runtime.faults import stable_point_hash
from repro.dse.runtime.records import STATUS_QUARANTINED
from repro.dse.runtime.worker import evaluate_encoded
from repro.estimation import XC7Z020
from repro.tools.driver import build_parser, main

from conftest import GEMM_SOURCE, compile_source


def frontier_signature(result):
    """Byte-comparable rendering of a frontier (encoded point + objectives)."""
    return repr([(p.encoded, p.latency, p.area) for p in result.frontier])


def small_explorer(**overrides):
    config = dict(platform=XC7Z020, num_samples=6, max_iterations=8, seed=11,
                  jobs=1, batch_size=4)
    config.update(overrides)
    return ParallelExplorer(**config)


def fast_policy(**overrides):
    """A supervision policy with near-zero backoff so retries don't stall tests."""
    config = dict(max_retries=2, backoff=0.001)
    config.update(overrides)
    return SupervisionPolicy(**config)


@pytest.fixture
def gemm_module():
    return compile_source(GEMM_SOURCE, "gemm")


def _context(module, faults=None):
    space = KernelDesignSpace.from_function(module.functions()[0])
    return KernelContext(module=module, func_name=None, platform=XC7Z020,
                         space=space, faults=faults)


def _sample_batch(context, count=2, seed=5):
    return [tuple(encoded) for encoded in ExplorationPolicy.initial_batch(
        context.space, random.Random(seed), count)]


# -- fault plan / supervision policy units --------------------------------------------------


class TestFaultPlan:
    def test_parse_bare_mode(self, tmp_path):
        plan = FaultPlan.parse("flaky")
        assert plan.mode == "flaky"
        assert plan.select == 4
        assert plan.times == 1
        assert os.path.isdir(plan.state_dir)  # auto-created ledger dir

    def test_parse_with_options(self, tmp_path):
        plan = FaultPlan.parse(
            f"crash:select=8,times=2,nth=3,state_dir={tmp_path}")
        assert plan == FaultPlan(mode="crash", select=8, times=2, nth=3,
                                 state_dir=str(tmp_path))

    def test_spec_round_trip(self, tmp_path):
        plan = FaultPlan.parse(f"hang:select=6,state_dir={tmp_path}")
        assert FaultPlan.parse(plan.to_spec()) == plan

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="unknown fault mode"):
            FaultPlan.parse("segfault")

    def test_rejects_unknown_option(self):
        with pytest.raises(ValueError, match="bad fault option"):
            FaultPlan.parse("flaky:rate=3")

    def test_selection_is_stable(self, tmp_path):
        plan = FaultPlan(mode="flaky", select=1, state_dir=str(tmp_path))
        assert plan.matches("k", (0, 1, 2))
        assert stable_point_hash("k", (0, 1, 2)) \
            == stable_point_hash("k", (0, 1, 2))
        # Different kernels select different victims for the same encoding.
        assert stable_point_hash("k", (0, 1, 2)) \
            != stable_point_hash("other", (0, 1, 2))

    def test_flaky_recovers_after_attempt_budget(self, tmp_path):
        plan = FaultPlan(mode="flaky", select=1, times=2,
                         state_dir=str(tmp_path))
        for _ in range(2):
            with pytest.raises(InjectedFault):
                plan.apply("k", (1, 2))
        plan.apply("k", (1, 2))  # budget spent: recovered

    def test_attempt_ledger_is_cross_process(self, tmp_path):
        # A fresh plan object (as a respawned worker would build from the
        # pickled spec) sees the attempts recorded by the previous one.
        first = FaultPlan(mode="flaky", select=1, times=1,
                          state_dir=str(tmp_path))
        with pytest.raises(InjectedFault):
            first.apply("k", (3,))
        second = FaultPlan.parse(first.to_spec())
        second.apply("k", (3,))  # already over budget: no fault

    def test_poison_never_recovers(self, tmp_path):
        plan = FaultPlan(mode="poison", select=1, times=1,
                         state_dir=str(tmp_path))
        for _ in range(5):
            with pytest.raises(InjectedFault, match="poison"):
                plan.apply("k", (0,))

    def test_process_isolation_requirement(self, tmp_path):
        assert FaultPlan(mode="crash", state_dir=str(tmp_path)) \
            .requires_process_isolation
        assert FaultPlan(mode="hang", state_dir=str(tmp_path)) \
            .requires_process_isolation
        assert not FaultPlan(mode="flaky", state_dir=str(tmp_path)) \
            .requires_process_isolation
        assert not FaultPlan(mode="poison", state_dir=str(tmp_path)) \
            .requires_process_isolation


class TestSupervisionPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="on_fault"):
            SupervisionPolicy(on_fault="explode")
        with pytest.raises(ValueError, match="task_timeout"):
            SupervisionPolicy(task_timeout=0)
        with pytest.raises(ValueError, match="max_retries"):
            SupervisionPolicy(max_retries=-1)

    def test_backoff_doubles(self):
        policy = SupervisionPolicy(backoff=0.5)
        assert [policy.backoff_seconds(n) for n in (1, 2, 3)] == [0.5, 1.0, 2.0]

    def test_backend_promotion(self, gemm_module, tmp_path):
        contexts = {"k": _context(gemm_module)}
        assert isinstance(create_backend(contexts, jobs=1), SerialBackend)
        # A task timeout forces a process pool even at one job: inline
        # evaluation cannot be killed.
        timed = create_backend(contexts, jobs=1,
                               supervision=fast_policy(task_timeout=30.0))
        assert isinstance(timed, ProcessPoolBackend)
        timed.close()
        # So does a fault plan whose mode would take the coordinator down.
        crashy = {"k": _context(gemm_module, faults=FaultPlan(
            mode="crash", state_dir=str(tmp_path)))}
        promoted = create_backend(crashy, jobs=1)
        assert isinstance(promoted, ProcessPoolBackend)
        promoted.close()


# -- quarantined records --------------------------------------------------------------------


class TestQuarantinedRecords:
    def _healthy_record(self, gemm_module):
        space = KernelDesignSpace.from_function(gemm_module.functions()[0])
        encoded = tuple(0 for _ in range(space.num_dimensions))
        design = apply_design_point(gemm_module, space.decode(encoded), XC7Z020)
        return space, EvaluationRecord.from_design(encoded, design)

    def test_json_round_trip(self, gemm_module):
        space, _ = self._healthy_record(gemm_module)
        encoded = tuple(0 for _ in range(space.num_dimensions))
        record = EvaluationRecord.quarantined(
            encoded, space.decode(encoded), "InjectedFault: poison")
        assert not record.ok
        assert record.status == STATUS_QUARANTINED
        revived = EvaluationRecord.from_json_dict(record.to_json_dict())
        assert revived == record

    def test_healthy_json_layout_unchanged(self, gemm_module):
        # Healthy records must serialize exactly as before the status field
        # existed, so old cache/checkpoint files stay valid byte-for-byte.
        _, record = self._healthy_record(gemm_module)
        data = record.to_json_dict()
        assert "status" not in data
        assert "error" not in data

    def test_excluded_from_frontier_but_visited(self, gemm_module):
        space, healthy = self._healthy_record(gemm_module)
        other = [0] * space.num_dimensions
        for axis, options in enumerate(space.dimensions):
            if len(options) > 1:
                other[axis] = 1
                break
        other = tuple(other)
        bad = EvaluationRecord.quarantined(other, space.decode(other), "boom")
        records = {healthy.encoded: healthy, bad.encoded: bad}
        frontier = ExplorationPolicy.frontier_of(records)
        assert [p.encoded for p in frontier] == [healthy.encoded]

    def test_cache_persists_quarantine(self, gemm_module, tmp_path):
        space, _ = self._healthy_record(gemm_module)
        encoded = tuple(0 for _ in range(space.num_dimensions))
        record = EvaluationRecord.quarantined(
            encoded, space.decode(encoded), "InjectedFault: poison")
        path = str(tmp_path / "cache.jsonl")
        cache = EstimateCache(path=path)
        cache.put("fp", record)
        cache.close()
        revived = EstimateCache(path=path).get("fp", encoded)
        assert revived == record
        assert not revived.ok


# -- end-to-end fault recovery --------------------------------------------------------------


class TestFlakyRecovery:
    """Retryable faults must not change the final frontier at any --jobs."""

    def _faulty(self, module, jobs, tmp_path, tag):
        plan = FaultPlan(mode="flaky", select=2, times=1,
                         state_dir=str(tmp_path / f"ledger-{tag}"))
        explorer = small_explorer(jobs=jobs, supervision=fast_policy(),
                                  faults=plan)
        result = explorer.explore(module)
        # The ledger proves faults actually fired (attempt files written).
        assert os.listdir(plan.state_dir)
        return result

    def test_flaky_frontier_matches_clean(self, gemm_module, tmp_path):
        clean = small_explorer().explore(gemm_module)
        serial = self._faulty(gemm_module, 1, tmp_path, "j1")
        pooled = self._faulty(gemm_module, 2, tmp_path, "j2")
        assert frontier_signature(serial) == frontier_signature(clean)
        assert frontier_signature(pooled) == frontier_signature(clean)
        assert set(serial.records) == set(clean.records)
        assert set(pooled.records) == set(clean.records)
        assert serial.num_quarantined == 0
        assert pooled.num_quarantined == 0


class TestCrashRecovery:
    def test_backend_respawns_and_retries(self, gemm_module, tmp_path):
        plan = FaultPlan(mode="crash", select=1, times=1,
                         state_dir=str(tmp_path / "ledger"))
        context = _context(gemm_module, faults=plan)
        backend = create_backend({"k": context}, jobs=1,
                                 supervision=fast_policy())
        assert isinstance(backend, ProcessPoolBackend)
        batch = _sample_batch(context, 2)
        try:
            records = backend.evaluate("k", batch)
        finally:
            backend.close()
        clean_context = _context(gemm_module)
        expected = [evaluate_encoded(clean_context, encoded)
                    for encoded in batch]
        assert records == expected

    def test_crash_frontier_matches_clean(self, gemm_module, tmp_path):
        config = dict(num_samples=4, max_iterations=4, batch_size=2, seed=11)
        clean = small_explorer(**config).explore(gemm_module)
        plan = FaultPlan(mode="crash", select=3, times=1,
                         state_dir=str(tmp_path / "ledger"))
        faulty = small_explorer(jobs=2, supervision=fast_policy(),
                                faults=plan, **config).explore(gemm_module)
        assert frontier_signature(faulty) == frontier_signature(clean)
        assert set(faulty.records) == set(clean.records)


class TestHangTimeout:
    def test_hung_worker_killed_and_retried(self, gemm_module, tmp_path):
        plan = FaultPlan(mode="hang", select=1, times=1, hang_seconds=60.0,
                         state_dir=str(tmp_path / "ledger"))
        context = _context(gemm_module, faults=plan)
        policy = fast_policy(task_timeout=1.0)
        backend = create_backend({"k": context}, jobs=2, supervision=policy)
        assert isinstance(backend, ProcessPoolBackend)
        batch = _sample_batch(context, 2)
        started = time.monotonic()
        try:
            records = backend.evaluate("k", batch)
        finally:
            backend.close()
        # Both points hang once (60s each uninterrupted); the timeout must
        # bound the whole recovery far below that.
        assert time.monotonic() - started < 30.0
        clean_context = _context(gemm_module)
        expected = [evaluate_encoded(clean_context, encoded)
                    for encoded in batch]
        assert records == expected

    def test_timeout_exhaustion_quarantines(self, gemm_module, tmp_path):
        # times=3 > max_retries=1: the hang survives every retry, so both
        # points must quarantine with the timeout message.
        plan = FaultPlan(mode="hang", select=1, times=3, hang_seconds=60.0,
                         state_dir=str(tmp_path / "ledger"))
        context = _context(gemm_module, faults=plan)
        policy = fast_policy(task_timeout=0.75, max_retries=1)
        backend = create_backend({"k": context}, jobs=2, supervision=policy)
        batch = _sample_batch(context, 2)
        try:
            records = backend.evaluate("k", batch)
        finally:
            backend.close()
        assert all(not record.ok for record in records)
        assert all("task timeout" in record.error for record in records)


class TestPoisonQuarantine:
    def _poison_run(self, module, jobs, plan, **overrides):
        explorer = small_explorer(jobs=jobs, faults=plan,
                                  supervision=fast_policy(max_retries=1),
                                  **overrides)
        return explorer.explore(module)

    def test_quarantine_deterministic_across_jobs(self, gemm_module, tmp_path):
        plan = FaultPlan(mode="poison", select=2,
                         state_dir=str(tmp_path / "ledger"))
        serial = self._poison_run(gemm_module, 1, plan)
        pooled = self._poison_run(gemm_module, 2, plan)
        assert serial.num_quarantined > 0
        quarantined = lambda r: [(rec.encoded, rec.status, rec.error)
                                 for rec in r.quarantined_records()]
        assert quarantined(serial) == quarantined(pooled)
        assert frontier_signature(serial) == frontier_signature(pooled)
        assert set(serial.records) == set(pooled.records)
        # No quarantined point ever enters the frontier.
        frontier_keys = {p.encoded for p in serial.frontier}
        assert frontier_keys.isdisjoint(
            rec.encoded for rec in serial.quarantined_records())

    def test_quarantine_survives_resume(self, gemm_module, tmp_path):
        plan = FaultPlan(mode="poison", select=2,
                         state_dir=str(tmp_path / "ledger"))
        full = self._poison_run(gemm_module, 1, plan)
        assert full.num_quarantined > 0

        # Interrupt the same trajectory early via the evaluation budget
        # (which is not part of the checkpointed config), then resume.
        checkpoint = str(tmp_path / "dse.ckpt.json")
        partial = self._poison_run(gemm_module, 1, plan,
                                   checkpoint_path=checkpoint,
                                   checkpoint_every=1, max_evaluations=6)
        assert partial.iterations_done < full.iterations_done
        resumed = small_explorer(
            jobs=1, faults=plan, supervision=fast_policy(max_retries=1),
            checkpoint_path=checkpoint).explore(gemm_module, resume=True)
        assert frontier_signature(resumed) == frontier_signature(full)
        assert [rec.encoded for rec in resumed.quarantined_records()] \
            == [rec.encoded for rec in full.quarantined_records()]

    def test_on_fault_fail_aborts(self, gemm_module, tmp_path):
        plan = FaultPlan(mode="poison", select=1,
                         state_dir=str(tmp_path / "ledger"))
        explorer = small_explorer(
            faults=plan, supervision=fast_policy(max_retries=0,
                                                 on_fault="fail"))
        with pytest.raises(EvaluationFailure, match=r"kernel .* point .*"):
            explorer.explore(gemm_module)


# -- crash-consistent persistence -----------------------------------------------------------


class TestTornLineRecovery:
    def _seed_cache(self, gemm_module, path):
        space = KernelDesignSpace.from_function(gemm_module.functions()[0])
        encoded = tuple(0 for _ in range(space.num_dimensions))
        design = apply_design_point(gemm_module, space.decode(encoded), XC7Z020)
        record = EvaluationRecord.from_design(encoded, design)
        cache = EstimateCache(path=path)
        cache.put("fp", record)
        cache.close()
        return encoded, record

    def test_torn_trailing_line_dropped_with_warning(self, gemm_module,
                                                     tmp_path):
        path = str(tmp_path / "cache.jsonl")
        encoded, record = self._seed_cache(gemm_module, path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"fingerprint": "fp", "model')  # cut mid-append
        with pytest.warns(RuntimeWarning, match="truncated trailing line"):
            revived = EstimateCache(path=path)
        assert revived.stats.recovered_lines == 1
        assert revived.stats.loaded == 1
        assert revived.get("fp", encoded) == record
        revived.close()
        # Load-time compaction rewrote the file: the next load is clean.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            clean = EstimateCache(path=path)
        assert clean.stats.recovered_lines == 0
        assert clean.stats.loaded == 1
        clean.close()

    def test_corrupt_middle_line_is_not_a_torn_write(self, gemm_module,
                                                     tmp_path):
        # A corrupt line *before* the end cannot come from a torn append;
        # it is compacted away silently (no recovery warning).
        path = str(tmp_path / "cache.jsonl")
        encoded, record = self._seed_cache(gemm_module, path)
        with open(path, "r", encoding="utf-8") as handle:
            good = handle.read()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"garbage\n' + good)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            revived = EstimateCache(path=path)
        assert revived.stats.recovered_lines == 0
        assert revived.stats.compacted == 1
        assert revived.get("fp", encoded) == record
        revived.close()


class TestCheckpointRecovery:
    def test_corrupt_checkpoint_warns_and_starts_fresh(self, tmp_path):
        path = str(tmp_path / "dse.ckpt.json")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"version": 1, "records"')
        with pytest.warns(RuntimeWarning, match="not valid JSON"):
            assert CheckpointStore(path).load() is None


# -- graceful interruption ------------------------------------------------------------------


class _InterruptingBackend:
    """Evaluates through a serial backend, then raises KeyboardInterrupt."""

    jobs = 1

    def __init__(self, contexts, allowed_calls):
        self._inner = SerialBackend(contexts)
        self._allowed = allowed_calls
        self.calls = 0

    def evaluate(self, key, batch):
        self.calls += 1
        if self.calls > self._allowed:
            raise KeyboardInterrupt
        return self._inner.evaluate(key, batch)

    def close(self):
        self._inner.close()


class TestInterruptCheckpoint:
    def test_interrupt_saves_boundary_and_resume_completes(self, gemm_module,
                                                           tmp_path):
        checkpoint = str(tmp_path / "dse.ckpt.json")
        clean = small_explorer().explore(gemm_module)

        contexts = {"kernel": _context(gemm_module)}
        backend = _InterruptingBackend(contexts, allowed_calls=2)
        explorer = small_explorer(checkpoint_path=checkpoint,
                                  checkpoint_every=1000)
        with pytest.raises(KeyboardInterrupt):
            explorer.explore(gemm_module, backend=backend)
        # Even though the periodic checkpoint interval was never reached,
        # the interrupt must have persisted the last batch boundary.
        assert os.path.exists(checkpoint)

        resumed = small_explorer(checkpoint_path=checkpoint) \
            .explore(gemm_module, resume=True)
        assert frontier_signature(resumed) == frontier_signature(clean)
        assert set(resumed.records) == set(clean.records)


# -- driver surface -------------------------------------------------------------------------


class TestDriverFlags:
    def test_dse_accepts_supervision_flags(self):
        args = build_parser().parse_args(
            ["dse", "--kernel", "gemm", "--task-timeout", "5",
             "--max-retries", "3", "--on-fault", "fail"])
        assert args.task_timeout == 5.0
        assert args.max_retries == 3
        assert args.on_fault == "fail"
        assert args.inject_faults is None

    def test_dnn_accepts_supervision_flags(self):
        args = build_parser().parse_args(
            ["dnn", "mobilenet", "--dse", "--on-fault", "quarantine",
             "--inject-faults", "flaky"])
        assert args.on_fault == "quarantine"
        assert args.inject_faults == "flaky"

    def test_on_fault_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["dse", "--kernel", "gemm", "--on-fault", "explode"])

    def test_bad_inject_spec_rejected(self):
        with pytest.raises(SystemExit, match="--inject-faults"):
            main(["dse", "--kernel", "gemm", "--size", "8", "--samples", "2",
                  "--iterations", "1", "--inject-faults", "segfault"])

    def test_chaos_run_matches_fault_free(self, tmp_path, capsys):
        base = ["dse", "--kernel", "gemm", "--size", "8", "--samples", "4",
                "--iterations", "4", "--seed", "3"]
        assert main(base) == 0
        clean = capsys.readouterr().out
        assert main(base + [
            "--inject-faults",
            f"flaky:select=2,times=1,state_dir={tmp_path / 'ledger'}",
            "--max-retries", "3"]) == 0
        chaos = capsys.readouterr().out
        # Identical frontier and finalization; only wall-clock-dependent
        # lines and the fault accounting itself may differ.
        volatile = ("evaluated", "evaluations/sec", "utilization",
                    "prefix snapshots", "faults:")
        strip = lambda text: [line for line in text.splitlines()
                              if not any(m in line for m in volatile)]
        assert strip(chaos) == strip(clean)

    def test_poison_run_reports_quarantine(self, tmp_path, capsys):
        assert main(["dse", "--kernel", "gemm", "--size", "8",
                     "--samples", "4", "--iterations", "2", "--seed", "3",
                     "--max-retries", "0", "--inject-faults",
                     f"poison:select=2,state_dir={tmp_path / 'ledger'}"]) == 0
        output = capsys.readouterr().out
        assert "quarantined" in output
        assert "excluded from the frontier" in output


class TestKillAndResume:
    def test_sigkill_then_resume_matches_clean(self, tmp_path, capsys):
        checkpoint = tmp_path / "dse.ckpt.json"
        base = ["dse", "--kernel", "gemm", "--size", "16", "--samples", "6",
                "--iterations", "8", "--batch-size", "2", "--seed", "9"]
        src_root = os.path.dirname(os.path.abspath(
            next(iter(repro.__path__))))
        env = dict(os.environ)
        env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.tools.driver"] + base
            + ["--checkpoint", str(checkpoint), "--checkpoint-every", "1"],
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        try:
            # Hard-kill the sweep as soon as the first checkpoint lands (or
            # accept a fast run that finished: its final checkpoint resumes
            # to the same result).
            deadline = time.monotonic() + 120.0
            while (time.monotonic() < deadline and not checkpoint.exists()
                   and proc.poll() is None):
                time.sleep(0.02)
            assert checkpoint.exists(), \
                "driver exited without writing a checkpoint"
        finally:
            proc.kill()
            proc.wait()

        assert main(base + ["--checkpoint", str(checkpoint), "--resume"]) == 0
        resumed = capsys.readouterr().out
        assert main(base) == 0
        clean = capsys.readouterr().out
        # "snapshots" also filters the frontier convergence-series line: the
        # resumed process only records series points for its own share of
        # the trajectory, so the snapshot *count* depends on where the kill
        # landed (the frontier itself does not).
        volatile = ("evaluated", "evaluations/sec", "utilization",
                    "snapshots")
        strip = lambda text: [line for line in text.splitlines()
                              if not any(m in line for m in volatile)]
        assert strip(resumed) == strip(clean)


class TestDnnInterruptCheckpoint:
    """Ctrl-C on a ``dnn --dse`` sweep must persist the last batch boundary
    per node and resume to a byte-identical model frontier."""

    def test_sigint_checkpoints_batch_boundary_and_resumes(self, tmp_path):
        checkpoint = tmp_path / "ckpt"
        base = ["dnn", "mobilenet", "--dse", "--samples", "8",
                "--iterations", "16", "--batch-size", "2", "--seed", "7"]
        src_root = os.path.dirname(os.path.abspath(
            next(iter(repro.__path__))))
        env = dict(os.environ)
        env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.tools.driver"] + base
            + ["--checkpoint", str(checkpoint), "--checkpoint-every", "1",
               "--frontier-out", str(tmp_path / "partial.json")],
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        try:
            # Ctrl-C the sweep as soon as the first node checkpoint lands.
            deadline = time.monotonic() + 120.0
            while (time.monotonic() < deadline and proc.poll() is None
                   and not (checkpoint.is_dir()
                            and any(checkpoint.iterdir()))):
                time.sleep(0.02)
            assert checkpoint.is_dir() and any(checkpoint.iterdir()), \
                "driver exited without writing a node checkpoint"
            if proc.poll() is None:
                proc.send_signal(signal.SIGINT)
            status = proc.wait(timeout=120)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        # 130 is the graceful-interrupt exit; 0 means the sweep won the race
        # and finished — its final checkpoints resume to the same result.
        assert status in (0, 130)

        resumed_out = tmp_path / "resumed.json"
        assert main(base + ["--checkpoint", str(checkpoint), "--resume",
                            "--frontier-out", str(resumed_out)]) == 0
        clean_out = tmp_path / "clean.json"
        assert main(base + ["--frontier-out", str(clean_out)]) == 0
        assert resumed_out.read_bytes() == clean_out.read_bytes()

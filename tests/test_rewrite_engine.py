"""The rewrite-engine overhaul: bucketed dispatch, the order-keyed
deduplicating worklist, slotted/interned IR objects, and the LRU-bounded
estimate cache.

The A/B harness at the bottom pins the contract the worklist driver lives
under: byte-identical IR with the legacy sweep oracle across the golden
kernel corpus, with a bounded number of visits per op even through a
constant-folding storm.
"""

from __future__ import annotations

import pickle

import pytest

from repro.dialects import arith
from repro.dse.apply import apply_design_point
from repro.dse.space import KernelDesignPoint
from repro.emit.hlscpp_emitter import emit_hlscpp
from repro.ir.block import Block
from repro.ir.operation import Operation
from repro.ir.printer import Printer
from repro.ir.rewrite import (GreedyRewriteDriver, PatternRewriter,
                              RewritePattern, collect_pattern_stats,
                              set_rewrite_strategy)
from repro.ir.types import index
from repro.ir.value import OpResult
from repro.pipeline import compile_kernel
from repro.transforms.cleanup.canonicalize import canonicalization_patterns


class _Never(RewritePattern):
    def __init__(self, op_name=None, benefit=1):
        self.op_name = op_name
        self.benefit = benefit

    def match_and_rewrite(self, op, rewriter) -> bool:
        return False


def _chain_module(length: int, root_name: str = "bench.root"):
    """One block: a unit constant and ``length`` chained ``arith.addi`` ops."""
    root = Operation(root_name, num_regions=1)
    block = root.regions[0].add_block(Block())
    one = arith.ConstantOp(1, index)
    block.append(one)
    previous = one.result()
    for _ in range(length):
        op = arith.AddIOp(previous, one.result())
        block.append(op)
        previous = op.result()
    return root, block


class TestBucketedDispatch:
    def test_buckets_built_at_construction(self):
        named = [_Never("a.x", benefit=1), _Never("a.y", benefit=5)]
        generic = [_Never(None, benefit=3)]
        driver = GreedyRewriteDriver(named + generic)
        assert set(driver._buckets) == {"a.x", "a.y"}
        # Wildcards merge into every bucket; benefit order is preserved.
        assert [p.benefit for p in driver._buckets["a.x"]] == [3, 1]
        assert [p.benefit for p in driver._buckets["a.y"]] == [5, 3]
        assert driver._generic == (generic[0],)

    def test_unknown_name_dispatches_to_wildcards_only(self):
        wildcard = _Never(None)
        driver = GreedyRewriteDriver([_Never("a.x"), wildcard])
        op = Operation("b.unknown")
        assert driver._matching_patterns(op) == (wildcard,)

    def test_bucket_stats_reported_per_op_name(self):
        root, _ = _chain_module(4)
        with collect_pattern_stats() as collector:
            driver = GreedyRewriteDriver(canonicalization_patterns())
            driver.rewrite(root)
        assert "arith.addi" in driver.bucket_stats
        assert driver.bucket_stats["arith.addi"][0] >= 4  # the folds
        assert collector.bucket_stats == driver.bucket_stats
        report = collector.report()
        assert "Pattern dispatch buckets" in report
        assert "arith.addi" in report


class TestDeduplicatingWorklist:
    def test_repeated_enqueue_visits_once(self):
        visits = []

        class Count(RewritePattern):
            op_name = "bench.target"

            def match_and_rewrite(self, op, rewriter) -> bool:
                visits.append(op)
                return False

        root = Operation("bench.root", num_regions=1)
        block = root.regions[0].add_block(Block())
        target = Operation("bench.target")
        block.append(target)
        driver = GreedyRewriteDriver([Count()], strategy="worklist")
        driver._root = root
        for _ in range(50):
            driver.enqueue(target)
        assert len(driver._heap) == 1  # deduplicated while pending
        driver.rewrite(root)
        assert len(visits) == 1
        assert driver.max_visits() == 1

    def test_processing_follows_program_order(self):
        order = []

        class Record(RewritePattern):
            def match_and_rewrite(self, op, rewriter) -> bool:
                order.append(op.name)
                return False

        root = Operation("bench.root", num_regions=1)
        block = root.regions[0].add_block(Block())
        for i in range(8):
            block.append(Operation(f"bench.op{i}"))
        driver = GreedyRewriteDriver([Record()], strategy="worklist")
        driver.rewrite(root)
        assert order == [f"bench.op{i}" for i in range(8)]

    def test_constant_folding_storm_visits_are_bounded(self):
        """The regression the order-keyed worklist exists for: after a mass
        constant fold, no op may be revisited more than a small constant
        number of times (the seed driver's revisit count grew with the
        number of users re-enqueued behind it)."""
        length = 300
        root, _ = _chain_module(length)
        driver = GreedyRewriteDriver(canonicalization_patterns(),
                                     max_iterations=64, strategy="worklist")
        driver.rewrite(root)
        # Every op folds and everything is DCE'd...
        assert sum(len(b) for b in
                   (blk for op in root.walk() for r in op.regions
                    for blk in r.blocks)) == 0
        # ...with each op processed at most k times (fold + DCE revisit).
        assert driver.max_visits() <= 3
        # Total pattern attempts stay linear in the op count.
        attempts = sum(h + m for h, m in driver.pattern_stats.values())
        assert attempts <= 12 * length

    def test_non_convergence_budget_still_enforced(self):
        class AlwaysChanges(RewritePattern):
            def match_and_rewrite(self, op, rewriter) -> bool:
                rewriter.notify_changed()
                return True

        root, _ = _chain_module(2)
        driver = GreedyRewriteDriver([AlwaysChanges()], max_iterations=4)
        with pytest.raises(RuntimeError, match="did not converge"):
            driver.rewrite(root)


class TestSlottedInternedIR:
    def test_ir_objects_have_no_instance_dict(self):
        module = compile_kernel("gemm", 4)
        for op in module.walk():
            assert not hasattr(op, "__dict__"), op.name
            for result in op.results:
                assert not hasattr(result, "__dict__")
            for region in op.regions:
                assert not hasattr(region, "__dict__")
                for block in region.blocks:
                    assert not hasattr(block, "__dict__")
                    for argument in block.arguments:
                        assert not hasattr(argument, "__dict__")

    def test_clone_interns_shareable_attribute_dicts(self):
        module = compile_kernel("gemm", 4)
        load = next(op for op in module.walk() if op.name == "affine.load")
        clone = load.clone(dict.fromkeys([]))
        assert clone._attributes is load._attributes  # interned, not copied
        # While shared, the public mapping is read-only: a stray direct
        # mutation raises instead of silently editing every sharing clone.
        with pytest.raises(TypeError):
            clone.attributes["marker"] = 1
        # Copy-on-write: mutating either side un-shares first.
        clone.set_attr("marker", 1)
        assert clone._attributes is not load._attributes
        assert not load.has_attr("marker")
        load.set_attr("other", 2)
        assert not clone.has_attr("other")

    def test_clone_does_not_share_mutable_attribute_values(self):
        from repro.dialects.hlscpp import (LOOP_DIRECTIVE_ATTR, LoopDirective)

        op = Operation("bench.op")
        op.set_attr(LOOP_DIRECTIVE_ATTR, LoopDirective(pipeline=True))
        clone = op.clone()
        assert clone.attributes is not op.attributes
        directive = clone.get_attr(LOOP_DIRECTIVE_ATTR)
        assert directive is not op.get_attr(LOOP_DIRECTIVE_ATTR)
        directive.achieved_ii = 7  # in-place mutation must stay private
        assert op.get_attr(LOOP_DIRECTIVE_ATTR).achieved_ii is None

    def test_operation_names_are_interned(self):
        a = Operation("bench." + "x" * 3)
        b = Operation("bench." + "x" * 3)
        assert a.name is b.name

    def test_use_list_drops_are_order_preserving(self):
        one = arith.ConstantOp(1, index)
        users = [arith.AddIOp(one.result(), one.result()) for _ in range(5)]
        # Each user registered two uses, in creation order.
        owners = [use.owner for use in one.result().uses]
        assert owners == [u for user in users for u in (user, user)]
        users[2].drop_all_references()
        owners = [use.owner for use in one.result().uses]
        assert owners == [u for user in users for u in (user, user)
                          if u is not users[2]]
        assert one.result().num_uses() == 8
        assert users[0] in one.result().users

    def test_pickle_preserves_use_registration_order(self):
        module = compile_kernel("gemm", 4)
        restored = pickle.loads(pickle.dumps(module))

        def use_orders(mod):
            return [[(use.owner.name, use.index) for use in result.uses]
                    for op in mod.walk() for result in op.results]

        assert use_orders(module) == use_orders(restored)
        printed = lambda mod: Printer(stable_ids=True).print(mod)
        assert printed(module) == printed(restored)

    def test_replace_uses_still_works_through_use_objects(self):
        one = arith.ConstantOp(1, index)
        two = arith.ConstantOp(2, index)
        add = arith.AddIOp(one.result(), one.result())
        one.result().replace_all_uses_with(two.result())
        assert not one.result().has_uses()
        assert add.operands == (two.result(), two.result())
        assert isinstance(add.operand(0), OpResult)


GOLDEN_CORPUS = {
    "gemm8_tiled": ("gemm", 8, KernelDesignPoint(True, True, (1, 2, 0), (2, 1, 2), 1)),
    "gemm8_plain": ("gemm", 8, KernelDesignPoint(True, True, (0, 1, 2), (1, 1, 1), 1)),
    "gemm8_unrolled": ("gemm", 8, KernelDesignPoint(True, True, (1, 2, 0), (8, 8, 8), 1)),
    "syrk8_tiled": ("syrk", 8, KernelDesignPoint(True, True, (0, 1, 2), (2, 2, 1), 1)),
    "bicg8_plain": ("bicg", 8, KernelDesignPoint(True, True, (0, 1), (1, 1), 1)),
}


class TestWorklistSweepAB:
    """The A/B harness: both strategies must produce byte-identical IR."""

    @pytest.mark.parametrize("key", sorted(GOLDEN_CORPUS))
    def test_worklist_and_sweep_byte_identical(self, key):
        kernel, size, point = GOLDEN_CORPUS[key]
        outputs = {}
        for strategy in ("sweep", "worklist"):
            previous = set_rewrite_strategy(strategy)
            try:
                module = compile_kernel(kernel, size)
                design = apply_design_point(module, point)
                outputs[strategy] = (
                    Printer(stable_ids=True).print(design.module),
                    emit_hlscpp(design.module),
                    design.qor.latency, design.qor.dsp, design.qor.lut)
            finally:
                set_rewrite_strategy(previous)
        assert outputs["sweep"] == outputs["worklist"]


class TestEstimateCacheLRU:
    def _record(self, encoded):
        from repro.dse.runtime.records import EvaluationRecord
        from repro.estimation.estimator import QoRResult, ResourceUsage

        return EvaluationRecord(
            encoded=tuple(encoded),
            point=KernelDesignPoint(True, True, (0, 1, 2), (1, 1, 1), 1),
            qor=QoRResult(latency=1, interval=1,
                          resources=ResourceUsage()),
            achieved_ii=1)

    def test_eviction_is_lru_and_counted(self):
        from repro.dse.runtime import EstimateCache

        cache = EstimateCache(max_entries=2)
        cache.put("fp", self._record((1,)))
        cache.put("fp", self._record((2,)))
        assert cache.get("fp", (1,)) is not None  # refreshes (1,)
        cache.put("fp", self._record((3,)))       # evicts (2,), the LRU
        assert cache.get("fp", (2,)) is None
        assert cache.get("fp", (1,)) is not None
        assert cache.get("fp", (3,)) is not None
        assert cache.stats.evictions == 1
        assert len(cache) == 2

    def test_unbounded_by_default(self):
        from repro.dse.runtime import EstimateCache

        cache = EstimateCache()
        for i in range(100):
            cache.put("fp", self._record((i,)))
        assert len(cache) == 100
        assert cache.stats.evictions == 0

    def test_bound_applies_when_warming_from_file(self, tmp_path):
        from repro.dse.runtime import EstimateCache

        path = str(tmp_path / "estimates.jsonl")
        full = EstimateCache(path)
        for i in range(10):
            full.put("fp", self._record((i,)))
        full.close()

        bounded = EstimateCache(path, max_entries=3)
        assert len(bounded) == 3
        # The newest lines win; the file itself keeps every entry.
        assert bounded.get("fp", (9,)) is not None
        assert bounded.get("fp", (0,)) is None
        assert bounded.stats.evictions == 7
        revived = EstimateCache(path)
        assert len(revived) == 10

    def test_invalid_bound_rejected(self):
        from repro.dse.runtime import EstimateCache

        with pytest.raises(ValueError):
            EstimateCache(max_entries=0)

    def test_cli_exposes_cache_max_entries(self):
        from repro.tools.driver import build_parser

        args = build_parser().parse_args(
            ["dse", "--kernel", "gemm", "--cache-max-entries", "128"])
        assert args.cache_max_entries == 128
        args = build_parser().parse_args(["dnn", "--dse"])
        assert args.cache_max_entries is None


class TestBlockScanBuckets:
    def test_cleanup_scans_declare_their_dispatch_names(self):
        from repro.transforms.cleanup.cse import CSEScanPattern
        from repro.transforms.cleanup.simplify_memref_access import \
            MemrefAccessScanPattern
        from repro.transforms.cleanup.store_forward import StoreForwardScanPattern

        assert "affine.apply" in CSEScanPattern.op_names
        assert "affine.load" in StoreForwardScanPattern.op_names
        assert "memref.store" in MemrefAccessScanPattern.op_names
